// Benchmarks, one per reproduced table/figure of EXPERIMENTS.md. Run with
//
//	go test -bench=. -benchmem
//
// The cmd/gpdbench harness prints the corresponding human-readable tables;
// these testing.B benchmarks pin the kernels so regressions show up in CI.
package gpd_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/cnf"
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/conjunctive"
	"github.com/distributed-predicates/gpd/internal/core/reduction"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/core/symmetric"
	"github.com/distributed-predicates/gpd/internal/experiments"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/sat"
	"github.com/distributed-predicates/gpd/internal/slicing"
	"github.com/distributed-predicates/gpd/internal/subsetsum"
)

// BenchmarkFig2Relations pins the event-relation queries of Figure 2:
// consistency, independence and precedence on the example computation.
func BenchmarkFig2Relations(b *testing.B) {
	c, ev := experiments.Fig2Computation()
	pairs := [][2]computation.EventID{
		{ev["e"], ev["f"]}, {ev["e"], ev["g"]}, {ev["g"], ev["h"]},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			_ = c.ConsistentEvents(p[0], p[1])
			_ = c.Independent(p[0], p[1])
			_ = c.Precedes(p[0], p[1])
		}
	}
}

// BenchmarkFig3Reduction pins the Figure 3 construction: formula ->
// computation -> detection -> assignment.
func BenchmarkFig3Reduction(b *testing.B) {
	f := &cnf.Formula{NumVars: 3, Clauses: []cnf.Clause{{1, 2}, {-1, 3}, {2, -3, 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := reduction.SingularFromCNF(f)
		if err != nil {
			b.Fatal(err)
		}
		res, err := singular.Detect(in.C, in.Pred, in.Truth(), singular.ChainCover)
		if err != nil {
			b.Fatal(err)
		}
		if res.Found {
			if _, err := in.Assignment(res.Witness); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE1ReductionDetect measures singular detection on Theorem 1
// instances of growing size (table E1).
func BenchmarkE1ReductionDetect(b *testing.B) {
	for _, nv := range []int{3, 4, 5, 6} {
		rng := rand.New(rand.NewSource(int64(nv)))
		f0 := experiments.RandomFormula(rng, nv)
		f, err := cnf.ToNonMonotone(f0)
		if err != nil {
			b.Fatal(err)
		}
		in, err := reduction.SingularFromCNF(f)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vars-%d", nv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := singular.Detect(in.C, in.Pred, in.Truth(), singular.ChainCover); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE1DPLL is the SAT-solver side of table E1.
func BenchmarkE1DPLL(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	f0 := experiments.RandomFormula(rng, 6)
	f, err := cnf.ToNonMonotone(f0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat.Satisfiable(f)
	}
}

// BenchmarkE2Ordered measures the polynomial receive-/send-ordered
// detectors (table E2).
func BenchmarkE2Ordered(b *testing.B) {
	const k = 2
	for _, cfg := range []struct{ g, events int }{{4, 16}, {4, 64}, {8, 64}} {
		procs := cfg.g * k
		p := groupedPred(cfg.g, k)
		cr := gen.GroupFunnel(gen.Params{Seed: 77, Procs: procs, Events: cfg.events, MsgFrac: 0.5}, k, true)
		truth := singular.TruthFromTables(gen.BoolTables(78, cr, 0.15))
		b.Run(fmt.Sprintf("recv-g%d-e%d", cfg.g, cfg.events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := singular.Detect(cr, p, truth, singular.ReceiveOrdered); err != nil {
					b.Fatal(err)
				}
			}
		})
		cs := gen.GroupFunnel(gen.Params{Seed: 79, Procs: procs, Events: cfg.events, MsgFrac: 0.5}, k, false)
		truthS := singular.TruthFromTables(gen.BoolTables(80, cs, 0.15))
		b.Run(fmt.Sprintf("send-g%d-e%d", cfg.g, cfg.events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := singular.Detect(cs, p, truthS, singular.SendOrdered); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func groupedPred(groups, size int) *singular.Predicate {
	p := &singular.Predicate{}
	proc := 0
	for g := 0; g < groups; g++ {
		var cl singular.Clause
		for j := 0; j < size; j++ {
			cl = append(cl, singular.Literal{Proc: computation.ProcID(proc)})
			proc++
		}
		p.Clauses = append(p.Clauses, cl)
	}
	return p
}

// BenchmarkE3AlgorithmA and BenchmarkE3AlgorithmB contrast the Section 3.3
// general algorithms (table E3): A enumerates processes (k^g), B enumerates
// chains (c^g).
func BenchmarkE3AlgorithmA(b *testing.B) {
	c, p, truth := e3Fixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := singular.Detect(c, p, truth, singular.ProcessSubsets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3AlgorithmB(b *testing.B) {
	c, p, truth := e3Fixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := singular.Detect(c, p, truth, singular.ChainCover); err != nil {
			b.Fatal(err)
		}
	}
}

func e3Fixture() (*computation.Computation, *singular.Predicate, singular.Truth) {
	c := experiments.ChainyGroups(333, 4, 3, 20)
	p := groupedPred(4, 3)
	truth := singular.TruthFromTables(gen.BoolTables(21, c, 0.10))
	return c, p, truth
}

// BenchmarkE4Closure and BenchmarkE4Lattice contrast the polynomial sum
// detector with exhaustive lattice enumeration (table E4).
func BenchmarkE4Closure(b *testing.B) {
	for _, procs := range []int{8, 32, 64} {
		c := gen.Random(gen.Params{Seed: int64(procs), Procs: procs, Events: 100, MsgFrac: 0.5})
		gen.UnitStepVar(int64(procs+1), c, "x")
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relsum.Possibly(c, "x", relsum.Eq, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE4Lattice(b *testing.B) {
	for _, procs := range []int{2, 4, 6} {
		c := gen.Random(gen.Params{Seed: int64(procs), Procs: procs, Events: 8, MsgFrac: 0.5})
		gen.UnitStepVar(int64(procs+1), c, "x")
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lattice.Possibly(c, func(cc *computation.Computation, k computation.Cut) bool {
					return cc.SumVar("x", k) == 1
				})
			}
		})
	}
}

// BenchmarkE5 contrasts the pseudo-polynomial subset-sum DP against
// exhaustive detection on the Theorem 3 reduction (table E5).
func BenchmarkE5DP(b *testing.B) {
	inst := e5Instance(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subsetsum.Solve(inst)
	}
}

func BenchmarkE5Exhaustive(b *testing.B) {
	inst := e5Instance(12)
	c := reduction.RelsumFromSubsetSum(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lattice.Possibly(c, func(cc *computation.Computation, k computation.Cut) bool {
			return cc.SumVar(reduction.SumVar, k) == inst.Target
		})
	}
}

func e5Instance(n int) subsetsum.Instance {
	rng := rand.New(rand.NewSource(55))
	sizes := make([]int64, n)
	var sum int64
	for i := range sizes {
		sizes[i] = int64(1 + rng.Intn(30))
		sum += sizes[i]
	}
	return subsetsum.Instance{Sizes: sizes, Target: sum / 3}
}

// BenchmarkE6Symmetric measures symmetric predicate detection on voting
// traces (table E6).
func BenchmarkE6Symmetric(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		c, err := experiments.RunVoting(int64(n), n)
		if err != nil {
			b.Fatal(err)
		}
		truth := func(e computation.Event) bool { return c.Var("yes", e.ID) != 0 }
		b.Run(fmt.Sprintf("procs-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := symmetric.Possibly(c, symmetric.NoSimpleMajority(n), truth); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkX1Slicing measures slice construction plus full enumeration
// for conjunctive predicates (table X1).
func BenchmarkX1Slicing(b *testing.B) {
	c := gen.Random(gen.Params{Seed: 1004, Procs: 4, Events: 6, MsgFrac: 0.4})
	tabs := gen.BoolTables(1104, c, 0.7)
	locals := make(map[computation.ProcID]func(computation.Event) bool)
	for p, row := range tabs {
		row := row
		locals[computation.ProcID(p)] = func(e computation.Event) bool {
			return e.Index < len(row) && row[e.Index]
		}
	}
	o := slicing.ConjunctiveOracle(locals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := slicing.Compute(c, o)
		if err != nil {
			b.Fatal(err)
		}
		s.Count(o)
	}
}

// BenchmarkX2InFlight measures channel-occupancy bounds on protocol
// traces (table X2).
func BenchmarkX2InFlight(b *testing.B) {
	for _, n := range []int{8, 32} {
		c, err := experiments.RunVoting(int64(n), n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("procs-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				relsum.InFlightRange(c)
			}
		})
	}
}

// BenchmarkE7Conjunctive measures the Garg–Waldecker baseline (table E7).
func BenchmarkE7Conjunctive(b *testing.B) {
	for _, procs := range []int{8, 32, 64} {
		c := gen.Random(gen.Params{Seed: int64(procs), Procs: procs, Events: 200, MsgFrac: 0.4})
		tabs := gen.BoolTables(int64(procs+7), c, 0.25)
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conjunctive.DetectTables(c, tabs)
			}
		})
	}
}
