package gpd_test

// Scale tests: the polynomial detectors must remain correct and fast on
// traces far beyond oracle reach. These use invariant checks (conservation
// laws, protocol guarantees) instead of exhaustive oracles.

import (
	"testing"

	gpd "github.com/distributed-predicates/gpd"
	"github.com/distributed-predicates/gpd/internal/gen"
)

func TestStressTokenRingLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		procs  = 64
		tokens = 8
	)
	sim := gpd.NewSimulator(99, gpd.NewTokenRingProcs(procs, tokens, 2, 10))
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEvents() < 1000 {
		t.Fatalf("expected a big trace, got %d events", c.NumEvents())
	}
	min, max := gpd.SumRange(c, gpd.VarTokens)
	if max != tokens {
		t.Errorf("max held tokens = %d, want %d", max, tokens)
	}
	if min < 0 || min > int64(tokens) {
		t.Errorf("min held tokens = %d out of range", min)
	}
	fmin, fmax := gpd.InFlightRange(c)
	if fmin != 0 {
		t.Errorf("in-flight min = %d", fmin)
	}
	if fmax > int64(tokens) {
		t.Errorf("in-flight max = %d exceeds token count %d", fmax, tokens)
	}
	// Conservation: held + in-flight == tokens at every cut. Check via
	// the combined weight function: it must be constant.
	inflight := func(e gpd.Event) int64 { return 0 }
	_ = inflight
	held := func(e gpd.Event) int64 {
		if e.IsInitial() {
			return 0
		}
		return c.Var(gpd.VarTokens, e.ID) - c.Var(gpd.VarTokens, c.Prev(e.ID))
	}
	flight := flightWeight(c)
	combined := func(e gpd.Event) int64 { return held(e) + flight(e) }
	cmin, cmax := gpd.WeightedRange(c, int64(tokens), combined)
	if cmin != int64(tokens) || cmax != int64(tokens) {
		t.Errorf("held+in-flight range [%d,%d], want constant %d", cmin, cmax, tokens)
	}
}

// flightWeight reproduces the in-flight weight for the combined check.
func flightWeight(c *gpd.Computation) gpd.EventWeight {
	delta := make([]int64, c.NumEvents())
	for _, m := range c.Messages() {
		delta[int(m.Send)]++
		delta[int(m.Receive)]--
	}
	return func(e gpd.Event) int64 { return delta[int(e.ID)] }
}

func TestStressRandomDetectors(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c := gen.Random(gen.Params{Seed: 7, Procs: 128, Events: 400, MsgFrac: 0.3})
	gen.UnitStepVar(8, c, "x")
	gen.BoolVar(9, c, "b", 0.2)
	if c.NumEvents() < 50000 {
		t.Fatalf("trace too small: %d events", c.NumEvents())
	}
	min, max := gpd.SumRange(c, "x")
	if min > max {
		t.Fatalf("range inverted [%d,%d]", min, max)
	}
	// Every k in [min,max] is witnessed (Theorem 4 at scale), sampled at
	// the edges and middle.
	for _, k := range []int64{min, (min + max) / 2, max} {
		ok, cut, err := gpd.PossiblySumWitness(c, "x", k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("k=%d in range not witnessed", k)
		}
		if got := c.SumVar("x", cut); got != k {
			t.Fatalf("witness sum = %d, want %d", got, k)
		}
	}
	// Symmetric predicate at scale.
	ok, _, err := gpd.PossiblySymmetric(c, gpd.NoSimpleMajority(128),
		func(e gpd.Event) bool { return c.Var("b", e.ID) != 0 })
	if err != nil {
		t.Fatal(err)
	}
	_ = ok // value workload-dependent; the point is completion in poly time
	// Conjunctive detector on all 128 processes.
	locals := map[gpd.ProcID]gpd.LocalPredicate{}
	for p := 0; p < 128; p++ {
		locals[gpd.ProcID(p)] = func(e gpd.Event) bool { return c.Var("b", e.ID) != 0 }
	}
	_ = gpd.PossiblyConjunctive(c, locals)
}

func TestStressSingularOrderedLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const groupSize = 2
	c := gen.GroupFunnel(gen.Params{Seed: 11, Procs: 32, Events: 200, MsgFrac: 0.3}, groupSize, true)
	pred := &gpd.SingularPredicate{}
	for g := 0; g < 16; g++ {
		pred.Clauses = append(pred.Clauses, gpd.SingularClause{
			{Proc: gpd.ProcID(2 * g)},
			{Proc: gpd.ProcID(2*g + 1)},
		})
	}
	truth := gpd.TruthFromTables(gen.BoolTables(12, c, 0.1))
	res, err := gpd.PossiblySingular(c, pred, truth, gpd.StrategyReceiveOrdered)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		if !c.CutConsistent(res.Cut) {
			t.Fatal("witness cut inconsistent")
		}
	}
}
