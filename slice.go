package gpd

import (
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/linear"
	"github.com/distributed-predicates/gpd/internal/slicing"
)

// Slicing and linear-predicate detection: extensions beyond the paper's
// core results, following the same authors' computation-slicing line of
// work and Chase & Garg's linear predicates (both sit in the tractable
// region of the paper's Figure 1).

// Slice is the computation slice with respect to a regular predicate: a
// compact representation of exactly the consistent cuts satisfying it.
type Slice = slicing.Slice

// SliceOracle evaluates a regular predicate and names forbidden processes.
type SliceOracle = slicing.Oracle

// Slicing errors.
var (
	// ErrSliceEmpty reports that no consistent cut satisfies the
	// predicate.
	ErrSliceEmpty = slicing.ErrEmpty
	// ErrNotRegular reports a predicate whose satisfying cuts are not
	// closed under meet and join.
	ErrNotRegular = slicing.ErrNotRegular
)

// ComputeSlice builds the slice of the computation for a regular
// predicate. Use ConjunctiveSliceOracle for conjunctions of local
// predicates, or implement SliceOracle for other regular predicates.
func ComputeSlice(c *Computation, o SliceOracle) (*Slice, error) {
	return slicing.Compute(c, o)
}

// ConjunctiveSliceOracle adapts local predicates (the canonical regular
// predicate) for slicing.
func ConjunctiveSliceOracle(locals map[ProcID]func(Event) bool) SliceOracle {
	adapted := make(map[computation.ProcID]func(computation.Event) bool, len(locals))
	for p, f := range locals {
		adapted[p] = f
	}
	return slicing.ConjunctiveOracle(adapted)
}

// LinearOracle evaluates a linear predicate and names forbidden processes
// (linearity: satisfying cuts closed under meet).
type LinearOracle = linear.Oracle

// PossiblyLinear detects Possibly(B) for a linear predicate B, returning
// the unique least satisfying cut as the witness. Conjunctions of local
// predicates are linear; use LinearConjunctive to adapt them.
func PossiblyLinear(c *Computation, o LinearOracle) (bool, Cut) {
	return linear.Possibly(c, o)
}

// LinearConjunctive adapts local predicates to a linear oracle.
func LinearConjunctive(locals map[ProcID]func(Event) bool) LinearOracle {
	adapted := make(map[computation.ProcID]func(computation.Event) bool, len(locals))
	for p, f := range locals {
		adapted[p] = f
	}
	return linear.Conjunctive(adapted)
}
