package gpd_test

// Integration tests: end-to-end pipelines across packages — simulate,
// serialize, reload, and verify that every detector family gives identical
// answers on both copies, and that detector families agree with each other
// where their predicate classes overlap.

import (
	"bytes"
	"fmt"
	"testing"

	gpd "github.com/distributed-predicates/gpd"
)

// roundTrip serializes and reloads a computation.
func roundTrip(t *testing.T, c *gpd.Computation) *gpd.Computation {
	t.Helper()
	var buf bytes.Buffer
	if err := gpd.WriteTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := gpd.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return c2
}

func TestDetectorsInvariantUnderSerialization(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sim := gpd.NewSimulator(seed, gpd.NewTokenRingProcs(4, 2, 1, 3))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		c2 := roundTrip(t, c)
		min1, max1 := gpd.SumRange(c, gpd.VarTokens)
		min2, max2 := gpd.SumRange(c2, gpd.VarTokens)
		if min1 != min2 || max1 != max2 {
			t.Fatalf("seed %d: SumRange changed across serialization: [%d,%d] vs [%d,%d]",
				seed, min1, max1, min2, max2)
		}
		for k := int64(0); k <= 3; k++ {
			p1, err1 := gpd.PossiblySum(c, gpd.VarTokens, gpd.Eq, k)
			p2, err2 := gpd.PossiblySum(c2, gpd.VarTokens, gpd.Eq, k)
			if err1 != nil || err2 != nil || p1 != p2 {
				t.Fatalf("seed %d k=%d: PossiblySum mismatch (%v/%v, %v/%v)", seed, k, p1, p2, err1, err2)
			}
			d1, _ := gpd.DefinitelySum(c, gpd.VarTokens, gpd.Eq, k)
			d2, _ := gpd.DefinitelySum(c2, gpd.VarTokens, gpd.Eq, k)
			if d1 != d2 {
				t.Fatalf("seed %d k=%d: DefinitelySum mismatch", seed, k)
			}
		}
	}
}

// TestFamilyAgreement: the same predicate expressed in different detector
// families must give the same answer.
func TestFamilyAgreement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sim := gpd.NewSimulator(seed, gpd.NewFlawedMutexProcs(3, 2))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		inCS := func(e gpd.Event) bool { return c.Var(gpd.VarCS, e.ID) != 0 }

		// "All three in CS simultaneously": conjunctive vs singular
		// (unit clauses) vs symmetric (count == 3) vs linear vs generic.
		locals := map[gpd.ProcID]gpd.LocalPredicate{}
		pred := &gpd.SingularPredicate{}
		for p := 0; p < 3; p++ {
			locals[gpd.ProcID(p)] = inCS
			pred.Clauses = append(pred.Clauses, gpd.SingularClause{{Proc: gpd.ProcID(p)}})
		}
		conj := gpd.PossiblyConjunctive(c, locals).Found
		sres, err := gpd.PossiblySingular(c, pred, inCS, gpd.StrategyChainCover)
		if err != nil {
			t.Fatal(err)
		}
		symm, _, err := gpd.PossiblySymmetric(c, gpd.ExactlyK(3, 3), inCS)
		if err != nil {
			t.Fatal(err)
		}
		linOK, _ := gpd.PossiblyLinear(c, gpd.LinearConjunctive(map[gpd.ProcID]func(gpd.Event) bool{
			0: inCS, 1: inCS, 2: inCS,
		}))
		genOK, _ := gpd.PossiblyGeneric(c, func(cc *gpd.Computation, k gpd.Cut) bool {
			return cc.CountTrue(k, inCS) == 3
		})
		if conj != sres.Found || conj != symm || conj != linOK || conj != genOK {
			t.Fatalf("seed %d: family disagreement: conj=%v singular=%v symmetric=%v linear=%v generic=%v",
				seed, conj, sres.Found, symm, linOK, genOK)
		}

		// "At least two in CS": symmetric vs generic vs sum.
		twoSym, _, err := gpd.PossiblySymmetric(c,
			gpd.SymmetricFromFunc(3, func(m int) bool { return m >= 2 }), inCS)
		if err != nil {
			t.Fatal(err)
		}
		twoSum, err := gpd.PossiblySum(c, gpd.VarCS, gpd.Ge, 2)
		if err != nil {
			t.Fatal(err)
		}
		twoGen, _ := gpd.PossiblyGeneric(c, func(cc *gpd.Computation, k gpd.Cut) bool {
			return cc.CountTrue(k, inCS) >= 2
		})
		if twoSym != twoSum || twoSym != twoGen {
			t.Fatalf("seed %d: >=2 disagreement: symmetric=%v sum=%v generic=%v",
				seed, twoSym, twoSum, twoGen)
		}

		// Definitely modality: interval algorithm vs generic sweep.
		defConj := gpd.DefinitelyConjunctive(c, locals)
		defGen := gpd.DefinitelyGeneric(c, func(cc *gpd.Computation, k gpd.Cut) bool {
			return cc.CountTrue(k, inCS) == 3
		})
		if defConj != defGen {
			t.Fatalf("seed %d: DefinitelyConjunctive=%v, generic=%v", seed, defConj, defGen)
		}
	}
}

// TestSliceConsistentWithDetection: the slice of the conjunctive predicate
// is non-empty exactly when the conjunctive detector reports Found, and
// the detector's witness cut is in the slice.
func TestSliceConsistentWithDetection(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sim := gpd.NewSimulator(seed, gpd.NewGossiperProcs(3, 8, 300))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		flag := func(e gpd.Event) bool { return c.Var(gpd.VarFlag, e.ID) != 0 }
		locals := map[gpd.ProcID]gpd.LocalPredicate{0: flag, 1: flag, 2: flag}
		res := gpd.PossiblyConjunctive(c, locals)
		o := gpd.ConjunctiveSliceOracle(map[gpd.ProcID]func(gpd.Event) bool{0: flag, 1: flag, 2: flag})
		s, err := gpd.ComputeSlice(c, o)
		if res.Found {
			if err != nil {
				t.Fatalf("seed %d: detector found but slice failed: %v", seed, err)
			}
			if !s.Contains(o, res.Cut) {
				t.Fatalf("seed %d: witness cut %v not in slice", seed, res.Cut)
			}
		} else if err == nil {
			t.Fatalf("seed %d: detector found nothing but slice is non-empty (bottom %v)", seed, s.Bottom())
		}
	}
}

// TestCLIQuickPipeline mimics the documented tool pipeline in-process:
// generate, detect, visualize.
func TestCLIQuickPipeline(t *testing.T) {
	sim := gpd.NewSimulator(11, gpd.NewVoterProcs(5, 3, func(i int) bool { return i < 2 }))
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	c2 := roundTrip(t, c)
	for _, k := range []int64{0, 1, 2, 3, 4, 5} {
		a, err1 := gpd.PossiblySum(c, gpd.VarYes, gpd.Eq, k)
		b, err2 := gpd.PossiblySum(c2, gpd.VarYes, gpd.Eq, k)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("k=%d: %v vs %v", k, a, b)
		}
	}
	// Witness rendering path (exercised via the library, the CLI tests
	// cover the command itself).
	ok, cut, err := gpd.PossiblySumWitness(c, gpd.VarYes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		if got := c.SumVar(gpd.VarYes, cut); got != 2 {
			t.Fatalf("witness sum = %d", got)
		}
	}
	_ = fmt.Sprintf("%v", cut)
}
