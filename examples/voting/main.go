// Voting: symmetric predicates over a gossip-based vote (Section 4.3 of
// the paper) — absence of a simple majority, exclusive-or, not-all-equal.
//
// Each process holds a yes/no opinion and may change its mind as gossip
// arrives. The detectors answer global questions about states the system
// might have passed through: was there ever a moment with no majority?
// Could the votes have been split exactly down the middle?
//
//	go run ./examples/voting
package main

import (
	"fmt"
	"log"

	gpd "github.com/distributed-predicates/gpd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const procs = 8
	sim := gpd.NewSimulator(7, gpd.NewVoterProcs(procs, 5, func(i int) bool { return i%3 == 0 }))
	c, err := sim.Run()
	if err != nil {
		return err
	}
	yes := func(e gpd.Event) bool { return c.Var(gpd.VarYes, e.ID) != 0 }
	fmt.Printf("%d voters, %d events, %d gossip messages\n",
		procs, c.NumEvents(), len(c.Messages()))

	questions := []struct {
		name string
		spec gpd.SymmetricSpec
	}{
		{"no simple majority (tie)", gpd.NoSimpleMajority(procs)},
		{"no two-thirds majority", gpd.NoTwoThirdsMajority(procs)},
		{"exclusive-or (odd yes count)", gpd.Xor(procs)},
		{"not all votes equal", gpd.NotAllEqual(procs)},
		{"unanimous yes", gpd.ExactlyK(procs, procs)},
	}
	for _, q := range questions {
		found, cut, err := gpd.PossiblySymmetric(c, q.spec, yes)
		if err != nil {
			return err
		}
		fmt.Printf("%-30s possibly=%v", q.name, found)
		if found {
			fmt.Printf("  (witness cut %v, yes count %d)", cut, c.CountTrue(cut, yes))
		}
		fmt.Println()
	}

	// The yes count is a unit-step sum, so its whole reachable range is
	// exact and cheap:
	min, max := gpd.SumRange(c, gpd.VarYes)
	fmt.Printf("yes-count range over all consistent cuts: [%d, %d] of %d\n", min, max, procs)
	return nil
}
