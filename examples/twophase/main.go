// Twophase: verify two-phase commit with the full detector toolbox —
// the paper's own motivating example ("commit point of a transaction" as
// a Definitely query), plus an injected coordinator bug that only
// predicate detection over the partial order reliably exposes, and
// channel-occupancy bounds from the in-flight detector.
//
//	go run ./examples/twophase
package main

import (
	"fmt"
	"log"

	gpd "github.com/distributed-predicates/gpd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5 // coordinator + 4 participants

	fmt.Println("--- correct coordinator, unanimous yes ---")
	sim := gpd.NewSimulator(1, gpd.NewTwoPhaseProcs(n, false, func(int) bool { return true }))
	c, err := sim.Run()
	if err != nil {
		return err
	}
	// The commit point: every run passes through "all n committed".
	committed, err := gpd.DefinitelySum(c, gpd.VarCommitted, gpd.Eq, int64(n))
	if err != nil {
		return err
	}
	fmt.Printf("Definitely(all %d committed) = %v\n", n, committed)
	if bad, err := mixedDecision(c); err != nil {
		return err
	} else {
		fmt.Printf("Possibly(commit & abort coexist) = %v (agreement holds)\n", bad)
	}
	min, max := gpd.InFlightRange(c)
	fmt.Printf("channel occupancy over all cuts: [%d, %d] messages\n", min, max)

	fmt.Println("\n--- buggy coordinator (commits on the first yes), one no vote ---")
	for seed := int64(0); seed < 6; seed++ {
		sim := gpd.NewSimulator(seed, gpd.NewTwoPhaseProcs(n, true, func(i int) bool { return i != n-1 }))
		c, err := sim.Run()
		if err != nil {
			return err
		}
		bad, err := mixedDecision(c)
		if err != nil {
			return err
		}
		fmt.Printf("seed %d: Possibly(commit & abort coexist) = %v\n", seed, bad)
	}
	fmt.Println("The premature commit races the unilateral abort: detection over the")
	fmt.Println("partial order flags the violation whether or not the recorded schedule showed it.")
	return nil
}

// mixedDecision asks whether any consistent cut shows both decisions at
// once. Committed and aborted are monotone flags, so the conjunction
// "sum(committed) >= 1 and sum(aborted) >= 1" is the natural query; we use
// the generic detector for the conjunction of two sums (small instances).
func mixedDecision(c *gpd.Computation) (bool, error) {
	ok, _ := gpd.PossiblyGeneric(c, func(cc *gpd.Computation, k gpd.Cut) bool {
		return cc.SumVar(gpd.VarCommitted, k) >= 1 && cc.SumVar(gpd.VarAborted, k) >= 1
	})
	return ok, nil
}
