// Election: verify a Chang–Roberts leader election run with both
// detection modalities.
//
// The safety question "could two processes ever consider themselves
// leader?" is a Possibly query over the recorded partial order; the
// progress question "does every execution consistent with the observation
// elect exactly one leader?" is a Definitely query. The paper's framework
// separates them cleanly: bad things are Possibly, good things are
// Definitely.
//
//	go run ./examples/election
package main

import (
	"fmt"
	"log"
	"math/rand"

	gpd "github.com/distributed-predicates/gpd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 6
	for seed := int64(1); seed <= 3; seed++ {
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		sim := gpd.NewSimulator(seed, gpd.NewElectionProcs(n, perm))
		c, err := sim.Run()
		if err != nil {
			return err
		}
		fmt.Printf("seed %d: ids %v, %d events, %d messages\n",
			seed, perm, c.NumEvents(), len(c.Messages()))

		// Safety: no consistent cut with two self-declared leaders.
		twoLeaders, err := gpd.PossiblySum(c, gpd.VarLeader, gpd.Ge, 2)
		if err != nil {
			return err
		}
		fmt.Printf("  Possibly(#leaders >= 2)  = %-5v (safety: must be false)\n", twoLeaders)

		// Progress: every run of the computation passes through a state
		// with exactly one leader (and stays there — leaders never
		// abdicate, so = 1 at the end).
		elected, err := gpd.DefinitelySum(c, gpd.VarLeader, gpd.Eq, 1)
		if err != nil {
			return err
		}
		fmt.Printf("  Definitely(#leaders == 1) = %-5v (progress: must be true)\n", elected)

		// A richer question: was there a reachable moment with NO
		// remaining candidate but also no leader yet? (There must not
		// be: the winner stays candidate until it wins.)
		gap, _ := gpd.PossiblyGeneric(c, func(cc *gpd.Computation, k gpd.Cut) bool {
			cand := cc.SumVar(gpd.VarCandidate, k)
			lead := cc.SumVar(gpd.VarLeader, k)
			return cand == 0 && lead == 0
		})
		fmt.Printf("  Possibly(no candidate & no leader) = %-5v (must be false)\n", gap)
	}
	return nil
}
