// Mutex: debug a flawed distributed mutual exclusion protocol.
//
// The simulated protocol asks only one neighbour for permission before
// entering the critical section — a classic race. Some recorded schedules
// happen to look safe; predicate detection over the partial order finds
// the violation anyway, because it checks every consistent cut, not just
// the interleaving that happened to be observed.
//
//	go run ./examples/mutex
package main

import (
	"fmt"
	"log"

	gpd "github.com/distributed-predicates/gpd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const procs = 4
	violations := 0
	observedOverlap := 0
	for seed := int64(0); seed < 10; seed++ {
		sim := gpd.NewSimulator(seed, gpd.NewFlawedMutexProcs(procs, 2))
		c, err := sim.Run()
		if err != nil {
			return err
		}
		inCS := func(e gpd.Event) bool { return c.Var(gpd.VarCS, e.ID) != 0 }

		// Did the recorded interleaving itself ever show two processes
		// inside? Walk the actual execution order (a linearization).
		overlap := false
		k := c.InitialCut()
		for !k.Equal(c.FinalCut()) {
			if c.CountTrue(k, inCS) >= 2 {
				overlap = true
				break
			}
			en := c.Enabled(k)
			k = c.Execute(k, c.Event(en[0]).Proc)
		}
		if overlap {
			observedOverlap++
		}

		// The detector question: is there ANY consistent cut with two
		// (or more) processes in the critical section? "count >= 2" is
		// a symmetric predicate, detected in polynomial time.
		bad := gpd.SymmetricFromFunc(procs, func(m int) bool { return m >= 2 })
		found, cut, err := gpd.PossiblySymmetric(c, bad, inCS)
		if err != nil {
			return err
		}
		if found {
			violations++
			fmt.Printf("seed %2d: VIOLATION — cut %v has %d processes in the critical section\n",
				seed, cut, c.CountTrue(cut, inCS))
		} else {
			fmt.Printf("seed %2d: no violation possible in this computation\n", seed)
		}
	}
	fmt.Printf("\n%d/10 runs admit a mutual exclusion violation;", violations)
	fmt.Printf(" only %d/10 exhibited one in the recorded schedule.\n", observedOverlap)
	fmt.Println("Detection over the partial order finds races the lucky schedule hid.")
	return nil
}
