// Streamclient drives a running gpdserver: it fabricates random
// distributed computations, streams each one as a session over TCP in a
// causally-scrambled order, and cross-checks every online verdict against
// gpd.Detect run locally on the same trace — one oracle for every family,
// resolved through the same detector registry the server uses. Sessions
// rotate through the incremental-capable families (conjunctive, sum,
// levels, channel occupancy), opened with canonical predicate grammar
// strings. Exit status is nonzero on any mismatch, which makes it double
// as the serving smoke test in CI.
//
// With -predicates N the client additionally opens one multiplexed
// session (Spec.Mux): N predicates across several tenants registered on
// a single causally ordered stream of a multi-variable computation, the
// close-time per-predicate fan-out checked against the same offline
// oracles.
//
// With -slice (on by default) the client also drives one sliced session
// (Spec.Slice): a conjunctive stream served from the incremental slice's
// compacting frontier instead of retained history, its verdict checked
// against both the offline batch detector and the offline slice strategy
// (gpd.StrategySlice), and its compaction ledger checked to have freed
// the whole stream. The multiplexed session additionally registers its
// all(var) predicates with RegisterSpec.Slice, exercising the shared
// per-variable slicers.
//
// With -debug pointing at the server's stats listener, the client ends
// the run by scraping /debug/tenants, printing the per-tenant cost
// summary, and failing unless every tenant it drove shows up in the
// ledger with nonzero detector steps.
//
//	gpdserver -addr 127.0.0.1:7400 -stats 127.0.0.1:7401   # terminal 1
//	go run ./examples/streamclient -addr 127.0.0.1:7400 -sessions 8 -predicates 32 -debug http://127.0.0.1:7401
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/distributed-predicates/gpd"
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/core/symmetric"
	"github.com/distributed-predicates/gpd/internal/detect"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/stream"
)

const varName = "x"

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "gpdserver address")
	sessions := flag.Int("sessions", 8, "number of concurrent sessions")
	procs := flag.Int("procs", 3, "processes per monitored application")
	events := flag.Int("events", 5, "events per process")
	seed := flag.Int64("seed", 1, "base random seed")
	predicates := flag.Int("predicates", 0, "also drive one multiplexed session with this many predicates (0: skip)")
	slice := flag.Bool("slice", true, "also drive one sliced session (Spec.Slice) and cross-check it against the offline slice strategy")
	wait := flag.Duration("wait", 5*time.Second, "how long to retry the first dial")
	debug := flag.String("debug", "", "gpdserver stats base URL (e.g. http://127.0.0.1:7401): after the run, scrape /debug/tenants and assert every driven tenant was cost-attributed")
	flag.Parse()

	if err := run(*addr, *sessions, *procs, *events, *seed, *predicates, *slice, *wait, *debug); err != nil {
		log.Fatal("streamclient: ", err)
	}
}

func run(addr string, sessions, procs, events int, seed int64, predicates int, slice bool, wait time.Duration, debug string) error {
	// Retry the first dial so the client can be launched alongside the
	// server (CI starts both in one step).
	deadline := time.Now().Add(wait)
	for {
		cl, err := stream.Dial(addr)
		if err == nil {
			cl.Close()
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not reachable: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := drive(addr, i, procs, events, seed+int64(i)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		fmt.Fprintln(os.Stderr, "MISMATCH:", err)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d sessions disagreed with the offline oracle", failed, sessions)
	}
	fmt.Printf("streamclient: %d sessions verified against offline oracles\n", sessions)
	if slice {
		if err := driveSliced(addr, procs, events, seed+int64(sessions)); err != nil {
			return fmt.Errorf("sliced session: %w", err)
		}
		fmt.Println("streamclient: sliced session verified against batch and slice oracles")
	}
	if predicates > 0 {
		if err := driveMux(addr, procs, predicates, seed); err != nil {
			return fmt.Errorf("multiplexed session: %w", err)
		}
		fmt.Printf("streamclient: %d multiplexed predicates verified against offline oracles\n", predicates)
	}
	if debug != "" {
		if err := checkTenants(debug, predicates); err != nil {
			return fmt.Errorf("cost attribution: %w", err)
		}
	}
	return nil
}

// checkTenants scrapes /debug/tenants off the server's stats listener and
// asserts the cost ledger attributed detector steps to every tenant this
// run drove: "default" (the plain sessions carry no tenant) and, when a
// multiplexed session ran, tenant-0..tenant-3 (driveMux rotates
// registrations through four tenants). Prints the per-tenant totals as a
// summary.
func checkTenants(base string, predicates int) error {
	resp, err := http.Get(base + "/debug/tenants")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var view struct {
		TotalCPUNanos int64 `json:"total_cpu_nanos"`
		Scopes        []struct {
			Tenant   string `json:"tenant"`
			CPUNanos int64  `json:"cpu_nanos"`
			Steps    int64  `json:"steps"`
			Events   int64  `json:"events"`
			BytesIn  int64  `json:"bytes_in"`
			BytesOut int64  `json:"bytes_out"`
		} `json:"scopes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return fmt.Errorf("decoding /debug/tenants: %w", err)
	}
	type total struct{ cpu, steps, events, bytesIn, bytesOut int64 }
	totals := map[string]*total{}
	for _, s := range view.Scopes {
		t := totals[s.Tenant]
		if t == nil {
			t = &total{}
			totals[s.Tenant] = t
		}
		t.cpu += s.CPUNanos
		t.steps += s.Steps
		t.events += s.Events
		t.bytesIn += s.BytesIn
		t.bytesOut += s.BytesOut
	}
	tenants := make([]string, 0, len(totals))
	for name := range totals {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	fmt.Printf("streamclient: per-tenant cost attribution (total CPU %s)\n", time.Duration(view.TotalCPUNanos))
	for _, name := range tenants {
		t := totals[name]
		fmt.Printf("  %-12s cpu=%-12s steps=%-8d events=%-6d bytes=%d/%d\n",
			name, time.Duration(t.cpu), t.steps, t.events, t.bytesIn, t.bytesOut)
	}
	want := []string{"default"}
	if predicates > 0 {
		for i := 0; i < 4 && i < predicates; i++ {
			want = append(want, fmt.Sprintf("tenant-%d", i))
		}
	}
	for _, name := range want {
		t := totals[name]
		if t == nil {
			return fmt.Errorf("tenant %q drove load but is missing from the ledger", name)
		}
		if t.steps == 0 {
			return fmt.Errorf("tenant %q drove load but has zero attributed detector steps", name)
		}
	}
	return nil
}

// driveMux runs one multiplexed session: a multi-variable computation
// streamed once, npreds predicates across four tenants registered on it,
// and every predicate's close-time verdict checked against gpd.Detect.
func driveMux(addr string, procs, npreds int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	nvars := npreds / 4
	if nvars < 1 {
		nvars = 1
	}
	if nvars > 16 {
		nvars = 16
	}
	vars := make([]string, nvars)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	c, trace := fabricateMux(rng, procs, 40*procs, vars)

	cl, err := stream.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	id := fmt.Sprintf("streamclient-mux-%d", os.Getpid())
	if err := cl.Open(id, stream.Spec{Mux: true, Procs: procs}); err != nil {
		return err
	}
	texts := make(map[string]string, npreds)
	for i := 0; i < npreds; i++ {
		v := vars[i%len(vars)]
		var text string
		switch i % 5 {
		case 0:
			text = fmt.Sprintf("all(%s)", v)
		case 1:
			text = fmt.Sprintf("sum(%s) >= %d", v, 1+i%procs)
		case 2:
			text = fmt.Sprintf("count(%s) >= %d", v, 1+i%procs)
		case 3:
			text = fmt.Sprintf("xor(%s)", v)
		default:
			text = fmt.Sprintf("inflight >= %d", 1+i%2)
		}
		pid := fmt.Sprintf("p%04d", i)
		texts[pid] = text
		// Conjunctive registrations ride the shared per-variable slicers;
		// registration precedes the first event, as slicing requires.
		r := stream.RegisterSpec{ID: pid, Tenant: fmt.Sprintf("tenant-%d", i%4), Pred: text, Slice: i%5 == 0}
		if _, err := cl.RegisterPredicate(id, r); err != nil {
			return fmt.Errorf("register %s (%s): %w", pid, text, err)
		}
	}
	rng.Shuffle(len(trace), func(a, b int) { trace[a], trace[b] = trace[b], trace[a] })
	for len(trace) > 0 {
		n := 1 + rng.Intn(8)
		if n > len(trace) {
			n = len(trace)
		}
		if _, err := cl.Append(id, trace[:n]); err != nil {
			return err
		}
		trace = trace[n:]
	}
	st, _, err := cl.QueryUpdates(id)
	if err != nil {
		return err
	}
	_, states, err := cl.ClosePredicates(id)
	if err != nil {
		return err
	}
	final := make(map[string]bool, len(states))
	for _, u := range states {
		if u.Err != "" {
			return fmt.Errorf("%s (%s) failed server-side: %s", u.ID, texts[u.ID], u.Err)
		}
		final[u.ID] = u.Possibly
	}
	for pid, text := range texts {
		ps, err := gpd.ParseSpec(text)
		if err != nil {
			return err
		}
		rep, err := gpd.Detect(c, ps)
		if err != nil {
			return err
		}
		got, ok := final[pid]
		if !ok {
			return fmt.Errorf("%s (%s) missing from the close fan-out", pid, text)
		}
		if got != rep.Holds {
			return fmt.Errorf("%s (%s): server says Possibly=%v, oracle says %v", pid, text, got, rep.Holds)
		}
	}
	fmt.Printf("%-24s mux               predicates=%d steps=%d skipped=%d ok\n", id, npreds, st.Steps, st.Skipped)
	return nil
}

// fabricateMux builds a random multi-variable computation (0/1 variables
// flipped by internal events, channel occupancy moved by message pairs)
// with carried-forward variable tables, and its tagged multiplexed event
// stream in causal order.
func fabricateMux(rng *rand.Rand, procs, rounds int, vars []string) (*computation.Computation, []stream.Event) {
	c := computation.New()
	for p := 0; p < procs; p++ {
		c.AddProcess()
	}
	type tag struct {
		varName string
		val     int64
	}
	tags := make(map[computation.EventID]tag)
	for i := 0; i < rounds; i++ {
		p := computation.ProcID(rng.Intn(procs))
		if rng.Float64() < 0.2 && procs > 1 {
			q := computation.ProcID(rng.Intn(procs))
			for q == p {
				q = computation.ProcID(rng.Intn(procs))
			}
			send := c.AddInternal(p)
			recv := c.AddInternal(q)
			if err := c.AddMessage(send, recv); err != nil {
				panic(err)
			}
			tags[send] = tag{varName: detect.InFlightVar, val: 1}
			tags[recv] = tag{varName: detect.InFlightVar, val: -1}
			continue
		}
		id := c.AddInternal(p)
		tags[id] = tag{varName: vars[rng.Intn(len(vars))], val: int64(rng.Intn(2))}
	}
	for p := 0; p < procs; p++ {
		cur := make(map[string]int64, len(vars))
		for _, id := range c.ProcEvents(computation.ProcID(p)) {
			if tg, ok := tags[id]; ok && tg.varName != detect.InFlightVar {
				cur[tg.varName] = tg.val
			}
			for _, v := range vars {
				c.SetVar(v, id, cur[v])
			}
		}
	}
	if err := c.Seal(); err != nil {
		panic(err)
	}
	var out []stream.Event
	for _, id := range c.Topo() {
		e := c.Event(id)
		if e.IsInitial() {
			continue
		}
		clk := c.Clock(id)
		vc := make([]int64, len(clk))
		for q, v := range clk {
			if v >= 1 {
				vc[q] = int64(v) - 1
			}
		}
		ev := stream.Event{Proc: int(e.Proc), VC: vc}
		if tg, ok := tags[id]; ok {
			ev.Var = tg.varName
			ev.Val = tg.val
			ev.Truth = tg.varName != detect.InFlightVar && tg.val != 0
		}
		out = append(out, ev)
	}
	return c, out
}

// fabricate builds the computation, the canonical predicate, and the
// event stream for one session. The predicate is returned as a gpd.Spec:
// its String() form opens the session and gpd.Detect on it is the oracle.
func fabricate(i, procs, events int, seed int64) (*computation.Computation, gpd.Spec, stream.Spec, []stream.Event, error) {
	c := gen.Random(gen.Params{Seed: seed, Procs: procs, Events: events, MsgFrac: 0.6})
	switch i % 4 {
	case 0: // conjunctive
		gen.BoolVar(seed, c, varName, 0.4)
		for p := 0; p < procs; p++ {
			// Online sessions take initial states as false.
			c.SetVar(varName, c.Initial(computation.ProcID(p)).ID, 0)
		}
		trace, _ := stream.BoolTrace(c, varName)
		ps := gpd.Spec{Family: gpd.FamilyConjunctive, Var: varName}
		return c, ps, stream.Spec{Pred: ps.String(), Procs: procs, Retain: true}, trace, nil
	case 1: // unit-step sum equality
		gen.UnitStepVar(seed, c, varName)
		trace, init := stream.SumTrace(c, varName)
		lo, hi := relsum.SumRange(c, varName)
		k := lo + seed%(hi-lo+2)
		ps := gpd.Spec{Family: gpd.FamilySum, Var: varName, Rel: gpd.Eq, K: k}
		return c, ps, stream.Spec{Pred: ps.String(), Procs: procs, Init: init, Retain: true}, trace, nil
	case 2: // symmetric by level set
		gen.BoolVar(seed, c, varName, 0.4)
		trace, init := stream.BoolTrace(c, varName)
		sp := symmetric.NotAllEqual(procs)
		ps := gpd.Spec{Family: gpd.FamilyLevels, Var: varName, Levels: sp.Levels}
		return c, ps, stream.Spec{Pred: ps.String(), Procs: procs, Init: init, Retain: true}, trace, nil
	default: // channel occupancy
		trace := stream.InFlightTrace(c)
		ps := gpd.Spec{Family: gpd.FamilyInFlight, Rel: gpd.Ge, K: 1 + seed%2}
		return c, ps, stream.Spec{Pred: ps.String(), Procs: procs, Retain: true}, trace, nil
	}
}

// driveSliced runs one sliced conjunctive session end to end. The server
// answers from the slice's compacting frontier; the client checks the
// verdict against two independently derived offline routes — the batch
// detector and the slice strategy — and checks the compaction ledger
// accounted the whole stream.
func driveSliced(addr string, procs, events int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	c := gen.Random(gen.Params{Seed: seed, Procs: procs, Events: events, MsgFrac: 0.6})
	gen.BoolVar(seed, c, varName, 0.4)
	for p := 0; p < procs; p++ {
		c.SetVar(varName, c.Initial(computation.ProcID(p)).ID, 0) // online initial states are false
	}
	trace, _ := stream.BoolTrace(c, varName)
	ps := gpd.Spec{Family: gpd.FamilyConjunctive, Var: varName}

	rep, err := gpd.Detect(c, ps)
	if err != nil {
		return err
	}
	repSlice, err := gpd.Detect(c, ps, gpd.WithStrategy(gpd.StrategySlice))
	if err != nil {
		return err
	}
	if rep.Holds != repSlice.Holds {
		return fmt.Errorf("offline routes disagree: batch %v, slice %v", rep.Holds, repSlice.Holds)
	}
	repDef, err := gpd.Detect(c, ps, gpd.WithModality(gpd.ModalityDefinitely))
	if err != nil {
		return err
	}

	cl, err := stream.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	id := fmt.Sprintf("streamclient-slice-%d", os.Getpid())
	if err := cl.Open(id, stream.Spec{Pred: ps.String(), Procs: procs, Slice: true}); err != nil {
		return err
	}
	n := len(trace)
	rng.Shuffle(len(trace), func(a, b int) { trace[a], trace[b] = trace[b], trace[a] })
	for len(trace) > 0 {
		k := 1 + rng.Intn(4)
		if k > len(trace) {
			k = len(trace)
		}
		if _, err := cl.Append(id, trace[:k]); err != nil {
			return err
		}
		trace = trace[k:]
	}
	verdict, err := cl.CloseSession(id)
	if err != nil {
		return err
	}
	if verdict.Possibly != rep.Holds {
		return fmt.Errorf("%s: server says Possibly=%v, oracles say %v", id, verdict.Possibly, rep.Holds)
	}
	if verdict.DefinitelyKnown && verdict.Definitely != repDef.Holds {
		return fmt.Errorf("%s: slice decided Definitely=%v, oracle says %v", id, verdict.Definitely, repDef.Holds)
	}
	if verdict.SliceCompacted != int64(n) {
		return fmt.Errorf("%s: compaction ledger %d, want the whole stream (%d)", id, verdict.SliceCompacted, n)
	}
	fmt.Printf("%-24s %-18s Possibly=%-5v compacted=%d ok\n", id, ps.String()+" [slice]", verdict.Possibly, verdict.SliceCompacted)
	return nil
}

// drive runs one session end to end and checks it against the oracle.
func drive(addr string, i, procs, events int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	c, ps, spec, trace, err := fabricate(i, procs, events, seed)
	if err != nil {
		return err
	}

	// The offline oracle: the same registry the server resolves through,
	// via the public front door.
	rep, err := gpd.Detect(c, ps)
	if err != nil {
		return err
	}
	repDef, err := gpd.Detect(c, ps, gpd.WithModality(gpd.ModalityDefinitely))
	if err != nil {
		return err
	}
	wantPos, wantDef := rep.Holds, repDef.Holds

	cl, err := stream.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	id := fmt.Sprintf("streamclient-%d-%d", os.Getpid(), i)
	if err := cl.Open(id, spec); err != nil {
		return err
	}
	rng.Shuffle(len(trace), func(a, b int) { trace[a], trace[b] = trace[b], trace[a] })
	for len(trace) > 0 {
		n := 1 + rng.Intn(4)
		if n > len(trace) {
			n = len(trace)
		}
		if _, err := cl.Append(id, trace[:n]); err != nil {
			return err
		}
		trace = trace[n:]
	}
	verdict, err := cl.CloseSession(id)
	if err != nil {
		return err
	}
	if verdict.Possibly != wantPos || !verdict.DefinitelyKnown || verdict.Definitely != wantDef {
		return fmt.Errorf("%s (%s): server says Possibly=%v Definitely=%v(known=%v), oracle says %v/%v",
			id, spec.Pred, verdict.Possibly, verdict.Definitely, verdict.DefinitelyKnown, wantPos, wantDef)
	}
	fmt.Printf("%-24s %-18s Possibly=%-5v Definitely=%-5v ok\n", id, spec.Pred, verdict.Possibly, verdict.Definitely)
	return nil
}
