// Streamclient drives a running gpdserver: it fabricates random
// distributed computations, streams each one as a session over TCP in a
// causally-scrambled order, and cross-checks every online verdict against
// the offline detectors run locally on the same trace. Exit status is
// nonzero on any mismatch, which makes it double as the serving smoke
// test in CI.
//
//	gpdserver -addr 127.0.0.1:7400        # terminal 1
//	go run ./examples/streamclient -addr 127.0.0.1:7400 -sessions 8
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/conjunctive"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/core/symmetric"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/stream"
)

const varName = "x"

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "gpdserver address")
	sessions := flag.Int("sessions", 8, "number of concurrent sessions")
	procs := flag.Int("procs", 3, "processes per monitored application")
	events := flag.Int("events", 5, "events per process")
	seed := flag.Int64("seed", 1, "base random seed")
	wait := flag.Duration("wait", 5*time.Second, "how long to retry the first dial")
	flag.Parse()

	if err := run(*addr, *sessions, *procs, *events, *seed, *wait); err != nil {
		log.Fatal("streamclient: ", err)
	}
}

func run(addr string, sessions, procs, events int, seed int64, wait time.Duration) error {
	// Retry the first dial so the client can be launched alongside the
	// server (CI starts both in one step).
	deadline := time.Now().Add(wait)
	for {
		cl, err := stream.Dial(addr)
		if err == nil {
			cl.Close()
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not reachable: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := drive(addr, i, procs, events, seed+int64(i)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		fmt.Fprintln(os.Stderr, "MISMATCH:", err)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d sessions disagreed with the offline oracle", failed, sessions)
	}
	fmt.Printf("streamclient: %d sessions verified against offline oracles\n", sessions)
	return nil
}

// drive runs one session end to end and checks it against the oracle.
func drive(addr string, i, procs, events int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	c := gen.Random(gen.Params{Seed: seed, Procs: procs, Events: events, MsgFrac: 0.6})

	var (
		spec             stream.Spec
		trace            []stream.Event
		wantPos, wantDef bool
		kind             string
	)
	switch i % 3 {
	case 0:
		kind = "conjunctive"
		truth := gen.BoolTables(seed, c, 0.4)
		locals := make(map[computation.ProcID]conjunctive.LocalPredicate)
		for p := range truth {
			truth[p][0] = false // online sessions take initial states as false
			row := truth[p]
			locals[computation.ProcID(p)] = func(e computation.Event) bool {
				return e.Index < len(row) && row[e.Index]
			}
		}
		spec = stream.Spec{Kind: stream.Conjunctive, Procs: procs, Retain: true}
		trace = stream.TableTrace(c, truth)
		wantPos = conjunctive.DetectTables(c, truth).Found
		wantDef = conjunctive.DetectDefinitely(c, locals)
	case 1:
		kind = "sumeq"
		gen.UnitStepVar(seed, c, varName)
		evs, init := stream.SumTrace(c, varName)
		lo, hi := relsum.SumRange(c, varName)
		k := lo + seed%(hi-lo+2)
		spec = stream.Spec{Kind: stream.SumEq, Procs: procs, K: k, Init: init, Retain: true}
		trace = evs
		var err error
		if wantPos, err = relsum.Possibly(c, varName, relsum.Eq, k); err != nil {
			return err
		}
		if wantDef, err = relsum.Definitely(c, varName, relsum.Eq, k); err != nil {
			return err
		}
	case 2:
		kind = "symmetric"
		gen.BoolVar(seed, c, varName, 0.4)
		evs, init := stream.BoolTrace(c, varName)
		sp := symmetric.NotAllEqual(procs)
		truth := func(e computation.Event) bool { return c.Var(varName, e.ID) != 0 }
		spec = stream.Spec{Kind: stream.Symmetric, Procs: procs, Levels: sp.Levels, Init: init, Retain: true}
		trace = evs
		var err error
		if wantPos, _, err = symmetric.Possibly(c, sp, truth); err != nil {
			return err
		}
		if wantDef, err = symmetric.Definitely(c, sp, truth); err != nil {
			return err
		}
	}

	cl, err := stream.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	id := fmt.Sprintf("streamclient-%d-%d", os.Getpid(), i)
	if err := cl.Open(id, spec); err != nil {
		return err
	}
	rng.Shuffle(len(trace), func(a, b int) { trace[a], trace[b] = trace[b], trace[a] })
	for len(trace) > 0 {
		n := 1 + rng.Intn(4)
		if n > len(trace) {
			n = len(trace)
		}
		if _, err := cl.Append(id, trace[:n]); err != nil {
			return err
		}
		trace = trace[n:]
	}
	verdict, err := cl.CloseSession(id)
	if err != nil {
		return err
	}
	if verdict.Possibly != wantPos || !verdict.DefinitelyKnown || verdict.Definitely != wantDef {
		return fmt.Errorf("%s (%s): server says Possibly=%v Definitely=%v(known=%v), oracle says %v/%v",
			id, kind, verdict.Possibly, verdict.Definitely, verdict.DefinitelyKnown, wantPos, wantDef)
	}
	fmt.Printf("%-24s %-12s Possibly=%-5v Definitely=%-5v ok\n", id, kind, verdict.Possibly, verdict.Definitely)
	return nil
}
