// Quickstart: build a small distributed computation by hand, ask the
// classic debugging questions, and see the three detector families at
// work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gpd "github.com/distributed-predicates/gpd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two processes. p0 raises a flag (event a), does something else
	// (a2) and tells p1; p1 raises its own flag (b) only after hearing
	// from p0.
	//
	//	p0: (init) --- a[flag] --- a2 ---.
	//	                                  \ message
	//	p1: (init) ----------------------- b[flag]
	c := gpd.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	a2 := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a2, b); err != nil {
		return err
	}
	// Attach the boolean "flag" as a 0/1 variable: true exactly at a
	// (then lowered at a2) and at b.
	c.SetVar("flag", a, 1)
	c.SetVar("flag", b, 1)
	if err := c.Seal(); err != nil {
		return err
	}

	// Question 1 (conjunctive): could both flags ever be up at the same
	// time? The message forces a2 (where p0's flag is already down)
	// before b, so the answer is no — even though no single observer
	// could have checked all interleavings.
	res := gpd.PossiblyConjunctive(c, map[gpd.ProcID]gpd.LocalPredicate{
		p0: func(e gpd.Event) bool { return c.Var("flag", e.ID) != 0 },
		p1: func(e gpd.Event) bool { return c.Var("flag", e.ID) != 0 },
	})
	fmt.Printf("Possibly(flag0 and flag1) = %v\n", res.Found)

	// Question 2 (singular CNF): could at least one flag be up while
	// the other is not yet past its first step? A disjunctive clause.
	pred := &gpd.SingularPredicate{Clauses: []gpd.SingularClause{
		{{Proc: p0}, {Proc: p1}},
	}}
	sres, err := gpd.PossiblySingular(c, pred, gpd.TruthFromVar(c, "flag"), gpd.StrategyAuto)
	if err != nil {
		return err
	}
	fmt.Printf("Possibly(flag0 or flag1)  = %v (strategy %v, witness cut %v)\n",
		sres.Found, sres.Strategy, sres.Cut)

	// Question 3 (relational sum): the flag count is a unit-step sum,
	// so Possibly(sum == k) is polynomial. How many flags can be up?
	min, max := gpd.SumRange(c, "flag")
	fmt.Printf("flag count over all consistent cuts: min=%d max=%d\n", min, max)
	ok, cut, err := gpd.PossiblySumWitness(c, "flag", 1)
	if err != nil {
		return err
	}
	fmt.Printf("Possibly(sum flags == 1)  = %v (witness cut %v)\n", ok, cut)

	// Question 4 (modality): does EVERY execution pass through exactly
	// one raised flag?
	def, err := gpd.DefinitelySum(c, "flag", gpd.Eq, 1)
	if err != nil {
		return err
	}
	fmt.Printf("Definitely(sum flags == 1) = %v\n", def)

	// And the size of the search space all of this avoided enumerating:
	fmt.Printf("consistent cuts in this tiny computation: %d\n", gpd.CountCuts(c))
	return nil
}
