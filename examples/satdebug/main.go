// Satdebug: walk the paper's NP-completeness reduction (Theorem 1) in the
// forward direction — solve a SAT instance by predicate detection.
//
// The pipeline: a 3-CNF formula is rewritten into non-monotone form, the
// Section 3.1 construction turns it into a computation plus a singular
// 2-CNF predicate, the chain-cover detector searches for a satisfying
// consistent cut, and the witness cut is mapped back to a satisfying
// assignment. This is the equivalence that pins the detection problem's
// complexity.
//
//	go run ./examples/satdebug
package main

import (
	"fmt"
	"log"

	"github.com/distributed-predicates/gpd/internal/cnf"
	"github.com/distributed-predicates/gpd/internal/core/reduction"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/sat"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	formulas := []*cnf.Formula{
		// Satisfiable: (x1|x2) & (!x1|x3) & (!x2|!x3).
		{NumVars: 3, Clauses: []cnf.Clause{{1, 2}, {-1, 3}, {-2, -3}}},
		// Unsatisfiable: all four 2-clauses over two variables.
		{NumVars: 2, Clauses: []cnf.Clause{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}},
		// A 3-CNF needing the non-monotone rewrite.
		{NumVars: 4, Clauses: []cnf.Clause{{1, 2, 3}, {-1, -2, -4}, {2, -3, 4}}},
	}
	for i, f0 := range formulas {
		fmt.Printf("--- formula %d: %v\n", i+1, f0)
		f, err := cnf.ToNonMonotone(f0)
		if err != nil {
			return err
		}
		if len(f.Clauses) != len(f0.Clauses) {
			fmt.Printf("    rewritten to non-monotone 3-CNF: %v\n", f)
		}
		in, err := reduction.SingularFromCNF(f)
		if err != nil {
			return err
		}
		fmt.Printf("    computation: %d processes, %d events, %d conflict arrows\n",
			in.C.NumProcs(), in.C.NumEvents(), len(in.C.Messages()))
		fmt.Printf("    predicate: %v\n", in.Pred)
		res, err := singular.Detect(in.C, in.Pred, in.Truth(), singular.ChainCover)
		if err != nil {
			return err
		}
		fmt.Printf("    Possibly(pred) = %v (%d combinations, %d eliminations)\n",
			res.Found, res.Combinations, res.Eliminations)
		dpll := sat.Satisfiable(f)
		fmt.Printf("    DPLL agrees: %v\n", dpll == res.Found)
		if res.Found {
			a, err := in.Assignment(res.Witness)
			if err != nil {
				return err
			}
			restricted := cnf.RestrictAssignment(a, f0.NumVars)
			fmt.Printf("    assignment from witness cut:")
			for v := 1; v <= f0.NumVars; v++ {
				fmt.Printf(" x%d=%v", v, restricted[v])
			}
			fmt.Printf("\n    satisfies original: %v\n", f0.Eval(restricted))
		}
	}
	return nil
}
