// Onlinemonitor: passive online detection of a weak conjunctive predicate
// in a live system of goroutine "processes" connected to a TCP checker —
// the Garg–Waldecker monitoring architecture end to end.
//
// Each worker keeps a vector clock (managed by its probe), piggybacks
// timestamps on the messages it already exchanges, and reports only its
// true events to the checker. The checker announces the first consistent
// global state in which every worker is simultaneously "overloaded",
// even though no wall-clock observer could have seen it.
//
//	go run ./examples/onlinemonitor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"github.com/distributed-predicates/gpd/internal/monitor"
	"github.com/distributed-predicates/gpd/internal/vclock"
)

const nWorkers = 4

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv, err := monitor.ListenAndServe("127.0.0.1:0", nWorkers, []int{0, 1, 2, 3})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("checker listening on %s\n", srv.Addr())

	// Workers exchange "work items" over channels, carrying vector
	// timestamps, and occasionally become overloaded (their conjunct).
	chans := make([]chan vclock.VC, nWorkers)
	for i := range chans {
		chans[i] = make(chan vclock.VC, 64)
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			if err := worker(me, srv.Addr(), chans); err != nil {
				log.Printf("worker %d: %v", me, err)
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-srv.Detected():
		fmt.Println("DETECTED: a consistent global state with every worker overloaded")
		for i, vc := range srv.Witness() {
			fmt.Printf("  worker %d true event at %v\n", i, vc)
		}
	case <-time.After(100 * time.Millisecond):
		fmt.Println("no simultaneous overload was possible in this run")
	}
	return nil
}

func worker(me int, addr string, chans []chan vclock.VC) error {
	probe, err := monitor.DialProbe(addr, me, nWorkers)
	if err != nil {
		return err
	}
	defer probe.Close()
	rng := rand.New(rand.NewSource(int64(me) + 7))
	overloaded := false
	for step := 0; step < 30; step++ {
		switch rng.Intn(4) {
		case 0: // local work; load flips occasionally
			overloaded = rng.Intn(2) == 0
			if err := probe.Internal(overloaded); err != nil {
				return err
			}
		case 1: // hand work to a random peer
			to := rng.Intn(nWorkers)
			if to == me {
				to = (to + 1) % nWorkers
			}
			stamp, err := probe.Send(overloaded)
			if err != nil {
				return err
			}
			select {
			case chans[to] <- stamp:
			default: // peer busy; drop the handoff
			}
		default: // try to pick up work
			select {
			case stamp := <-chans[me]:
				overloaded = true // new work: definitely busy
				if err := probe.Receive(stamp, overloaded); err != nil {
					return err
				}
			default:
				if err := probe.Internal(overloaded); err != nil {
					return err
				}
			}
		}
		if probe.Detected() {
			return nil // checker already has its answer
		}
	}
	return nil
}
