// Tokenring: check conservation predicates on a token-passing ring with
// the relational sum detectors of Section 4 of the paper.
//
// Each process's variable counts the tokens it holds; the global token
// count is a unit-step sum, so Possibly(sum == k) and Definitely(sum == k)
// are decided exactly. While a token is in flight the observable count
// drops — "exactly k tokens" is the paper's own example of a predicate
// that was previously undetectable in polynomial time.
//
//	go run ./examples/tokenring
package main

import (
	"fmt"
	"log"

	gpd "github.com/distributed-predicates/gpd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		procs  = 6
		tokens = 2
	)
	sim := gpd.NewSimulator(42, gpd.NewTokenRingProcs(procs, tokens, 2, 4))
	c, err := sim.Run()
	if err != nil {
		return err
	}
	fmt.Printf("ring of %d processes, %d tokens: %d events, %d messages\n",
		procs, tokens, c.NumEvents(), len(c.Messages()))

	if err := gpd.ValidateUnitStep(c, gpd.VarTokens); err != nil {
		return fmt.Errorf("token counts should be unit-step: %w", err)
	}
	min, max := gpd.SumRange(c, gpd.VarTokens)
	fmt.Printf("observable token count range: [%d, %d]\n", min, max)

	for k := int64(0); k <= int64(tokens)+1; k++ {
		poss, err := gpd.PossiblySum(c, gpd.VarTokens, gpd.Eq, k)
		if err != nil {
			return err
		}
		def, err := gpd.DefinitelySum(c, gpd.VarTokens, gpd.Eq, k)
		if err != nil {
			return err
		}
		fmt.Printf("tokens == %d: possibly=%-5v definitely=%v\n", k, poss, def)
	}

	// Conservation violation check: can the count ever exceed the
	// number of tokens in the system? (It must not.)
	over, err := gpd.PossiblySum(c, gpd.VarTokens, gpd.Gt, int64(tokens))
	if err != nil {
		return err
	}
	fmt.Printf("conservation violated (count > %d possible): %v\n", tokens, over)

	// The same question expressed as a symmetric predicate on the
	// boolean "holds at least one token": exactly-k-holders.
	holders := func(e gpd.Event) bool { return c.Var(gpd.VarTokens, e.ID) > 0 }
	ok, cut, err := gpd.PossiblySymmetric(c, gpd.ExactlyK(procs, tokens), holders)
	if err != nil {
		return err
	}
	fmt.Printf("some cut with exactly %d token holders: %v", tokens, ok)
	if ok {
		fmt.Printf(" (witness %v)", cut)
	}
	fmt.Println()
	return nil
}
