package gpd

import (
	"fmt"
	"sort"

	"github.com/distributed-predicates/gpd/internal/conjunctive"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/core/symmetric"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/pred"
)

// Spec is a predicate specification: one family plus its parameters. Build
// one with ParseSpec, from JSON, or as a literal; Detect validates it
// against the computation. The same type backs the gpddetect command line
// and the streaming wire protocol, so a predicate string accepted anywhere
// in the repository parses here too.
type Spec = pred.Spec

// SpecFamily selects a predicate family.
type SpecFamily = pred.Family

// SpecLiteral is one (possibly negated) per-process literal of a CNF
// clause.
type SpecLiteral = pred.Literal

// SpecClause is a disjunction of literals on distinct processes.
type SpecClause = pred.Clause

// Predicate families.
const (
	// FamilyConjunctive is all(var): the 0/1 variable true on every process.
	FamilyConjunctive = pred.Conjunctive
	// FamilySum is sum(var) relop k over the per-process variable sums.
	FamilySum = pred.Sum
	// FamilyCount is count(var) relop k on the number of true processes.
	FamilyCount = pred.Count
	// FamilyXor is xor(var): odd parity of the 0/1 variable.
	FamilyXor = pred.Xor
	// FamilyLevels is levels(var): m1, m2, ... — the general symmetric
	// predicate given by its true-count level set.
	FamilyLevels = pred.Levels
	// FamilyCNF is a singular CNF predicate over the 0/1 variable.
	FamilyCNF = pred.CNF
	// FamilyInFlight is inflight relop k on channel occupancy.
	FamilyInFlight = pred.InFlight
)

// ParseSpec parses the predicate grammar shared by every surface:
//
//	all(<var>)                  conjunction over all processes
//	sum(<var>) <relop> <k>      relational sum predicate
//	count(<var>) <relop> <k>    symmetric predicate on the true-count
//	xor(<var>)                  exclusive-or (odd parity)
//	levels(<var>): m1, m2, ...  symmetric predicate by level set
//	inflight <relop> <k>        messages in flight
//	cnf(<var>): (0 | !1) & (2)  singular CNF; literals are process ids
func ParseSpec(text string) (Spec, error) { return pred.Parse(text) }

// Modality selects between the weak and strong interpretation of a
// predicate over a computation.
type Modality int

const (
	// ModalityPossibly asks whether SOME consistent cut satisfies the
	// predicate (the default).
	ModalityPossibly Modality = iota + 1
	// ModalityDefinitely asks whether EVERY run passes through a
	// satisfying cut.
	ModalityDefinitely
)

// String names the modality.
func (m Modality) String() string {
	switch m {
	case ModalityPossibly:
		return "possibly"
	case ModalityDefinitely:
		return "definitely"
	default:
		return fmt.Sprintf("modality(%d)", int(m))
	}
}

// ParseModality parses "possibly" or "definitely".
func ParseModality(s string) (Modality, error) {
	switch s {
	case "possibly":
		return ModalityPossibly, nil
	case "definitely":
		return ModalityDefinitely, nil
	default:
		return 0, fmt.Errorf("gpd: unknown modality %q", s)
	}
}

// Trace collects per-run observability data: timed spans and named work
// counters. All methods are safe on a nil *Trace (no-ops), so detectors
// are unconditionally instrumented. Pass one to Detect with WithTrace to
// share it across runs; otherwise Detect creates a private trace and
// returns its report.
type Trace = obs.Trace

// Work is the rendered observability report of a detection run: spans,
// work counters and notes. Its String method prints a human-readable
// summary (the gpddetect -report output).
type Work = obs.Report

// NewTrace returns an empty trace.
func NewTrace() *Trace { return obs.NewTrace() }

// Option configures Detect.
type Option func(*detectOptions)

type detectOptions struct {
	modality    Modality
	strategy    SingularStrategy
	strategySet bool
	trace       *obs.Trace
}

// WithModality selects the modality; the default is ModalityPossibly.
func WithModality(m Modality) Option {
	return func(o *detectOptions) { o.modality = m }
}

// WithStrategy selects the singular detection algorithm. It applies only
// to FamilyCNF specs under ModalityPossibly; Detect rejects any other
// combination instead of silently ignoring the option.
func WithStrategy(s SingularStrategy) Option {
	return func(o *detectOptions) { o.strategy = s; o.strategySet = true }
}

// WithTrace routes the run's spans and work counters into the given
// trace, accumulating across calls. The final Report.Work still reflects
// everything the trace has seen.
func WithTrace(tr *Trace) Option {
	return func(o *detectOptions) { o.trace = tr }
}

// Report is the outcome of Detect.
type Report struct {
	// Spec is the predicate that was decided.
	Spec Spec
	// Modality is the modality that was decided.
	Modality Modality
	// Holds is the verdict: Possibly(spec) or Definitely(spec).
	Holds bool
	// Witness, when non-nil, is a consistent cut satisfying the
	// predicate. Produced only under ModalityPossibly, and only by the
	// families whose detectors construct cuts (all, sum ==, count, xor,
	// levels, inflight ==, cnf).
	Witness Cut
	// Strategy is the singular algorithm that produced the answer
	// (FamilyCNF under ModalityPossibly only).
	Strategy SingularStrategy
	// Combinations counts the CPDHB sub-runs tried (FamilyCNF under
	// ModalityPossibly only).
	Combinations int
	// Min and Max bound the tracked quantity over all consistent cuts
	// when HasRange is set (FamilyInFlight).
	Min, Max int64
	// HasRange reports whether Min and Max are meaningful.
	HasRange bool
	// Work reports the spans and work counters of this run (or of the
	// caller's accumulated trace when WithTrace was used).
	Work Work
}

// Detect is the single front door for offline predicate detection: it
// decides spec under the chosen modality on the sealed computation,
// dispatching to the cheapest applicable detector — CPDHB for
// conjunctions, max-weight closures for sums and channel occupancy, the
// sum decomposition for symmetric predicates, the singular algorithms for
// CNF — and falling back to lattice reachability where only the
// exponential route is known (the Definitely side of sum, symmetric and
// CNF; see the package comment).
//
// The zero options decide Possibly. Errors come from spec validation
// (including against the computation's process count), option conflicts,
// and detector preconditions such as ErrNotUnitStep.
func Detect(c *Computation, s Spec, opts ...Option) (Report, error) {
	o := detectOptions{modality: ModalityPossibly, strategy: StrategyAuto}
	for _, opt := range opts {
		opt(&o)
	}
	switch o.modality {
	case ModalityPossibly, ModalityDefinitely:
	default:
		return Report{}, fmt.Errorf("gpd: unknown modality %v", o.modality)
	}
	if o.strategySet {
		if s.Family != FamilyCNF {
			return Report{}, fmt.Errorf("gpd: strategy %v applies only to cnf predicates, not %v", o.strategy, s.Family)
		}
		if o.modality != ModalityPossibly {
			return Report{}, fmt.Errorf("gpd: strategy %v applies only under possibly; definitely uses lattice reachability", o.strategy)
		}
	}
	if err := s.Validate(c.NumProcs()); err != nil {
		return Report{}, err
	}
	tr := o.trace
	if tr == nil {
		tr = obs.NewTrace()
	}
	rep := Report{Spec: s, Modality: o.modality}
	done := tr.Span("detect:" + s.Family.String())
	err := dispatch(c, s, &o, tr, &rep)
	done()
	if err != nil {
		return Report{}, err
	}
	rep.Work = tr.Report()
	return rep, nil
}

func dispatch(c *Computation, s Spec, o *detectOptions, tr *obs.Trace, rep *Report) error {
	definitely := o.modality == ModalityDefinitely
	truth := func(e Event) bool { return c.Var(s.Var, e.ID) != 0 }

	switch s.Family {
	case FamilyConjunctive:
		locals := make(map[ProcID]LocalPredicate, c.NumProcs())
		for p := 0; p < c.NumProcs(); p++ {
			locals[ProcID(p)] = truth
		}
		if definitely {
			rep.Holds = conjunctive.DetectDefinitelyTraced(c, locals, tr)
			return nil
		}
		res := conjunctive.DetectTraced(c, locals, tr)
		rep.Holds, rep.Witness = res.Found, res.Cut
		return nil

	case FamilySum:
		if definitely {
			ok, err := relsum.DefinitelyTraced(c, s.Var, s.Rel, s.K, tr)
			rep.Holds = ok
			return err
		}
		if s.Rel == Eq {
			ok, cut, err := relsum.PossiblyEqWitnessTraced(c, s.Var, s.K, tr)
			rep.Holds, rep.Witness = ok, cut
			return err
		}
		ok, err := relsum.PossiblyTraced(c, s.Var, s.Rel, s.K, tr)
		rep.Holds = ok
		return err

	case FamilyCount, FamilyXor, FamilyLevels:
		spec := symmetricSpec(c.NumProcs(), s)
		if definitely {
			ok, err := symmetric.DefinitelyTraced(c, spec, truth, tr)
			rep.Holds = ok
			return err
		}
		ok, cut, err := symmetric.PossiblyTraced(c, spec, truth, tr)
		rep.Holds, rep.Witness = ok, cut
		return err

	case FamilyInFlight:
		min, max := relsum.InFlightRangeTraced(c, tr)
		rep.Min, rep.Max, rep.HasRange = min, max, true
		if definitely {
			ok, err := relsum.DefinitelyWeightedTraced(c, 0, relsum.InFlightWeight(c), s.Rel, s.K, tr)
			rep.Holds = ok
			return err
		}
		if s.Rel == Eq {
			ok, cut, err := relsum.PossiblyQuiescentTraced(c, s.K, tr)
			rep.Holds, rep.Witness = ok, cut
			return err
		}
		rep.Holds = s.Rel.Eval(min, s.K) || s.Rel.Eval(max, s.K)
		return nil

	case FamilyCNF:
		p := singularPredicate(s)
		if definitely {
			if err := p.Validate(c); err != nil {
				return err
			}
			rep.Holds = lattice.DefinitelyTraced(c, func(cc *Computation, k Cut) bool {
				return p.Holds(cc, truth, k)
			}, tr)
			return nil
		}
		res, err := singular.DetectTraced(c, p, truth, o.strategy, tr)
		if err != nil {
			return err
		}
		rep.Holds, rep.Witness = res.Found, res.Cut
		rep.Strategy, rep.Combinations = res.Strategy, res.Combinations
		return nil
	}
	return fmt.Errorf("gpd: unknown predicate family %v", s.Family)
}

// symmetricSpec builds the level-set form of the Count, Xor and Levels
// families for a computation with n processes.
func symmetricSpec(n int, s Spec) SymmetricSpec {
	switch s.Family {
	case FamilyXor:
		return symmetric.Xor(n)
	case FamilyCount:
		return symmetric.FromFunc(n, func(m int) bool { return s.Rel.Eval(int64(m), s.K) })
	default: // FamilyLevels
		levels := append([]int(nil), s.Levels...)
		sort.Ints(levels)
		out := levels[:0]
		for i, m := range levels {
			if i == 0 || m != levels[i-1] {
				out = append(out, m)
			}
		}
		return SymmetricSpec{N: n, Levels: out}
	}
}

// singularPredicate converts the CNF body of a spec into the singular
// detector's representation.
func singularPredicate(s Spec) *SingularPredicate {
	p := &SingularPredicate{}
	for _, cl := range s.Clauses {
		var out SingularClause
		for _, l := range cl {
			out = append(out, SingularLiteral{Proc: ProcID(l.Proc), Negated: l.Negated})
		}
		p.Clauses = append(p.Clauses, out)
	}
	return p
}
