package gpd

import (
	"context"
	"fmt"
	"runtime/pprof"

	"github.com/distributed-predicates/gpd/internal/detect"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/pred"
	"github.com/distributed-predicates/gpd/internal/slicing"
)

// Spec is a predicate specification: one family plus its parameters. Build
// one with ParseSpec, from JSON, or as a literal; Detect validates it
// against the computation. The same type backs the gpddetect command line
// and the streaming wire protocol, so a predicate string accepted anywhere
// in the repository parses here too.
type Spec = pred.Spec

// SpecFamily selects a predicate family.
type SpecFamily = pred.Family

// SpecLiteral is one (possibly negated) per-process literal of a CNF
// clause.
type SpecLiteral = pred.Literal

// SpecClause is a disjunction of literals on distinct processes.
type SpecClause = pred.Clause

// Predicate families.
const (
	// FamilyConjunctive is all(var): the 0/1 variable true on every process.
	FamilyConjunctive = pred.Conjunctive
	// FamilySum is sum(var) relop k over the per-process variable sums.
	FamilySum = pred.Sum
	// FamilyCount is count(var) relop k on the number of true processes.
	FamilyCount = pred.Count
	// FamilyXor is xor(var): odd parity of the 0/1 variable.
	FamilyXor = pred.Xor
	// FamilyLevels is levels(var): m1, m2, ... — the general symmetric
	// predicate given by its true-count level set.
	FamilyLevels = pred.Levels
	// FamilyCNF is a singular CNF predicate over the 0/1 variable.
	FamilyCNF = pred.CNF
	// FamilyInFlight is inflight relop k on channel occupancy.
	FamilyInFlight = pred.InFlight
	// FamilyEquilevel is equilevel(var): L — the conjunction all(var)
	// restricted to the consistent cuts at level L (exactly L non-initial
	// events executed), per Garg & Streit.
	FamilyEquilevel = pred.Equilevel
)

// ParseSpec parses the predicate grammar shared by every surface:
//
//	all(<var>)                  conjunction over all processes
//	sum(<var>) <relop> <k>      relational sum predicate
//	count(<var>) <relop> <k>    symmetric predicate on the true-count
//	xor(<var>)                  exclusive-or (odd parity)
//	levels(<var>): m1, m2, ...  symmetric predicate by level set
//	inflight <relop> <k>        messages in flight
//	cnf(<var>): (0 | !1) & (2)  singular CNF; literals are process ids
//	equilevel(<var>): <L>       all(var) restricted to cuts at level L
func ParseSpec(text string) (Spec, error) { return pred.Parse(text) }

// Modality selects between the weak and strong interpretation of a
// predicate over a computation. It is the detector kernel's modality
// type (internal/detect), shared with the streaming stack.
type Modality = detect.Modality

const (
	// ModalityPossibly asks whether SOME consistent cut satisfies the
	// predicate (the default).
	ModalityPossibly = detect.ModalityPossibly
	// ModalityDefinitely asks whether EVERY run passes through a
	// satisfying cut.
	ModalityDefinitely = detect.ModalityDefinitely
)

// ParseModality parses "possibly" or "definitely".
func ParseModality(s string) (Modality, error) {
	m, err := detect.ParseModality(s)
	if err != nil {
		return 0, fmt.Errorf("gpd: unknown modality %q", s)
	}
	return m, nil
}

// DetectStrategy selects how Detect computes its answer.
type DetectStrategy = detect.Strategy

const (
	// StrategyBatch runs the family's offline algorithm on the sealed
	// computation (the default).
	StrategyBatch = detect.StrategyBatch
	// StrategyReplay drives the family's incremental detector over a
	// causal linearization of the computation — the same state machine
	// the streaming server runs — and, under ModalityDefinitely, its
	// close-time finalizer. Available only for incremental-capable
	// families; cross-checkable against StrategyBatch. Replay runs do
	// not construct witness cuts.
	StrategyReplay = detect.StrategyReplay
	// StrategySlice computes the predicate's slice first — the exact
	// sublattice of satisfying cuts a regular predicate induces (Mittal
	// & Garg, "Computation slicing") — and decides from it, delegating
	// to the family's batch kernel only when the slice alone cannot
	// answer. Available for the regular families (all(var), and
	// inflight == 0); other specs fail with an error matching
	// ErrNotRegular instead of silently degrading.
	StrategySlice = detect.StrategySlice
)

// ErrNotRegular reports a predicate whose satisfying cuts are not
// closed under lattice meet and join — the precondition for computation
// slicing. Detect under WithStrategy(StrategySlice) returns errors
// matching it (via errors.Is) for non-regular specs; the error message
// names the rejected family or fragment.
var ErrNotRegular = slicing.ErrNotRegular

// Trace collects per-run observability data: timed spans and named work
// counters. All methods are safe on a nil *Trace (no-ops), so detectors
// are unconditionally instrumented. Pass one to Detect with WithTrace to
// share it across runs; otherwise Detect creates a private trace and
// returns its report.
type Trace = obs.Trace

// Work is the rendered observability report of a detection run: spans,
// work counters and notes. Its String method prints a human-readable
// summary (the gpddetect -report output).
type Work = obs.Report

// NewTrace returns an empty trace.
func NewTrace() *Trace { return obs.NewTrace() }

// Option configures Detect.
type Option func(*detectOptions)

type detectOptions struct {
	modality    Modality
	route       DetectStrategy
	strategy    SingularStrategy
	strategySet bool
	parallelism int
	trace       *obs.Trace
}

// WithModality selects the modality; the default is ModalityPossibly.
func WithModality(m Modality) Option {
	return func(o *detectOptions) { o.modality = m }
}

// Strategy is the type set of the WithStrategy option: either a
// detection route (StrategyBatch, StrategyReplay — how Detect computes
// its answer) or a singular algorithm (StrategyAuto, StrategyChainCover,
// ... — which algorithm decides a cnf predicate). The two namespaces
// were historically split between WithDetectStrategy and WithStrategy;
// they now share one option, disambiguated by type at compile time.
type Strategy interface {
	DetectStrategy | SingularStrategy
}

// WithStrategy selects a strategy from either namespace:
//
//   - a DetectStrategy picks the detection route; the default is
//     StrategyBatch.
//   - a SingularStrategy picks the singular detection algorithm. It
//     applies only to FamilyCNF specs under ModalityPossibly; Detect
//     rejects any other combination instead of silently ignoring the
//     option.
func WithStrategy[S Strategy](s S) Option {
	return func(o *detectOptions) {
		switch v := any(s).(type) {
		case DetectStrategy:
			o.route = v
		case SingularStrategy:
			o.strategy = v
			o.strategySet = true
		}
	}
}

// WithParallelism bounds the worker pool behind the batch kernels: the
// lattice level sweeps, the max-flow phases of the sum closures, the
// chain-cover scans and the CPDHB selection blocks all draw from n
// workers. The default 0 resolves to GOMAXPROCS; 1 runs the exact
// sequential algorithms. Verdicts, witnesses and work counters are
// bit-identical for every worker count — the option trades wall-clock
// time only. Detect rejects negative values.
func WithParallelism(n int) Option {
	return func(o *detectOptions) { o.parallelism = n }
}

// WithTrace routes the run's spans and work counters into the given
// trace, accumulating across calls. The final Report.Work still reflects
// everything the trace has seen.
func WithTrace(tr *Trace) Option {
	return func(o *detectOptions) { o.trace = tr }
}

// Report is the outcome of Detect.
type Report struct {
	// Spec is the predicate that was decided.
	Spec Spec
	// Modality is the modality that was decided.
	Modality Modality
	// Holds is the verdict: Possibly(spec) or Definitely(spec).
	Holds bool
	// Witness, when non-nil, is a consistent cut satisfying the
	// predicate. Produced only under ModalityPossibly with
	// StrategyBatch (by the families whose detectors construct cuts:
	// all, sum ==, count, xor, levels, inflight ==, cnf, equilevel) or
	// StrategySlice (the slice bottom, the same least satisfying cut
	// the batch route constructs).
	Witness Cut
	// Strategy is the singular algorithm that produced the answer
	// (FamilyCNF under ModalityPossibly only).
	Strategy SingularStrategy
	// Combinations counts the CPDHB sub-runs tried (FamilyCNF under
	// ModalityPossibly only).
	Combinations int
	// Min and Max bound the tracked quantity over all consistent cuts
	// when HasRange is set (FamilyInFlight, and replay runs of the
	// range-tracking families).
	Min, Max int64
	// HasRange reports whether Min and Max are meaningful.
	HasRange bool
	// Work reports the spans and work counters of this run (or of the
	// caller's accumulated trace when WithTrace was used).
	Work Work
}

// Detect is the single front door for offline predicate detection: it
// decides spec under the chosen modality on the sealed computation,
// resolving through the detector registry (internal/detect) to the
// cheapest applicable algorithm — CPDHB for conjunctions, max-weight
// closures for sums and channel occupancy, the sum decomposition for
// symmetric predicates, the singular algorithms for CNF — and falling
// back to lattice reachability where only the exponential route is known
// (the Definitely side of sum, symmetric and CNF; see the package
// comment). WithStrategy(StrategyReplay) instead drives the
// family's incremental detector — the state machine the streaming server
// runs — over a causal linearization of the computation, cross-checkable
// against the batch verdict.
//
// The zero options decide Possibly with StrategyBatch. Errors come from
// spec validation (including against the computation's process count),
// option conflicts, and detector preconditions such as ErrNotUnitStep.
func Detect(c *Computation, s Spec, opts ...Option) (Report, error) {
	o := detectOptions{modality: ModalityPossibly, route: StrategyBatch, strategy: StrategyAuto}
	for _, opt := range opts {
		opt(&o)
	}
	switch o.modality {
	case ModalityPossibly, ModalityDefinitely:
	default:
		return Report{}, fmt.Errorf("gpd: unknown modality %v", o.modality)
	}
	switch o.route {
	case StrategyBatch, StrategyReplay, StrategySlice:
	default:
		return Report{}, fmt.Errorf("gpd: unknown detect strategy %v", o.route)
	}
	if o.parallelism < 0 {
		return Report{}, fmt.Errorf("gpd: parallelism %d is negative; use 0 for GOMAXPROCS", o.parallelism)
	}
	if o.strategySet {
		if s.Family != FamilyCNF {
			return Report{}, fmt.Errorf("gpd: strategy %v applies only to cnf predicates, not %v", o.strategy, s.Family)
		}
		if o.modality != ModalityPossibly {
			return Report{}, fmt.Errorf("gpd: strategy %v applies only under possibly; definitely uses lattice reachability", o.strategy)
		}
	}
	if err := s.Validate(c.NumProcs()); err != nil {
		return Report{}, err
	}
	tr := o.trace
	if tr == nil {
		tr = obs.NewTrace()
	}
	rep := Report{Spec: s, Modality: o.modality}
	done := tr.Span("detect:" + s.Family.String())
	var res detect.Result
	var err error
	// The kernel runs under a pprof family label, so a CPU profile of a
	// mixed batch workload attributes its samples per predicate family
	// (the stream engine adds tenant/shard labels on its own entry
	// points). Label swap cost is nanoseconds against kernel runtimes.
	pprof.Do(context.Background(), pprof.Labels("family", s.Family.String()), func(context.Context) {
		switch o.route {
		case StrategyReplay:
			res, err = detect.Replay(c, s, o.modality, tr)
		case StrategySlice:
			res, err = detect.Slice(c, s, o.modality, detect.Options{Parallelism: o.parallelism}, tr)
		default:
			res, err = detect.Batch(c, s, o.modality, detect.Options{Singular: o.strategy, Parallelism: o.parallelism}, tr)
		}
	})
	done()
	if err != nil {
		return Report{}, err
	}
	rep.Holds, rep.Witness = res.Holds, res.Witness
	rep.Strategy, rep.Combinations = res.Strategy, res.Combinations
	rep.Min, rep.Max, rep.HasRange = res.Min, res.Max, res.HasRange
	rep.Work = tr.Report()
	return rep, nil
}
