package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTickAndMerge(t *testing.T) {
	v := New(3)
	v.Tick(0).Tick(0).Tick(2)
	if v[0] != 2 || v[1] != 0 || v[2] != 1 {
		t.Fatalf("v = %v", v)
	}
	w := VC{1, 5, 0}
	v.Merge(w)
	if v[0] != 2 || v[1] != 5 || v[2] != 1 {
		t.Fatalf("after merge v = %v", v)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b VC
		want Ordering
	}{
		{VC{1, 2}, VC{1, 2}, Equal},
		{VC{1, 2}, VC{2, 2}, Before},
		{VC{2, 2}, VC{1, 2}, After},
		{VC{1, 0}, VC{0, 1}, Concurrent},
		{VC{0, 0}, VC{0, 0}, Equal},
		{VC{1}, VC{1, 1}, Before},     // shorter prefix, missing = 0
		{VC{1, 1}, VC{1}, After},      // symmetric
		{VC{0, 1}, VC{1}, Concurrent}, // mixed lengths
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	flip := map[Ordering]Ordering{Equal: Equal, Before: After, After: Before, Concurrent: Concurrent}
	f := func(a, b []uint8) bool {
		va, vb := make(VC, len(a)), make(VC, len(b))
		for i, x := range a {
			va[i] = int64(x % 4)
		}
		for i, x := range b {
			vb[i] = int64(x % 4)
		}
		return vb.Compare(va) == flip[va.Compare(vb)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeIsLUB(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		va, vb := New(4), New(4)
		for i := range a {
			va[i], vb[i] = int64(a[i]), int64(b[i])
		}
		m := va.Clone().Merge(vb)
		// m must be an upper bound of both...
		if va.Compare(m) == After || va.Compare(m) == Concurrent {
			return false
		}
		if vb.Compare(m) == After || vb.Compare(m) == Concurrent {
			return false
		}
		// ...and the least one: every component equals one of the inputs.
		for i := range m {
			if m[i] != va[i] && m[i] != vb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockProtocol(t *testing.T) {
	// Two processes: p0 sends to p1, p1's receive must be causally after
	// the send; an independent event on p0 afterwards is concurrent with
	// an earlier independent event on p1.
	c0 := NewClock(0, 2)
	c1 := NewClock(1, 2)
	e1 := c1.Event() // p1 internal, before any communication
	s := c0.Send()
	r := c1.Receive(s)
	e0 := c0.Event()
	if !s.Before(r) {
		t.Errorf("send %v must precede receive %v", s, r)
	}
	if !e1.Before(r) {
		t.Errorf("local predecessor %v must precede receive %v", e1, r)
	}
	if !e1.Concurrent(s) {
		t.Errorf("%v and %v should be concurrent", e1, s)
	}
	if !e0.Concurrent(r) {
		t.Errorf("%v and %v should be concurrent", e0, r)
	}
	if c0.Self() != 0 || c1.Self() != 1 {
		t.Error("Self broken")
	}
}

// TestClockSimulationMatchesTruth drives a random message schedule and
// verifies the vector-clock verdicts against ground-truth reachability.
func TestClockSimulationMatchesTruth(t *testing.T) {
	const np = 4
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		clocks := make([]*Clock, np)
		for p := range clocks {
			clocks[p] = NewClock(p, np)
		}
		type ev struct {
			proc int
			vc   VC
			pred []int // indices into events of direct predecessors
		}
		var events []ev
		lastOn := make([]int, np)
		for p := range lastOn {
			lastOn[p] = -1
		}
		pending := make([]VC, 0)
		pendingFrom := make([]int, 0)
		for step := 0; step < 40; step++ {
			p := rng.Intn(np)
			var stamp VC
			var preds []int
			if lastOn[p] >= 0 {
				preds = append(preds, lastOn[p])
			}
			if len(pending) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(pending))
				stamp = clocks[p].Receive(pending[i])
				preds = append(preds, pendingFrom[i])
				pending = append(pending[:i], pending[i+1:]...)
				pendingFrom = append(pendingFrom[:i], pendingFrom[i+1:]...)
			} else if rng.Intn(2) == 0 {
				stamp = clocks[p].Send()
				pending = append(pending, stamp)
				pendingFrom = append(pendingFrom, len(events))
			} else {
				stamp = clocks[p].Event()
			}
			events = append(events, ev{proc: p, vc: stamp, pred: preds})
			lastOn[p] = len(events) - 1
		}
		// Ground-truth reachability over the predecessor DAG.
		n := len(events)
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for _, p := range events[i].pred {
				reach[p][i] = true
				for j := 0; j < n; j++ {
					if reach[j][p] {
						reach[j][i] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				want := reach[i][j]
				got := events[i].vc.Before(events[j].vc)
				if got != want {
					t.Fatalf("trial %d: before(%d,%d) = %v, want %v", trial, i, j, got, want)
				}
			}
		}
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent",
		Ordering(9): "ordering(9)",
	} {
		if got := o.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", o, got, want)
		}
	}
}

func TestVCString(t *testing.T) {
	if got := (VC{1, 0, 3}).String(); got != "[1 0 3]" {
		t.Errorf("String = %q", got)
	}
}
