// Package vclock implements Fidge/Mattern vector clocks for online use:
// each process keeps a clock, ticks it on every event, attaches it to
// outgoing messages and merges incoming timestamps. Comparing two timestamps
// decides happened-before, equality or concurrency without any global
// coordination, which is what makes passive online predicate detection
// possible.
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector timestamp over a fixed number of processes. Component p
// counts the events of process p known to have causally preceded (or be)
// the stamped event.
type VC []int64

// New returns a zero clock for n processes.
func New(n int) VC { return make(VC, n) }

// Clone returns a copy of the clock.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// Tick increments component p in place and returns v for chaining.
func (v VC) Tick(p int) VC {
	v[p]++
	return v
}

// Merge sets v to the component-wise maximum of v and other, in place.
func (v VC) Merge(other VC) VC {
	for i := range v {
		if i < len(other) && other[i] > v[i] {
			v[i] = other[i]
		}
	}
	return v
}

// Ordering is the result of comparing two vector timestamps.
type Ordering int

const (
	// Equal: identical timestamps.
	Equal Ordering = iota + 1
	// Before: the receiver happened-before the argument.
	Before
	// After: the argument happened-before the receiver.
	After
	// Concurrent: the timestamps are incomparable.
	Concurrent
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// Compare determines the causal relation between v and other. Timestamps of
// different lengths are compared over the shorter prefix with missing
// components treated as zero.
func (v VC) Compare(other VC) Ordering {
	le, ge := true, true
	n := len(v)
	if len(other) > n {
		n = len(other)
	}
	at := func(x VC, i int) int64 {
		if i < len(x) {
			return x[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		a, b := at(v, i), at(other, i)
		if a < b {
			ge = false
		}
		if a > b {
			le = false
		}
	}
	switch {
	case le && ge:
		return Equal
	case le:
		return Before
	case ge:
		return After
	default:
		return Concurrent
	}
}

// Before reports whether v happened-before other (strictly).
func (v VC) Before(other VC) bool { return v.Compare(other) == Before }

// Concurrent reports whether v and other are incomparable.
func (v VC) Concurrent(other VC) bool { return v.Compare(other) == Concurrent }

// String renders the clock, e.g. "[1 0 3]".
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Clock is the per-process clock object used by instrumented processes.
type Clock struct {
	self int
	vc   VC
}

// NewClock returns the clock of process self among n processes.
func NewClock(self, n int) *Clock {
	return &Clock{self: self, vc: New(n)}
}

// Self returns the owning process index.
func (c *Clock) Self() int { return c.self }

// Event advances the clock for a local event and returns the timestamp of
// that event.
func (c *Clock) Event() VC {
	c.vc.Tick(c.self)
	return c.vc.Clone()
}

// Send advances the clock for a send event and returns the timestamp to
// attach to the message.
func (c *Clock) Send() VC { return c.Event() }

// Receive merges the timestamp carried by an incoming message, advances the
// clock for the receive event, and returns the timestamp of that event.
func (c *Clock) Receive(msg VC) VC {
	c.vc.Merge(msg)
	c.vc.Tick(c.self)
	return c.vc.Clone()
}

// Now returns a copy of the current clock value.
func (c *Clock) Now() VC { return c.vc.Clone() }
