package linear

import (
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/par"
)

// LeastCut is one oracle's outcome in a batch scan.
type LeastCut struct {
	// OK reports whether some consistent cut satisfies the oracle.
	OK bool
	// Cut, when OK, is the least satisfying cut.
	Cut computation.Cut
}

// FindLeastEach runs the linear-predicate advancement independently for
// each oracle on a bounded worker pool and returns the results in input
// order. Each scan reads only the sealed computation and advances its
// own cut, so the scans are embarrassingly parallel and the output is
// identical for every worker count. This is the batch shape of the
// equilevel and conjunctive prune passes: many independent linear
// predicates (one per chain, clause or level) against one computation.
func FindLeastEach(c *computation.Computation, oracles []Oracle, workers int) []LeastCut {
	out := make([]LeastCut, len(oracles))
	par.Do(workers, len(oracles), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k, ok := FindLeast(c, oracles[i])
			out[i] = LeastCut{OK: ok, Cut: k}
		}
	})
	return out
}

// PossiblyEach reports, for each oracle, whether some consistent cut
// satisfies it, scanning on a bounded worker pool.
func PossiblyEach(c *computation.Computation, oracles []Oracle, workers int) []bool {
	res := FindLeastEach(c, oracles, workers)
	out := make([]bool, len(res))
	for i, r := range res {
		out[i] = r.OK
	}
	return out
}
