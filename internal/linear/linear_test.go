package linear

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/conjunctive"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

func localsFromTables(truth [][]bool) map[computation.ProcID]func(computation.Event) bool {
	locals := make(map[computation.ProcID]func(computation.Event) bool)
	for p, row := range truth {
		row := row
		locals[computation.ProcID(p)] = func(e computation.Event) bool {
			return e.Index < len(row) && row[e.Index]
		}
	}
	return locals
}

// TestConjunctiveAgreesWithCPDHB cross-checks the linear-predicate
// detector against the dedicated conjunctive detector.
func TestConjunctiveAgreesWithCPDHB(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		c := gen.Random(gen.Params{Seed: seed, Procs: 3, Events: 5, MsgFrac: 0.6})
		truth := gen.BoolTables(seed+1000, c, 0.4)
		want := conjunctive.DetectTables(c, truth)
		got, cut := Possibly(c, Conjunctive(localsFromTables(truth)))
		if got != want.Found {
			t.Fatalf("seed %d: linear = %v, CPDHB = %v", seed, got, want.Found)
		}
		if got {
			if !c.CutConsistent(cut) {
				t.Fatalf("seed %d: witness %v inconsistent", seed, cut)
			}
			for p, row := range truth {
				if !row[cut[p]] {
					t.Fatalf("seed %d: witness %v violates local predicate of %d", seed, cut, p)
				}
			}
		}
	}
}

// TestFindLeastReturnsTheLeastCut verifies the canonical-witness property:
// the returned cut is the meet of all satisfying cuts.
func TestFindLeastReturnsTheLeastCut(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.5})
		truth := gen.BoolTables(rng.Int63(), c, 0.5)
		o := Conjunctive(localsFromTables(truth))
		got, ok := FindLeast(c, o)
		// Compute the meet of all satisfying cuts exhaustively.
		var meet computation.Cut
		lattice.Explore(c, func(k computation.Cut) bool {
			if !o.Holds(c, k) {
				return true
			}
			if meet == nil {
				meet = k.Clone()
				return true
			}
			for i := range meet {
				if k[i] < meet[i] {
					meet[i] = k[i]
				}
			}
			return true
		})
		if !ok {
			if meet != nil {
				t.Fatalf("trial %d: FindLeast missed satisfying cuts (meet %v)", trial, meet)
			}
			continue
		}
		if meet == nil {
			t.Fatalf("trial %d: FindLeast returned %v but no cut satisfies", trial, got)
		}
		if !got.Equal(meet) {
			t.Fatalf("trial %d: FindLeast = %v, meet of satisfying cuts = %v", trial, got, meet)
		}
	}
}

func TestMonotoneSumAtLeast(t *testing.T) {
	// Two processes with monotone counters: p0 counts 0,1,2; p1 counts
	// 0,0,3.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a1 := c.AddInternal(p0)
	a2 := c.AddInternal(p0)
	b1 := c.AddInternal(p1)
	b2 := c.AddInternal(p1)
	c.SetVar("n", a1, 1)
	c.SetVar("n", a2, 2)
	c.SetVar("n", b1, 0)
	c.SetVar("n", b2, 3)
	c.MustSeal()
	if err := ValidateMonotone(c, "n"); err != nil {
		t.Fatal(err)
	}
	ok, cut := Possibly(c, MonotoneSumAtLeast("n", 4))
	if !ok {
		t.Fatal("sum reaches 5 at the final cut")
	}
	if got := c.SumVar("n", cut); got < 4 {
		t.Fatalf("witness sum = %d, want >= 4", got)
	}
	ok, _ = Possibly(c, MonotoneSumAtLeast("n", 6))
	if ok {
		t.Fatal("sum never reaches 6")
	}
}

func TestValidateMonotoneDetectsDecrease(t *testing.T) {
	c := computation.New()
	p := c.AddProcess()
	a := c.AddInternal(p)
	b := c.AddInternal(p)
	c.SetVar("n", a, 5)
	c.SetVar("n", b, 3)
	c.MustSeal()
	if err := ValidateMonotone(c, "n"); err == nil {
		t.Fatal("decrease must be reported")
	}
}

func TestImpossiblePredicate(t *testing.T) {
	c := gen.Random(gen.Params{Seed: 1, Procs: 2, Events: 3, MsgFrac: 0})
	o := Conjunctive(map[computation.ProcID]func(computation.Event) bool{
		0: func(computation.Event) bool { return false },
	})
	if ok, _ := Possibly(c, o); ok {
		t.Fatal("constant-false local predicate cannot be satisfied")
	}
}

func TestEmptyOracle(t *testing.T) {
	c := gen.Random(gen.Params{Seed: 2, Procs: 2, Events: 2, MsgFrac: 0})
	ok, cut := Possibly(c, Conjunctive(nil))
	if !ok || cut.Size() != 0 {
		t.Fatalf("empty conjunction must hold at the initial cut, got %v %v", ok, cut)
	}
}
