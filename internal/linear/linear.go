// Package linear implements detection of linear global predicates in the
// sense of Chase & Garg ("Detection of global predicates: techniques and
// their limitations", Distributed Computing 1995) — one of the tractable
// classes in the paper's Figure 1 landscape.
//
// A predicate B is linear iff its satisfying cuts are closed under
// intersection (lattice meet); equivalently, for every consistent cut not
// satisfying B some process is "forbidden": no cut above the current one
// can satisfy B without that process advancing. Linearity yields both a
// detection algorithm and a canonical witness: the unique LEAST consistent
// cut satisfying B, found by repeatedly advancing a forbidden process to
// the least consistent cut containing its next event.
//
// Conjunctive predicates are the canonical linear predicates (a process
// whose local predicate is false at the frontier is forbidden); the
// Conjunctive helper adapts them to the Oracle interface.
package linear

import (
	"fmt"
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
)

// NoProc is returned by Forbidden when the predicate already holds.
const NoProc computation.ProcID = -1

// Oracle evaluates a linear predicate and names forbidden processes.
type Oracle interface {
	// Holds evaluates the predicate at a consistent cut.
	Holds(c *computation.Computation, k computation.Cut) bool
	// Forbidden returns a process that must advance beyond its current
	// frontier in any satisfying cut above k. It is called only when
	// Holds(k) is false and must return a valid process; returning a
	// non-forbidden process breaks the least-cut guarantee (but the
	// algorithm still only reports cuts that satisfy the predicate).
	Forbidden(c *computation.Computation, k computation.Cut) computation.ProcID
}

// FindLeast returns the least consistent cut satisfying the oracle's
// predicate, or ok=false if no consistent cut satisfies it. The running
// time is at most one advancement per event plus one oracle call each.
func FindLeast(c *computation.Computation, o Oracle) (computation.Cut, bool) {
	k := c.InitialCut()
	for !o.Holds(c, k) {
		p := o.Forbidden(c, k)
		if p == NoProc {
			return nil, false
		}
		if int(p) < 0 || int(p) >= c.NumProcs() {
			panic(fmt.Sprintf("linear: oracle returned invalid process %d", p))
		}
		next := k[int(p)] + 1
		if next >= c.Len(p) {
			return nil, false // p cannot advance: no satisfying cut exists
		}
		// Advance to the least consistent cut containing p's next
		// event: join the current cut with that event's causal ideal.
		e := c.EventAt(p, next)
		row := c.Clock(e.ID)
		for q := range k {
			if idx := int(row[q]) - 1; idx > k[q] {
				k[q] = idx
			}
		}
		if e.Index > k[int(p)] {
			k[int(p)] = e.Index
		}
	}
	return k, true
}

// Possibly reports whether some consistent cut satisfies the linear
// predicate, with the least witness.
func Possibly(c *computation.Computation, o Oracle) (bool, computation.Cut) {
	k, ok := FindLeast(c, o)
	return ok, k
}

// conjunctiveOracle adapts per-process local predicates. procs holds the
// involved processes in sorted order: Forbidden picks the first failing
// process, and which one it names steers the advancement sequence (and
// the per-run work counters), so the scan order must be deterministic.
type conjunctiveOracle struct {
	locals map[computation.ProcID]func(computation.Event) bool
	procs  []computation.ProcID
}

// Conjunctive wraps a conjunction of local predicates as a linear oracle:
// any process whose local predicate is false at the cut's frontier is
// forbidden (its frontier state can never participate in a satisfying
// cut without advancing).
func Conjunctive(locals map[computation.ProcID]func(computation.Event) bool) Oracle {
	procs := make([]computation.ProcID, 0, len(locals))
	for p := range locals {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	return &conjunctiveOracle{locals: locals, procs: procs}
}

func (o *conjunctiveOracle) Holds(c *computation.Computation, k computation.Cut) bool {
	for _, p := range o.procs {
		if !o.locals[p](c.EventAt(p, k[int(p)])) {
			return false
		}
	}
	return true
}

func (o *conjunctiveOracle) Forbidden(c *computation.Computation, k computation.Cut) computation.ProcID {
	for _, p := range o.procs {
		if !o.locals[p](c.EventAt(p, k[int(p)])) {
			return p
		}
	}
	return NoProc
}

// sumAtLeastOracle makes "sum(name) >= k" a linear predicate when every
// variable is non-decreasing along its process (e.g. monotone counters):
// then the satisfying cuts are upward-closed per component and closed
// under meet, and any process still below its final contribution is a
// valid forbidden choice only when chosen carefully. For general
// variables use the relsum package instead.
type sumAtLeastOracle struct {
	name string
	k    int64
}

// MonotoneSumAtLeast builds a linear oracle for "sum(name) >= k" on
// computations where the named variable never decreases on any process
// (it is the caller's responsibility to guarantee monotonicity; see
// ValidateMonotone).
func MonotoneSumAtLeast(name string, k int64) Oracle {
	return &sumAtLeastOracle{name: name, k: k}
}

func (o *sumAtLeastOracle) Holds(c *computation.Computation, k computation.Cut) bool {
	return c.SumVar(o.name, k) >= o.k
}

func (o *sumAtLeastOracle) Forbidden(c *computation.Computation, k computation.Cut) computation.ProcID {
	// With monotone variables any process that can still advance is a
	// forbidden candidate whose advancement never hurts; pick the first
	// that has events left.
	for p := 0; p < c.NumProcs(); p++ {
		if k[p]+1 < c.Len(computation.ProcID(p)) {
			return computation.ProcID(p)
		}
	}
	return NoProc
}

// ValidateMonotone reports an error if the named variable decreases at
// some event.
func ValidateMonotone(c *computation.Computation, name string) error {
	var bad computation.Event
	found := false
	c.Events(func(e computation.Event) bool {
		if e.IsInitial() {
			return true
		}
		if c.Var(name, e.ID) < c.Var(name, c.Prev(e.ID)) {
			bad, found = e, true
			return false
		}
		return true
	})
	if found {
		return fmt.Errorf("linear: variable %q decreases at event %v", name, bad)
	}
	return nil
}
