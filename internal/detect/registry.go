package detect

import (
	"fmt"
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/par"
	"github.com/distributed-predicates/gpd/internal/pred"
)

// Entry binds one (family, modality) pair to its detectors.
type Entry struct {
	// Family and Modality key the entry.
	Family   pred.Family
	Modality Modality
	// Caps are the entry's capability flags.
	Caps Caps
	// Batch decides the predicate offline with the family's batch
	// algorithm on a sealed computation.
	Batch func(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error)
	// New builds the incremental detector (nil unless Caps.Incremental).
	// The same constructor backs both modalities of a family: Possibly
	// is latched online, Definitely via the detector's Finalizer.
	New func(s pred.Spec, cfg Config) (Detector, error)
	// Linearize replays a sealed computation as the delivered-event
	// stream an instrumented application would have produced, plus the
	// session configuration matching it (nil unless Caps.Incremental).
	Linearize func(c *computation.Computation, s pred.Spec) ([]Event, Config, error)
	// Slice decides the predicate through its computation slice (nil
	// unless Caps.Sliceable). The route may still reject individual
	// specs that fall outside the family's regular fragment, with an
	// error wrapping slicing.ErrNotRegular.
	Slice func(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error)
}

type regKey struct {
	family   pred.Family
	modality Modality
}

var registry = make(map[regKey]Entry)

// Register adds an entry to the registry. It panics on a duplicate
// (family, modality) key or a structurally incomplete entry; families
// register from init functions, so a bad registration fails fast at
// program start.
func Register(e Entry) {
	key := regKey{e.Family, e.Modality}
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("detect: duplicate registration for %v/%v", e.Family, e.Modality))
	}
	if e.Batch == nil {
		panic(fmt.Sprintf("detect: registration for %v/%v has no batch detector", e.Family, e.Modality))
	}
	if e.Caps.Incremental && (e.New == nil || e.Linearize == nil) {
		panic(fmt.Sprintf("detect: incremental registration for %v/%v needs New and Linearize", e.Family, e.Modality))
	}
	if e.Caps.Sliceable != (e.Slice != nil) {
		panic(fmt.Sprintf("detect: registration for %v/%v must set Slice iff Caps.Sliceable", e.Family, e.Modality))
	}
	registry[key] = e
}

// Lookup resolves the entry for a family and modality.
func Lookup(f pred.Family, m Modality) (Entry, bool) {
	e, ok := registry[regKey{f, m}]
	return e, ok
}

// Families returns the registered families in stable order.
func Families() []pred.Family {
	seen := make(map[pred.Family]bool)
	var out []pred.Family
	for key := range registry {
		if !seen[key.family] {
			seen[key.family] = true
			out = append(out, key.family)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Batch resolves the registry entry for the spec's family under the
// modality and runs its offline algorithm. The zero Parallelism option
// resolves to GOMAXPROCS here — once, for every family — so Batch
// functions and the kernels below them always receive a concrete worker
// count.
func Batch(c *computation.Computation, s pred.Spec, m Modality, opt Options, tr *obs.Trace) (Result, error) {
	e, ok := Lookup(s.Family, m)
	if !ok {
		return Result{}, fmt.Errorf("detect: no detector registered for %v under %v", s.Family, m)
	}
	opt.Parallelism = par.Limit(opt.Parallelism)
	return e.Batch(c, s, opt, tr)
}

// Replay decides the predicate by driving the family's incremental
// detector over a causal linearization of the sealed computation — the
// same state machine a streaming session runs, end to end: linearize,
// step, flush, and (under ModalityDefinitely) the close-time finalizer.
// It errors for families without an incremental detector.
func Replay(c *computation.Computation, s pred.Spec, m Modality, tr *obs.Trace) (Result, error) {
	e, ok := Lookup(s.Family, m)
	if !ok {
		return Result{}, fmt.Errorf("detect: no detector registered for %v under %v", s.Family, m)
	}
	if !e.Caps.Incremental {
		return Result{}, fmt.Errorf("detect: %v has no incremental detector; replay is unavailable", s.Family)
	}
	done := tr.Span("replay:" + s.Family.String())
	defer done()
	events, cfg, err := e.Linearize(c, s)
	if err != nil {
		return Result{}, err
	}
	cfg.Retain = m == ModalityDefinitely
	det, err := e.New(s, cfg)
	if err != nil {
		return Result{}, err
	}
	if t, ok := det.(Traceable); ok {
		t.SetTrace(tr)
	}
	for _, ev := range events {
		if err := det.Step(ev); err != nil {
			return Result{}, fmt.Errorf("detect: replay: %w", err)
		}
	}
	det.Flush()
	snap := det.Snapshot()
	tr.Add("replay.events", int64(len(events)))
	res := Result{Holds: snap.Possibly, Min: snap.Min, Max: snap.Max, HasRange: snap.HasRange}
	if m == ModalityDefinitely {
		fin, ok := det.(Finalizer)
		if !ok {
			return Result{}, fmt.Errorf("detect: %v detector cannot decide definitely", s.Family)
		}
		holds, err := fin.FinalizeDefinitely(c, tr)
		if err != nil {
			return Result{}, err
		}
		res.Holds = holds
	}
	return res, nil
}

// clockToVC converts a sealed computation's timestamp (which counts
// initial events) to the online vector-clock convention (which has no
// initial events): component q drops the initial event when present.
func clockToVC(clk []int32) []int64 {
	vc := make([]int64, len(clk))
	for q, v := range clk {
		if v >= 1 {
			vc[q] = int64(v) - 1
		}
	}
	return vc
}

// LinearizeEvents replays the non-initial events of a sealed
// computation in topological order, filling each event's payload via
// fill. Detectors re-establish causal order themselves behind a
// transport's holdback buffer, so any causality-respecting permutation
// of the result is also a valid stream.
func LinearizeEvents(c *computation.Computation, fill func(e computation.Event, ev *Event)) []Event {
	var out []Event
	for _, id := range c.Topo() {
		e := c.Event(id)
		if e.IsInitial() {
			continue
		}
		ev := Event{Proc: int(e.Proc), VC: clockToVC(c.Clock(id))}
		if fill != nil {
			fill(e, &ev)
		}
		out = append(out, ev)
	}
	return out
}

// truthFn derives a per-event truth function from the named 0/1
// variable of a computation. Initial states count as false: the online
// detectors have no initial events, and transports rebuild retained
// traces under the same convention.
func truthFn(c *computation.Computation, name string) func(computation.Event) bool {
	return func(e computation.Event) bool {
		return !e.IsInitial() && c.Var(name, e.ID) != 0
	}
}
