package detect

import (
	"errors"
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/par"
	"github.com/distributed-predicates/gpd/internal/pred"
	"github.com/distributed-predicates/gpd/internal/slicing"
)

// Slice decides the predicate through its computation slice: build the
// slice — the exact sublattice of satisfying cuts a regular predicate
// induces — and answer from it, delegating to the family's batch kernel
// only when the slice alone cannot. Families without a slice route
// (non-regular families) fail with an error wrapping
// slicing.ErrNotRegular, the explicit fallback the registry's
// capability flags promise instead of a silent degrade.
func Slice(c *computation.Computation, s pred.Spec, m Modality, opt Options, tr *obs.Trace) (Result, error) {
	e, ok := Lookup(s.Family, m)
	if !ok {
		return Result{}, fmt.Errorf("detect: no detector registered for %v under %v", s.Family, m)
	}
	if !e.Caps.Sliceable {
		return Result{}, fmt.Errorf("detect: no slice route for %v under %v: %w",
			s.Family, m, &slicing.NotRegularError{Detail: fmt.Sprintf("family %v is not regular", s.Family)})
	}
	done := tr.Span("slice:" + s.Family.String())
	defer done()
	opt.Parallelism = par.Limit(opt.Parallelism)
	return e.Slice(c, s, opt, tr)
}

// Sliceable reports whether the family has a slice route under the
// modality. Individual specs may still fall outside the family's
// regular fragment; Slice rejects those with a NotRegularError.
func Sliceable(f pred.Family, m Modality) bool {
	e, ok := Lookup(f, m)
	return ok && e.Caps.Sliceable
}

// conjSliceOracle adapts the batch truth convention (the named 0/1
// variable, initial states included) on every process for the slicing
// constructor — the same locals the CPDHB batch kernel runs on, so the
// two routes see the same predicate.
func conjSliceOracle(c *computation.Computation, s pred.Spec) slicing.Oracle {
	truth := varTruth(c, s.Var)
	locals := make(map[computation.ProcID]func(computation.Event) bool, c.NumProcs())
	for p := 0; p < c.NumProcs(); p++ {
		locals[computation.ProcID(p)] = truth
	}
	return slicing.ConjunctiveOracle(locals)
}

// conjSlicePossibly: a conjunctive predicate is Possibly true iff its
// slice is non-empty, and the slice bottom is the least satisfying cut
// — the same cut the CPDHB elimination constructs, so the witness is
// bit-identical to the batch route's.
func conjSlicePossibly(c *computation.Computation, s pred.Spec, _ Options, tr *obs.Trace) (Result, error) {
	sl, err := slicing.Compute(c, conjSliceOracle(c, s))
	if errors.Is(err, slicing.ErrEmpty) {
		tr.Add("slice.empty", 1)
		return Result{}, nil
	}
	if err != nil {
		return Result{}, err
	}
	tr.Add("slice.built", 1)
	return Result{Holds: true, Witness: sl.Bottom()}, nil
}

// conjSliceDefinitely answers from the slice when it can: an empty
// slice means no satisfying cut at all (Definitely false); a bottom at
// the initial cut or a top at the final cut is a satisfying cut every
// run passes through (Definitely true). In between, slicing's level-set
// structure cannot characterise Definitely — the slice contains the
// satisfying cuts but says nothing about which antichains of unsatisfying
// cuts separate bottom from top — so the route delegates to the batch
// kernel for the exact verdict.
func conjSliceDefinitely(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	sl, err := slicing.Compute(c, conjSliceOracle(c, s))
	if errors.Is(err, slicing.ErrEmpty) {
		tr.Add("slice.empty", 1)
		return Result{}, nil
	}
	if err != nil {
		return Result{}, err
	}
	if sl.Bottom().Equal(c.InitialCut()) || sl.Top().Equal(c.FinalCut()) {
		tr.Add("slice.early_exit", 1)
		return Result{Holds: true}, nil
	}
	tr.Add("slice.delegated", 1)
	return conjDefinitely(c, s, opt, tr)
}

// quiescentSliceGate admits the regular fragment of the inflight
// family: exactly inflight == 0 (channel quiescence). Occupancy at any
// other level is not meet- or join-closed — two cuts can each hold k
// messages in flight while their meet holds fewer — so those specs are
// rejected explicitly.
func quiescentSliceGate(s pred.Spec) error {
	if s.Rel != relsum.Eq || s.K != 0 {
		return fmt.Errorf("detect: no slice route for %v: %w", s,
			&slicing.NotRegularError{Detail: fmt.Sprintf("inflight %v %d is not regular; only inflight == 0 (quiescence) is", s.Rel, s.K)})
	}
	return nil
}

// inflightSlicePossibly: the initial cut is always quiescent, so the
// quiescence slice is never empty and its bottom is the initial cut —
// the same witness the batch scan returns at k = 0.
func inflightSlicePossibly(c *computation.Computation, s pred.Spec, _ Options, tr *obs.Trace) (Result, error) {
	if err := quiescentSliceGate(s); err != nil {
		return Result{}, err
	}
	sl, err := slicing.Compute(c, slicing.QuiescentOracle(c))
	if err != nil {
		return Result{}, err
	}
	tr.Add("slice.built", 1)
	return Result{Holds: true, Witness: sl.Bottom()}, nil
}

// inflightSliceDefinitely: the quiescence slice bottoms at the initial
// cut, which every run passes through, so Definitely(inflight == 0)
// holds unconditionally — the slice decides it with no delegation.
func inflightSliceDefinitely(c *computation.Computation, s pred.Spec, _ Options, tr *obs.Trace) (Result, error) {
	if err := quiescentSliceGate(s); err != nil {
		return Result{}, err
	}
	sl, err := slicing.Compute(c, slicing.QuiescentOracle(c))
	if err != nil {
		return Result{}, err
	}
	if !sl.Bottom().Equal(c.InitialCut()) {
		return Result{}, fmt.Errorf("detect: quiescence slice bottom %v is not the initial cut", sl.Bottom())
	}
	tr.Add("slice.early_exit", 1)
	return Result{Holds: true}, nil
}
