package detect

// frontier is the causal bookkeeping shared by the range-based
// incremental detectors: it packs (process, local index) pairs into the
// tracker id space, derives an event's direct causal dependencies from
// its timestamp, and tracks the common vector-clock frontier below
// which events are stable — in the causal past of every event yet to
// arrive — and therefore safe to fold into a tracker baseline (see
// relsum.RangeTracker).
type frontier struct {
	procs      int
	lastVC     [][]int64 // timestamp of the last delivered event per process
	prunedUpto []int64   // per-process local index already folded away
}

func newFrontier(procs int) *frontier {
	return &frontier{
		procs:      procs,
		lastVC:     make([][]int64, procs),
		prunedUpto: make([]int64, procs),
	}
}

// id packs a (process, local index) pair into the tracker id space.
func (f *frontier) id(proc int, index int64) int64 {
	return index*int64(f.procs) + int64(proc)
}

// requires derives the event's direct causal dependencies from its
// timestamp: its local predecessor and, per other process, the latest
// event of that process in its causal past. Local chains make the
// transitive constraints follow.
func (f *frontier) requires(ev Event) []int64 {
	var reqs []int64
	if own := ev.VC[ev.Proc]; own >= 2 {
		reqs = append(reqs, f.id(ev.Proc, own-1))
	}
	for q, v := range ev.VC {
		if q != ev.Proc && v >= 1 {
			reqs = append(reqs, f.id(q, v))
		}
	}
	return reqs
}

// observe records a delivered event's timestamp.
func (f *frontier) observe(ev Event) {
	f.lastVC[ev.Proc] = ev.VC
}

// stable returns the ids that fell below the component-wise minimum of
// the processes' latest timestamps since the last call: those events
// are in the causal past of every event yet to arrive, so every cut
// still to be formed contains them. Returns nil while some process has
// not reported yet.
func (f *frontier) stable() []int64 {
	min := make([]int64, f.procs)
	for q := range min {
		min[q] = int64(1) << 62
	}
	for _, vc := range f.lastVC {
		if vc == nil {
			return nil // a process has not reported yet: nothing is stable
		}
		for q, v := range vc {
			if v < min[q] {
				min[q] = v
			}
		}
	}
	var ids []int64
	for q := 0; q < f.procs; q++ {
		for i := f.prunedUpto[q] + 1; i <= min[q]; i++ {
			ids = append(ids, f.id(q, i))
		}
		if min[q] > f.prunedUpto[q] {
			f.prunedUpto[q] = min[q]
		}
	}
	return ids
}
