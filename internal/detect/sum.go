package detect

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/pred"
)

func init() {
	caps := Caps{Incremental: true, Payload: PayloadValue}
	Register(Entry{
		Family: pred.Sum, Modality: ModalityPossibly, Caps: caps,
		Batch: sumPossibly, New: newSumDetector, Linearize: linearizeSum,
	})
	caps.NeedsFullTrace = true
	Register(Entry{
		Family: pred.Sum, Modality: ModalityDefinitely, Caps: caps,
		Batch: sumDefinitely, New: newSumDetector, Linearize: linearizeSum,
	})
}

func sumPossibly(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	if s.Rel == relsum.Eq {
		ok, cut, err := relsum.PossiblyEqWitnessPar(c, s.Var, s.K, opt.Parallelism, tr)
		return Result{Holds: ok, Witness: cut}, err
	}
	ok, err := relsum.PossiblyPar(c, s.Var, s.Rel, s.K, opt.Parallelism, tr)
	return Result{Holds: ok}, err
}

func sumDefinitely(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	ok, err := relsum.DefinitelyPar(c, s.Var, s.Rel, s.K, opt.Parallelism, tr)
	return Result{Holds: ok}, err
}

// relPossible decides Possibly(S relop k) from the exact extrema of S
// over the consistent cuts covered so far. For the order operators and
// != the extrema suffice with no step assumption; for = the caller must
// enforce unit steps, under which every integer in [min, max] is
// attained (the intermediate-value property of Theorem 4 lifted to the
// streaming setting).
func relPossible(r relsum.Relop, k, min, max int64) bool {
	switch r {
	case relsum.Lt:
		return min < k
	case relsum.Le:
		return min <= k
	case relsum.Ge:
		return max >= k
	case relsum.Gt:
		return max > k
	case relsum.Ne:
		return min != k || max != k
	default: // Eq
		return min <= k && k <= max
	}
}

// sumDetector is the range-based incremental detector shared by the sum
// and inflight families: a relsum.RangeTracker over per-event changes,
// pruned below the common vector-clock frontier, with the verdict
// latched from the running extrema via relPossible.
type sumDetector struct {
	fr      *frontier
	tracker *relsum.RangeTracker
	rel     relsum.Relop
	k       int64
	unit    bool // enforce |change| <= 1 per event (Eq needs it)

	// Payload decoding: delta sessions (inflight) carry the per-event
	// change directly; value sessions carry the variable's value after
	// the event and diff against lastVal.
	delta   bool
	lastVal []int64

	// Finalize support: the variable name for value sessions, recorded
	// per-event changes for delta sessions (only when Config.Retain).
	varName string
	weights map[int64]int64

	possibly bool
}

func newSumDetector(s pred.Spec, cfg Config) (Detector, error) {
	d := &sumDetector{
		fr:      newFrontier(cfg.Procs),
		rel:     s.Rel,
		k:       s.K,
		unit:    s.Rel == relsum.Eq,
		lastVal: make([]int64, cfg.Procs),
		varName: s.Var,
	}
	copy(d.lastVal, cfg.Init)
	var baseline int64
	for _, v := range cfg.Init {
		baseline += v
	}
	d.tracker = relsum.NewRangeTracker(baseline)
	// The initial cut is a consistent cut: latch it right away.
	d.possibly = relPossible(d.rel, d.k, baseline, baseline)
	return d, nil
}

func (d *sumDetector) SetTrace(tr *obs.Trace) { d.tracker.SetTrace(tr) }

func (d *sumDetector) Step(ev Event) error {
	p := ev.Proc
	var change int64
	if d.delta {
		change = ev.Val
	} else {
		change = ev.Val - d.lastVal[p]
		d.lastVal[p] = ev.Val
	}
	if d.unit && (change > 1 || change < -1) {
		return fmt.Errorf("%w: process %d event %d changes by %d",
			relsum.ErrNotUnitStep, p, ev.VC[p], change)
	}
	id := d.fr.id(p, ev.VC[p])
	d.tracker.Observe(id, change, d.fr.requires(ev))
	d.fr.observe(ev)
	if d.weights != nil {
		d.weights[id] = change
	}
	return nil
}

func (d *sumDetector) Flush() bool {
	d.tracker.Flush()
	if ids := d.fr.stable(); len(ids) > 0 {
		d.tracker.Prune(ids)
	}
	if min, max := d.tracker.Range(); !d.possibly && relPossible(d.rel, d.k, min, max) {
		d.possibly = true
	}
	return d.possibly
}

func (d *sumDetector) Possibly() bool { return d.possibly }

// Touches bounds the detector's relevance set: the sum ranges over the
// named variable's events on every process (channel-occupancy sessions
// consume the reserved InFlightVar delta stream instead).
func (d *sumDetector) Touches() Relevance {
	if d.delta {
		return Relevance{Vars: []string{InFlightVar}}
	}
	return Relevance{Vars: []string{d.varName}}
}

func (d *sumDetector) Window() int { return d.tracker.Window() }

func (d *sumDetector) Snapshot() Snapshot {
	min, max := d.tracker.Range()
	return Snapshot{Possibly: d.possibly, Window: d.tracker.Window(), Min: min, Max: max, HasRange: true}
}

// FinalizeDefinitely decides Definitely over the complete computation:
// from the named variable for value sessions, from the recorded
// per-event changes for delta sessions (the rebuilt trace has no
// messages to derive channel occupancy from, so the detector keeps the
// weights itself when the transport retains the trace).
func (d *sumDetector) FinalizeDefinitely(c *computation.Computation, tr *obs.Trace) (bool, error) {
	if !d.delta {
		return relsum.DefinitelyTraced(c, d.varName, d.rel, d.k, tr)
	}
	if d.weights == nil {
		return false, fmt.Errorf("detect: detector did not retain per-event weights (session not opened with retain)")
	}
	w := func(e computation.Event) int64 {
		return d.weights[d.fr.id(int(e.Proc), int64(e.Index))]
	}
	return relsum.DefinitelyWeightedTraced(c, 0, w, d.rel, d.k, tr)
}

// linearizeSum replays the named variable: events carry its value after
// the event, the config its per-process initial values.
func linearizeSum(c *computation.Computation, s pred.Spec) ([]Event, Config, error) {
	init := make([]int64, c.NumProcs())
	for p := range init {
		init[p] = c.Var(s.Var, c.Initial(computation.ProcID(p)).ID)
	}
	events := LinearizeEvents(c, func(e computation.Event, ev *Event) {
		ev.Val = c.Var(s.Var, e.ID)
	})
	return events, Config{Procs: c.NumProcs(), Init: init}, nil
}
