package detect

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/pred"
)

func init() {
	caps := Caps{Incremental: true, Sliceable: true, Payload: PayloadDelta}
	Register(Entry{
		Family: pred.InFlight, Modality: ModalityPossibly, Caps: caps,
		Batch: inflightPossibly, New: newInFlightDetector, Linearize: linearizeInFlight,
		Slice: inflightSlicePossibly,
	})
	caps.NeedsFullTrace = true
	Register(Entry{
		Family: pred.InFlight, Modality: ModalityDefinitely, Caps: caps,
		Batch: inflightDefinitely, New: newInFlightDetector, Linearize: linearizeInFlight,
		Slice: inflightSliceDefinitely,
	})
}

func inflightPossibly(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	min, max := relsum.InFlightRangePar(c, opt.Parallelism, tr)
	res := Result{Min: min, Max: max, HasRange: true}
	if s.Rel == relsum.Eq {
		ok, cut, err := relsum.PossiblyQuiescentPar(c, s.K, opt.Parallelism, tr)
		res.Holds, res.Witness = ok, cut
		return res, err
	}
	res.Holds = s.Rel.Eval(min, s.K) || s.Rel.Eval(max, s.K)
	return res, nil
}

func inflightDefinitely(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	min, max := relsum.InFlightRangePar(c, opt.Parallelism, tr)
	ok, err := relsum.DefinitelyWeightedPar(c, 0, relsum.InFlightWeight(c), s.Rel, s.K, opt.Parallelism, tr)
	return Result{Holds: ok, Min: min, Max: max, HasRange: true}, err
}

// newInFlightDetector builds the channel-occupancy detector: the shared
// range core over per-event deltas (sends − receives, which an
// instrumented application reports directly in Event.Val). Occupancy
// always starts at zero, so the family takes no initial values; the
// deltas are unit-step whenever every event sends or receives at most
// one message, which is what makes the existing ±1 range tracker an
// exact online detector for inflight == k.
func newInFlightDetector(s pred.Spec, cfg Config) (Detector, error) {
	if len(cfg.Init) > 0 {
		return nil, fmt.Errorf("detect: inflight detectors take no initial values (occupancy starts at 0)")
	}
	d := &sumDetector{
		fr:      newFrontier(cfg.Procs),
		rel:     s.Rel,
		k:       s.K,
		unit:    s.Rel == relsum.Eq,
		delta:   true,
		tracker: relsum.NewRangeTracker(0),
	}
	if cfg.Retain {
		d.weights = make(map[int64]int64)
	}
	d.possibly = relPossible(d.rel, d.k, 0, 0)
	return d, nil
}

// linearizeInFlight replays channel occupancy: each event's Val is its
// sends − receives, derived from the computation's messages.
func linearizeInFlight(c *computation.Computation, _ pred.Spec) ([]Event, Config, error) {
	w := relsum.InFlightWeight(c)
	events := LinearizeEvents(c, func(e computation.Event, ev *Event) {
		ev.Val = w(e)
	})
	return events, Config{Procs: c.NumProcs()}, nil
}
