package detect

import (
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/pred"
)

func init() {
	// CNF has no incremental detector: the singular algorithms need the
	// sealed computation (receive orders, chain covers), so the family
	// is batch-only — streaming sessions and StrategyReplay reject it.
	Register(Entry{
		Family: pred.CNF, Modality: ModalityPossibly,
		Batch: cnfPossibly,
	})
	Register(Entry{
		Family: pred.CNF, Modality: ModalityDefinitely,
		Caps:  Caps{NeedsFullTrace: true},
		Batch: cnfDefinitely,
	})
}

// singularPredicate converts the CNF body of a spec into the singular
// detector's representation.
func singularPredicate(s pred.Spec) *singular.Predicate {
	p := &singular.Predicate{}
	for _, cl := range s.Clauses {
		var out singular.Clause
		for _, l := range cl {
			out = append(out, singular.Literal{Proc: computation.ProcID(l.Proc), Negated: l.Negated})
		}
		p.Clauses = append(p.Clauses, out)
	}
	return p
}

func cnfPossibly(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	res, err := singular.DetectPar(c, singularPredicate(s), singular.Truth(varTruth(c, s.Var)), opt.Singular, opt.Parallelism, tr)
	if err != nil {
		return Result{}, err
	}
	return Result{Holds: res.Found, Witness: res.Cut, Strategy: res.Strategy, Combinations: res.Combinations}, nil
}

func cnfDefinitely(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	p := singularPredicate(s)
	if err := p.Validate(c); err != nil {
		return Result{}, err
	}
	truth := varTruth(c, s.Var)
	holds := lattice.DefinitelyPar(c, func(cc *computation.Computation, k computation.Cut) bool {
		return p.Holds(cc, singular.Truth(truth), k)
	}, opt.Parallelism, tr)
	return Result{Holds: holds}, nil
}
