package detect

import (
	"fmt"
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/conjunctive"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/pred"
	"github.com/distributed-predicates/gpd/internal/vclock"
)

func init() {
	caps := Caps{Incremental: true, Sliceable: true, Payload: PayloadTruth}
	Register(Entry{
		Family: pred.Conjunctive, Modality: ModalityPossibly, Caps: caps,
		Batch: conjPossibly, New: newConjDetector, Linearize: linearizeConj,
		Slice: conjSlicePossibly,
	})
	caps.NeedsFullTrace = true
	Register(Entry{
		Family: pred.Conjunctive, Modality: ModalityDefinitely, Caps: caps,
		Batch: conjDefinitely, New: newConjDetector, Linearize: linearizeConj,
		Slice: conjSliceDefinitely,
	})
}

// varTruth is the batch truth convention: the named variable, initial
// states included.
func varTruth(c *computation.Computation, name string) conjunctive.LocalPredicate {
	return func(e computation.Event) bool { return c.Var(name, e.ID) != 0 }
}

func allLocals(c *computation.Computation, name string) map[computation.ProcID]conjunctive.LocalPredicate {
	locals := make(map[computation.ProcID]conjunctive.LocalPredicate, c.NumProcs())
	truth := varTruth(c, name)
	for p := 0; p < c.NumProcs(); p++ {
		locals[computation.ProcID(p)] = truth
	}
	return locals
}

// conjPossibly and conjDefinitely ignore Options.Parallelism: the
// token-elimination algorithms are linear in the number of events and
// already work-optimal, so a worker pool would only add coordination
// overhead without changing the asymptotics.
func conjPossibly(c *computation.Computation, s pred.Spec, _ Options, tr *obs.Trace) (Result, error) {
	res := conjunctive.DetectTraced(c, allLocals(c, s.Var), tr)
	return Result{Holds: res.Found, Witness: res.Cut}, nil
}

func conjDefinitely(c *computation.Computation, s pred.Spec, _ Options, tr *obs.Trace) (Result, error) {
	return Result{Holds: conjunctive.DetectDefinitelyTraced(c, allLocals(c, s.Var), tr)}, nil
}

// conjDetector wraps the token-based online checker (conjunctive.Checker)
// behind the Detector interface, batching true events per process so one
// Flush runs one elimination sweep however many events arrived.
type conjDetector struct {
	involved []int
	varName  string
	checker  *conjunctive.Checker
	pending  map[int][]vclock.VC // per-process true events awaiting a batch
	possibly bool
}

func newConjDetector(s pred.Spec, cfg Config) (Detector, error) {
	involved := cfg.Involved
	if len(involved) == 0 {
		involved = make([]int, cfg.Procs)
		for i := range involved {
			involved[i] = i
		}
	}
	return &conjDetector{
		involved: involved,
		varName:  s.Var,
		checker:  conjunctive.NewChecker(involved),
		pending:  make(map[int][]vclock.VC),
	}, nil
}

func (d *conjDetector) Step(ev Event) error {
	if ev.Truth {
		d.pending[ev.Proc] = append(d.pending[ev.Proc], vclock.VC(ev.VC))
	}
	return nil
}

func (d *conjDetector) Flush() bool {
	// Feed the checker in process order: ObserveBatch moves the token
	// protocol, and the elimination trace (and its work counters) must
	// not depend on map iteration order.
	procs := make([]int, 0, len(d.pending))
	for p := range d.pending {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		if vcs := d.pending[p]; len(vcs) > 0 {
			d.checker.ObserveBatch(p, vcs)
		}
		delete(d.pending, p)
	}
	d.possibly = d.checker.Found()
	return d.possibly
}

func (d *conjDetector) Possibly() bool { return d.possibly }

// Touches bounds the detector's relevance set: only true events of the
// involved processes can move the token checker, and only the spec's
// variable carries them.
func (d *conjDetector) Touches() Relevance {
	return Relevance{Procs: append([]int(nil), d.involved...), Vars: []string{d.varName}}
}

func (d *conjDetector) Window() int {
	n := d.checker.Pending()
	for _, vcs := range d.pending {
		n += len(vcs)
	}
	return n
}

func (d *conjDetector) Snapshot() Snapshot {
	return Snapshot{Possibly: d.possibly, Window: d.Window()}
}

// FinalizeDefinitely decides Definitely over the complete computation.
// Truth follows the online convention — initial states are false — so
// the verdict matches what the checker saw, for both a transport's
// rebuilt trace and a replayed offline computation.
func (d *conjDetector) FinalizeDefinitely(c *computation.Computation, tr *obs.Trace) (bool, error) {
	locals := make(map[computation.ProcID]conjunctive.LocalPredicate, len(d.involved))
	truth := truthFn(c, d.varName)
	for _, p := range d.involved {
		locals[computation.ProcID(p)] = truth
	}
	return conjunctive.DetectDefinitelyTraced(c, locals, tr), nil
}

// linearizeConj replays the 0/1 variable as Truth flags. The online
// checker has no notion of initial states (they are taken as false), so
// a computation whose variable starts true on some process cannot be
// replayed faithfully and is rejected.
func linearizeConj(c *computation.Computation, s pred.Spec) ([]Event, Config, error) {
	for p := 0; p < c.NumProcs(); p++ {
		if c.Var(s.Var, c.Initial(computation.ProcID(p)).ID) != 0 {
			return nil, Config{}, fmt.Errorf(
				"detect: replay of %v requires initial states to be false, but %s starts true on process %d",
				s, s.Var, p)
		}
	}
	events := LinearizeEvents(c, func(e computation.Event, ev *Event) {
		ev.Truth = c.Var(s.Var, e.ID) != 0
	})
	return events, Config{Procs: c.NumProcs()}, nil
}
