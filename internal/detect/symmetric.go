package detect

import (
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/symmetric"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/pred"
)

func init() {
	for _, f := range []pred.Family{pred.Count, pred.Xor, pred.Levels} {
		caps := Caps{Incremental: true, Payload: PayloadTruth}
		Register(Entry{
			Family: f, Modality: ModalityPossibly, Caps: caps,
			Batch: symPossibly, New: newSymDetector, Linearize: linearizeBool,
		})
		caps.NeedsFullTrace = true
		Register(Entry{
			Family: f, Modality: ModalityDefinitely, Caps: caps,
			Batch: symDefinitely, New: newSymDetector, Linearize: linearizeBool,
		})
	}
}

// symmetricSpec builds the level-set form of the Count, Xor and Levels
// families for a computation with n processes.
func symmetricSpec(n int, s pred.Spec) symmetric.Spec {
	switch s.Family {
	case pred.Xor:
		return symmetric.Xor(n)
	case pred.Count:
		return symmetric.FromFunc(n, func(m int) bool { return s.Rel.Eval(int64(m), s.K) })
	default: // pred.Levels
		levels := append([]int(nil), s.Levels...)
		sort.Ints(levels)
		out := levels[:0]
		for i, m := range levels {
			if i == 0 || m != levels[i-1] {
				out = append(out, m)
			}
		}
		return symmetric.Spec{N: n, Levels: out}
	}
}

func symPossibly(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	spec := symmetricSpec(c.NumProcs(), s)
	ok, cut, err := symmetric.PossiblyPar(c, spec, symmetric.Truth(varTruth(c, s.Var)), opt.Parallelism, tr)
	return Result{Holds: ok, Witness: cut}, err
}

func symDefinitely(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	spec := symmetricSpec(c.NumProcs(), s)
	ok, err := symmetric.DefinitelyPar(c, spec, symmetric.Truth(varTruth(c, s.Var)), opt.Parallelism, tr)
	return Result{Holds: ok}, err
}

// symDetector wraps the online symmetric tracker (symmetric.Tracker, the
// sum decomposition over the true-count) behind the Detector interface.
type symDetector struct {
	fr      *frontier
	tracker *symmetric.Tracker
	lastVal []int64 // 0/1 value after the last delivered event
	spec    symmetric.Spec
	varName string
}

func newSymDetector(s pred.Spec, cfg Config) (Detector, error) {
	n := cfg.Procs
	spec := symmetricSpec(n, s)
	init := make([]bool, n)
	lastVal := make([]int64, n)
	for p, v := range cfg.Init {
		if v != 0 {
			init[p] = true
			lastVal[p] = 1
		}
	}
	return &symDetector{
		fr:      newFrontier(n),
		tracker: symmetric.NewTracker(spec, init),
		lastVal: lastVal,
		spec:    spec,
		varName: s.Var,
	}, nil
}

func (d *symDetector) SetTrace(tr *obs.Trace) { d.tracker.SetTrace(tr) }

func (d *symDetector) Step(ev Event) error {
	p := ev.Proc
	var v int64
	if ev.Truth {
		v = 1
	}
	change := v - d.lastVal[p]
	d.lastVal[p] = v
	d.tracker.Observe(d.fr.id(p, ev.VC[p]), change, d.fr.requires(ev))
	d.fr.observe(ev)
	return nil
}

func (d *symDetector) Flush() bool {
	d.tracker.Flush()
	if ids := d.fr.stable(); len(ids) > 0 {
		d.tracker.Prune(ids)
	}
	return d.tracker.Found()
}

func (d *symDetector) Possibly() bool { return d.tracker.Found() }

// Touches bounds the detector's relevance set: the true-count ranges
// over the named 0/1 variable's events on every process.
func (d *symDetector) Touches() Relevance {
	return Relevance{Vars: []string{d.varName}}
}

func (d *symDetector) Window() int { return d.tracker.Window() }

func (d *symDetector) Snapshot() Snapshot {
	min, max := d.tracker.CountRange()
	return Snapshot{Possibly: d.tracker.Found(), Window: d.tracker.Window(), Min: min, Max: max, HasRange: true}
}

// FinalizeDefinitely decides Definitely over the complete computation
// from the named 0/1 variable (initial states included — a transport's
// rebuilt trace carries them as the initial events' variable values).
func (d *symDetector) FinalizeDefinitely(c *computation.Computation, tr *obs.Trace) (bool, error) {
	return symmetric.DefinitelyTraced(c, d.spec, symmetric.Truth(varTruth(c, d.varName)), tr)
}

// linearizeBool replays the named 0/1 variable as Truth flags, with 0/1
// initial values in the config.
func linearizeBool(c *computation.Computation, s pred.Spec) ([]Event, Config, error) {
	init := make([]int64, c.NumProcs())
	for p := range init {
		if c.Var(s.Var, c.Initial(computation.ProcID(p)).ID) != 0 {
			init[p] = 1
		}
	}
	events := LinearizeEvents(c, func(e computation.Event, ev *Event) {
		ev.Truth = c.Var(s.Var, e.ID) != 0
	})
	return events, Config{Procs: c.NumProcs(), Init: init}, nil
}
