package detect

import (
	"reflect"
	"testing"
)

// Two processes; online vector clocks count delivered events only (no
// initial events). Ids pack as index*procs + proc.
func TestFrontierRequires(t *testing.T) {
	f := newFrontier(2)
	// First event of process 0: no dependencies.
	if got := f.requires(Event{Proc: 0, VC: []int64{1, 0}}); got != nil {
		t.Errorf("first event: requires %v, want none", got)
	}
	// Second event of process 0 after receiving process 1's first:
	// depends on its local predecessor and on that remote event.
	got := f.requires(Event{Proc: 0, VC: []int64{2, 1}})
	want := []int64{f.id(0, 1), f.id(1, 1)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("requires = %v, want %v", got, want)
	}
}

func TestFrontierStable(t *testing.T) {
	f := newFrontier(2)
	if ids := f.stable(); ids != nil {
		t.Errorf("nothing reported: stable = %v, want nil", ids)
	}
	f.observe(Event{Proc: 0, VC: []int64{1, 0}})
	if ids := f.stable(); ids != nil {
		t.Errorf("process 1 silent: stable = %v, want nil", ids)
	}
	f.observe(Event{Proc: 1, VC: []int64{0, 1}})
	if ids := f.stable(); ids != nil {
		t.Errorf("no common past yet: stable = %v, want nil", ids)
	}
	// Process 0 hears from process 1: that remote event enters every
	// future cut and becomes prunable.
	f.observe(Event{Proc: 0, VC: []int64{2, 1}})
	if ids, want := f.stable(), []int64{f.id(1, 1)}; !reflect.DeepEqual(ids, want) {
		t.Errorf("stable = %v, want %v", ids, want)
	}
	// Process 1 hears back: process 0's first two events stabilize;
	// process 1's first was already pruned and must not repeat.
	f.observe(Event{Proc: 1, VC: []int64{2, 2}})
	if ids, want := f.stable(), []int64{f.id(0, 1), f.id(0, 2)}; !reflect.DeepEqual(ids, want) {
		t.Errorf("stable = %v, want %v", ids, want)
	}
}
