package detect

import (
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/linear"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/par"
	"github.com/distributed-predicates/gpd/internal/pred"
)

func init() {
	// Equilevel predicates (Garg & Streit) restrict a conjunction to the
	// consistent cuts at one level: equilevel(x): L holds at a cut G iff
	// exactly L non-initial events have executed in G and every process
	// satisfies x at G's frontier. Every maximal run passes through
	// exactly one cut per level, which collapses both modalities to a
	// single antichain (level-set) scan — there is no incremental
	// detector, so the family is batch-only, like CNF.
	Register(Entry{
		Family: pred.Equilevel, Modality: ModalityPossibly,
		Batch: equilevelPossibly,
	})
	Register(Entry{
		Family: pred.Equilevel, Modality: ModalityDefinitely,
		Caps:  Caps{NeedsFullTrace: true},
		Batch: equilevelDefinitely,
	})
}

// equilevelHolds evaluates the conjunction at every cut of the level
// set: workers fill disjoint chunks of the verdict slice, so the result
// is a pure function of the computation, independent of the worker
// count. All cuts are evaluated (no early exit inside the pool) — the
// short-circuit lives in the caller's ordered scan, keeping the
// equilevel.cuts_checked counter identical for every parallelism.
func equilevelHolds(c *computation.Computation, cuts []computation.Cut, name string, workers int, tr *obs.Trace) []bool {
	truth := varTruth(c, name)
	n := c.NumProcs()
	holds := make([]bool, len(cuts))
	par.Do(workers, len(cuts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			holds[i] = c.CountTrue(cuts[i], truth) == n
		}
	})
	tr.Add("equilevel.cuts_checked", int64(len(cuts)))
	return holds
}

// equilevelPossibly decides Possibly(equilevel(x): L). The conjunction
// all(x) is linear, so the least satisfying cut (linear.FindLeast)
// prunes first: if no cut satisfies the conjunction at all, or the
// least one already sits above level L, no level-L cut can satisfy it
// and the level-set sweep is skipped entirely. Otherwise the level set
// is enumerated by BFS and scanned in frontier order; the first
// satisfying cut is the witness.
func equilevelPossibly(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	locals := make(map[computation.ProcID]func(computation.Event) bool, c.NumProcs())
	for p := 0; p < c.NumProcs(); p++ {
		locals[computation.ProcID(p)] = varTruth(c, s.Var)
	}
	least, ok := linear.FindLeast(c, linear.Conjunctive(locals))
	if !ok || int64(cutLevel(least)) > s.K {
		return Result{}, nil
	}
	cuts := lattice.LevelCutsTraced(c, int(s.K), opt.Parallelism, tr)
	holds := equilevelHolds(c, cuts, s.Var, opt.Parallelism, tr)
	for i, h := range holds {
		if h {
			return Result{Holds: true, Witness: cuts[i].Clone()}, nil
		}
	}
	return Result{}, nil
}

// equilevelDefinitely decides Definitely(equilevel(x): L): every
// maximal run passes through exactly one level-L cut, so the predicate
// is inevitable iff the level set is non-empty (some run reaches level
// L — equivalently L is at most the number of non-initial events) and
// every cut in it satisfies the conjunction.
func equilevelDefinitely(c *computation.Computation, s pred.Spec, opt Options, tr *obs.Trace) (Result, error) {
	cuts := lattice.LevelCutsTraced(c, int(s.K), opt.Parallelism, tr)
	if len(cuts) == 0 {
		return Result{}, nil
	}
	holds := equilevelHolds(c, cuts, s.Var, opt.Parallelism, tr)
	for _, h := range holds {
		if !h {
			return Result{}, nil
		}
	}
	return Result{Holds: true}, nil
}

// cutLevel is the number of non-initial events executed in the cut:
// cut components count non-initial events per process, so the level is
// their sum.
func cutLevel(k computation.Cut) int {
	lvl := 0
	for _, v := range k {
		lvl += v
	}
	return lvl
}
