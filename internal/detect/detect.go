// Package detect is the detector kernel: one registry of predicate
// detectors, keyed by (family, modality), that backs every detection
// surface of the repository — the offline gpd.Detect front door, the
// streaming serving stack (internal/stream sessions), and the replay
// bridge between them.
//
// Each registry Entry binds a predicate family and modality to
//
//   - a Batch function running the family's offline algorithm on a
//     sealed computation (CPDHB for conjunctions, max-weight closures
//     for sums and channel occupancy, the sum decomposition for
//     symmetric predicates, the singular algorithms for CNF), and
//   - for incremental-capable families, a constructor for the online
//     Detector plus a Linearize function that replays a sealed
//     computation as the delivered-event stream an instrumented
//     application would have produced.
//
// A Detector consumes causally delivered events one at a time and
// latches a Possibly verdict as soon as some consistent cut of the
// observed prefix satisfies the predicate, in the spirit of Chauhan et
// al., "A Distributed Abstraction Algorithm for Online Predicate
// Detection" (arXiv:1304.4326). Detectors that also implement Finalizer
// can decide the Definitely modality once the stream is complete.
//
// Adding a family costs one constructor and one registration (see the
// per-family files in this package); transports and the public API
// resolve through the registry and never switch on the family.
package detect

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Modality selects between the weak and strong interpretation of a
// predicate over a computation.
type Modality int

const (
	// ModalityPossibly asks whether SOME consistent cut satisfies the
	// predicate.
	ModalityPossibly Modality = iota + 1
	// ModalityDefinitely asks whether EVERY run passes through a
	// satisfying cut.
	ModalityDefinitely
)

// String names the modality.
func (m Modality) String() string {
	switch m {
	case ModalityPossibly:
		return "possibly"
	case ModalityDefinitely:
		return "definitely"
	default:
		return fmt.Sprintf("modality(%d)", int(m))
	}
}

// ParseModality parses "possibly" or "definitely".
func ParseModality(s string) (Modality, error) {
	switch s {
	case "possibly":
		return ModalityPossibly, nil
	case "definitely":
		return ModalityDefinitely, nil
	default:
		return 0, fmt.Errorf("detect: unknown modality %q", s)
	}
}

// Strategy selects how a detection run computes its answer.
type Strategy int

const (
	// StrategyBatch runs the family's offline algorithm on the sealed
	// computation (the default).
	StrategyBatch Strategy = iota + 1
	// StrategyReplay drives the family's incremental detector over a
	// causal linearization of the computation — the same state machine
	// the streaming server runs — and, under ModalityDefinitely, its
	// close-time finalizer. Available only for incremental-capable
	// families; cross-checkable against StrategyBatch.
	StrategyReplay
	// StrategySlice computes the predicate's slice first — the exact
	// sublattice of satisfying cuts a regular predicate induces (Mittal
	// & Garg, "Computation slicing") — and decides from it, delegating
	// to the family's batch kernel only when the slice alone cannot
	// answer. Available only for sliceable (regular) families;
	// non-regular specs fail with an error wrapping
	// slicing.ErrNotRegular instead of silently degrading.
	StrategySlice
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyBatch:
		return "batch"
	case StrategyReplay:
		return "replay"
	case StrategySlice:
		return "slice"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Event is one causally delivered event of a monitored computation. VC
// is the vector timestamp produced by the process's online clock
// (component q = number of events of process q in the causal past,
// inclusive; initial states are not events). The payload field a
// family's detector consumes is declared by its Caps.Payload.
type Event struct {
	Proc  int     `json:"proc"`
	VC    []int64 `json:"vc"`
	Truth bool    `json:"truth,omitempty"` // PayloadTruth: the 0/1 variable
	Val   int64   `json:"val,omitempty"`   // PayloadValue / PayloadDelta
	// Var names the variable this event updates. Single-predicate
	// transports leave it empty (the session's one variable is implied);
	// multiplexed streams tag every event so the router can step only
	// the detectors whose relevance set contains the variable. Channel
	// occupancy deltas are tagged InFlightVar.
	Var string `json:"var,omitempty"`
}

// InFlightVar is the reserved variable tag of channel-occupancy events
// in multiplexed streams — the same keyword the predicate grammar uses
// for the inflight family.
const InFlightVar = "inflight"

// Payload declares which Event field an incremental detector consumes,
// so transports can fill and rebuild traces without knowing the family.
type Payload int

const (
	// PayloadNone: the family has no incremental detector.
	PayloadNone Payload = iota
	// PayloadTruth: Event.Truth carries the process's 0/1 variable.
	PayloadTruth
	// PayloadValue: Event.Val carries the variable's value after the
	// event.
	PayloadValue
	// PayloadDelta: Event.Val carries the per-event change of the
	// tracked quantity (e.g. sends − receives for channel occupancy).
	PayloadDelta
)

// Detector is one online predicate detector instance. It consumes the
// events of a single computation in any causality-respecting order:
// events of one process in local order, cross-process interleaving
// arbitrary as long as every event arrives after its causal
// predecessors (transports enforce this with holdback buffers).
//
// Step ingests one delivered event; Flush advances the detector over
// everything stepped since the last flush (detectors batch the
// expensive recomputations so a transport can amortise them over a
// whole mailbox drain) and returns the latched Possibly verdict. A
// Detector is confined to one goroutine.
type Detector interface {
	// Step consumes one causally delivered event. A non-nil error is
	// fatal for the stream (e.g. a unit-step violation).
	Step(ev Event) error
	// Flush advances the detector over the events stepped since the
	// last flush and returns the latched Possibly verdict.
	Flush() bool
	// Possibly returns the latched verdict as of the last Flush.
	Possibly() bool
	// Window returns the detector's retained state size in events.
	Window() int
	// Snapshot reports the detector's current view.
	Snapshot() Snapshot
}

// Finalizer is implemented by detectors that can decide the Definitely
// modality once the stream is complete, given the (rebuilt or original)
// sealed computation. The computation must carry the family's payload
// as the variable named in the spec the detector was built from.
type Finalizer interface {
	FinalizeDefinitely(c *computation.Computation, tr *obs.Trace) (bool, error)
}

// Traceable is implemented by detectors whose incremental work (closure
// recomputations, augmenting paths) can be accounted into a trace.
type Traceable interface {
	SetTrace(tr *obs.Trace)
}

// Relevance bounds the events that can affect a detector's verdict: a
// multiplexing router only steps the detector for events whose process
// and variable fall inside the sets. A nil Procs or Vars slice means
// "every process" / "every variable" — the sound, conservative answer.
type Relevance struct {
	// Procs lists the processes whose events the detector consumes;
	// nil means all.
	Procs []int
	// Vars lists the variables whose events the detector consumes; nil
	// means all. Channel-occupancy detectors report InFlightVar.
	Vars []string
}

// Toucher is implemented by detectors that can bound their relevance
// set. The hint must be sound: stepping the detector with only the
// events inside the set must latch the same verdict as stepping it with
// every event (routers rely on this to skip the rest).
type Toucher interface {
	Touches() Relevance
}

// TouchesOf returns d's relevance hint, or the conservative
// touches-everything Relevance for detectors that do not implement
// Toucher — such detectors are stepped on every event, which is always
// sound.
func TouchesOf(d Detector) Relevance {
	if t, ok := d.(Toucher); ok {
		return t.Touches()
	}
	return Relevance{}
}

// Snapshot is a detector's current view: the latched verdict, the
// retained window, and — for detectors tracking a quantity — the exact
// range the quantity attains over consistent cuts of the observed
// prefix.
type Snapshot struct {
	Possibly bool
	Window   int
	Min, Max int64
	HasRange bool
}

// Config carries the transport-level parameters of an incremental
// detector: everything about the session that is not part of the
// predicate itself.
type Config struct {
	// Procs is the number of processes in the monitored computation.
	Procs int
	// Involved lists the processes carrying a local predicate
	// (conjunctive only); nil means all.
	Involved []int
	// Init gives the initial per-process variable values (PayloadValue:
	// the variable; PayloadTruth: 0/1). nil means all zero/false.
	// Ignored by families whose initial states are fixed (conjunctive
	// takes them as false, inflight starts at occupancy zero).
	Init []int64
	// Retain tells the detector the transport keeps the full trace and
	// may call FinalizeDefinitely at close; detectors that need
	// per-event state for the finalizer only record it when set.
	Retain bool
}

// Caps are a registry entry's capability flags.
type Caps struct {
	// Incremental reports whether the family has an online detector
	// (New and Linearize are set) — the precondition for streaming
	// sessions and StrategyReplay.
	Incremental bool
	// NeedsFullTrace reports whether the modality needs the complete
	// computation: the verdict cannot be latched online and is decided
	// by a close-time Finalizer over the retained trace.
	NeedsFullTrace bool
	// Sliceable reports whether the family is regular under this
	// modality's truth conventions, so detection can go through the
	// predicate's slice (Entry.Slice is set) — the precondition for
	// StrategySlice and for a streaming session swapping retained
	// history for the slice frontier.
	Sliceable bool
	// Payload declares the Event field the incremental detector
	// consumes.
	Payload Payload
}

// Options carries per-run options a Batch function may consume.
type Options struct {
	// Singular selects the singular detection algorithm (CNF under
	// ModalityPossibly only).
	Singular singular.Strategy
	// Parallelism is the worker budget of the batch kernels. Batch
	// resolves the zero value to GOMAXPROCS before dispatching, so Batch
	// functions always see a concrete count; 1 runs the exact sequential
	// algorithms. Every family's parallel route is bit-identical to its
	// sequential one (same verdict, witness and work counters), so this
	// only affects wall-clock time.
	Parallelism int
}

// Result is the outcome of a batch or replay run. Transports copy the
// fields their report surfaces expose.
type Result struct {
	// Holds is the verdict under the entry's modality.
	Holds bool
	// Witness, when non-nil, is a consistent cut satisfying the
	// predicate (batch Possibly runs of the cut-constructing families;
	// replay runs do not construct cuts).
	Witness computation.Cut
	// Strategy and Combinations report the singular algorithm used and
	// the CPDHB sub-runs tried (CNF under ModalityPossibly only).
	Strategy     singular.Strategy
	Combinations int
	// Min and Max bound the tracked quantity over all consistent cuts
	// when HasRange is set.
	Min, Max int64
	HasRange bool
}
