package detect

import (
	"testing"

	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/pred"
)

// fakeDetector implements Detector but not Toucher.
type fakeDetector struct{}

func (fakeDetector) Step(Event) error   { return nil }
func (fakeDetector) Flush() bool        { return false }
func (fakeDetector) Possibly() bool     { return false }
func (fakeDetector) Window() int        { return 0 }
func (fakeDetector) Snapshot() Snapshot { return Snapshot{} }

// TestTouchesOfDefault checks the conservative touches-everything
// default for detectors without a relevance hint.
func TestTouchesOfDefault(t *testing.T) {
	r := TouchesOf(fakeDetector{})
	if r.Procs != nil || r.Vars != nil {
		t.Fatalf("default relevance = %+v, want touches-everything (nil, nil)", r)
	}
}

// TestEveryIncrementalFamilyReportsRelevance builds one detector per
// registered incremental family and checks its relevance hint names the
// spec's variable (the router's precondition for indexing it at all) and
// stays inside the spec's process set.
func TestEveryIncrementalFamilyReportsRelevance(t *testing.T) {
	const procs = 4
	specs := map[pred.Family]pred.Spec{
		pred.Conjunctive: {Family: pred.Conjunctive, Var: "x"},
		pred.Sum:         {Family: pred.Sum, Var: "x", Rel: relsum.Eq, K: 1},
		pred.Count:       {Family: pred.Count, Var: "x", Rel: relsum.Ge, K: 1},
		pred.Xor:         {Family: pred.Xor, Var: "x"},
		pred.Levels:      {Family: pred.Levels, Var: "x", Levels: []int{1}},
		pred.InFlight:    {Family: pred.InFlight, Rel: relsum.Ge, K: 1},
	}
	for _, f := range Families() {
		e, ok := Lookup(f, ModalityPossibly)
		if !ok || !e.Caps.Incremental {
			continue
		}
		s, ok := specs[f]
		if !ok {
			t.Errorf("family %v: no spec in the test table; add one", f)
			continue
		}
		d, err := e.New(s, Config{Procs: procs})
		if err != nil {
			t.Fatalf("family %v: New: %v", f, err)
		}
		r := TouchesOf(d)
		wantVar := s.Var
		if f == pred.InFlight {
			wantVar = InFlightVar
		}
		if len(r.Vars) != 1 || r.Vars[0] != wantVar {
			t.Errorf("family %v: Touches().Vars = %v, want [%q]", f, r.Vars, wantVar)
		}
		for _, p := range r.Procs {
			if p < 0 || p >= procs {
				t.Errorf("family %v: Touches().Procs contains out-of-range process %d", f, p)
			}
		}
	}
}

// TestConjunctiveTouchesInvolved checks the conjunctive hint narrows to
// the involved processes.
func TestConjunctiveTouchesInvolved(t *testing.T) {
	e, ok := Lookup(pred.Conjunctive, ModalityPossibly)
	if !ok {
		t.Fatal("conjunctive not registered")
	}
	d, err := e.New(pred.Spec{Family: pred.Conjunctive, Var: "x"}, Config{Procs: 5, Involved: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	r := TouchesOf(d)
	if len(r.Procs) != 2 || r.Procs[0] != 1 || r.Procs[1] != 3 {
		t.Fatalf("Touches().Procs = %v, want [1 3]", r.Procs)
	}
}
