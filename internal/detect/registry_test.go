package detect

import (
	"strings"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/pred"
)

// TestRegistryShape: every family the package registers must be present
// under both modalities with structurally consistent capabilities —
// this is the invariant the session layer and the replay route rely on
// when they resolve detectors without switching on the family.
func TestRegistryShape(t *testing.T) {
	fams := Families()
	if len(fams) == 0 {
		t.Fatal("no families registered")
	}
	for _, f := range fams {
		for _, m := range []Modality{ModalityPossibly, ModalityDefinitely} {
			e, ok := Lookup(f, m)
			if !ok {
				t.Errorf("%v registered under one modality but not %v", f, m)
				continue
			}
			if e.Batch == nil {
				t.Errorf("%v/%v: nil Batch escaped Register", f, m)
			}
			if e.Caps.Incremental != (e.New != nil) {
				t.Errorf("%v/%v: Incremental=%v but New=%v", f, m, e.Caps.Incremental, e.New != nil)
			}
			if e.Caps.Incremental != (e.Linearize != nil) {
				t.Errorf("%v/%v: Incremental=%v but Linearize=%v", f, m, e.Caps.Incremental, e.Linearize != nil)
			}
		}
	}

	// The streaming server's contract: these families run online.
	for _, f := range []pred.Family{pred.Conjunctive, pred.Sum, pred.Count, pred.Xor, pred.Levels, pred.InFlight} {
		if e, ok := Lookup(f, ModalityPossibly); !ok || !e.Caps.Incremental {
			t.Errorf("%v: want incremental possibly detector", f)
		}
	}
	// CNF is batch-only: possibly needs the exploding-combination search,
	// definitely the full lattice.
	if e, ok := Lookup(pred.CNF, ModalityPossibly); !ok || e.Caps.Incremental {
		t.Error("cnf: want a batch-only registration")
	}
}

// mustPanic runs f and checks it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		if msg, _ := r.(string); !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want one containing %q", r, want)
		}
	}()
	f()
}

// stubBatch satisfies Entry.Batch for throwaway registrations.
func stubBatch(c *computation.Computation, s pred.Spec, o Options, tr *obs.Trace) (Result, error) {
	return Result{}, nil
}

func TestRegisterRejectsBadEntries(t *testing.T) {
	// An out-of-range family value keeps these throwaway registrations
	// from colliding with the real ones.
	const fake = pred.Family(90)
	mustPanic(t, "no batch detector", func() {
		Register(Entry{Family: fake, Modality: ModalityPossibly})
	})
	ok := Entry{Family: fake, Modality: ModalityPossibly, Batch: stubBatch}
	Register(ok)
	mustPanic(t, "duplicate registration", func() { Register(ok) })
	mustPanic(t, "needs New and Linearize", func() {
		Register(Entry{Family: fake, Modality: ModalityDefinitely, Batch: stubBatch, Caps: Caps{Incremental: true}})
	})
}
