// Package maxflow provides Dinic's maximum-flow algorithm and, on top of
// it, the classic max-weight closure reduction. Closures (downward-closed
// sets of a DAG, i.e. order ideals) are exactly the consistent cuts of a
// computation, so this package is the engine behind the polynomial-time
// min/max computations over consistent cuts used by the relational-sum
// detectors (Chase & Garg's technique for relational predicates).
package maxflow

import (
	"math"

	"github.com/distributed-predicates/gpd/internal/obs"
)

// Graph is a flow network under construction. Nodes are dense ints; add
// edges with AddEdge and call MaxFlow.
type Graph struct {
	n    int
	head []int // head[v] = first arc index of v, -1 if none
	next []int // next arc in v's list
	to   []int
	cap  []int64

	augPaths int64 // augmenting paths found by MaxFlow
	phases   int64 // BFS level graphs built by MaxFlow
}

// NewGraph returns an empty flow network with n nodes.
func NewGraph(n int) *Graph {
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{n: n, head: head}
}

// AddEdge adds a directed edge u->v with the given capacity (and its
// residual reverse edge with capacity 0). Capacities must be non-negative.
func (g *Graph) AddEdge(u, v int, capacity int64) {
	g.addArc(u, v, capacity)
	g.addArc(v, u, 0)
}

func (g *Graph) addArc(u, v int, c int64) {
	g.to = append(g.to, v)
	g.cap = append(g.cap, c)
	g.next = append(g.next, g.head[u])
	g.head[u] = len(g.to) - 1
}

// Infinity is a capacity treated as unbounded.
const Infinity = math.MaxInt64 / 4

// MaxFlow computes the maximum s-t flow with Dinic's algorithm. The graph
// is consumed: capacities become residual capacities.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for g.bfs(s, t, level, &queue) {
		g.phases++
		copy(iter, g.head)
		for {
			f := g.dfs(s, t, Infinity, level, iter)
			if f == 0 {
				break
			}
			g.augPaths++
			total += f
		}
	}
	return total
}

// FlowStats reports the work done by MaxFlow so far: augmenting paths
// found and BFS phases (level graphs) built.
func (g *Graph) FlowStats() (augmentingPaths, phases int64) {
	return g.augPaths, g.phases
}

func (g *Graph) bfs(s, t int, level []int, queue *[]int) bool {
	for i := range level {
		level[i] = -1
	}
	q := (*queue)[:0]
	q = append(q, s)
	level[s] = 0
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for a := g.head[v]; a != -1; a = g.next[a] {
			if g.cap[a] > 0 && level[g.to[a]] < 0 {
				level[g.to[a]] = level[v] + 1
				q = append(q, g.to[a])
			}
		}
	}
	*queue = q
	return level[t] >= 0
}

func (g *Graph) dfs(v, t int, f int64, level, iter []int) int64 {
	if v == t {
		return f
	}
	for ; iter[v] != -1; iter[v] = g.next[iter[v]] {
		a := iter[v]
		w := g.to[a]
		if g.cap[a] > 0 && level[w] == level[v]+1 {
			m := f
			if g.cap[a] < m {
				m = g.cap[a]
			}
			d := g.dfs(w, t, m, level, iter)
			if d > 0 {
				g.cap[a] -= d
				g.cap[a^1] += d
				return d
			}
		}
	}
	return 0
}

// MinCutSide returns, after MaxFlow(s, t) has run, the set of nodes on the
// source side of a minimum cut (reachable from s in the residual graph) as
// a boolean mask.
func (g *Graph) MinCutSide(s int) []bool {
	side := make([]bool, g.n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := g.head[v]; a != -1; a = g.next[a] {
			if g.cap[a] > 0 && !side[g.to[a]] {
				side[g.to[a]] = true
				stack = append(stack, g.to[a])
			}
		}
	}
	return side
}

// MaxClosure solves the maximum-weight closure problem on a DAG: choose a
// set S of nodes closed under predecessors (if v is in S, every u with an
// edge u->v ... see orientation note below) maximizing the sum of weights.
//
// Orientation: edges are given as "v requires u" pairs (u must be in S
// whenever v is), i.e. u is a prerequisite of v. The empty closure is
// allowed, so the result is always >= 0 in weight terms only when positive
// weights exist; the returned value is the best closure weight (possibly 0
// for the empty closure), and the mask marks chosen nodes.
func MaxClosure(weights []int64, requires [][2]int) (int64, []bool) {
	return MaxClosureTraced(weights, requires, nil)
}

// MaxClosureTraced is MaxClosure, additionally accumulating work counters
// (augmenting paths, BFS phases, graph and closure sizes) into the trace.
// A nil trace is free.
func MaxClosureTraced(weights []int64, requires [][2]int, tr *obs.Trace) (int64, []bool) {
	return maxClosure(weights, requires, 1, tr)
}
