package maxflow

import (
	"sync"

	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/par"
)

// MaxFlowPar is MaxFlow with each BFS phase (level-graph construction)
// spread over a bounded worker pool. BFS levels are shortest distances,
// so they do not depend on visit order within a level — the level
// graph, the blocking-flow search over it, and therefore the flow value
// and all counters are identical for every worker count. workers <= 1
// runs the exact sequential algorithm.
func (g *Graph) MaxFlowPar(s, t, workers int) int64 {
	if workers <= 1 {
		return g.MaxFlow(s, t)
	}
	if s == t {
		return 0
	}
	var total int64
	level := make([]int, g.n)
	iter := make([]int, g.n)
	for g.bfsPar(s, t, level, workers) {
		g.phases++
		copy(iter, g.head)
		for {
			f := g.dfs(s, t, Infinity, level, iter)
			if f == 0 {
				break
			}
			g.augPaths++
			total += f
		}
	}
	return total
}

// bfsPar builds the residual level graph level-synchronously: workers
// scan disjoint chunks of the current frontier for unlabelled residual
// neighbours (pure reads), and a sequential merge labels them in
// frontier order. Small frontiers run inline via par.Do's chunk floor.
func (g *Graph) bfsPar(s, t int, level []int, workers int) bool {
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	frontier := []int{s}
	for d := 1; len(frontier) > 0; d++ {
		out := make([][]int, len(frontier))
		par.Do(workers, len(frontier), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for a := g.head[frontier[i]]; a != -1; a = g.next[a] {
					if g.cap[a] > 0 && level[g.to[a]] < 0 {
						out[i] = append(out[i], g.to[a])
					}
				}
			}
		})
		var next []int
		for _, cands := range out {
			for _, w := range cands {
				if level[w] < 0 {
					level[w] = d
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return level[t] >= 0
}

// MaxClosureParTraced is MaxClosureTraced with the flow phases run on a
// bounded worker pool. Identical value, mask and counters for every
// worker count.
func MaxClosureParTraced(weights []int64, requires [][2]int, workers int, tr *obs.Trace) (int64, []bool) {
	return maxClosure(weights, requires, workers, tr)
}

// MaxClosurePairTraced solves the two closure problems behind every sum
// range — the maximum-weight closure of weights and of their negation
// (whose value negated is the minimum) — splitting the worker budget
// across the two independent flow computations when workers > 1. The
// trace is shared: Trace is mutex-guarded and counter addition is
// commutative, and both closures always run to completion, so totals
// are deterministic. Returns the weights closure first, the negated one
// second, in the same order the sequential callers computed them.
func MaxClosurePairTraced(weights []int64, requires [][2]int, workers int, tr *obs.Trace) (best int64, bestMask []bool, negBest int64, negMask []bool) {
	neg := make([]int64, len(weights))
	for i, w := range weights {
		neg[i] = -w
	}
	if workers <= 1 {
		best, bestMask = MaxClosureTraced(weights, requires, tr)
		negBest, negMask = MaxClosureTraced(neg, requires, tr)
		return
	}
	half := workers / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		negBest, negMask = maxClosure(neg, requires, half, tr)
	}()
	best, bestMask = maxClosure(weights, requires, workers-half, tr)
	wg.Wait()
	return
}

// maxClosure is the single implementation behind MaxClosureTraced and
// its parallel variants: the standard min-cut reduction, with the flow
// run sequentially or with parallel BFS phases depending on workers.
func maxClosure(weights []int64, requires [][2]int, workers int, tr *obs.Trace) (int64, []bool) {
	n := len(weights)
	// Standard reduction: source -> v with cap w(v) for positive
	// weights, v -> sink with cap -w(v) for negative weights, and an
	// infinite edge v -> u for every requirement (v requires u). The
	// min cut separates the chosen closure (source side) from the rest.
	g := NewGraph(n + 2)
	s, t := n, n+1
	var totalPos int64
	for v, w := range weights {
		if w > 0 {
			g.AddEdge(s, v, w)
			totalPos += w
		} else if w < 0 {
			g.AddEdge(v, t, -w)
		}
	}
	for _, r := range requires {
		v, u := r[0], r[1]
		g.AddEdge(v, u, Infinity)
	}
	flow := g.MaxFlowPar(s, t, workers)
	side := g.MinCutSide(s)
	mask := make([]bool, n)
	copy(mask, side[:n])
	if tr != nil {
		var size int64
		for _, in := range mask {
			if in {
				size++
			}
		}
		tr.Add("maxflow.augmenting_paths", g.augPaths)
		tr.Add("maxflow.bfs_phases", g.phases)
		tr.Add("maxflow.closures", 1)
		tr.Add("maxflow.closure_size", size)
		tr.Add("maxflow.graph_nodes", int64(n))
		tr.Add("maxflow.graph_arcs", int64(len(g.to)))
	}
	return totalPos - flow, mask
}
