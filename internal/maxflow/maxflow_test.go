package maxflow

import (
	"math/rand"
	"testing"
)

func TestMaxFlowSimple(t *testing.T) {
	// s -> a -> t and s -> b -> t, unit capacities.
	g := NewGraph(4)
	s, a, b, tt := 0, 1, 2, 3
	g.AddEdge(s, a, 1)
	g.AddEdge(a, tt, 1)
	g.AddEdge(s, b, 1)
	g.AddEdge(b, tt, 1)
	if got := g.MaxFlow(s, tt); got != 2 {
		t.Fatalf("MaxFlow = %d, want 2", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// s -> a (10) -> b (3) -> t (10): flow limited by the middle edge.
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 3 {
		t.Fatalf("MaxFlow = %d, want 3", got)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// CLRS figure: max flow 23.
	g := NewGraph(6)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v3, tt, 20)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v4, tt, 4)
	if got := g.MaxFlow(s, tt); got != 23 {
		t.Fatalf("MaxFlow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("MaxFlow = %d, want 0", got)
	}
	if got := NewGraph(2).MaxFlow(0, 0); got != 0 {
		t.Fatalf("MaxFlow(s,s) = %d, want 0", got)
	}
}

func TestMinCutSide(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 10)
	g.MaxFlow(0, 3)
	side := g.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Fatalf("MinCutSide = %v, want {0,1}", side)
	}
}

// bruteClosure enumerates all subsets.
func bruteClosure(weights []int64, requires [][2]int) int64 {
	n := len(weights)
	best := int64(0) // empty closure
	for mask := 1; mask < 1<<n; mask++ {
		ok := true
		for _, r := range requires {
			if mask&(1<<r[0]) != 0 && mask&(1<<r[1]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var w int64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				w += weights[v]
			}
		}
		if w > best {
			best = w
		}
	}
	return best
}

func TestMaxClosureAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(rng.Intn(21) - 10)
		}
		var requires [][2]int
		// Random DAG edges v -> u with u < v (so requirements are
		// acyclic).
		for v := 1; v < n; v++ {
			for u := 0; u < v; u++ {
				if rng.Intn(3) == 0 {
					requires = append(requires, [2]int{v, u})
				}
			}
		}
		want := bruteClosure(weights, requires)
		got, mask := MaxClosure(weights, requires)
		if got != want {
			t.Fatalf("trial %d: MaxClosure = %d, brute = %d (w=%v req=%v)",
				trial, got, want, weights, requires)
		}
		// The returned mask must be a valid closure achieving the value.
		var w int64
		for v := range mask {
			if mask[v] {
				w += weights[v]
			}
		}
		if w != got {
			t.Fatalf("trial %d: mask weight %d != reported %d", trial, w, got)
		}
		for _, r := range requires {
			if mask[r[0]] && !mask[r[1]] {
				t.Fatalf("trial %d: mask violates requirement %v", trial, r)
			}
		}
	}
}

func TestMaxClosureAllNegative(t *testing.T) {
	got, mask := MaxClosure([]int64{-1, -5}, nil)
	if got != 0 {
		t.Fatalf("MaxClosure = %d, want 0 (empty closure)", got)
	}
	if mask[0] || mask[1] {
		t.Fatalf("mask = %v, want empty", mask)
	}
}

func TestMaxClosureChain(t *testing.T) {
	// 2 requires 1 requires 0; weights 5, -3, 4: take all = 6; take {0}
	// = 5; best 6.
	got, _ := MaxClosure([]int64{5, -3, 4}, [][2]int{{1, 0}, {2, 1}})
	if got != 6 {
		t.Fatalf("MaxClosure = %d, want 6", got)
	}
}
