package maxflow

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/distributed-predicates/gpd/internal/obs"
)

// randomFlowInstance builds a reproducible random DAG-ish flow network
// builder: calling it twice yields two identical graphs, which matters
// because MaxFlow consumes capacities.
func randomFlowInstance(seed int64, n int) func() *Graph {
	type edge struct {
		u, v int
		c    int64
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []edge
	for i := 0; i < n*4; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, edge{u, v, int64(1 + rng.Intn(20))})
	}
	return func() *Graph {
		g := NewGraph(n)
		for _, e := range edges {
			g.AddEdge(e.u, e.v, e.c)
		}
		return g
	}
}

func TestMaxFlowParMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		build := randomFlowInstance(seed, 30)
		ref := build()
		want := ref.MaxFlow(0, 29)
		wantAug, wantPhases := ref.FlowStats()
		for _, w := range []int{1, 2, 4, 8} {
			g := build()
			if got := g.MaxFlowPar(0, 29, w); got != want {
				t.Fatalf("seed %d w=%d: flow %d, want %d", seed, w, got, want)
			}
			aug, phases := g.FlowStats()
			if aug != wantAug || phases != wantPhases {
				t.Fatalf("seed %d w=%d: stats (%d,%d), want (%d,%d)", seed, w, aug, phases, wantAug, wantPhases)
			}
			if !reflect.DeepEqual(g.MinCutSide(0), ref.MinCutSide(0)) {
				t.Fatalf("seed %d w=%d: min-cut side differs", seed, w)
			}
		}
	}
}

// randomClosureInstance: weights with mixed signs plus a sprinkling of
// requirement edges.
func randomClosureInstance(seed int64, n int) ([]int64, [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = int64(rng.Intn(21) - 10)
	}
	var requires [][2]int
	for i := 0; i < n*2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			requires = append(requires, [2]int{u, v})
		}
	}
	return weights, requires
}

func TestMaxClosureParMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		weights, requires := randomClosureInstance(seed, 40)
		refTr := obs.NewTrace()
		wantVal, wantMask := MaxClosureTraced(weights, requires, refTr)
		for _, w := range []int{1, 2, 4, 8} {
			tr := obs.NewTrace()
			val, mask := MaxClosureParTraced(weights, requires, w, tr)
			if val != wantVal || !reflect.DeepEqual(mask, wantMask) {
				t.Fatalf("seed %d w=%d: closure (%d, %v), want (%d, %v)", seed, w, val, mask, wantVal, wantMask)
			}
			if !reflect.DeepEqual(tr.Report().Counters, refTr.Report().Counters) {
				t.Fatalf("seed %d w=%d: counters %v, want %v", seed, w, tr.Report().Counters, refTr.Report().Counters)
			}
		}
	}
}

func TestMaxClosurePairMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		weights, requires := randomClosureInstance(seed, 40)
		refTr := obs.NewTrace()
		wantBest, wantBestMask, wantNeg, wantNegMask := MaxClosurePairTraced(weights, requires, 1, refTr)
		for _, w := range []int{2, 4, 8} {
			tr := obs.NewTrace()
			best, bestMask, neg, negMask := MaxClosurePairTraced(weights, requires, w, tr)
			if best != wantBest || neg != wantNeg ||
				!reflect.DeepEqual(bestMask, wantBestMask) || !reflect.DeepEqual(negMask, wantNegMask) {
				t.Fatalf("seed %d w=%d: pair (%d,%d), want (%d,%d)", seed, w, best, neg, wantBest, wantNeg)
			}
			if !reflect.DeepEqual(tr.Report().Counters, refTr.Report().Counters) {
				t.Fatalf("seed %d w=%d: counters %v, want %v", seed, w, tr.Report().Counters, refTr.Report().Counters)
			}
		}
	}
}
