package mux

import (
	"errors"
	"testing"

	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/detect"
	"github.com/distributed-predicates/gpd/internal/pred"
	"github.com/distributed-predicates/gpd/internal/slicing"
)

func conjReg(id, v string) Registration {
	return Registration{ID: id, Spec: pred.Spec{Family: pred.Conjunctive, Var: v}, Slice: true}
}

// TestSlicerSharedAcrossPredicates pins the refcounting economics: two
// predicates on one variable pay for one frontier, and the slicer
// survives until the last sharer detaches.
func TestSlicerSharedAcrossPredicates(t *testing.T) {
	g := NewGroup(2)
	if err := g.Register(conjReg("a", "x")); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(conjReg("b", "x")); err != nil {
		t.Fatal(err)
	}
	if got := len(g.slicers); got != 1 {
		t.Fatalf("two same-variable registrations built %d slicers, want 1", got)
	}
	if g.slicers["x"].refs != 2 {
		t.Fatalf("shared slicer refs = %d, want 2", g.slicers["x"].refs)
	}

	evs := []detect.Event{
		{Proc: 0, VC: []int64{1, 0}, Var: "x", Truth: true},
		{Proc: 1, VC: []int64{0, 1}, Var: "x", Truth: true},
	}
	for _, ev := range evs {
		if err := g.Step(ev); err != nil {
			t.Fatal(err)
		}
	}
	g.Flush()
	if err := g.SliceErr(); err != nil {
		t.Fatalf("slice error: %v", err)
	}
	if !g.Slicer("x").Possibly() {
		t.Fatal("shared slicer missed the satisfying cut")
	}
	if g.SliceRetained() == 0 {
		t.Fatal("slicer retains nothing while the stream is open")
	}

	if err := g.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if g.Slicer("x") == nil {
		t.Fatal("slicer freed while a sharer remains")
	}
	if err := g.Unregister("b"); err != nil {
		t.Fatal(err)
	}
	if g.Slicer("x") != nil {
		t.Fatal("slicer not freed after the last sharer detached")
	}
}

// TestSlicerRelevanceFilter pins the truth routing: only events tagged
// with the slicer's variable move the predicate's truth; other events
// carry the last value forward even when their own Truth flag is set.
func TestSlicerRelevanceFilter(t *testing.T) {
	g := NewGroup(2)
	if err := g.Register(conjReg("a", "x")); err != nil {
		t.Fatal(err)
	}
	// Process 0 speaks only about variable y (Truth set, but irrelevant);
	// process 1 has a true x-event. Without the filter the y-event's Truth
	// would leak into the slice and fabricate a satisfying cut.
	evs := []detect.Event{
		{Proc: 0, VC: []int64{1, 0}, Var: "y", Truth: true},
		{Proc: 1, VC: []int64{0, 1}, Var: "x", Truth: true},
	}
	for _, ev := range evs {
		if err := g.Step(ev); err != nil {
			t.Fatal(err)
		}
	}
	g.Flush()
	if g.Slicer("x").Possibly() {
		t.Fatal("irrelevant event's Truth leaked into the slice")
	}
	// A real x-event on process 0 completes the conjunction.
	if err := g.Step(detect.Event{Proc: 0, VC: []int64{2, 0}, Var: "x", Truth: true}); err != nil {
		t.Fatal(err)
	}
	g.Flush()
	if !g.Slicer("x").Possibly() {
		t.Fatal("satisfying cut missed after the relevant event arrived")
	}
}

// TestSlicerAttachAfterEventsFails: the slicer needs each process's full
// local order from the start; a sliced registration arriving mid-stream
// must be rejected, not silently misaligned.
func TestSlicerAttachAfterEventsFails(t *testing.T) {
	g := NewGroup(2)
	if err := g.Step(detect.Event{Proc: 0, VC: []int64{1, 0}, Var: "x", Truth: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(conjReg("late", "x")); err == nil {
		t.Fatal("mid-stream sliced registration accepted")
	}
	// The same registration without Slice is fine.
	r := conjReg("plain", "x")
	r.Slice = false
	if err := g.Register(r); err != nil {
		t.Fatalf("unsliced mid-stream registration rejected: %v", err)
	}
}

// TestSlicerRejectsNonRegular: non-regular families cannot be sliced and
// the error says so via the sentinel.
func TestSlicerRejectsNonRegular(t *testing.T) {
	g := NewGroup(2)
	err := g.Register(Registration{
		ID:    "s",
		Spec:  pred.Spec{Family: pred.Sum, Var: "x", Rel: relsum.Eq, K: 1},
		Slice: true,
	})
	if err == nil {
		t.Fatal("sliced sum registration accepted")
	}
	if !errors.Is(err, slicing.ErrNotRegular) {
		t.Fatalf("error %v does not unwrap to ErrNotRegular", err)
	}
}

// TestSlicerInvolvedMismatch: sharers must agree on the involved set —
// widening it silently would change which cuts the shared slice admits.
func TestSlicerInvolvedMismatch(t *testing.T) {
	g := NewGroup(2)
	r := conjReg("a", "x")
	r.Involved = []int{0}
	if err := g.Register(r); err != nil {
		t.Fatal(err)
	}
	r2 := conjReg("b", "x")
	r2.Involved = []int{1}
	if err := g.Register(r2); err == nil {
		t.Fatal("conflicting involved sets accepted on one shared slicer")
	}
}

// TestSlicerSealCompactsEverything: sealing releases the whole frontier,
// and the compaction ledger accounts every delivered event exactly once.
func TestSlicerSealCompactsEverything(t *testing.T) {
	g := NewGroup(2)
	if err := g.Register(conjReg("a", "x")); err != nil {
		t.Fatal(err)
	}
	n := int64(0)
	for i := int64(1); i <= 6; i++ {
		evs := []detect.Event{
			{Proc: 0, VC: []int64{i, 0}, Var: "x", Truth: i%2 == 0},
			{Proc: 1, VC: []int64{0, i}, Var: "x", Truth: i%2 == 1},
		}
		for _, ev := range evs {
			if err := g.Step(ev); err != nil {
				t.Fatal(err)
			}
			n++
		}
		g.Flush()
	}
	g.SealSlicers()
	if got := g.SliceRetained(); got != 0 {
		t.Fatalf("retained %d events after seal, want 0", got)
	}
	if got := g.SliceCompacted(); got != n {
		t.Fatalf("compaction ledger %d, want every delivered event (%d)", got, n)
	}
}
