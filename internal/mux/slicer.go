package mux

// Shared per-variable incremental slicers: a group whose predicates are
// regular can swap unbounded history for the slice frontier. Every
// delivered event is observed by every attached slicer — the slicer
// needs each process's full local order to keep its clocks aligned —
// but the truth it records is relevance-filtered: only events tagged
// with the slicer's variable move the predicate's truth, everything
// else carries the process's last value forward. Predicates on the same
// variable share one slicer, so the retained frontier is paid once per
// variable, not once per predicate.

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/detect"
	"github.com/distributed-predicates/gpd/internal/slicing"
)

// groupSlicer is one shared incremental slicer and its truth-routing
// state.
type groupSlicer struct {
	sl       *slicing.IncrementalSlicer
	routeVar string // "" = every event carries the truth (all-events sessions)
	involved []bool // nil = every process carries a conjunct
	last     []bool // carried-forward truth per process
	refs     int    // predicates sharing this slicer
}

// observe feeds one causally delivered event into the slicer under the
// relevance filter.
func (gs *groupSlicer) observe(ev detect.Event) error {
	truth := gs.last[ev.Proc]
	if gs.routeVar == "" || ev.Var == gs.routeVar {
		truth = ev.Truth
		gs.last[ev.Proc] = truth
	}
	if gs.involved != nil && !gs.involved[ev.Proc] {
		truth = true // uninvolved processes hold no conjunct
	}
	return gs.sl.Observe(ev.Proc, ev.VC, truth)
}

// involvedSet normalizes an involved-process list to a boolean vector;
// nil (all processes) stays nil.
func involvedSet(involved []int, procs int) []bool {
	if len(involved) == 0 {
		return nil
	}
	set := make([]bool, procs)
	all := true
	for _, p := range involved {
		if p >= 0 && p < procs {
			set[p] = true
		}
	}
	for _, v := range set {
		if !v {
			all = false
			break
		}
	}
	if all {
		return nil
	}
	return set
}

func sameInvolved(a, b []bool) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AttachSlicer attaches (or takes another reference on) the shared
// incremental slicer for one variable. The slicer must see the stream
// from its start — each process's full local order is what keeps its
// clocks aligned — so attachment is only legal before any event has
// arrived. Predicates sharing a variable must agree on the involved
// set; a second attachment with a different one is rejected rather
// than silently widened.
func (g *Group) AttachSlicer(routeVar string, involved []int) error {
	if g.delivery.Delivered() > 0 || g.delivery.Holdback() > 0 {
		return fmt.Errorf("mux: slicers attach before any events; %d already delivered", g.delivery.Delivered())
	}
	inv := involvedSet(involved, g.procs)
	if gs := g.slicers[routeVar]; gs != nil {
		if !sameInvolved(gs.involved, inv) {
			return fmt.Errorf("mux: slicer for variable %q already attached with a different involved set", routeVar)
		}
		gs.refs++
		return nil
	}
	initial := make([]bool, g.procs)
	for p := range initial {
		initial[p] = inv != nil && !inv[p] // uninvolved: vacuously true from the start
	}
	if g.slicers == nil {
		g.slicers = make(map[string]*groupSlicer)
	}
	g.slicers[routeVar] = &groupSlicer{
		sl:       slicing.NewIncrementalSlicer(g.procs, initial),
		routeVar: routeVar,
		involved: inv,
		last:     make([]bool, g.procs),
		refs:     1,
	}
	return nil
}

// DetachSlicer drops one reference on a variable's shared slicer,
// freeing it when the last sharer detaches.
func (g *Group) DetachSlicer(routeVar string) {
	gs := g.slicers[routeVar]
	if gs == nil {
		return
	}
	gs.refs--
	if gs.refs <= 0 {
		delete(g.slicers, routeVar)
	}
}

// observeSlicers feeds one delivered event into every attached slicer.
// A failed observation (a clock the causal delivery should have made
// impossible) latches the group's slice error.
func (g *Group) observeSlicers(ev detect.Event) {
	if g.sliceErr != nil {
		return
	}
	for _, gs := range g.slicers {
		if err := gs.observe(ev); err != nil && g.sliceErr == nil {
			g.sliceErr = fmt.Errorf("mux: slice maintenance: %w", err)
		}
	}
}

// compactSlicers runs one compaction pass over every attached slicer
// (the Flush-path compaction hook) and accounts the freed events.
func (g *Group) compactSlicers() {
	for _, gs := range g.slicers {
		g.sliceCompacted += gs.sl.Compact()
	}
}

// SealSlicers seals every attached slicer — the stream is complete, so
// stalled advancements become exclusions — and runs a final compaction.
func (g *Group) SealSlicers() {
	for _, gs := range g.slicers {
		gs.sl.Seal()
		g.sliceCompacted += gs.sl.Compact()
	}
}

// Slicer returns the shared incremental slicer attached for a variable
// (nil when none is).
func (g *Group) Slicer(routeVar string) *slicing.IncrementalSlicer {
	if gs := g.slicers[routeVar]; gs != nil {
		return gs.sl
	}
	return nil
}

// SliceErr returns the sticky slice-maintenance error, if any.
func (g *Group) SliceErr() error { return g.sliceErr }

// SliceRetained returns the events currently held across all attached
// slicers — the frontier a sliced session retains instead of history.
func (g *Group) SliceRetained() int {
	n := 0
	for _, gs := range g.slicers {
		n += gs.sl.Retained()
	}
	return n
}

// SliceCompacted returns the cumulative events freed by slice
// compaction across all slicers the group has ever run.
func (g *Group) SliceCompacted() int64 { return g.sliceCompacted }
