package mux

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/detect"
	"github.com/distributed-predicates/gpd/internal/pred"
)

// --- Delivery ---

func ev(proc int, vc ...int64) detect.Event {
	return detect.Event{Proc: proc, VC: vc}
}

func TestDeliveryReordersAndDedupes(t *testing.T) {
	var got []detect.Event
	d := NewDelivery(2, func(e detect.Event) { got = append(got, e) })

	// Process 1's second event depends on process 0's first; deliver the
	// dependent event first and let the holdback absorb it.
	must := func(e detect.Event) {
		t.Helper()
		if err := d.Step(e); err != nil {
			t.Fatal(err)
		}
	}
	must(ev(1, 1, 2)) // needs (1,1) and (0,1)
	if len(got) != 0 || d.Holdback() != 1 {
		t.Fatalf("premature delivery: %d delivered, %d held", len(got), d.Holdback())
	}
	must(ev(1, 0, 1))
	must(ev(1, 0, 1)) // duplicate: idempotent
	if len(got) != 1 {
		t.Fatalf("after (1,[0 1]): %d delivered, want 1", len(got))
	}
	must(ev(0, 1, 0)) // unblocks (1,[1 2])
	if len(got) != 3 || d.Holdback() != 0 {
		t.Fatalf("after drain: %d delivered (want 3), %d held (want 0)", len(got), d.Holdback())
	}
	wantOrder := [][2]int64{{1, 1}, {0, 1}, {1, 2}}
	for i, w := range wantOrder {
		if int64(got[i].Proc) != w[0] || got[i].VC[got[i].Proc] != w[1] {
			t.Fatalf("delivery %d = proc %d own %d, want proc %d own %d",
				i, got[i].Proc, got[i].VC[got[i].Proc], w[0], w[1])
		}
	}
	if d.Delivered() != 3 || d.DeliveredOn(1) != 2 {
		t.Fatalf("Delivered=%d DeliveredOn(1)=%d", d.Delivered(), d.DeliveredOn(1))
	}
}

func TestDeliveryRejectsMalformed(t *testing.T) {
	d := NewDelivery(2, func(detect.Event) {})
	if err := d.Step(ev(5, 1, 0)); err == nil {
		t.Fatal("out-of-range process accepted")
	}
	d = NewDelivery(2, func(detect.Event) {})
	if err := d.Step(ev(0, 1)); err == nil {
		t.Fatal("short timestamp accepted")
	}
	if err := d.Step(ev(0, 1, 0)); err == nil {
		t.Fatal("sticky error not returned")
	}
}

// --- Projector ---

func TestProjectorClocks(t *testing.T) {
	// Two processes; variable v has events at local indices 1,3 of p0 and
	// 2 of p1 (other indices belong to other variables).
	pj := newProjector(2)
	if got := pj.project(0, []int64{1, 0}); got[0] != 1 || got[1] != 0 {
		t.Fatalf("first v-event of p0: %v", got)
	}
	// p1's v-event at local index 2 has seen p0's index 2 (so both
	// v-events ≤ 2 of p0... only index 1 qualifies).
	if got := pj.project(1, []int64{2, 2}); got[0] != 1 || got[1] != 1 {
		t.Fatalf("v-event of p1: %v", got)
	}
	if got := pj.project(0, []int64{3, 0}); got[0] != 2 || got[1] != 0 {
		t.Fatalf("second v-event of p0: %v", got)
	}
	// Prune below the floor [1,0]: p0's index-1 entry folds into base.
	pj.prune([]int64{1, 0})
	if pj.retained() != 2 {
		t.Fatalf("retained = %d after prune, want 2", pj.retained())
	}
	// Later event still projects correctly via the base offset.
	if got := pj.project(1, []int64{3, 3}); got[0] != 2 || got[1] != 2 {
		t.Fatalf("post-prune projection: %v", got)
	}
}

// --- Randomized agreement with the offline oracle ---

// tag records what one event of the generated computation carries on the
// multiplexed stream.
type tag struct {
	varName string
	val     int64 // variable value (bool vars) or occupancy delta
}

// randomComputation builds a multi-variable computation with messages:
// internal events flip random 0/1 variables, message pairs move channel
// occupancy. It returns the sealed computation (with carried-forward
// variable tables, so offline oracles see every variable at every event)
// and the multiplexed event stream in causal order.
func randomComputation(rng *rand.Rand, procs, rounds int, vars []string) (*computation.Computation, []detect.Event) {
	c := computation.New()
	for p := 0; p < procs; p++ {
		c.AddProcess()
	}
	tags := make(map[computation.EventID]tag)
	for i := 0; i < rounds; i++ {
		p := computation.ProcID(rng.Intn(procs))
		if rng.Float64() < 0.2 {
			q := computation.ProcID(rng.Intn(procs))
			for q == p {
				q = computation.ProcID(rng.Intn(procs))
			}
			send := c.AddInternal(p)
			recv := c.AddInternal(q)
			if err := c.AddMessage(send, recv); err != nil {
				panic(err)
			}
			tags[send] = tag{varName: detect.InFlightVar, val: 1}
			tags[recv] = tag{varName: detect.InFlightVar, val: -1}
			continue
		}
		id := c.AddInternal(p)
		tags[id] = tag{varName: vars[rng.Intn(len(vars))], val: int64(rng.Intn(2))}
	}
	// Carried-forward variable tables: every event carries every
	// variable's current value on its process (initials are zero).
	for p := 0; p < procs; p++ {
		cur := make(map[string]int64, len(vars))
		for _, id := range c.ProcEvents(computation.ProcID(p)) {
			if tg, ok := tags[id]; ok && tg.varName != detect.InFlightVar {
				cur[tg.varName] = tg.val
			}
			for _, v := range vars {
				c.SetVar(v, id, cur[v])
			}
		}
	}
	if err := c.Seal(); err != nil {
		panic(err)
	}
	var stream []detect.Event
	for _, id := range c.Topo() {
		e := c.Event(id)
		if e.IsInitial() {
			continue
		}
		clk := c.Clock(id)
		vc := make([]int64, len(clk))
		for q, v := range clk {
			if v >= 1 {
				vc[q] = int64(v) - 1
			}
		}
		out := detect.Event{Proc: int(e.Proc), VC: vc}
		if tg, ok := tags[id]; ok {
			out.Var = tg.varName
			out.Val = tg.val
			out.Truth = tg.varName != detect.InFlightVar && tg.val != 0
		}
		stream = append(stream, out)
	}
	return c, stream
}

// TestMuxAgreesWithOracle is the soundness test of the relevance index:
// for every incremental family, a var-routed predicate — stepped only on
// its variable's events, under projected timestamps — must latch exactly
// the verdict the offline batch algorithm computes on the full
// computation (which is also what stepping the detector on every event
// yields). Failures here mean the projection leaks or drops causal
// constraints.
func TestMuxAgreesWithOracle(t *testing.T) {
	specs := []pred.Spec{
		{Family: pred.Conjunctive, Var: "v0"},
		{Family: pred.Sum, Var: "v0", Rel: relsum.Ge, K: 3},
		{Family: pred.Sum, Var: "v1", Rel: relsum.Eq, K: 2},
		{Family: pred.Count, Var: "v1", Rel: relsum.Ge, K: 2},
		{Family: pred.Xor, Var: "v2"},
		{Family: pred.Levels, Var: "v2", Levels: []int{3}},
		{Family: pred.InFlight, Rel: relsum.Ge, K: 2},
		{Family: pred.InFlight, Rel: relsum.Eq, K: 0},
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, stream := randomComputation(rng, 4, 120, []string{"v0", "v1", "v2"})
		g := NewGroup(4)
		for i, s := range specs {
			id := fmt.Sprintf("p%d", i)
			if err := g.Register(Registration{ID: id, Spec: s}); err != nil {
				t.Fatalf("seed %d: register %v: %v", seed, s, err)
			}
		}
		for i, e := range stream {
			if err := g.Step(e); err != nil {
				t.Fatalf("seed %d: step %d: %v", seed, i, err)
			}
			if i%16 == 15 {
				g.Flush()
			}
		}
		g.Flush()
		if g.Err() != nil {
			t.Fatalf("seed %d: group error: %v", seed, g.Err())
		}
		if g.Holdback() != 0 {
			t.Fatalf("seed %d: %d events stuck in holdback", seed, g.Holdback())
		}
		st := g.Stats()
		if st.Skipped == 0 {
			t.Errorf("seed %d: relevance index skipped nothing over %d deliveries", seed, st.Delivered)
		}
		for i, s := range specs {
			id := fmt.Sprintf("p%d", i)
			res, err := detect.Batch(c, s, detect.ModalityPossibly, detect.Options{}, nil)
			if err != nil {
				t.Fatalf("seed %d: oracle %v: %v", seed, s, err)
			}
			if got := g.Possibly(id); got != res.Holds {
				t.Errorf("seed %d: %v: mux possibly=%v, oracle=%v (steps=%d skipped=%d)",
					seed, s, got, res.Holds, st.Steps, st.Skipped)
			}
		}
	}
}

// TestConjunctiveInvolvedRouting checks the process filter from the
// relevance hint: events of non-involved processes are skipped, and the
// verdict matches the conjunction over the involved processes alone.
func TestConjunctiveInvolvedRouting(t *testing.T) {
	g := NewGroup(3)
	err := g.Register(Registration{
		ID:       "conj",
		Spec:     pred.Spec{Family: pred.Conjunctive, Var: "x"},
		Involved: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	step := func(e detect.Event) {
		t.Helper()
		if err := g.Step(e); err != nil {
			t.Fatal(err)
		}
	}
	// Process 2 is never true but also not involved.
	step(detect.Event{Proc: 2, VC: []int64{0, 0, 1}, Var: "x", Truth: false})
	// Concurrent true events on the involved processes.
	step(detect.Event{Proc: 0, VC: []int64{1, 0, 0}, Var: "x", Truth: true})
	step(detect.Event{Proc: 1, VC: []int64{0, 1, 0}, Var: "x", Truth: true})
	if !g.Flush() {
		t.Fatal("conjunction over involved processes should latch")
	}
	st := g.Stats()
	if st.Steps != 2 {
		t.Fatalf("steps = %d, want 2 (process 2's event filtered)", st.Steps)
	}
}

// TestMidStreamRegistration checks registration-cut semantics: a
// predicate registered mid-stream is seeded with the variable's last
// delivered values and observes only the suffix.
func TestMidStreamRegistration(t *testing.T) {
	g := NewGroup(2)
	step := func(e detect.Event) {
		t.Helper()
		if err := g.Step(e); err != nil {
			t.Fatal(err)
		}
	}
	step(detect.Event{Proc: 0, VC: []int64{1, 0}, Var: "y", Val: 5})
	step(detect.Event{Proc: 1, VC: []int64{0, 1}, Var: "y", Val: 5})
	g.Flush()

	// Seeded baseline 5+5=10 satisfies ≥10 at the registration cut.
	if err := g.Register(Registration{ID: "ge10", Tenant: "a",
		Spec: pred.Spec{Family: pred.Sum, Var: "y", Rel: relsum.Ge, K: 10}}); err != nil {
		t.Fatal(err)
	}
	if !g.Possibly("ge10") {
		t.Fatal("ge10 should latch from the seeded registration cut")
	}
	// ≥12 needs the suffix.
	if err := g.Register(Registration{ID: "ge12", Tenant: "a",
		Spec: pred.Spec{Family: pred.Sum, Var: "y", Rel: relsum.Ge, K: 12}}); err != nil {
		t.Fatal(err)
	}
	if g.Possibly("ge12") {
		t.Fatal("ge12 latched prematurely")
	}
	step(detect.Event{Proc: 0, VC: []int64{2, 0}, Var: "y", Val: 7})
	g.Flush()
	if !g.Possibly("ge12") {
		t.Fatal("ge12 should latch after y rises to 7+5")
	}
	ups := g.Drain()
	if len(ups) != 2 {
		t.Fatalf("drained %d updates, want 2 (ge10 at registration, ge12 after flush)", len(ups))
	}
	for _, u := range ups {
		if u.Seq != 1 || !u.Possibly || u.Tenant != "a" {
			t.Fatalf("unexpected update %+v", u)
		}
	}
	if g.Drain() != nil {
		t.Fatal("second drain should be empty")
	}
}

// TestLatchStopsStepping checks the latch-stop optimization: a latched
// var-routed predicate is deactivated, its detector freed, and further
// events of its variable cost nothing.
func TestLatchStopsStepping(t *testing.T) {
	g := NewGroup(1)
	if err := g.Register(Registration{ID: "s",
		Spec: pred.Spec{Family: pred.Sum, Var: "x", Rel: relsum.Ge, K: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Step(detect.Event{Proc: 0, VC: []int64{1}, Var: "x", Val: 1}); err != nil {
		t.Fatal(err)
	}
	if !g.Flush() {
		t.Fatal("should latch")
	}
	if g.Active() != 0 || g.Registered() != 1 {
		t.Fatalf("active=%d registered=%d, want 0/1", g.Active(), g.Registered())
	}
	if g.Detector("s") != nil {
		t.Fatal("latched routed detector should be freed")
	}
	before := g.Stats().Steps
	if err := g.Step(detect.Event{Proc: 0, VC: []int64{2}, Var: "x", Val: 2}); err != nil {
		t.Fatal(err)
	}
	g.Flush()
	if got := g.Stats().Steps; got != before {
		t.Fatalf("latched predicate was stepped: steps %d -> %d", before, got)
	}
	states := g.States()
	if len(states) != 1 || !states[0].Possibly {
		t.Fatalf("States() = %+v", states)
	}
}

// TestUnregisterAndTenants checks registration bookkeeping.
func TestUnregisterAndTenants(t *testing.T) {
	g := NewGroup(1)
	reg := func(id, tenant string) {
		t.Helper()
		if err := g.Register(Registration{ID: id, Tenant: tenant,
			Spec: pred.Spec{Family: pred.Xor, Var: "x"}}); err != nil {
			t.Fatal(err)
		}
	}
	reg("a1", "a")
	reg("a2", "a")
	reg("b1", "b")
	reg("d1", "")
	if err := g.Register(Registration{ID: "a1", Spec: pred.Spec{Family: pred.Xor, Var: "x"}}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if g.TenantCount("a") != 2 || g.TenantCount("b") != 1 || g.TenantCount("default") != 1 {
		t.Fatalf("tenant counts: %v", g.Tenants())
	}
	if err := g.Unregister("a2"); err != nil {
		t.Fatal(err)
	}
	if err := g.Unregister("a2"); err == nil {
		t.Fatal("double unregister accepted")
	}
	if g.TenantCount("a") != 1 || g.Registered() != 3 || g.Active() != 3 {
		t.Fatalf("after unregister: tenants=%v registered=%d active=%d", g.Tenants(), g.Registered(), g.Active())
	}
	if err := g.Unregister("b1"); err != nil {
		t.Fatal(err)
	}
	if g.TenantCount("b") != 0 {
		t.Fatalf("tenant b should be gone: %v", g.Tenants())
	}
	// The id is free again.
	reg("a2", "a")
	if g.TenantCount("a") != 2 {
		t.Fatalf("re-register: %v", g.Tenants())
	}
}

// TestPerPredicateFailureIsolated checks that one predicate's step
// failure (a unit-step violation) surfaces in its update stream without
// killing the group or its other predicates.
func TestPerPredicateFailureIsolated(t *testing.T) {
	g := NewGroup(1)
	if err := g.Register(Registration{ID: "eq",
		Spec: pred.Spec{Family: pred.Sum, Var: "x", Rel: relsum.Eq, K: 7}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(Registration{ID: "ge",
		Spec: pred.Spec{Family: pred.Sum, Var: "x", Rel: relsum.Ge, K: 5}}); err != nil {
		t.Fatal(err)
	}
	// A jump of 5 violates the Eq detector's unit-step requirement but is
	// fine for Ge.
	if err := g.Step(detect.Event{Proc: 0, VC: []int64{1}, Var: "x", Val: 5}); err != nil {
		t.Fatalf("group should survive a per-predicate failure: %v", err)
	}
	g.Flush()
	if err := g.PredicateErr("eq"); err == nil {
		t.Fatal("eq should carry the unit-step error")
	}
	if !g.Possibly("ge") {
		t.Fatal("ge should have latched despite eq's failure")
	}
	var failed, latched bool
	for _, u := range g.Drain() {
		switch u.ID {
		case "eq":
			failed = u.Err != ""
		case "ge":
			latched = u.Possibly && u.Err == ""
		}
	}
	if !failed || !latched {
		t.Fatalf("updates missing: failed=%v latched=%v", failed, latched)
	}
	if g.Active() != 0 {
		t.Fatalf("active = %d, want 0 (eq failed, ge latched)", g.Active())
	}
}

// TestRejectsNonIncremental checks registration validation.
func TestRejectsNonIncremental(t *testing.T) {
	g := NewGroup(2)
	err := g.Register(Registration{ID: "cnf", Spec: pred.Spec{
		Family:  pred.CNF,
		Var:     "x",
		Clauses: []pred.Clause{{{Proc: 0}}},
	}})
	if err == nil {
		t.Fatal("cnf (no incremental detector) accepted")
	}
	if err := g.Register(Registration{ID: ""}); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := g.Register(Registration{ID: "bad", Spec: pred.Spec{Family: pred.Sum}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
