package mux

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/detect"
	"github.com/distributed-predicates/gpd/internal/pred"
)

// BenchmarkMultiPredicate measures the multiplexer's per-event cost as
// the number of concurrently registered predicates grows from 100 to
// 10000. Predicates spread over ~n/10 variables, so each delivered
// event touches ~10 subscribers regardless of n: the reported
// steps/event metric stays flat while registrations grow 100× — the
// sublinear routing the relevance index exists for. Thresholds are
// chosen unreachable so detectors stay active (the worst case; latching
// only makes the multiplexer cheaper).
func BenchmarkMultiPredicate(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("preds=%d", n), func(b *testing.B) {
			const procs = 8
			nvars := n / 10
			if nvars < 1 {
				nvars = 1
			}
			g := NewGroup(procs)
			for i := 0; i < n; i++ {
				v := fmt.Sprintf("v%d", i%nvars)
				var spec pred.Spec
				switch i % 3 {
				case 0:
					spec = pred.Spec{Family: pred.Sum, Var: v, Rel: relsum.Ge, K: 1 << 40}
				case 1:
					spec = pred.Spec{Family: pred.Count, Var: v, Rel: relsum.Ge, K: procs + 1}
				default:
					spec = pred.Spec{Family: pred.Levels, Var: v, Levels: []int{procs}}
				}
				err := g.Register(Registration{
					ID:     fmt.Sprintf("p%d", i),
					Tenant: fmt.Sprintf("t%d", i%8),
					Spec:   spec,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(42))
			vcs := make([][]int64, procs)
			for p := range vcs {
				vcs[p] = make([]int64, procs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := i % procs
				if i%7 == 6 { // periodic cross-process causality
					q := (p + 1) % procs
					for c := range vcs[p] {
						if vcs[q][c] > vcs[p][c] {
							vcs[p][c] = vcs[q][c]
						}
					}
				}
				vcs[p][p]++
				vc := make([]int64, procs)
				copy(vc, vcs[p])
				val := int64(rng.Intn(2))
				ev := detect.Event{
					Proc:  p,
					VC:    vc,
					Var:   fmt.Sprintf("v%d", rng.Intn(nvars)),
					Val:   val,
					Truth: val != 0,
				}
				if err := g.Step(ev); err != nil {
					b.Fatal(err)
				}
				if i%64 == 63 {
					g.Flush()
				}
			}
			g.Flush()
			b.StopTimer()
			st := g.Stats()
			if st.Delivered > 0 {
				b.ReportMetric(float64(st.Steps)/float64(st.Delivered), "steps/event")
				b.ReportMetric(float64(st.Skipped)/float64(st.Delivered), "skipped/event")
			}
		})
	}
}
