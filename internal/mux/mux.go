package mux

import (
	"fmt"
	"sort"

	"github.com/distributed-predicates/gpd/internal/detect"
	"github.com/distributed-predicates/gpd/internal/pred"
	"github.com/distributed-predicates/gpd/internal/slicing"
)

// Registration attaches one predicate to a Group.
type Registration struct {
	// ID names the predicate within the group (unique, non-empty).
	ID string
	// Tenant is the owning tenant; empty means "default".
	Tenant string
	// Spec is the predicate.
	Spec pred.Spec
	// Involved restricts a conjunctive predicate to the listed
	// processes; nil means all.
	Involved []int
	// Init gives per-process initial variable values. nil means "seed
	// from the registration cut": the group fills in the last delivered
	// value of the predicate's variable on each process, so the
	// detector observes the computation's suffix with the correct
	// starting state.
	Init []int64
	// Retain tells the detector to record per-event state for a
	// close-time finalizer (all-events registrations of retaining
	// sessions only).
	Retain bool
	// AllEvents steps the detector on every delivered event with the
	// raw timestamps — the single-predicate session mode. The
	// registration bypasses the relevance index, is never latch-stopped
	// and keeps exact pre-multiplexer session semantics.
	AllEvents bool
	// Slice maintains the predicate's incremental slice alongside its
	// detector: the group feeds relevance-filtered events into a shared
	// per-variable slicer whose compacting frontier replaces unbounded
	// history. Regular truth-payload families only (the registry's
	// Sliceable capability); the registration must precede the group's
	// first event.
	Slice bool
}

// Update is one predicate verdict change, fanned out by Drain. Seq
// numbers the updates of one predicate from 1 so consumers can spot
// reordering or loss downstream.
type Update struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Seq      int64  `json:"seq"`
	Possibly bool   `json:"possibly"`
	Err      string `json:"error,omitempty"`
}

// Stats is a point-in-time view of a group.
type Stats struct {
	Registered int   // predicates registered (including latched/failed)
	Active     int   // predicates still being stepped
	Steps      int64 // detector steps performed
	Skipped    int64 // detector steps avoided by the relevance index
	Delivered  int64 // events causally delivered
	Holdback   int   // events buffered awaiting causal delivery
	Window     int   // summed detector windows

	SliceRetained  int   // events held across the shared slicers' frontiers
	SliceCompacted int64 // cumulative events freed by slice compaction
}

// predicate is one registered detector and its routing state.
type predicate struct {
	id, tenant string
	spec       pred.Spec
	det        detect.Detector
	routeVar   string // "" for all-events registrations
	procSet    []bool // nil = all processes
	all        bool
	sliced     bool // holds a reference on the routeVar's shared slicer

	seq      int64
	possibly bool
	err      error
	active   bool // still stepped; false once latched (routed), failed, or unregistered
	dirty    bool // stepped since the last flush
	window   int  // detector window as of the last flush

	steps     int64 // detector steps attempted over the predicate's lifetime
	costSteps int64 // steps already reported through the cost hook
}

// varState is the last delivered value of one variable per process,
// used to seed detectors registered mid-stream.
type varState struct {
	val   []int64 // last Event.Val
	truth []int64 // last Event.Truth as 0/1
}

// Group multiplexes many predicate detectors over one computation's
// event stream. Events are causally ordered once; each delivered event
// is routed through the relevance index and stepped only into the
// detectors whose variable (and process set) it touches, under
// projected timestamps (see projector). A Group is confined to one
// goroutine.
type Group struct {
	procs     int
	delivery  *Delivery
	onDeliver func(detect.Event)
	lastVC    [][]int64 // raw timestamp of the last delivered event per process

	preds  map[string]*predicate
	onCost func(tenant, family, id string, steps int64)
	byVar  map[string][]*predicate // active var-routed predicates
	all    []*predicate            // active all-events predicates
	projs  map[string]*projector   // one per subscribed variable
	vars   map[string]*varState
	dirty  []*predicate
	queued []Update

	slicers        map[string]*groupSlicer // shared per-variable slicers (slicer.go)
	sliceCompacted int64                   // cumulative events freed by compaction
	sliceErr       error                   // sticky slice-maintenance failure

	tenants   map[string]int
	reap      []*predicate // deactivated but not yet removed from the indexes
	active    int
	steps     int64
	skipped   int64
	flushes   int
	windowSum int
}

// NewGroup builds an empty group over procs processes.
func NewGroup(procs int) *Group {
	g := &Group{
		procs:   procs,
		lastVC:  make([][]int64, procs),
		preds:   make(map[string]*predicate),
		byVar:   make(map[string][]*predicate),
		projs:   make(map[string]*projector),
		vars:    make(map[string]*varState),
		tenants: make(map[string]int),
	}
	g.delivery = NewDelivery(procs, g.deliver)
	return g
}

// Register resolves the registration's incremental detector from the
// detector registry and attaches it. A predicate registered mid-stream
// observes the computation from the registration cut onward: its
// variable is seeded with the last delivered values (unless Init is
// given) and its clocks count only subsequent events of the variable.
func (g *Group) Register(r Registration) error {
	if r.ID == "" {
		return fmt.Errorf("mux: registration needs an id")
	}
	if _, dup := g.preds[r.ID]; dup {
		return fmt.Errorf("mux: predicate %q already registered", r.ID)
	}
	if err := r.Spec.Validate(g.procs); err != nil {
		return err
	}
	entry, ok := detect.Lookup(r.Spec.Family, detect.ModalityPossibly)
	if !ok || !entry.Caps.Incremental {
		return fmt.Errorf("mux: predicate family %v has no incremental detector", r.Spec.Family)
	}
	if r.Slice && (!entry.Caps.Sliceable || entry.Caps.Payload != detect.PayloadTruth) {
		return fmt.Errorf("mux: predicate %q cannot maintain a slice: %w", r.ID,
			&slicing.NotRegularError{Detail: fmt.Sprintf("family %v is not a regular truth-payload family", r.Spec.Family)})
	}
	routeVar := ""
	if !r.AllEvents {
		routeVar = r.Spec.Var
		if r.Spec.Family == pred.InFlight {
			routeVar = detect.InFlightVar
		}
	}
	init := r.Init
	if init == nil && routeVar != "" {
		init = g.seedInit(routeVar, entry.Caps.Payload)
	}
	det, err := entry.New(r.Spec, detect.Config{
		Procs:    g.procs,
		Involved: r.Involved,
		Init:     init,
		Retain:   r.Retain,
	})
	if err != nil {
		return fmt.Errorf("mux: %w", err)
	}
	if r.Slice {
		if err := g.AttachSlicer(routeVar, r.Involved); err != nil {
			return err
		}
	}
	tenant := r.Tenant
	if tenant == "" {
		tenant = "default"
	}
	p := &predicate{
		id:       r.ID,
		tenant:   tenant,
		spec:     r.Spec,
		det:      det,
		routeVar: routeVar,
		all:      r.AllEvents,
		sliced:   r.Slice,
		active:   true,
	}
	// The relevance hint narrows the process set (conjunctive predicates
	// over a subset of processes); the variable is taken from the spec.
	if rel := detect.TouchesOf(det); rel.Procs != nil && !p.all {
		p.procSet = make([]bool, g.procs)
		for _, q := range rel.Procs {
			if q >= 0 && q < g.procs {
				p.procSet[q] = true
			}
		}
	}
	g.preds[r.ID] = p
	g.tenants[tenant]++
	g.active++
	if p.all {
		g.all = append(g.all, p)
	} else {
		g.byVar[routeVar] = append(g.byVar[routeVar], p)
		if g.projs[routeVar] == nil {
			g.projs[routeVar] = newProjector(g.procs)
		}
	}
	// A satisfied initial cut latches immediately.
	if det.Possibly() {
		g.latch(p)
	}
	return nil
}

// seedInit builds the Init vector of a mid-stream registration from the
// last delivered values of the variable.
func (g *Group) seedInit(v string, payload detect.Payload) []int64 {
	st := g.vars[v]
	if st == nil {
		return nil
	}
	switch payload {
	case detect.PayloadValue:
		return append([]int64(nil), st.val...)
	case detect.PayloadTruth:
		return append([]int64(nil), st.truth...)
	default: // PayloadDelta counts from zero at the registration cut
		return nil
	}
}

// Unregister detaches a predicate. Its detector state is freed; no
// further updates are emitted for it.
func (g *Group) Unregister(id string) error {
	p, ok := g.preds[id]
	if !ok {
		return fmt.Errorf("mux: predicate %q is not registered", id)
	}
	g.deactivate(p)
	g.reapInactive()
	if p.sliced {
		g.DetachSlicer(p.routeVar)
	}
	g.tenants[p.tenant]--
	if g.tenants[p.tenant] == 0 {
		delete(g.tenants, p.tenant)
	}
	g.windowSum -= p.window
	p.window = 0
	delete(g.preds, id)
	return nil
}

// deactivate marks a predicate as no longer stepped. Removal from the
// stepping indexes is deferred to reapInactive so a deactivation that
// fires while deliver is iterating a subscriber list never mutates the
// slice under the iteration.
func (g *Group) deactivate(p *predicate) {
	if !p.active {
		return
	}
	p.active = false
	g.active--
	g.reap = append(g.reap, p)
}

// reapInactive removes deactivated predicates from the stepping indexes
// and frees their detectors. Must not run while deliver is iterating.
func (g *Group) reapInactive() {
	for _, p := range g.reap {
		if p.all {
			g.all = removePred(g.all, p)
			continue
		}
		g.byVar[p.routeVar] = removePred(g.byVar[p.routeVar], p)
		if len(g.byVar[p.routeVar]) == 0 {
			delete(g.byVar, p.routeVar)
			delete(g.projs, p.routeVar) // re-created (at the new cut) on re-subscription
		}
		if !p.all {
			p.det = nil
		}
	}
	g.reap = g.reap[:0]
}

func removePred(list []*predicate, p *predicate) []*predicate {
	for i, q := range list {
		if q == p {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// latch records a true Possibly verdict: the update is queued, and a
// var-routed predicate stops being stepped (the verdict is monotone, so
// further events cannot change it — this is what keeps the per-event
// cost proportional to the event's subscribers, not to every predicate
// ever registered). All-events predicates keep stepping: their session
// owns the detector for close-time finalizers.
func (g *Group) latch(p *predicate) {
	p.possibly = true
	p.seq++
	g.queued = append(g.queued, Update{ID: p.id, Tenant: p.tenant, Seq: p.seq, Possibly: true})
	if !p.all {
		g.windowSum -= p.window
		p.window = 0
		p.dirty = false
		g.deactivate(p)
	}
}

// failPred records a per-predicate step failure. The predicate stops
// being stepped and reports the error in its update stream; the group
// (and its other predicates) keeps running.
func (g *Group) failPred(p *predicate, err error) {
	p.err = err
	p.seq++
	g.queued = append(g.queued, Update{ID: p.id, Tenant: p.tenant, Seq: p.seq, Possibly: p.possibly, Err: err.Error()})
	g.windowSum -= p.window
	p.window = 0
	p.dirty = false
	g.deactivate(p)
}

// Step ingests one event; causally ready events are routed immediately.
//
//lint:hotpath
func (g *Group) Step(ev detect.Event) error {
	return g.delivery.Step(ev)
}

// OnDeliver installs a hook invoked for every causally delivered event,
// before routing. Transports use it to retain the delivered trace for
// close-time finalizers.
func (g *Group) OnDeliver(fn func(detect.Event)) { g.onDeliver = fn }

// OnCost installs a hook invoked at every Flush with each stepped
// predicate's step delta since its last report, keyed by tenant, family
// and predicate id. Batched per flush, so the per-event routing path
// pays nothing; the hook runs on the group's goroutine and must be
// cheap. The stream engine uses it to feed the cost ledger; mux itself
// stays metrics-free (the plain signature keeps the layering rule that
// mux imports no observability machinery).
func (g *Group) OnCost(fn func(tenant, family, id string, steps int64)) { g.onCost = fn }

// deliver routes one causally delivered event.
func (g *Group) deliver(ev detect.Event) {
	g.lastVC[ev.Proc] = ev.VC
	if g.onDeliver != nil {
		g.onDeliver(ev)
	}
	if g.slicers != nil {
		g.observeSlicers(ev)
	}
	if ev.Var != "" {
		g.recordVar(ev)
	}
	stepped := 0
	for _, p := range g.all {
		if !p.active {
			continue
		}
		stepped++
		g.stepPred(p, ev)
	}
	if subs := g.byVar[ev.Var]; len(subs) > 0 {
		pe := ev
		pe.VC = g.projs[ev.Var].project(ev.Proc, ev.VC)
		for _, p := range subs {
			if !p.active || (p.procSet != nil && !p.procSet[ev.Proc]) {
				continue
			}
			stepped++
			g.stepPred(p, pe)
		}
	}
	g.steps += int64(stepped)
	g.skipped += int64(g.active - stepped)
}

// stepPred feeds one event to one predicate's detector.
func (g *Group) stepPred(p *predicate, ev detect.Event) {
	p.steps++
	if err := p.det.Step(ev); err != nil {
		g.failPred(p, err)
		return
	}
	if !p.dirty {
		p.dirty = true
		g.dirty = append(g.dirty, p)
	}
}

// recordVar tracks the last delivered value of the event's variable,
// the seed state for detectors registered after this point.
func (g *Group) recordVar(ev detect.Event) {
	st := g.vars[ev.Var]
	if st == nil {
		st = &varState{val: make([]int64, g.procs), truth: make([]int64, g.procs)}
		g.vars[ev.Var] = st
	}
	st.val[ev.Proc] = ev.Val
	if ev.Truth {
		st.truth[ev.Proc] = 1
	} else {
		st.truth[ev.Proc] = 0
	}
}

// Flush advances every detector stepped since the last flush (one
// batched sweep per detector however many events arrived), latches new
// verdicts, prunes the projections below the delivered frontier, and
// returns whether any registered predicate has latched Possibly.
func (g *Group) Flush() bool {
	g.flushes++
	for _, p := range g.dirty {
		if g.onCost != nil {
			// Report before the active check so a predicate that latched
			// or failed mid-batch still accounts its final steps.
			if d := p.steps - p.costSteps; d > 0 {
				p.costSteps = p.steps
				g.onCost(p.tenant, p.spec.Family.String(), p.id, d)
			}
		}
		if !p.active {
			continue // latched or failed while this flush list was built
		}
		p.dirty = false
		verdict := p.det.Flush()
		w := p.det.Window()
		g.windowSum += w - p.window
		p.window = w
		if verdict && !p.possibly {
			g.latch(p)
		}
	}
	g.dirty = g.dirty[:0]
	g.reapInactive()
	g.pruneProjections()
	g.compactSlicers()
	any := false
	for _, p := range g.preds {
		if p.possibly {
			any = true
			break
		}
	}
	return any
}

// pruneProjections drops projection state at or below the component-wise
// minimum of the last delivered clocks — the floor below which no future
// event's timestamp can reach. Until every process has delivered at
// least one event the floor is unknown and nothing is pruned (the same
// silent-process caveat the detector windows have; bound exposure with
// a max window).
func (g *Group) pruneProjections() {
	if len(g.projs) == 0 {
		return
	}
	mins := make([]int64, g.procs)
	for q := range mins {
		mins[q] = -1
	}
	for _, vc := range g.lastVC {
		if vc == nil {
			return
		}
		for q, v := range vc {
			if mins[q] < 0 || v < mins[q] {
				mins[q] = v
			}
		}
	}
	for _, pj := range g.projs {
		pj.prune(mins)
	}
}

// Drain returns the updates queued since the last Drain: one entry per
// verdict latch or predicate failure, sequence-numbered per predicate.
func (g *Group) Drain() []Update {
	out := g.queued
	g.queued = nil
	return out
}

// States reports the current state of every registered predicate,
// ordered by id — the close-time fan-out.
func (g *Group) States() []Update {
	out := make([]Update, 0, len(g.preds))
	for _, p := range g.preds {
		u := Update{ID: p.id, Tenant: p.tenant, Seq: p.seq, Possibly: p.possibly}
		if p.err != nil {
			u.Err = p.err.Error()
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Detector returns the live detector of a registered predicate (nil
// once a var-routed predicate has latched or failed — its state is
// freed). Single-predicate sessions use this for close-time finalizers.
func (g *Group) Detector(id string) detect.Detector {
	if p := g.preds[id]; p != nil {
		return p.det
	}
	return nil
}

// PredicateErr returns a registered predicate's sticky step error.
func (g *Group) PredicateErr(id string) error {
	if p := g.preds[id]; p != nil {
		return p.err
	}
	return nil
}

// Possibly reports a registered predicate's latched verdict.
func (g *Group) Possibly(id string) bool {
	if p := g.preds[id]; p != nil {
		return p.possibly
	}
	return false
}

// Err returns the delivery's sticky error, if any.
func (g *Group) Err() error { return g.delivery.Err() }

// Delivered returns the total number of causally delivered events.
func (g *Group) Delivered() int64 { return g.delivery.Delivered() }

// DeliveredOn returns the number of delivered events of one process.
func (g *Group) DeliveredOn(p int) int64 { return g.delivery.DeliveredOn(p) }

// Holdback returns the number of buffered undeliverable events.
func (g *Group) Holdback() int { return g.delivery.Holdback() }

// Registered returns the number of registered predicates.
func (g *Group) Registered() int { return len(g.preds) }

// Active returns the number of predicates still being stepped.
func (g *Group) Active() int { return g.active }

// TenantCount returns the number of registered predicates per tenant.
func (g *Group) TenantCount(tenant string) int { return g.tenants[tenant] }

// Tenants returns a copy of the per-tenant registration counts.
func (g *Group) Tenants() map[string]int {
	out := make(map[string]int, len(g.tenants))
	for t, n := range g.tenants {
		out[t] = n
	}
	return out
}

// Window returns the summed detector windows as of the last Flush.
func (g *Group) Window() int { return g.windowSum }

// Flushes returns the number of Flush calls.
func (g *Group) Flushes() int { return g.flushes }

// Stats returns a point-in-time view of the group.
func (g *Group) Stats() Stats {
	return Stats{
		Registered: len(g.preds),
		Active:     g.active,
		Steps:      g.steps,
		Skipped:    g.skipped,
		Delivered:  g.delivery.Delivered(),
		Holdback:   g.delivery.Holdback(),
		Window:     g.windowSum,

		SliceRetained:  g.SliceRetained(),
		SliceCompacted: g.sliceCompacted,
	}
}
