package mux

import "sort"

// projector maintains the projection of the computation onto one
// variable's events. Detectors routed by variable must not see raw
// vector clocks: a raw component counts ALL events of a process, so a
// detector that is only shown its variable's events would hold causal
// requirements on events it never observes, and the window trackers
// silently drop requirements on unknown events — the closure constraints
// would go incomplete and the verdict unsound. The projector rewrites
// every timestamp into the projection's own clock:
//
//	VC'[q] = number of v-events of process q with original local
//	         index ≤ VC[q]
//
// Under this clock the v-events form a self-contained sub-computation
// whose happened-before relation is the restriction of the original
// one, and whose consistent cuts are exactly the restrictions of the
// original consistent cuts — so Possibly over the projection agrees
// with Possibly over the full computation for any predicate that only
// reads the variable.
//
// Per process the projector keeps the ascending original local indices
// of the variable's retained events plus a count of pruned earlier
// ones; a component is one binary search. A projector created
// mid-stream counts from its creation cut: detectors registered later
// see clocks offset by a per-process constant, which preserves every
// comparison between events they observe.
type projector struct {
	idx  [][]int64 // per-process ascending original local indices of the var's events
	base []int64   // per-process count of pruned (earlier) events of the var
}

func newProjector(procs int) *projector {
	return &projector{idx: make([][]int64, procs), base: make([]int64, procs)}
}

// project records the event as its variable's next event on its process
// and returns the projected timestamp. Events of one variable must be
// projected in causal delivery order.
func (pj *projector) project(proc int, vc []int64) []int64 {
	pj.idx[proc] = append(pj.idx[proc], vc[proc])
	out := make([]int64, len(vc))
	for q, v := range vc {
		out[q] = pj.base[q] + countLE(pj.idx[q], v)
	}
	return out
}

// countLE returns how many entries of the ascending slice are ≤ v.
func countLE(idx []int64, v int64) int64 {
	return int64(sort.Search(len(idx), func(i int) bool { return idx[i] > v }))
}

// prune drops retained indices at or below the per-process floor mins,
// folding them into the base counts. mins must be a lower bound on the
// timestamp of every future event (the component-wise minimum of the
// last delivered clocks of all processes qualifies: clocks are
// monotone along every process line).
func (pj *projector) prune(mins []int64) {
	for q, list := range pj.idx {
		cut := countLE(list, mins[q])
		if cut > 0 {
			pj.base[q] += cut
			pj.idx[q] = append(pj.idx[q][:0], list[cut:]...)
		}
	}
}

// retained returns the number of retained indices (for stats).
func (pj *projector) retained() int {
	n := 0
	for _, list := range pj.idx {
		n += len(list)
	}
	return n
}
