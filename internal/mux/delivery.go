// Package mux multiplexes many predicate detectors over one causally
// delivered event stream. It sits between the transport (internal/stream,
// which owns sessions, wire frames and sharding) and the detector kernel
// (internal/detect): events of one monitored computation are causally
// ordered ONCE by a Delivery, routed through a relevance index keyed by
// the variable and processes each predicate touches, and stepped only
// into the detectors whose verdict the event can move. Verdict changes
// fan out as batched Updates with per-predicate sequence numbers.
//
// Skipping events per-detector is sound only because the group rewrites
// timestamps: each detector sees the PROJECTION of the computation onto
// its variable's events, with vector clocks counting only those events
// (see project.go). Under the projection every detector observes a
// self-contained sub-computation — its causal-closure constraints never
// chain through an event it was not shown — and the consistent cuts of
// the projection are exactly the restrictions of the full computation's
// consistent cuts, so the latched Possibly verdict agrees with stepping
// the detector over every event.
package mux

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/detect"
)

// Delivery re-establishes causal order over one computation's event
// stream: events of one process must arrive in local order, arbitrary
// interleaving (even causal reordering) across processes is absorbed by
// the holdback buffer. Each causally ready event is handed to the
// deliver callback exactly once, in a causality-respecting order. A
// Delivery is confined to one goroutine.
type Delivery struct {
	procs     int
	delivered []int64        // events delivered per process
	holdback  []detect.Event // arrived but not yet causally deliverable
	deliver   func(detect.Event)
	err       error // sticky failure; the delivery is dead once set
}

// NewDelivery builds a causal delivery stage over procs processes,
// invoking deliver for each causally ready event.
func NewDelivery(procs int, deliver func(detect.Event)) *Delivery {
	return &Delivery{
		procs:     procs,
		delivered: make([]int64, procs),
		deliver:   deliver,
	}
}

// Step ingests one event, delivering it and everything it unblocks.
// Duplicate deliveries (e.g. client retries) are idempotent. Returns the
// sticky error, if any.
func (d *Delivery) Step(ev detect.Event) error {
	if d.err != nil {
		return d.err
	}
	if ev.Proc < 0 || ev.Proc >= d.procs {
		return d.fail(fmt.Errorf("mux: event for process %d of %d", ev.Proc, d.procs))
	}
	if len(ev.VC) != d.procs {
		return d.fail(fmt.Errorf("mux: event timestamp has %d components, want %d", len(ev.VC), d.procs))
	}
	own := ev.VC[ev.Proc]
	if own <= d.delivered[ev.Proc] && !d.heldBack(ev.Proc, own) {
		return nil // duplicate
	}
	//lint:ignore hotalloc the holdback buffer grows by design — it absorbs causal reordering and is bounded by the session layer's MaxWindow policy, and the backing array is reused across drains
	d.holdback = append(d.holdback, ev)
	d.drain()
	return d.err
}

// Fail latches a sticky error from outside (a detector rejected an
// event); further Steps return it.
func (d *Delivery) Fail(err error) { d.fail(err) }

func (d *Delivery) fail(err error) error {
	if d.err == nil {
		d.err = err
	}
	return d.err
}

// heldBack reports whether the event with the given own-component is
// already waiting in the holdback buffer.
func (d *Delivery) heldBack(proc int, own int64) bool {
	for _, h := range d.holdback {
		if h.Proc == proc && h.VC[proc] == own {
			return true
		}
	}
	return false
}

// drain delivers every causally deliverable holdback event.
func (d *Delivery) drain() {
	for {
		progress := false
		kept := d.holdback[:0]
		for _, ev := range d.holdback {
			if d.err == nil && d.deliverable(ev) {
				d.delivered[ev.Proc] = ev.VC[ev.Proc]
				d.deliver(ev)
				progress = true
			} else {
				//lint:ignore hotalloc kept aliases d.holdback[:0], so this append compacts in place and never outgrows the existing backing array
				kept = append(kept, ev)
			}
		}
		d.holdback = kept
		if !progress {
			return
		}
	}
}

// deliverable implements the causal delivery condition: the event is the
// next local event of its process and its cross-process dependencies
// have all been delivered.
func (d *Delivery) deliverable(ev detect.Event) bool {
	if ev.VC[ev.Proc] != d.delivered[ev.Proc]+1 {
		return false
	}
	for q, v := range ev.VC {
		if q != ev.Proc && v > d.delivered[q] {
			return false
		}
	}
	return true
}

// Err returns the sticky error, if any.
func (d *Delivery) Err() error { return d.err }

// Delivered returns the total number of causally delivered events.
func (d *Delivery) Delivered() int64 {
	var t int64
	for _, v := range d.delivered {
		t += v
	}
	return t
}

// DeliveredOn returns the number of delivered events of one process.
func (d *Delivery) DeliveredOn(p int) int64 { return d.delivered[p] }

// Holdback returns the number of buffered undeliverable events.
func (d *Delivery) Holdback() int { return len(d.holdback) }
