package conjunctive

// Witness minimality: the CPDHB elimination never skips a usable
// candidate, so the witness cut it produces is the LEAST consistent cut
// satisfying the conjunction — the same cut the linear-predicate
// advancement and the slice bottom produce. This file pins that guarantee
// against the exhaustive lattice oracle.

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

func TestWitnessCutIsLeastSatisfying(t *testing.T) {
	rng := rand.New(rand.NewSource(443))
	verified := 0
	for trial := 0; trial < 150; trial++ {
		c := randomComputation(rng, 2+rng.Intn(2), 5)
		truth := randomTruth(rng, c, 0.5)
		res := DetectTables(c, truth)
		if !res.Found {
			continue
		}
		verified++
		holds := func(k computation.Cut) bool {
			for p := range truth {
				if !truth[p][k[p]] {
					return false
				}
			}
			return true
		}
		if !holds(res.Cut) {
			t.Fatalf("trial %d: witness cut %v does not satisfy", trial, res.Cut)
		}
		// Minimality: no satisfying cut lies strictly below or
		// incomparable-below in any component.
		lattice.Explore(c, func(k computation.Cut) bool {
			if holds(k) && !res.Cut.Leq(k) {
				t.Fatalf("trial %d: satisfying cut %v not above witness %v", trial, k, res.Cut)
			}
			return true
		})
	}
	if verified < 40 {
		t.Fatalf("only %d/150 trials had witnesses; raise truth density", verified)
	}
}
