// Package conjunctive implements detection of conjunctive predicates — the
// conjunction of one local predicate per process — under the Possibly
// modality, following Garg and Waldecker's CPDHB algorithm ("Detection of
// weak unstable predicates in distributed programs", IEEE TPDS 1994).
//
// The key fact (Observation 1 of Mittal & Garg) is that a consistent cut
// satisfying the conjunction exists iff there are pairwise consistent true
// events, one on each involved process. Two events e (on p) and f are
// inconsistent iff next(e) happened-before-or-equals f, which in vector
// clock terms is clock(f)[p] > clock(e)[p]. The algorithm keeps one
// candidate true event per process and eliminates any candidate whose
// successor is known to another candidate; each elimination advances one
// cursor, so the running time is linear in the number of true events times
// the number of process pairs checked.
//
// The same inequality drives the online Checker, which consumes vector
// timestamps of true events streamed by the application processes.
package conjunctive

import (
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/vclock"
)

// LocalPredicate evaluates a process-local predicate at the state following
// an event.
type LocalPredicate func(computation.Event) bool

// Result is the outcome of an offline detection.
type Result struct {
	// Found reports whether Possibly(conjunction) holds.
	Found bool
	// Witness, when Found, holds one true event per involved process;
	// the events are pairwise consistent.
	Witness []computation.EventID
	// Cut, when Found, is the least consistent cut passing through all
	// witness events.
	Cut computation.Cut
	// Eliminated counts candidate eliminations performed; exposed for
	// the benchmark harness.
	Eliminated int
}

// Detect runs the offline CPDHB algorithm on a sealed computation. locals
// maps each involved process to its local predicate; processes absent from
// the map are unconstrained. An empty map yields Found with the initial
// cut.
func Detect(c *computation.Computation, locals map[computation.ProcID]LocalPredicate) Result {
	return DetectTraced(c, locals, nil)
}

// DetectTraced is Detect with work counters accumulated into the trace:
// candidate (true) events enumerated and tokens advanced (candidate
// eliminations, the unit of CPDHB progress).
func DetectTraced(c *computation.Computation, locals map[computation.ProcID]LocalPredicate, tr *obs.Trace) Result {
	procs := make([]computation.ProcID, 0, len(locals))
	for p := range locals {
		procs = append(procs, p)
	}
	// Map iteration order is random; canonicalize so elimination order —
	// and with it the work counters — is a pure function of the input.
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	// Candidate queues: the true events of each involved process.
	queues := make([][]computation.EventID, len(procs))
	total := int64(0)
	for i, p := range procs {
		pred := locals[p]
		for _, id := range c.ProcEvents(p) {
			if pred(c.Event(id)) {
				queues[i] = append(queues[i], id)
			}
		}
		total += int64(len(queues[i]))
		if len(queues[i]) == 0 {
			tr.Add("conjunctive.candidate_events", total)
			return Result{}
		}
	}
	tr.Add("conjunctive.candidate_events", total)
	cur := make([]int, len(procs))
	res := eliminate(c, procs, queues, cur)
	tr.Add("conjunctive.tokens_advanced", int64(res.Eliminated))
	if !res.Found {
		return res
	}
	res.Cut = c.CutThrough(res.Witness...)
	return res
}

// eliminate advances cursors until the candidates are pairwise consistent
// or some queue is exhausted.
func eliminate(
	c *computation.Computation,
	procs []computation.ProcID,
	queues [][]computation.EventID,
	cur []int,
) Result {
	eliminated := 0
	// dirty holds process slots whose candidate changed and must be
	// rechecked against all others.
	dirty := make([]int, len(procs))
	inDirty := make([]bool, len(procs))
	for i := range procs {
		dirty[i] = i
		inDirty[i] = true
	}
	bump := func(i int) bool {
		cur[i]++
		eliminated++
		if cur[i] >= len(queues[i]) {
			return false
		}
		if !inDirty[i] {
			dirty = append(dirty, i)
			inDirty[i] = true
		}
		return true
	}
	for len(dirty) > 0 {
		i := dirty[len(dirty)-1]
		dirty = dirty[:len(dirty)-1]
		inDirty[i] = false
		ei := queues[i][cur[i]]
		ci := c.Clock(ei)
		for j := range procs {
			if j == i {
				continue
			}
			ej := queues[j][cur[j]]
			cj := c.Clock(ej)
			pi, pj := int(procs[i]), int(procs[j])
			// next(e_i) <= e_j ?
			if cj[pi] > ci[pi] {
				if !bump(i) {
					return Result{Eliminated: eliminated}
				}
				ei = queues[i][cur[i]]
				ci = c.Clock(ei)
				continue
			}
			// next(e_j) <= e_i ?
			if ci[pj] > cj[pj] {
				if !bump(j) {
					return Result{Eliminated: eliminated}
				}
			}
		}
	}
	witness := make([]computation.EventID, len(procs))
	for i := range procs {
		witness[i] = queues[i][cur[i]]
	}
	return Result{Found: true, Witness: witness, Eliminated: eliminated}
}

// DetectTables is Detect with the local predicates given as per-process
// boolean tables indexed by local event index (the representation produced
// by generators and the simulator). Rows may be nil for unconstrained
// processes.
func DetectTables(c *computation.Computation, truth [][]bool) Result {
	locals := make(map[computation.ProcID]LocalPredicate)
	for p, row := range truth {
		if row == nil {
			continue
		}
		row := row
		locals[computation.ProcID(p)] = func(e computation.Event) bool {
			return e.Index < len(row) && row[e.Index]
		}
	}
	return Detect(c, locals)
}

// Checker is the online weak-conjunctive detector. Application processes
// stream the vector timestamps of their true events (in local order); the
// checker reports as soon as a pairwise-consistent set, one true event per
// involved process, is known.
//
// Checker is not safe for concurrent use; serialize calls to Observe (the
// monitor package wraps it in a goroutine-confined loop).
type Checker struct {
	procs []int         // involved processes, in slot order
	slot  map[int]int   // process -> slot
	queue [][]vclock.VC // pending true-event timestamps per slot
	found bool
	wit   []vclock.VC
}

// NewChecker returns a checker for the given involved processes. Timestamp
// components are indexed by absolute process id.
func NewChecker(procs []int) *Checker {
	ch := &Checker{
		procs: append([]int(nil), procs...),
		slot:  make(map[int]int, len(procs)),
		queue: make([][]vclock.VC, len(procs)),
	}
	for i, p := range procs {
		ch.slot[p] = i
	}
	return ch
}

// Found reports whether the predicate has been detected.
func (ch *Checker) Found() bool { return ch.found }

// Witness returns the timestamps of the detected true events, one per
// involved process in the order passed to NewChecker, or nil if not found.
func (ch *Checker) Witness() []vclock.VC {
	if !ch.found {
		return nil
	}
	out := make([]vclock.VC, len(ch.wit))
	for i, vc := range ch.wit {
		out[i] = vc.Clone()
	}
	return out
}

// Observe feeds the timestamp of a true event of the given process and
// returns whether the predicate has (now or earlier) been detected.
// Observations from a process must arrive in that process's local order;
// observations from different processes may interleave arbitrarily.
func (ch *Checker) Observe(proc int, vc vclock.VC) bool {
	if ch.found {
		return true
	}
	i, ok := ch.slot[proc]
	if !ok {
		return false // not an involved process
	}
	ch.queue[i] = append(ch.queue[i], vc.Clone())
	ch.sweep()
	return ch.found
}

// ObserveBatch feeds a batch of true-event timestamps of one process (in
// local order) and returns whether the predicate has been detected. The
// elimination sweep runs once per batch rather than once per event, which
// is how the streaming engine amortises detector steps.
func (ch *Checker) ObserveBatch(proc int, vcs []vclock.VC) bool {
	if ch.found {
		return true
	}
	i, ok := ch.slot[proc]
	if !ok {
		return false
	}
	for _, vc := range vcs {
		ch.queue[i] = append(ch.queue[i], vc.Clone())
	}
	ch.sweep()
	return ch.found
}

// Involved returns the involved processes in slot order.
func (ch *Checker) Involved() []int {
	return append([]int(nil), ch.procs...)
}

// Depths returns the current per-slot queue depths — the candidates that
// can be neither eliminated nor confirmed until other processes report.
func (ch *Checker) Depths() []int {
	out := make([]int, len(ch.queue))
	for i, q := range ch.queue {
		out[i] = len(q)
	}
	return out
}

// Pending returns the total number of queued candidate events.
func (ch *Checker) Pending() int {
	n := 0
	for _, q := range ch.queue {
		n += len(q)
	}
	return n
}

// sweep runs the elimination loop over the queue heads. A head can only be
// eliminated when every queue is non-empty (otherwise a not-yet-seen event
// might be consistent with it), which mirrors the token-based algorithm.
func (ch *Checker) sweep() {
	for {
		for i := range ch.queue {
			if len(ch.queue[i]) == 0 {
				return // must wait for more observations
			}
		}
		advanced := false
		for i := range ch.queue {
			hi := ch.queue[i][0]
			pi := ch.procs[i]
			for j := range ch.queue {
				if j == i || len(ch.queue[j]) == 0 {
					continue
				}
				hj := ch.queue[j][0]
				if hj[pi] > hi[pi] {
					// next(head_i) is known to head_j: head_i can
					// never be consistent with current or later
					// candidates on j.
					ch.queue[i] = ch.queue[i][1:]
					advanced = true
					break
				}
			}
			if advanced {
				break
			}
		}
		if advanced {
			continue
		}
		// Stable and all queues non-empty: the heads are pairwise
		// consistent.
		ch.found = true
		ch.wit = make([]vclock.VC, len(ch.queue))
		for i := range ch.queue {
			ch.wit[i] = ch.queue[i][0]
		}
		return
	}
}
