package conjunctive

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/vclock"
)

// TestObserveBatchMatchesObserve feeds the same random true-event streams
// through per-event Observe and through batched ObserveBatch and checks
// that detection and witness agree.
func TestObserveBatchMatchesObserve(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3
		// Independent processes with random interleaved ticks: generate
		// per-process sequences of timestamps (merging occasionally).
		clocks := make([]*vclock.Clock, n)
		for p := range clocks {
			clocks[p] = vclock.NewClock(p, n)
		}
		type obs struct {
			proc int
			vc   vclock.VC
		}
		var trace []obs
		for i := 0; i < 30; i++ {
			p := rng.Intn(n)
			var vc vclock.VC
			if rng.Float64() < 0.3 {
				q := rng.Intn(n)
				vc = clocks[p].Receive(clocks[q].Now())
			} else {
				vc = clocks[p].Event()
			}
			if rng.Float64() < 0.5 {
				trace = append(trace, obs{p, vc})
			}
		}
		one := NewChecker([]int{0, 1, 2})
		for _, o := range trace {
			one.Observe(o.proc, o.vc)
		}
		batched := NewChecker([]int{0, 1, 2})
		// Group the trace into random contiguous per-process batches.
		i := 0
		for i < len(trace) {
			p := trace[i].proc
			var vcs []vclock.VC
			j := i
			for j < len(trace) && trace[j].proc == p && len(vcs) < 1+rng.Intn(4) {
				vcs = append(vcs, trace[j].vc)
				j++
			}
			batched.ObserveBatch(p, vcs)
			i = j
		}
		if one.Found() != batched.Found() {
			t.Fatalf("seed %d: Observe found=%v, ObserveBatch found=%v", seed, one.Found(), batched.Found())
		}
		if one.Found() {
			w1, w2 := one.Witness(), batched.Witness()
			for i := range w1 {
				if w1[i].Compare(w2[i]) != vclock.Equal {
					t.Fatalf("seed %d: witness mismatch at slot %d: %v vs %v", seed, i, w1[i], w2[i])
				}
			}
		}
		if !batched.Found() && batched.Pending() != one.Pending() {
			t.Fatalf("seed %d: pending mismatch: %d vs %d", seed, batched.Pending(), one.Pending())
		}
		if got := len(batched.Depths()); got != 3 {
			t.Fatalf("Depths length = %d, want 3", got)
		}
		if got := batched.Involved(); len(got) != 3 || got[0] != 0 {
			t.Fatalf("Involved = %v", got)
		}
	}
}
