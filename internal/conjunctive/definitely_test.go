package conjunctive

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

func latticeDefinitely(c *computation.Computation, truth [][]bool) bool {
	return lattice.Definitely(c, func(_ *computation.Computation, k computation.Cut) bool {
		for p := range truth {
			if truth[p] != nil && !truth[p][k[p]] {
				return false
			}
		}
		return true
	})
}

// TestDetectDefinitelyMatchesOracle is the load-bearing test: the interval
// algorithm must agree with exhaustive run analysis on thousands of
// random instances.
func TestDetectDefinitelyMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(467))
	for trial := 0; trial < 600; trial++ {
		c := randomComputation(rng, 2+rng.Intn(3), 5)
		truth := randomTruth(rng, c, 0.3+rng.Float64()*0.5)
		locals := make(map[computation.ProcID]LocalPredicate)
		for p := range truth {
			row := truth[p]
			locals[computation.ProcID(p)] = func(e computation.Event) bool {
				return e.Index < len(row) && row[e.Index]
			}
		}
		got := DetectDefinitely(c, locals)
		want := latticeDefinitely(c, truth)
		if got != want {
			t.Fatalf("trial %d: DetectDefinitely = %v, oracle = %v (procs=%d)",
				trial, got, want, c.NumProcs())
		}
	}
}

func TestDetectDefinitelyTrivial(t *testing.T) {
	c := computation.New()
	c.AddProcess()
	c.MustSeal()
	if !DetectDefinitely(c, nil) {
		t.Fatal("empty conjunction is trivially definite")
	}
}

func TestDetectDefinitelyInitialStates(t *testing.T) {
	// All initial states true: every run starts in a satisfying state.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	c.AddInternal(p0)
	c.AddInternal(p1)
	c.MustSeal()
	ok := DetectDefinitely(c, map[computation.ProcID]LocalPredicate{
		p0: func(e computation.Event) bool { return e.IsInitial() },
		p1: func(e computation.Event) bool { return e.IsInitial() },
	})
	if !ok {
		t.Fatal("initial conjunction must be definite")
	}
}

func TestDetectDefinitelyOrderedFlips(t *testing.T) {
	// p0 true only at a; p1 true only at b; a -> b via message means some
	// runs see them overlap but... with a message from a's successor to
	// b, p0's interval [a, a2) ends before b begins: no run overlaps.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	a2 := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a2, b); err != nil {
		t.Fatal(err)
	}
	c.MustSeal()
	ok := DetectDefinitely(c, map[computation.ProcID]LocalPredicate{
		p0: func(e computation.Event) bool { return e.ID == a },
		p1: func(e computation.Event) bool { return e.ID == b },
	})
	if ok {
		t.Fatal("intervals cannot overlap in any run")
	}
	// Whereas with a message directly from a to b (interval [a, a2)
	// still open when b happens? No: a2 may still be scheduled before
	// b... but not in every run), Definitely needs lo/end causality:
	// here lo0=a -> end1 (none, open) and lo1=b -> end0=a2 must hold;
	// b -> a2 is false, so still not definite — but Possibly holds.
	c2 := computation.New()
	q0 := c2.AddProcess()
	q1 := c2.AddProcess()
	x := c2.AddInternal(q0)
	x2 := c2.AddInternal(q0)
	y := c2.AddInternal(q1)
	if err := c2.AddMessage(x, y); err != nil {
		t.Fatal(err)
	}
	c2.MustSeal()
	locals := map[computation.ProcID]LocalPredicate{
		q0: func(e computation.Event) bool { return e.ID == x },
		q1: func(e computation.Event) bool { return e.ID == y },
	}
	if DetectDefinitely(c2, locals) {
		t.Fatal("a run may schedule x2 before y: not definite")
	}
	if !Detect(c2, locals).Found {
		t.Fatal("but the overlap is possible")
	}
	_ = x2
}

func TestDetectDefinitelyOpenIntervals(t *testing.T) {
	// Both predicates become true and stay true: definitely holds (the
	// final state satisfies in every run).
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	c.MustSeal()
	ok := DetectDefinitely(c, map[computation.ProcID]LocalPredicate{
		p0: func(e computation.Event) bool { return e.ID == a },
		p1: func(e computation.Event) bool { return e.ID == b },
	})
	if !ok {
		t.Fatal("stable conjunction must be definite")
	}
}

func TestDetectDefinitelyNoTrueStates(t *testing.T) {
	c := computation.New()
	p := c.AddProcess()
	c.AddInternal(p)
	c.MustSeal()
	if DetectDefinitely(c, map[computation.ProcID]LocalPredicate{
		p: func(computation.Event) bool { return false },
	}) {
		t.Fatal("no true states: cannot be definite")
	}
}
