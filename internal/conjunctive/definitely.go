package conjunctive

import (
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Definitely detection for conjunctive predicates, following Garg &
// Waldecker's strong-predicate technique ("Detection of strong unstable
// predicates in distributed programs"): the conjunction DEFINITELY holds —
// every run passes through a state where all local predicates are true —
// iff there is a selection of one true INTERVAL per involved process such
// that the start of every interval happened-before the end of every other.
//
// An interval is a maximal run of consecutive true states on one process,
// described by its starting event lo (the event that makes the predicate
// true) and its ending event end (the first event that makes it false
// again; absent when the interval runs to the end of the process). In a
// single run, all intervals share a moment iff every lo is scheduled
// before every end; that holds in EVERY run iff lo_p happened-before
// end_q for every pair — events are ordered in all linearizations exactly
// when they are causally ordered.
//
// The search over interval selections uses the same queue elimination as
// the weak detector: intervals of each process are naturally ordered, and
// when lo_p does not happen-before end_q, no interval of p (all of which
// start no earlier than the current head) can rescue q's current interval,
// so q's head is eliminated. Polynomial in the number of intervals.

// interval is one maximal true interval of a process.
type interval struct {
	lo  computation.EventID
	end computation.EventID // NoEvent when open-ended
}

// trueIntervals extracts the maximal true intervals of process p.
func trueIntervals(c *computation.Computation, p computation.ProcID, pred LocalPredicate) []interval {
	var out []interval
	var cur *interval
	for _, id := range c.ProcEvents(p) {
		if pred(c.Event(id)) {
			if cur == nil {
				cur = &interval{lo: id, end: computation.NoEvent}
			}
		} else {
			if cur != nil {
				cur.end = id
				out = append(out, *cur)
				cur = nil
			}
		}
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}

// DetectDefinitely reports whether every run of the computation passes
// through a global state satisfying the conjunction of the local
// predicates. An empty map is trivially definite.
func DetectDefinitely(c *computation.Computation, locals map[computation.ProcID]LocalPredicate) bool {
	return DetectDefinitelyTraced(c, locals, nil)
}

// DetectDefinitelyTraced is DetectDefinitely with work counters accumulated
// into the trace: true intervals extracted and intervals eliminated during
// the selection search.
func DetectDefinitelyTraced(c *computation.Computation, locals map[computation.ProcID]LocalPredicate, tr *obs.Trace) bool {
	procs := make([]computation.ProcID, 0, len(locals))
	for p := range locals {
		procs = append(procs, p)
	}
	// Map iteration order is random; canonicalize so elimination order —
	// and with it the work counters — is a pure function of the input.
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	var totalIntervals, eliminated int64
	defer func() {
		tr.Add("conjunctive.true_intervals", totalIntervals)
		tr.Add("conjunctive.intervals_eliminated", eliminated)
	}()
	queues := make([][]interval, len(procs))
	for i, p := range procs {
		queues[i] = trueIntervals(c, p, locals[p])
		totalIntervals += int64(len(queues[i]))
		if len(queues[i]) == 0 {
			return false
		}
	}
	cur := make([]int, len(procs))
	// holds reports the pair constraint: lo_i happened-before end_j (an
	// open-ended interval can never be scheduled to finish early).
	holds := func(i, j int) bool {
		lo := queues[i][cur[i]].lo
		end := queues[j][cur[j]].end
		return end == computation.NoEvent || c.Precedes(lo, end)
	}
	dirty := make([]int, len(procs))
	inDirty := make([]bool, len(procs))
	for i := range procs {
		dirty[i] = i
		inDirty[i] = true
	}
	push := func(i int) {
		if !inDirty[i] {
			dirty = append(dirty, i)
			inDirty[i] = true
		}
	}
	for len(dirty) > 0 {
		j := dirty[len(dirty)-1]
		dirty = dirty[:len(dirty)-1]
		inDirty[j] = false
		for i := range procs {
			if i == j {
				continue
			}
			// Constraint lo_i -> end_j: advancing i only moves lo_i
			// later, so a violation dooms j's current interval.
			if !holds(i, j) {
				cur[j]++
				eliminated++
				if cur[j] >= len(queues[j]) {
					return false
				}
				// j changed: both j's own constraints and everyone
				// whose end_j-constraint was previously verified must
				// be rechecked against the new interval.
				for k := range procs {
					push(k)
				}
				break
			}
			// Symmetric constraint lo_j -> end_i.
			if !holds(j, i) {
				cur[i]++
				eliminated++
				if cur[i] >= len(queues[i]) {
					return false
				}
				for k := range procs {
					push(k)
				}
				break
			}
		}
	}
	return true
}
