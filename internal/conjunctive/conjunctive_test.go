package conjunctive

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/vclock"
)

func randomComputation(rng *rand.Rand, np, me int) *computation.Computation {
	c := computation.New()
	for p := 0; p < np; p++ {
		c.AddProcess()
		n := 1 + rng.Intn(me)
		for i := 0; i < n; i++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	for tries := 0; tries < np*me; tries++ {
		p := computation.ProcID(rng.Intn(np))
		q := computation.ProcID(rng.Intn(np))
		if p == q {
			continue
		}
		i := 1 + rng.Intn(c.Len(p)-1)
		j := 1 + rng.Intn(c.Len(q)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
		}
	}
	return c.MustSeal()
}

func randomTruth(rng *rand.Rand, c *computation.Computation, density float64) [][]bool {
	truth := make([][]bool, c.NumProcs())
	for p := range truth {
		truth[p] = make([]bool, c.Len(computation.ProcID(p)))
		for i := range truth[p] {
			truth[p][i] = rng.Float64() < density
		}
	}
	return truth
}

func latticePossibly(c *computation.Computation, truth [][]bool) bool {
	ok, _ := lattice.Possibly(c, func(_ *computation.Computation, k computation.Cut) bool {
		for p := range truth {
			if !truth[p][k[p]] {
				return false
			}
		}
		return true
	})
	return ok
}

func TestDetectMatchesLatticeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		c := randomComputation(rng, 2+rng.Intn(3), 5)
		truth := randomTruth(rng, c, 0.4)
		want := latticePossibly(c, truth)
		res := DetectTables(c, truth)
		if res.Found != want {
			t.Fatalf("trial %d: Detect = %v, oracle = %v", trial, res.Found, want)
		}
		if res.Found {
			verifyWitness(t, c, truth, res)
		}
	}
}

func verifyWitness(t *testing.T, c *computation.Computation, truth [][]bool, res Result) {
	t.Helper()
	if !c.PairwiseConsistent(res.Witness) {
		t.Fatalf("witness %v not pairwise consistent", res.Witness)
	}
	for _, id := range res.Witness {
		e := c.Event(id)
		if !truth[int(e.Proc)][e.Index] {
			t.Fatalf("witness event %v not a true event", e)
		}
	}
	if !c.CutConsistent(res.Cut) {
		t.Fatalf("witness cut %v not consistent", res.Cut)
	}
	for _, id := range res.Witness {
		if !res.Cut.PassesThrough(c.Event(id)) {
			t.Fatalf("cut %v misses witness %v", res.Cut, c.Event(id))
		}
	}
}

func TestDetectUnconstrainedProcesses(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := randomComputation(rng, 4, 4)
	truth := randomTruth(rng, c, 0.5)
	truth[1] = nil // unconstrained
	truth[3] = nil
	res := DetectTables(c, truth)
	// Oracle: ignore nil rows.
	ok, _ := lattice.Possibly(c, func(_ *computation.Computation, k computation.Cut) bool {
		for p, row := range truth {
			if row != nil && !row[k[p]] {
				return false
			}
		}
		return true
	})
	if res.Found != ok {
		t.Fatalf("Detect = %v, oracle = %v", res.Found, ok)
	}
}

func TestDetectEmptySpec(t *testing.T) {
	c := computation.New()
	c.AddProcess()
	c.MustSeal()
	res := Detect(c, nil)
	if !res.Found {
		t.Fatal("empty conjunction must hold")
	}
	if len(res.Witness) != 0 {
		t.Fatalf("witness = %v, want empty", res.Witness)
	}
}

func TestDetectNoTrueEvents(t *testing.T) {
	c := computation.New()
	p := c.AddProcess()
	c.AddInternal(p)
	c.MustSeal()
	res := Detect(c, map[computation.ProcID]LocalPredicate{
		p: func(computation.Event) bool { return false },
	})
	if res.Found {
		t.Fatal("no true events: must not be found")
	}
}

func TestDetectInitialStates(t *testing.T) {
	// Predicate true exactly at both initial states: the initial cut is
	// the witness.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	c.AddInternal(p0)
	c.AddInternal(p1)
	c.MustSeal()
	res := Detect(c, map[computation.ProcID]LocalPredicate{
		p0: func(e computation.Event) bool { return e.IsInitial() },
		p1: func(e computation.Event) bool { return e.IsInitial() },
	})
	if !res.Found {
		t.Fatal("initial-state conjunction must be found")
	}
	if res.Cut.Size() != 0 {
		t.Fatalf("cut = %v, want initial cut", res.Cut)
	}
}

func TestDetectOrderedTrueEventsEliminated(t *testing.T) {
	// p0's only true event a happened-strictly-before p1's only true
	// event region ends: with a -> b and next(a) -> b, no consistent
	// pair exists when b's cut forces past next(a).
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	a2 := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a2, b); err != nil {
		t.Fatal(err)
	}
	c.MustSeal()
	res := Detect(c, map[computation.ProcID]LocalPredicate{
		p0: func(e computation.Event) bool { return e.ID == a },
		p1: func(e computation.Event) bool { return e.ID == b },
	})
	if res.Found {
		t.Fatal("a and b are inconsistent (next(a) -> b): must not be found")
	}
	if res.Eliminated == 0 {
		t.Error("expected at least one elimination")
	}
}

// TestCheckerMatchesOffline replays random computations through the online
// checker in a random linearization and compares with the offline detector.
func TestCheckerMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 150; trial++ {
		c := randomComputation(rng, 2+rng.Intn(3), 4)
		truth := randomTruth(rng, c, 0.4)
		// Only non-initial events can be streamed by a real monitor;
		// force initial states false for a fair comparison.
		for p := range truth {
			truth[p][0] = false
		}
		offline := DetectTables(c, truth)

		procs := make([]int, c.NumProcs())
		for p := range procs {
			procs[p] = p
		}
		ch := NewChecker(procs)
		// Replay one random run, maintaining online vector clocks.
		clocks := make([]*vclock.Clock, c.NumProcs())
		for p := range clocks {
			clocks[p] = vclock.NewClock(p, c.NumProcs())
		}
		stampOf := make(map[computation.EventID]vclock.VC)
		k := c.InitialCut()
		final := c.FinalCut()
		found := false
		for !k.Equal(final) {
			en := c.Enabled(k)
			id := en[rng.Intn(len(en))]
			e := c.Event(id)
			// Merge timestamps of all message predecessors, then
			// tick once for the event itself.
			var incoming vclock.VC
			for _, pre := range c.DirectPreds(id) {
				if c.Event(pre).Proc != e.Proc {
					if incoming == nil {
						incoming = stampOf[pre].Clone()
					} else {
						incoming.Merge(stampOf[pre])
					}
				}
			}
			var stamp vclock.VC
			if incoming != nil {
				stamp = clocks[int(e.Proc)].Receive(incoming)
			} else {
				stamp = clocks[int(e.Proc)].Event()
			}
			stampOf[id] = stamp
			if truth[int(e.Proc)][e.Index] {
				if ch.Observe(int(e.Proc), stamp) {
					found = true
				}
			}
			k = c.Execute(k, e.Proc)
		}
		if found != offline.Found {
			t.Fatalf("trial %d: online = %v, offline = %v", trial, found, offline.Found)
		}
		if found && ch.Witness() == nil {
			t.Fatal("found but no witness")
		}
		if !found && ch.Witness() != nil {
			t.Fatal("not found but witness present")
		}
	}
}

func TestCheckerIgnoresUninvolved(t *testing.T) {
	ch := NewChecker([]int{0, 1})
	if ch.Observe(7, vclock.VC{1, 1, 1}) {
		t.Fatal("observation from uninvolved process must not trigger")
	}
	if ch.Found() {
		t.Fatal("nothing should be found yet")
	}
}

func TestCheckerSimpleConcurrent(t *testing.T) {
	// Two processes with concurrent true events.
	ch := NewChecker([]int{0, 1})
	if ch.Observe(0, vclock.VC{1, 0}) {
		t.Fatal("half the conjunction cannot trigger")
	}
	if !ch.Observe(1, vclock.VC{0, 1}) {
		t.Fatal("concurrent true events must trigger")
	}
	w := ch.Witness()
	if len(w) != 2 {
		t.Fatalf("witness = %v", w)
	}
}

func TestCheckerEliminatesStaleHead(t *testing.T) {
	// p0's first true event is strictly before p1's event (p1 has seen
	// 2 events of p0); p0's second true event is concurrent.
	ch := NewChecker([]int{0, 1})
	ch.Observe(0, vclock.VC{1, 0})
	if ch.Observe(1, vclock.VC{2, 3}) {
		t.Fatal("should not trigger: head of p0 is superseded")
	}
	if !ch.Observe(0, vclock.VC{3, 0}) {
		t.Fatal("fresh concurrent true event must complete the conjunction")
	}
}

func TestWitnessIsCopied(t *testing.T) {
	ch := NewChecker([]int{0, 1})
	ch.Observe(0, vclock.VC{1, 0})
	ch.Observe(1, vclock.VC{0, 1})
	w := ch.Witness()
	w[0][0] = 99
	w2 := ch.Witness()
	if w2[0][0] == 99 {
		t.Fatal("Witness must return copies")
	}
}
