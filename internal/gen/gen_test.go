package gen

import (
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/core/singular"
)

func TestRandomShape(t *testing.T) {
	c := Random(Params{Seed: 1, Procs: 5, Events: 10, MsgFrac: 0.5})
	if c.NumProcs() != 5 {
		t.Fatalf("procs = %d", c.NumProcs())
	}
	for p := 0; p < 5; p++ {
		if c.Len(computation.ProcID(p)) != 11 {
			t.Fatalf("process %d has %d events, want 11", p, c.Len(computation.ProcID(p)))
		}
	}
	if len(c.Messages()) == 0 {
		t.Fatal("expected some messages")
	}
	if !c.Sealed() {
		t.Fatal("generator must seal")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(Params{Seed: 9, Procs: 4, Events: 8, MsgFrac: 1})
	b := Random(Params{Seed: 9, Procs: 4, Events: 8, MsgFrac: 1})
	if len(a.Messages()) != len(b.Messages()) {
		t.Fatal("same seed must give same messages")
	}
	c := Random(Params{Seed: 10, Procs: 4, Events: 8, MsgFrac: 1})
	if len(a.Messages()) == len(c.Messages()) {
		ma, mc := a.Messages(), c.Messages()
		same := true
		for i := range ma {
			if ma[i] != mc[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical computations")
		}
	}
}

func TestGroupFunnelReceiveOrdered(t *testing.T) {
	const groupSize = 2
	c := GroupFunnel(Params{Seed: 3, Procs: 6, Events: 8, MsgFrac: 1}, groupSize, true)
	// Receives may land only on group-first processes.
	c.Events(func(e computation.Event) bool {
		if e.Kind.IsReceive() && int(e.Proc)%groupSize != 0 {
			t.Fatalf("receive on non-first process %d", e.Proc)
		}
		return true
	})
	// And the singular receive-ordered detector must accept it.
	p := &singular.Predicate{Clauses: []singular.Clause{
		{{Proc: 0}, {Proc: 1}},
		{{Proc: 2}, {Proc: 3}},
		{{Proc: 4}, {Proc: 5}},
	}}
	truth := singular.TruthFromTables(BoolTables(7, c, 0.3))
	if _, err := singular.Detect(c, p, truth, singular.ReceiveOrdered); err != nil {
		t.Fatalf("receive-ordered detector rejected funnelled computation: %v", err)
	}
}

func TestGroupFunnelSendOrdered(t *testing.T) {
	const groupSize = 2
	c := GroupFunnel(Params{Seed: 5, Procs: 6, Events: 8, MsgFrac: 1}, groupSize, false)
	c.Events(func(e computation.Event) bool {
		if e.Kind.IsSend() && int(e.Proc)%groupSize != 0 {
			t.Fatalf("send on non-first process %d", e.Proc)
		}
		return true
	})
	p := &singular.Predicate{Clauses: []singular.Clause{
		{{Proc: 0}, {Proc: 1}},
		{{Proc: 2}, {Proc: 3}},
	}}
	truth := singular.TruthFromTables(BoolTables(7, c, 0.3))
	if _, err := singular.Detect(c, p, truth, singular.SendOrdered); err != nil {
		t.Fatalf("send-ordered detector rejected funnelled computation: %v", err)
	}
}

func TestUnitStepVar(t *testing.T) {
	c := Random(Params{Seed: 2, Procs: 4, Events: 12, MsgFrac: 0.4})
	UnitStepVar(11, c, "x")
	if err := relsum.ValidateUnitStep(c, "x"); err != nil {
		t.Fatalf("UnitStepVar not unit-step: %v", err)
	}
}

func TestArbitraryStepVar(t *testing.T) {
	c := Random(Params{Seed: 2, Procs: 3, Events: 20, MsgFrac: 0.2})
	ArbitraryStepVar(13, c, "y", 5)
	if got := relsum.MaxStep(c, "y"); got > 5 {
		t.Fatalf("MaxStep = %d, want <= 5", got)
	}
}

func TestBoolVar(t *testing.T) {
	c := Random(Params{Seed: 2, Procs: 3, Events: 30, MsgFrac: 0})
	BoolVar(17, c, "b", 0.5)
	flips := 0
	c.Events(func(e computation.Event) bool {
		v := c.Var("b", e.ID)
		if v != 0 && v != 1 {
			t.Fatalf("non-boolean value %d", v)
		}
		if !e.IsInitial() {
			prev := c.Var("b", c.Prev(e.ID))
			if v != prev {
				flips++
			}
		}
		return true
	})
	if flips == 0 {
		t.Fatal("expected some flips")
	}
}

func TestBoolTablesShape(t *testing.T) {
	c := Random(Params{Seed: 2, Procs: 3, Events: 5, MsgFrac: 0})
	tabs := BoolTables(19, c, 1.0)
	for p := range tabs {
		if len(tabs[p]) != c.Len(computation.ProcID(p)) {
			t.Fatalf("row %d has %d entries", p, len(tabs[p]))
		}
		for _, v := range tabs[p] {
			if !v {
				t.Fatal("density 1.0 must set all true")
			}
		}
	}
}
