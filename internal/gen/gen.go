// Package gen generates parameterised random computations — the workload
// generators behind the experiment harness and the benchmarks. All
// generators are deterministic in the seed.
package gen

import (
	"math/rand"

	"github.com/distributed-predicates/gpd/internal/computation"
)

// Params configures the random computation generator.
type Params struct {
	// Seed drives all randomness.
	Seed int64
	// Procs is the number of processes.
	Procs int
	// Events is the number of non-initial events per process.
	Events int
	// MsgFrac is the number of message attempts as a fraction of the
	// total event count (successful attempts require a causally valid
	// forward pairing; roughly half succeed).
	MsgFrac float64
}

// Random builds a random sealed computation: Procs processes with Events
// events each and random forward messages.
func Random(p Params) *computation.Computation {
	rng := rand.New(rand.NewSource(p.Seed))
	c := computation.New()
	for i := 0; i < p.Procs; i++ {
		c.AddProcess()
		for j := 0; j < p.Events; j++ {
			c.AddInternal(computation.ProcID(i))
		}
	}
	addRandomMessages(rng, c, int(p.MsgFrac*float64(p.Procs*p.Events)), nil)
	return c.MustSeal()
}

// addRandomMessages makes `attempts` attempts to add a random message; the
// optional recvOK filter restricts which processes may receive.
func addRandomMessages(rng *rand.Rand, c *computation.Computation, attempts int, recvOK func(computation.ProcID) bool) {
	np := c.NumProcs()
	if np < 2 {
		return
	}
	for t := 0; t < attempts; t++ {
		from := computation.ProcID(rng.Intn(np))
		to := computation.ProcID(rng.Intn(np))
		if from == to || (recvOK != nil && !recvOK(to)) {
			continue
		}
		if c.Len(from) < 2 || c.Len(to) < 2 {
			continue
		}
		i := 1 + rng.Intn(c.Len(from)-1)
		j := 1 + rng.Intn(c.Len(to)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(from, i).ID, c.EventAt(to, j).ID)
		}
	}
}

// GroupFunnel builds a computation whose processes are partitioned into
// groups of size k, with all messages funnelled so that only each group's
// first process receives (receiveOrdered true) or only each group's first
// process sends (receiveOrdered false). The result is receive-ordered
// (resp. send-ordered) with respect to the groups, matching the special
// cases of Section 3.2.
func GroupFunnel(p Params, groupSize int, receiveOrdered bool) *computation.Computation {
	rng := rand.New(rand.NewSource(p.Seed))
	c := computation.New()
	for i := 0; i < p.Procs; i++ {
		c.AddProcess()
		for j := 0; j < p.Events; j++ {
			c.AddInternal(computation.ProcID(i))
		}
	}
	isFirst := func(q computation.ProcID) bool { return int(q)%groupSize == 0 }
	attempts := int(p.MsgFrac * float64(p.Procs*p.Events))
	if receiveOrdered {
		addRandomMessages(rng, c, attempts, isFirst)
	} else {
		// Only group-first processes send.
		np := c.NumProcs()
		for t := 0; t < attempts; t++ {
			from := computation.ProcID(rng.Intn(np))
			if !isFirst(from) {
				continue
			}
			to := computation.ProcID(rng.Intn(np))
			if from == to {
				continue
			}
			i := 1 + rng.Intn(c.Len(from)-1)
			j := 1 + rng.Intn(c.Len(to)-1)
			if i < j {
				_ = c.AddMessage(c.EventAt(from, i).ID, c.EventAt(to, j).ID)
			}
		}
	}
	return c.MustSeal()
}

// BoolTables attaches a random boolean truth table (per process, per local
// index) with the given density, returned as tables.
func BoolTables(seed int64, c *computation.Computation, density float64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	tabs := make([][]bool, c.NumProcs())
	for p := range tabs {
		tabs[p] = make([]bool, c.Len(computation.ProcID(p)))
		for i := range tabs[p] {
			tabs[p][i] = rng.Float64() < density
		}
	}
	return tabs
}

// UnitStepVar writes a random unit-step integer variable (changing by -1,
// 0 or +1 at every event) under the given name into the computation.
func UnitStepVar(seed int64, c *computation.Computation, name string) {
	rng := rand.New(rand.NewSource(seed))
	for p := 0; p < c.NumProcs(); p++ {
		v := int64(rng.Intn(3) - 1)
		for _, id := range c.ProcEvents(computation.ProcID(p)) {
			if !c.Event(id).IsInitial() {
				v += int64(rng.Intn(3) - 1)
			}
			c.SetVar(name, id, v)
		}
	}
}

// ArbitraryStepVar writes a random integer variable with per-event jumps
// up to maxJump in magnitude.
func ArbitraryStepVar(seed int64, c *computation.Computation, name string, maxJump int) {
	rng := rand.New(rand.NewSource(seed))
	for p := 0; p < c.NumProcs(); p++ {
		v := int64(rng.Intn(2*maxJump+1) - maxJump)
		for _, id := range c.ProcEvents(computation.ProcID(p)) {
			if !c.Event(id).IsInitial() {
				v += int64(rng.Intn(2*maxJump+1) - maxJump)
			}
			c.SetVar(name, id, v)
		}
	}
}

// BoolVar writes random 0/1 values under name, flipping with the given
// probability at each event (a unit-step boolean).
func BoolVar(seed int64, c *computation.Computation, name string, flipProb float64) {
	rng := rand.New(rand.NewSource(seed))
	for p := 0; p < c.NumProcs(); p++ {
		v := int64(rng.Intn(2))
		for _, id := range c.ProcEvents(computation.ProcID(p)) {
			if !c.Event(id).IsInitial() && rng.Float64() < flipProb {
				v = 1 - v
			}
			c.SetVar(name, id, v)
		}
	}
}
