package sat

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/cnf"
)

func bruteSat(f *cnf.Formula) bool {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		a := make(cnf.Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(a) {
			return true
		}
	}
	return false
}

func TestSimpleSat(t *testing.T) {
	f := &cnf.Formula{NumVars: 2, Clauses: []cnf.Clause{{1, 2}, {-1, 2}}}
	ok, a := New().Solve(f)
	if !ok {
		t.Fatal("expected SAT")
	}
	if !f.Eval(a) {
		t.Fatalf("returned assignment %v does not satisfy", a)
	}
}

func TestSimpleUnsat(t *testing.T) {
	f := &cnf.Formula{NumVars: 1, Clauses: []cnf.Clause{{1}, {-1}}}
	if ok, _ := New().Solve(f); ok {
		t.Fatal("expected UNSAT")
	}
}

func TestEmptyFormula(t *testing.T) {
	f := &cnf.Formula{NumVars: 3}
	if ok, _ := New().Solve(f); !ok {
		t.Fatal("empty formula is SAT")
	}
}

func TestEmptyClause(t *testing.T) {
	f := &cnf.Formula{NumVars: 1, Clauses: []cnf.Clause{{}}}
	if ok, _ := New().Solve(f); ok {
		t.Fatal("empty clause is UNSAT")
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// x1, x1->x2, x2->x3, x3 -> !x4 ... forced chain.
	f := &cnf.Formula{NumVars: 4, Clauses: []cnf.Clause{
		{1}, {-1, 2}, {-2, 3}, {-3, -4},
	}}
	s := New()
	ok, a := s.Solve(f)
	if !ok {
		t.Fatal("expected SAT")
	}
	if !a[1] || !a[2] || !a[3] || a[4] {
		t.Fatalf("assignment %v, want T T T F", a[1:])
	}
	if s.Decisions != 0 {
		t.Errorf("Decisions = %d, want 0 (pure propagation)", s.Decisions)
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	// 3 pigeons, 2 holes: var p(i,h) = 2*i + h + 1.
	v := func(i, h int) cnf.Lit { return cnf.Lit(2*i + h + 1) }
	f := &cnf.Formula{NumVars: 6}
	for i := 0; i < 3; i++ {
		f.Clauses = append(f.Clauses, cnf.Clause{v(i, 0), v(i, 1)})
	}
	for h := 0; h < 2; h++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				f.Clauses = append(f.Clauses, cnf.Clause{v(i, h).Neg(), v(j, h).Neg()})
			}
		}
	}
	if Satisfiable(f) {
		t.Fatal("pigeonhole(3,2) must be UNSAT")
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 500; trial++ {
		nv := 1 + rng.Intn(8)
		nc := 1 + rng.Intn(12)
		f := &cnf.Formula{NumVars: nv}
		for i := 0; i < nc; i++ {
			n := 1 + rng.Intn(3)
			cl := make(cnf.Clause, 0, n)
			for j := 0; j < n; j++ {
				l := cnf.Lit(1 + rng.Intn(nv))
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				cl = append(cl, l)
			}
			f.Clauses = append(f.Clauses, cl)
		}
		want := bruteSat(f)
		ok, a := New().Solve(f)
		if ok != want {
			t.Fatalf("trial %d: Solve = %v, brute = %v for %v", trial, ok, want, f)
		}
		if ok && !f.Eval(a) {
			t.Fatalf("trial %d: assignment does not satisfy %v", trial, f)
		}
	}
}
