// Package sat implements a DPLL satisfiability solver with unit propagation
// and pure-literal elimination. It is deliberately simple — the library
// uses it as an independent oracle to validate the NP-hardness reductions
// of Mittal & Garg (a formula is satisfiable iff the constructed detection
// instance has a satisfying consistent cut), not as a competitive solver.
package sat

import (
	"github.com/distributed-predicates/gpd/internal/cnf"
)

// Solver solves CNF formulas.
type Solver struct {
	// Decisions counts branching decisions of the last Solve call;
	// exposed for the benchmark harness.
	Decisions int
}

// New returns a fresh solver.
func New() *Solver { return &Solver{} }

type value int8

const (
	unassigned value = iota
	vTrue
	vFalse
)

// Solve determines satisfiability. When satisfiable it also returns a
// satisfying assignment (index 0 unused).
func (s *Solver) Solve(f *cnf.Formula) (bool, cnf.Assignment) {
	s.Decisions = 0
	assign := make([]value, f.NumVars+1)
	clauses := make([]cnf.Clause, len(f.Clauses))
	copy(clauses, f.Clauses)
	if !s.dpll(clauses, assign) {
		return false, nil
	}
	out := make(cnf.Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = assign[v] == vTrue
	}
	return true, out
}

func litValue(assign []value, l cnf.Lit) value {
	v := assign[l.Var()]
	if v == unassigned {
		return unassigned
	}
	if (v == vTrue) == l.Pos() {
		return vTrue
	}
	return vFalse
}

// simplify applies unit propagation and pure-literal elimination until a
// fixpoint. It returns the reduced clause list and false on conflict.
func simplify(clauses []cnf.Clause, assign []value) ([]cnf.Clause, bool) {
	for {
		changed := false
		// Unit propagation and clause reduction.
		out := clauses[:0:0]
		for _, cl := range clauses {
			sat := false
			var unit cnf.Lit
			live := 0
			for _, l := range cl {
				switch litValue(assign, l) {
				case vTrue:
					sat = true
				case unassigned:
					live++
					unit = l
				}
			}
			if sat {
				continue
			}
			if live == 0 {
				return nil, false // conflict
			}
			if live == 1 {
				if unit.Pos() {
					assign[unit.Var()] = vTrue
				} else {
					assign[unit.Var()] = vFalse
				}
				changed = true
				continue
			}
			out = append(out, cl)
		}
		clauses = out
		// Pure literal elimination.
		const (
			seenPos = 1
			seenNeg = 2
		)
		polarity := make(map[int]int)
		for _, cl := range clauses {
			for _, l := range cl {
				if litValue(assign, l) == unassigned {
					if l.Pos() {
						polarity[l.Var()] |= seenPos
					} else {
						polarity[l.Var()] |= seenNeg
					}
				}
			}
		}
		for v, pol := range polarity {
			if pol == seenPos {
				assign[v] = vTrue
				changed = true
			} else if pol == seenNeg {
				assign[v] = vFalse
				changed = true
			}
		}
		if !changed {
			return clauses, true
		}
	}
}

func (s *Solver) dpll(clauses []cnf.Clause, assign []value) bool {
	clauses, ok := simplify(clauses, assign)
	if !ok {
		return false
	}
	if len(clauses) == 0 {
		return true
	}
	// Branch on the first unassigned literal of the first clause.
	var branch cnf.Lit
	for _, l := range clauses[0] {
		if litValue(assign, l) == unassigned {
			branch = l
			break
		}
	}
	s.Decisions++
	v := branch.Var()
	saved := make([]value, len(assign))

	copy(saved, assign)
	if branch.Pos() {
		assign[v] = vTrue
	} else {
		assign[v] = vFalse
	}
	if s.dpll(clauses, assign) {
		return true
	}
	copy(assign, saved)
	if branch.Pos() {
		assign[v] = vFalse
	} else {
		assign[v] = vTrue
	}
	return s.dpll(clauses, assign)
}

// Satisfiable is a convenience wrapper around New().Solve.
func Satisfiable(f *cnf.Formula) bool {
	ok, _ := New().Solve(f)
	return ok
}
