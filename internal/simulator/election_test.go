package simulator

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
)

func TestElectionExactlyOneLeader(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		perm := rng.Perm(n)
		sim := New(seed, NewElectionProcs(n, perm))
		c, err := sim.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Exactly one leader at the final cut, and it is the max id.
		leaders := 0
		leaderProc := -1
		for p := 0; p < n; p++ {
			if c.Var(VarLeader, c.Final(computation.ProcID(p)).ID) != 0 {
				leaders++
				leaderProc = p
			}
		}
		if leaders != 1 {
			t.Fatalf("seed %d: %d leaders at the end, want 1", seed, leaders)
		}
		if perm[leaderProc] != n-1 {
			t.Fatalf("seed %d: elected id %d, want max %d", seed, perm[leaderProc], n-1)
		}
		// Safety over ALL consistent cuts: never two leaders.
		two, err := relsum.Possibly(c, VarLeader, relsum.Ge, 2)
		if err != nil {
			t.Fatal(err)
		}
		if two {
			t.Fatalf("seed %d: Possibly(two leaders) must be false", seed)
		}
		// Progress: every run of the recorded computation elects.
		def, err := relsum.Definitely(c, VarLeader, relsum.Eq, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !def {
			t.Fatalf("seed %d: Definitely(one leader) must hold", seed)
		}
	}
}

func TestElectionCandidatesShrink(t *testing.T) {
	sim := New(5, NewElectionProcs(5, nil))
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// At the end only the winner may still be a candidate.
	n := 0
	for p := 0; p < 5; p++ {
		if c.Var(VarCandidate, c.Final(computation.ProcID(p)).ID) != 0 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("candidates at end = %d, want 1", n)
	}
	// Candidate count is monotone non-increasing along every run:
	// Definitely(candidates <= k) holds for k from n-1 downward... at
	// least verify the final-count reachability facts.
	min, _ := relsum.SumRange(c, VarCandidate)
	if min != 1 {
		t.Fatalf("min candidates over cuts = %d, want 1", min)
	}
}
