package simulator

// Two-phase commit: a coordinator collects votes from participants and
// broadcasts the decision. The protocol family is a staple of the
// predicate-detection literature — "the commit point of a transaction" is
// the paper's own example of a good condition to verify with Definitely.
//
// Variables:
//   - VarVotedYes:  participant voted yes (never unset);
//   - VarCommitted: process has decided commit;
//   - VarAborted:   process has decided abort.
//
// The interesting predicates: Definitely(all committed or all aborted at
// the end), and the safety question Possibly(some committed AND some
// aborted) which must be false on agreement but is detectably true when
// the WithBug option makes the coordinator decide too early.

// Variable names written by the 2PC processes.
const (
	VarVotedYes  = "votedyes"
	VarCommitted = "committed"
	VarAborted   = "aborted"
)

// TwoPhaseCoordinator drives the protocol among n processes: process 0 is
// the coordinator, 1..n-1 are participants.
type TwoPhaseCoordinator struct {
	// N is the total process count (participants = N-1).
	N int
	// Buggy makes the coordinator decide commit after the FIRST yes
	// vote instead of waiting for all — the classic premature-commit
	// bug, detectable as Possibly(committed and aborted coexist).
	Buggy bool

	started  bool
	yesVotes int
	noVotes  int
	decided  bool
}

// TwoPhaseParticipant votes and obeys the decision.
type TwoPhaseParticipant struct {
	// VoteYes is this participant's vote.
	VoteYes bool

	voted bool
}

var (
	_ Process = (*TwoPhaseCoordinator)(nil)
	_ Process = (*TwoPhaseParticipant)(nil)
)

// NewTwoPhaseProcs builds a coordinator (process 0) and n-1 participants;
// participant i votes yes iff vote(i) (i in 1..n-1).
func NewTwoPhaseProcs(n int, buggy bool, vote func(i int) bool) []Process {
	procs := make([]Process, n)
	procs[0] = &TwoPhaseCoordinator{N: n, Buggy: buggy}
	for i := 1; i < n; i++ {
		procs[i] = &TwoPhaseParticipant{VoteYes: vote(i)}
	}
	return procs
}

// Init zeroes the decision state.
func (tc *TwoPhaseCoordinator) Init(ctx *Ctx) {
	ctx.SetBool(VarCommitted, false)
	ctx.SetBool(VarAborted, false)
}

// OnStep broadcasts the vote request once.
func (tc *TwoPhaseCoordinator) OnStep(ctx *Ctx) bool {
	if tc.started {
		return false
	}
	tc.started = true
	for p := 1; p < tc.N; p++ {
		ctx.Send(p, Payload{Kind: "prepare"})
	}
	return false
}

// OnMessage tallies votes and broadcasts the decision.
func (tc *TwoPhaseCoordinator) OnMessage(ctx *Ctx, from int, msg Payload) {
	if tc.decided {
		return
	}
	switch msg.Kind {
	case "yes":
		tc.yesVotes++
	case "no":
		tc.noVotes++
	default:
		return
	}
	commitNow := tc.yesVotes == tc.N-1
	if tc.Buggy && tc.yesVotes >= 1 {
		commitNow = true // BUG: premature commit on the first yes
	}
	if commitNow {
		tc.decided = true
		ctx.SetBool(VarCommitted, true)
		for p := 1; p < tc.N; p++ {
			ctx.Send(p, Payload{Kind: "commit"})
		}
		return
	}
	if tc.noVotes >= 1 {
		tc.decided = true
		ctx.SetBool(VarAborted, true)
		for p := 1; p < tc.N; p++ {
			ctx.Send(p, Payload{Kind: "abort"})
		}
	}
}

// Init records the (not yet cast) vote state.
func (tp *TwoPhaseParticipant) Init(ctx *Ctx) {
	ctx.SetBool(VarVotedYes, false)
	ctx.SetBool(VarCommitted, false)
	ctx.SetBool(VarAborted, false)
}

// OnStep does nothing; participants are reactive.
func (tp *TwoPhaseParticipant) OnStep(ctx *Ctx) bool { return false }

// OnMessage votes on prepare and applies decisions. A participant that
// voted no aborts unilaterally, as the protocol allows.
func (tp *TwoPhaseParticipant) OnMessage(ctx *Ctx, from int, msg Payload) {
	switch msg.Kind {
	case "prepare":
		if tp.voted {
			return
		}
		tp.voted = true
		if tp.VoteYes {
			ctx.SetBool(VarVotedYes, true)
			ctx.Send(0, Payload{Kind: "yes"})
		} else {
			ctx.SetBool(VarAborted, true) // unilateral abort
			ctx.Send(0, Payload{Kind: "no"})
		}
	case "commit":
		ctx.SetBool(VarCommitted, true)
	case "abort":
		ctx.SetBool(VarAborted, true)
	}
}
