package simulator

// This file ships the workload protocols used by the examples and the
// benchmark harness. Each is intentionally small but exercises a pattern
// the paper's introduction motivates:
//
//   - TokenRing: conservation predicates ("exactly k tokens") — the
//     relational sum detector's home turf.
//   - FlawedMutex: a mutual exclusion protocol with a deliberate race, so
//     that Possibly(cs_i and cs_j) is occasionally true — the conjunctive
//     and singular detectors find the violation that no single observed
//     interleaving may exhibit.
//   - Voter: gossip-based voting with changing minds — majority and
//     parity predicates (the symmetric detector).
//   - Gossiper: a generic random workload for scaling benchmarks.

// VarTokens is the token-count variable written by TokenRing processes.
const VarTokens = "tokens"

// TokenRing passes Tokens tokens around a ring of N processes. Each holder
// performs Work internal steps and forwards the token to its right
// neighbour; each process forwards at most Rounds tokens before retiring.
type TokenRing struct {
	N, Tokens, Work, Rounds int

	holding int
	working int
	sent    int
}

var _ Process = (*TokenRing)(nil)

// NewTokenRingProcs builds the n ring members holding the initial tokens
// on the first processes.
func NewTokenRingProcs(n, tokens, work, rounds int) []Process {
	procs := make([]Process, n)
	for i := range procs {
		p := &TokenRing{N: n, Tokens: tokens, Work: work, Rounds: rounds}
		if i < tokens {
			p.holding = 1
		}
		procs[i] = p
	}
	return procs
}

// Init records the initial token count.
func (t *TokenRing) Init(ctx *Ctx) {
	ctx.Set(VarTokens, int64(t.holding))
}

// OnMessage receives a token.
func (t *TokenRing) OnMessage(ctx *Ctx, from int, msg Payload) {
	if msg.Kind == "token" {
		t.holding++
		ctx.Set(VarTokens, int64(t.holding))
		ctx.Wake()
	}
}

// OnStep works while holding a token, then forwards it. A process that
// has forwarded its quota retires and parks any further tokens it
// receives, so the ring quiesces with all tokens accounted for.
func (t *TokenRing) OnStep(ctx *Ctx) bool {
	if t.holding == 0 || t.sent >= t.Rounds {
		return false
	}
	if t.working < t.Work {
		t.working++
		return true
	}
	// Forward one token to the right neighbour.
	t.working = 0
	t.holding--
	t.sent++
	ctx.Set(VarTokens, int64(t.holding))
	ctx.Send((ctx.Self()+1)%t.N, Payload{Kind: "token"})
	return t.sent < t.Rounds
}

// VarCS is the in-critical-section flag written by FlawedMutex processes.
const VarCS = "cs"

// FlawedMutex is a deliberately broken mutual exclusion protocol: a
// process asks only its left neighbour for permission before entering the
// critical section, so two processes whose left neighbours are distinct
// can be inside simultaneously. The race is timing-dependent; predicate
// detection over the recorded partial order finds it even when the
// observed interleaving happened to be safe.
type FlawedMutex struct {
	N, Entries int

	state   int // 0 idle, 1 waiting, 2 in CS, 3 done
	entered int
}

var _ Process = (*FlawedMutex)(nil)

// NewFlawedMutexProcs builds n contending processes, each entering the
// critical section entries times.
func NewFlawedMutexProcs(n, entries int) []Process {
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &FlawedMutex{N: n, Entries: entries}
	}
	return procs
}

// Init records that the process starts outside the critical section.
func (m *FlawedMutex) Init(ctx *Ctx) {
	ctx.SetBool(VarCS, false)
}

// OnMessage grants permission (any process grants immediately — the bug)
// or receives a grant.
func (m *FlawedMutex) OnMessage(ctx *Ctx, from int, msg Payload) {
	switch msg.Kind {
	case "request":
		// BUG: grant without checking or recording local interest.
		ctx.Send(from, Payload{Kind: "grant"})
	case "grant":
		if m.state == 1 {
			m.state = 2
			m.entered++
			ctx.SetBool(VarCS, true)
			ctx.Wake()
		}
	}
}

// OnStep requests, then leaves the critical section.
func (m *FlawedMutex) OnStep(ctx *Ctx) bool {
	switch m.state {
	case 0:
		if m.entered >= m.Entries {
			m.state = 3
			return false
		}
		m.state = 1
		left := (ctx.Self() + m.N - 1) % m.N
		ctx.Send(left, Payload{Kind: "request"})
		return false // wait for the grant
	case 2:
		// One step inside the critical section, then leave.
		m.state = 0
		ctx.SetBool(VarCS, false)
		return true
	default:
		return false
	}
}

// VarYes is the current-vote variable written by Voter processes.
const VarYes = "yes"

// Voter gossips a yes/no opinion: each process broadcasts its vote a few
// times and adopts the majority of opinions heard so far, flipping its
// variable as it changes its mind.
type Voter struct {
	N, Rounds int
	Initial   bool

	vote       bool
	yesHeard   int
	totalHeard int
	sent       int
}

var _ Process = (*Voter)(nil)

// NewVoterProcs builds n voters; voter i starts with vote yes iff
// initial(i).
func NewVoterProcs(n, rounds int, initial func(i int) bool) []Process {
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &Voter{N: n, Rounds: rounds, Initial: initial(i)}
	}
	return procs
}

// Init records the initial vote.
func (v *Voter) Init(ctx *Ctx) {
	v.vote = v.Initial
	ctx.SetBool(VarYes, v.vote)
}

// OnMessage hears an opinion and possibly changes its mind.
func (v *Voter) OnMessage(ctx *Ctx, from int, msg Payload) {
	if msg.Kind != "opinion" {
		return
	}
	v.totalHeard++
	if msg.Data == 1 {
		v.yesHeard++
	}
	newVote := 2*v.yesHeard >= v.totalHeard
	if newVote != v.vote {
		v.vote = newVote
		ctx.SetBool(VarYes, v.vote)
	}
}

// OnStep broadcasts the current opinion to a random peer.
func (v *Voter) OnStep(ctx *Ctx) bool {
	if v.sent >= v.Rounds {
		return false
	}
	v.sent++
	to := ctx.Rand().Intn(v.N)
	if to == ctx.Self() {
		to = (to + 1) % v.N
	}
	data := int64(0)
	if v.vote {
		data = 1
	}
	ctx.Send(to, Payload{Kind: "opinion", Data: data})
	return v.sent < v.Rounds
}

// VarFlag is the random boolean written by Gossiper processes.
const VarFlag = "flag"

// VarLevel is the unit-step counter written by Gossiper processes.
const VarLevel = "level"

// Gossiper is a generic random workload: each process performs Steps
// steps; at each step it flips a boolean with probability 1/3, moves a
// unit-step counter up or down, and sends a message to a random peer with
// probability MsgProb (x1000).
type Gossiper struct {
	N, Steps    int
	MsgPerMille int

	level int64
	flag  bool
	done  int
}

var _ Process = (*Gossiper)(nil)

// NewGossiperProcs builds n gossipers with the given step count and
// message probability (per mille).
func NewGossiperProcs(n, steps, msgPerMille int) []Process {
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &Gossiper{N: n, Steps: steps, MsgPerMille: msgPerMille}
	}
	return procs
}

// Init records zeroed variables.
func (g *Gossiper) Init(ctx *Ctx) {
	ctx.Set(VarLevel, 0)
	ctx.SetBool(VarFlag, false)
}

// OnMessage just merges causality; gossip content is irrelevant.
func (g *Gossiper) OnMessage(ctx *Ctx, from int, msg Payload) {}

// OnStep mutates local state and occasionally gossips.
func (g *Gossiper) OnStep(ctx *Ctx) bool {
	if g.done >= g.Steps {
		return false
	}
	g.done++
	rng := ctx.Rand()
	if rng.Intn(3) == 0 {
		g.flag = !g.flag
		ctx.SetBool(VarFlag, g.flag)
	}
	g.level += int64(rng.Intn(3) - 1)
	ctx.Set(VarLevel, g.level)
	if rng.Intn(1000) < g.MsgPerMille {
		to := rng.Intn(g.N)
		if to != ctx.Self() {
			ctx.Send(to, Payload{Kind: "gossip"})
		}
	}
	return g.done < g.Steps
}
