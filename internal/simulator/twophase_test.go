package simulator

import (
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

// mixedDecision reports whether some consistent cut shows a committed
// process coexisting with an aborted one.
func mixedDecision(c *computation.Computation) bool {
	ok, _ := lattice.Possibly(c, func(cc *computation.Computation, k computation.Cut) bool {
		committed, aborted := false, false
		for p := 0; p < cc.NumProcs(); p++ {
			id := cc.EventAt(computation.ProcID(p), k[p]).ID
			if cc.Var(VarCommitted, id) != 0 {
				committed = true
			}
			if cc.Var(VarAborted, id) != 0 {
				aborted = true
			}
		}
		return committed && aborted
	})
	return ok
}

func TestTwoPhaseAllYesCommits(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sim := New(seed, NewTwoPhaseProcs(4, false, func(int) bool { return true }))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Everyone committed at the end.
		for p := 0; p < 4; p++ {
			if c.Var(VarCommitted, c.Final(computation.ProcID(p)).ID) == 0 {
				t.Fatalf("seed %d: process %d did not commit", seed, p)
			}
		}
		// No mixed state is even possible.
		if mixedDecision(c) {
			t.Fatalf("seed %d: correct protocol shows mixed decisions", seed)
		}
		// Definitely(everyone committed): sum of committed flags
		// reaches 4 on every run.
		def, err := relsum.Definitely(c, VarCommitted, relsum.Eq, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !def {
			t.Fatalf("seed %d: commit point must be definite", seed)
		}
	}
}

func TestTwoPhaseOneNoAborts(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sim := New(seed, NewTwoPhaseProcs(4, false, func(i int) bool { return i != 2 }))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 4; p++ {
			final := c.Final(computation.ProcID(p)).ID
			if c.Var(VarCommitted, final) != 0 {
				t.Fatalf("seed %d: process %d committed despite a no vote", seed, p)
			}
			if c.Var(VarAborted, final) == 0 {
				t.Fatalf("seed %d: process %d did not abort", seed, p)
			}
		}
		if got := c.Var(VarCommitted, c.Final(0).ID); got != 0 {
			t.Fatalf("seed %d: coordinator committed", seed)
		}
	}
}

func TestTwoPhaseBuggyCoordinatorViolatesAgreement(t *testing.T) {
	// With the premature-commit bug and a mixed vote, some seed must
	// exhibit a reachable state with commit and abort coexisting.
	violated := false
	for seed := int64(0); seed < 20 && !violated; seed++ {
		sim := New(seed, NewTwoPhaseProcs(4, true, func(i int) bool { return i != 3 }))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if mixedDecision(c) {
			violated = true
		}
	}
	if !violated {
		t.Fatal("buggy coordinator never produced a detectable agreement violation")
	}
}

func TestTwoPhaseQuiescence(t *testing.T) {
	sim := New(3, NewTwoPhaseProcs(4, false, func(int) bool { return true }))
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	min, max := relsum.InFlightRange(c)
	if min != 0 {
		t.Fatalf("min in-flight = %d", min)
	}
	// Prepare broadcast puts up to 3 messages in flight at once.
	if max < 1 || max > 6 {
		t.Fatalf("max in-flight = %d, expected within [1,6]", max)
	}
}
