// Package simulator is a deterministic discrete-event simulator of
// asynchronous message-passing systems. Processes implement the Process
// interface; the simulator interleaves their steps and message deliveries
// under a seeded scheduler with reliable, non-FIFO channels — exactly the
// system model of the paper — and records the execution as a
// computation.Computation, with per-process variables captured at every
// event so the predicate detectors can replay the run offline.
//
// The paper motivates predicate detection with testing and debugging of
// distributed programs; this package plays the role of the instrumented
// application. The protocols file ships a small library of classic
// workloads (token ring, a deliberately flawed mutual exclusion protocol,
// distributed voting) used by the examples and the benchmark harness.
package simulator

import (
	"fmt"
	"math/rand"

	"github.com/distributed-predicates/gpd/internal/computation"
)

// Payload is the application content of a message.
type Payload struct {
	// Kind tags the message type (protocol-defined).
	Kind string
	// Data carries an integer argument.
	Data int64
}

// Process is the behaviour of one simulated process.
type Process interface {
	// Init runs before any event; it may set initial variable values
	// (recorded at the initial event) but must not send.
	Init(ctx *Ctx)
	// OnMessage handles one delivered message; the invocation is
	// recorded as a receive event.
	OnMessage(ctx *Ctx, from int, msg Payload)
	// OnStep performs one spontaneous step, recorded as an internal (or
	// send) event. Returning false indicates the process has no further
	// spontaneous work; it may still react to messages.
	OnStep(ctx *Ctx) bool
}

// Ctx is the per-callback interface a process uses to act on the world.
type Ctx struct {
	sim  *Simulator
	self int
	// cur is the event being recorded; NoEvent during Init.
	cur computation.EventID
}

// Self returns the process's own index.
func (ctx *Ctx) Self() int { return ctx.self }

// N returns the number of processes.
func (ctx *Ctx) N() int { return len(ctx.sim.procs) }

// Rand returns the deterministic per-simulation random source. Processes
// share it; scheduling already serializes callbacks.
func (ctx *Ctx) Rand() *rand.Rand { return ctx.sim.rng }

// Send enqueues a message to another process, attached to the current
// event (which becomes a send event). Sending during Init is an error.
func (ctx *Ctx) Send(to int, msg Payload) {
	if ctx.cur == computation.NoEvent {
		panic("simulator: Send during Init")
	}
	if to < 0 || to >= ctx.N() {
		panic(fmt.Sprintf("simulator: send to unknown process %d", to))
	}
	ctx.sim.inflight = append(ctx.sim.inflight, flight{
		from: ctx.self, to: to, msg: msg, sendEvent: ctx.cur,
	})
}

// Set assigns the named local variable; the value is recorded at the
// current event and persists until reassigned.
func (ctx *Ctx) Set(name string, v int64) {
	vars := ctx.sim.vars[ctx.self]
	vars[name] = v
	ctx.sim.names[name] = true
	if ctx.cur != computation.NoEvent {
		ctx.sim.c.SetVar(name, ctx.cur, v)
	}
}

// SetBool assigns a boolean variable, stored as 0/1.
func (ctx *Ctx) SetBool(name string, v bool) {
	if v {
		ctx.Set(name, 1)
	} else {
		ctx.Set(name, 0)
	}
}

// Get reads the current value of one of the process's own variables.
func (ctx *Ctx) Get(name string) int64 { return ctx.sim.vars[ctx.self][name] }

// Wake re-enables spontaneous steps for this process. Typically called
// from OnMessage when a delivery creates new local work after OnStep has
// previously returned false.
func (ctx *Ctx) Wake() { ctx.sim.active[ctx.self] = true }

// flight is a message in transit.
type flight struct {
	from, to  int
	msg       Payload
	sendEvent computation.EventID
}

// Simulator drives a set of processes.
type Simulator struct {
	procs    []Process
	rng      *rand.Rand
	c        *computation.Computation
	inflight []flight
	active   []bool // process still has spontaneous work
	vars     []map[string]int64
	names    map[string]bool
	maxEv    int
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithMaxEvents bounds the total number of events recorded (a safety net
// against non-terminating protocols). The default is 100000.
func WithMaxEvents(n int) Option {
	return func(s *Simulator) { s.maxEv = n }
}

// New builds a simulator over the given processes with a seeded scheduler.
func New(seed int64, procs []Process, opts ...Option) *Simulator {
	s := &Simulator{
		procs: procs,
		rng:   rand.New(rand.NewSource(seed)),
		c:     computation.New(),
		maxEv: 100000,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Run executes the simulation to quiescence (every process declines to
// step and no messages are in flight) or to the event bound, then seals
// and returns the recorded computation.
func (s *Simulator) Run() (*computation.Computation, error) {
	n := len(s.procs)
	s.active = make([]bool, n)
	s.vars = make([]map[string]int64, n)
	s.names = make(map[string]bool)
	for p := 0; p < n; p++ {
		s.c.AddProcess()
		s.active[p] = true
		s.vars[p] = make(map[string]int64)
	}
	// Init phase: record initial variable values at the initial events.
	for p := 0; p < n; p++ {
		ctx := &Ctx{sim: s, self: p, cur: computation.NoEvent}
		s.procs[p].Init(ctx)
		for name, v := range s.vars[p] {
			s.c.SetVar(name, s.c.Initial(computation.ProcID(p)).ID, v)
		}
	}
	for s.c.NumEvents() < s.maxEv+n {
		// Choose among deliverable messages and active processes.
		nChoices := len(s.inflight)
		var steppable []int
		for p := 0; p < n; p++ {
			if s.active[p] {
				steppable = append(steppable, p)
			}
		}
		nChoices += len(steppable)
		if nChoices == 0 {
			break // quiescent
		}
		pick := s.rng.Intn(nChoices)
		if pick < len(s.inflight) {
			// Deliver message pick (non-FIFO: any in-flight message
			// may arrive next).
			f := s.inflight[pick]
			s.inflight = append(s.inflight[:pick], s.inflight[pick+1:]...)
			ev := s.c.AddEvent(computation.ProcID(f.to), computation.KindInternal)
			if err := s.c.AddMessage(f.sendEvent, ev); err != nil {
				return nil, fmt.Errorf("simulator: deliver: %w", err)
			}
			s.snapshotVars(f.to, ev)
			ctx := &Ctx{sim: s, self: f.to, cur: ev}
			s.procs[f.to].OnMessage(ctx, f.from, f.msg)
		} else {
			p := steppable[pick-len(s.inflight)]
			ev := s.c.AddInternal(computation.ProcID(p))
			s.snapshotVars(p, ev)
			ctx := &Ctx{sim: s, self: p, cur: ev}
			if !s.procs[p].OnStep(ctx) {
				s.active[p] = false
			}
		}
	}
	if err := s.c.Seal(); err != nil {
		return nil, fmt.Errorf("simulator: seal: %w", err)
	}
	return s.c, nil
}

// snapshotVars carries the process's current variable values forward onto
// a fresh event, so that frontier reads are always defined.
func (s *Simulator) snapshotVars(p int, ev computation.EventID) {
	for name, v := range s.vars[p] {
		s.c.SetVar(name, ev, v)
	}
}

// VarNames returns the variable names touched during the run.
func (s *Simulator) VarNames() []string {
	out := make([]string, 0, len(s.names))
	for name := range s.names {
		out = append(out, name)
	}
	return out
}
