package simulator

import (
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/core/symmetric"
)

func TestTokenRingConservation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sim := New(seed, NewTokenRingProcs(4, 2, 1, 3))
		c, err := sim.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if c.NumEvents() <= 4 {
			t.Fatalf("seed %d: no events recorded", seed)
		}
		// Tokens are conserved except while in flight: the sum over any
		// consistent cut is between 0 and 2, and the final cut holds
		// exactly 2.
		min, max := relsum.SumRange(c, VarTokens)
		if max != 2 {
			t.Errorf("seed %d: max tokens = %d, want 2", seed, max)
		}
		if min < 0 || min > 2 {
			t.Errorf("seed %d: min tokens = %d out of range", seed, min)
		}
		if got := c.SumVar(VarTokens, c.FinalCut()); got != 2 {
			t.Errorf("seed %d: final token count = %d, want 2", seed, got)
		}
	}
}

func TestTokenRingUnitStep(t *testing.T) {
	sim := New(7, NewTokenRingProcs(5, 1, 2, 4))
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := relsum.ValidateUnitStep(c, VarTokens); err != nil {
		t.Errorf("token counts must be unit-step: %v", err)
	}
}

func TestFlawedMutexViolationDetectable(t *testing.T) {
	// Across seeds, the flawed protocol must admit a consistent cut with
	// two processes in the critical section (that is the bug).
	violated := false
	for seed := int64(0); seed < 20 && !violated; seed++ {
		sim := New(seed, NewFlawedMutexProcs(4, 2))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		ok, _, err := symmetric.Possibly(c,
			symmetric.FromFunc(4, func(m int) bool { return m >= 2 }),
			func(e computation.Event) bool { return c.Var(VarCS, e.ID) != 0 })
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			violated = true
		}
	}
	if !violated {
		t.Error("no seed exhibited a detectable mutual exclusion violation")
	}
}

func TestVoterRecordsVotes(t *testing.T) {
	sim := New(3, NewVoterProcs(5, 3, func(i int) bool { return i%2 == 0 }))
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Initial votes recorded at initial events: 3 yes of 5.
	var yes int64
	for p := 0; p < c.NumProcs(); p++ {
		yes += c.Var(VarYes, c.Initial(computation.ProcID(p)).ID)
	}
	if yes != 3 {
		t.Errorf("initial yes count = %d, want 3", yes)
	}
	if err := relsum.ValidateUnitStep(c, VarYes); err != nil {
		t.Errorf("votes must be unit-step: %v", err)
	}
}

func TestGossiperShape(t *testing.T) {
	sim := New(11, NewGossiperProcs(4, 10, 300))
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumProcs() != 4 {
		t.Fatalf("procs = %d", c.NumProcs())
	}
	// Each process does its 10 steps plus receives.
	for p := 0; p < 4; p++ {
		if c.Len(computation.ProcID(p)) < 11 {
			t.Errorf("process %d has %d events, want >= 11", p, c.Len(computation.ProcID(p)))
		}
	}
	if err := relsum.ValidateUnitStep(c, VarLevel); err != nil {
		t.Errorf("level must be unit-step: %v", err)
	}
	if len(sim.VarNames()) != 2 {
		t.Errorf("VarNames = %v", sim.VarNames())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *computation.Computation {
		sim := New(42, NewGossiperProcs(3, 8, 400))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("event counts differ: %d vs %d", a.NumEvents(), b.NumEvents())
	}
	if len(a.Messages()) != len(b.Messages()) {
		t.Fatalf("message counts differ")
	}
	for i, m := range a.Messages() {
		if b.Messages()[i] != m {
			t.Fatalf("message %d differs", i)
		}
	}
}

func TestMaxEventsBound(t *testing.T) {
	// A protocol that never quiesces is cut off at the bound.
	sim := New(1, []Process{endless{}, endless{}}, WithMaxEvents(50))
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEvents() > 52 { // bound + initial events
		t.Errorf("events = %d, want <= 52", c.NumEvents())
	}
}

type endless struct{}

func (endless) Init(*Ctx)                    {}
func (endless) OnMessage(*Ctx, int, Payload) {}
func (endless) OnStep(ctx *Ctx) bool         { return true }

func TestVariablePersistence(t *testing.T) {
	// A variable set once must be visible at all later events of the
	// process.
	sim := New(5, []Process{&setOnce{}})
	c, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	last := c.Final(0)
	if got := c.Var("v", last.ID); got != 9 {
		t.Errorf("final value = %d, want 9 (persisted)", got)
	}
}

type setOnce struct{ steps int }

func (s *setOnce) Init(*Ctx)                    {}
func (s *setOnce) OnMessage(*Ctx, int, Payload) {}
func (s *setOnce) OnStep(ctx *Ctx) bool {
	s.steps++
	if s.steps == 1 {
		ctx.Set("v", 9)
	}
	return s.steps < 3
}
