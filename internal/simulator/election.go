package simulator

// Chang–Roberts leader election on a unidirectional ring: every process
// injects its identifier; identifiers travel clockwise, each hop dropping
// candidates smaller than the hop's own id; the process that receives its
// own id back is elected. The protocol's classic correctness questions map
// directly onto the two detection modalities:
//
//   - safety:   Possibly(#leaders >= 2) must be false;
//   - progress: Definitely(#leaders == 1) must be true once the trace is
//     complete (every run of the recorded computation elects).

// VarLeader is 1 from the moment a process considers itself elected.
const VarLeader = "leader"

// VarCandidate is 1 while the process still considers itself a candidate.
const VarCandidate = "candidate"

// Election is one ring member running Chang–Roberts.
type Election struct {
	// N is the ring size and ID the member's unique identifier.
	N, ID int

	started   bool
	candidate bool
	elected   bool
}

var _ Process = (*Election)(nil)

// NewElectionProcs builds a ring of n processes with ids permuted by perm
// (identity if nil): process i gets id perm[i].
func NewElectionProcs(n int, perm []int) []Process {
	procs := make([]Process, n)
	for i := range procs {
		id := i
		if perm != nil {
			id = perm[i]
		}
		procs[i] = &Election{N: n, ID: id}
	}
	return procs
}

// Init marks the process as a candidate.
func (e *Election) Init(ctx *Ctx) {
	e.candidate = true
	ctx.SetBool(VarCandidate, true)
	ctx.SetBool(VarLeader, false)
}

// OnStep injects the process's own identifier once.
func (e *Election) OnStep(ctx *Ctx) bool {
	if e.started {
		return false
	}
	e.started = true
	ctx.Send((ctx.Self()+1)%e.N, Payload{Kind: "elect", Data: int64(e.ID)})
	return false
}

// OnMessage forwards larger identifiers, swallows smaller ones, and
// declares election when its own identifier completes the loop.
func (e *Election) OnMessage(ctx *Ctx, from int, msg Payload) {
	if msg.Kind != "elect" {
		return
	}
	id := int(msg.Data)
	switch {
	case id == e.ID:
		e.elected = true
		ctx.SetBool(VarLeader, true)
	case id > e.ID:
		if e.candidate {
			e.candidate = false
			ctx.SetBool(VarCandidate, false)
		}
		ctx.Send((ctx.Self()+1)%e.N, Payload{Kind: "elect", Data: int64(id)})
	default:
		// Smaller identifier: swallowed.
	}
}
