// Package chains computes minimum chain covers of finite posets. A chain is
// a totally ordered subset; by Dilworth's theorem the minimum number of
// chains covering a poset equals the maximum antichain size, and Fulkerson's
// reduction finds it via maximum bipartite matching on the comparability
// relation.
//
// Section 3.3 of Mittal & Garg uses chain covers of the true events of a
// process group: the general singular k-CNF detector only needs one CPDHB
// call per selection of one chain per group, and the number of chains c is
// often far below the group size k — an exponential reduction from k^g to
// c^g.
package chains

import "github.com/distributed-predicates/gpd/internal/matching"

// Cover computes a minimum chain cover of the poset over n elements whose
// strict order is given by less(i, j) meaning element i is strictly below
// element j. less must be irreflexive and transitive. The result is a list
// of chains, each a list of element indices in increasing order; every
// element appears in exactly one chain, and the number of chains is
// minimum.
func Cover(n int, less func(i, j int) bool) [][]int {
	// Fulkerson: split each element x into a left copy and a right copy;
	// connect left(i) to right(j) iff i < j. A maximum matching pairs
	// each element with its chain successor; uncovered left copies end
	// chains, so #chains = n - matching size (minimum by König/Dilworth).
	b := matching.NewBipartite(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && less(i, j) {
				b.AddEdge(i, j)
			}
		}
	}
	_, succ := b.MaxMatching()
	hasPred := make([]bool, n)
	for i := 0; i < n; i++ {
		if succ[i] >= 0 {
			hasPred[succ[i]] = true
		}
	}
	var cover [][]int
	for i := 0; i < n; i++ {
		if hasPred[i] {
			continue
		}
		chain := []int{i}
		for x := succ[i]; x >= 0; x = succ[x] {
			chain = append(chain, x)
		}
		cover = append(cover, chain)
	}
	return cover
}

// Width returns the maximum antichain size of the poset, which by Dilworth
// equals the minimum chain cover size.
func Width(n int, less func(i, j int) bool) int {
	return len(Cover(n, less))
}
