package chains

import (
	"github.com/distributed-predicates/gpd/internal/matching"
	"github.com/distributed-predicates/gpd/internal/par"
)

// CoverPar is Cover with the comparability relation evaluated on a
// bounded worker pool: workers fill the adjacency rows (less is pure),
// and the matching then consumes edges in the exact (i, j) order Cover
// uses, so the cover is identical for every worker count. The n^2
// less-evaluations dominate when the order test is expensive (e.g. a
// Precedes check per pair), which is exactly the singular detector's
// case. workers <= 1 runs the exact sequential code.
func CoverPar(n int, less func(i, j int) bool, workers int) [][]int {
	if workers <= 1 {
		return Cover(n, less)
	}
	rows := make([][]int, n)
	par.Do(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				if i != j && less(i, j) {
					rows[i] = append(rows[i], j)
				}
			}
		}
	})
	b := matching.NewBipartite(n, n)
	for i := 0; i < n; i++ {
		for _, j := range rows[i] {
			b.AddEdge(i, j)
		}
	}
	_, succ := b.MaxMatching()
	hasPred := make([]bool, n)
	for i := 0; i < n; i++ {
		if succ[i] >= 0 {
			hasPred[succ[i]] = true
		}
	}
	var cover [][]int
	for i := 0; i < n; i++ {
		if hasPred[i] {
			continue
		}
		chain := []int{i}
		for x := succ[i]; x >= 0; x = succ[x] {
			chain = append(chain, x)
		}
		cover = append(cover, chain)
	}
	return cover
}

// WidthPar is Width on a bounded worker pool.
func WidthPar(n int, less func(i, j int) bool, workers int) int {
	return len(CoverPar(n, less, workers))
}
