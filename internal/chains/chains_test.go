package chains

import (
	"math/rand"
	"testing"
)

func TestTotalOrderIsOneChain(t *testing.T) {
	less := func(i, j int) bool { return i < j }
	cover := Cover(5, less)
	if len(cover) != 1 {
		t.Fatalf("cover = %v, want one chain", cover)
	}
	if len(cover[0]) != 5 {
		t.Fatalf("chain = %v, want all 5 elements", cover[0])
	}
	for i := 1; i < len(cover[0]); i++ {
		if !less(cover[0][i-1], cover[0][i]) {
			t.Fatalf("chain not increasing: %v", cover[0])
		}
	}
}

func TestAntichainNeedsNChains(t *testing.T) {
	less := func(i, j int) bool { return false }
	cover := Cover(4, less)
	if len(cover) != 4 {
		t.Fatalf("antichain cover = %v, want 4 singleton chains", cover)
	}
	if Width(4, less) != 4 {
		t.Fatalf("Width = %d, want 4", Width(4, less))
	}
}

func TestTwoParallelChains(t *testing.T) {
	// Elements 0-2 form one chain, 3-5 another, incomparable across.
	less := func(i, j int) bool {
		return (i < 3) == (j < 3) && i < j
	}
	cover := Cover(6, less)
	if len(cover) != 2 {
		t.Fatalf("cover size = %d, want 2 (%v)", len(cover), cover)
	}
}

func TestEmptyPoset(t *testing.T) {
	cover := Cover(0, func(i, j int) bool { return false })
	if len(cover) != 0 {
		t.Fatalf("cover = %v, want empty", cover)
	}
}

// bruteWidth finds the maximum antichain by subset enumeration.
func bruteWidth(n int, less func(i, j int) bool) int {
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		size := 0
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			size++
			for j := 0; j < n; j++ {
				if i != j && mask&(1<<j) != 0 && less(i, j) {
					ok = false
					break
				}
			}
		}
		if ok && size > best {
			best = size
		}
	}
	return best
}

func TestDilworthOnRandomPosets(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(9)
		// Random DAG with transitive closure: i < j only if i's rank
		// below j's, then close transitively.
		rel := make([][]bool, n)
		for i := range rel {
			rel[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					rel[i][j] = true
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if rel[i][k] && rel[k][j] {
						rel[i][j] = true
					}
				}
			}
		}
		less := func(i, j int) bool { return rel[i][j] }
		cover := Cover(n, less)
		// Every element exactly once.
		seen := make([]bool, n)
		for _, chain := range cover {
			for idx, x := range chain {
				if seen[x] {
					t.Fatalf("trial %d: element %d covered twice", trial, x)
				}
				seen[x] = true
				if idx > 0 && !less(chain[idx-1], x) {
					t.Fatalf("trial %d: chain %v not a chain", trial, chain)
				}
			}
		}
		for x, s := range seen {
			if !s {
				t.Fatalf("trial %d: element %d uncovered", trial, x)
			}
		}
		// Dilworth: |cover| == max antichain.
		if want := bruteWidth(n, less); len(cover) != want {
			t.Fatalf("trial %d: cover size %d, width %d", trial, len(cover), want)
		}
	}
}
