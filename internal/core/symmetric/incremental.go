package symmetric

import (
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Tracker is the online counterpart of Possibly: it consumes boolean
// variable updates one event at a time (in any causality-respecting
// order) and latches as soon as some consistent cut of the observed
// prefix satisfies the symmetric predicate.
//
// Since a boolean variable flips by at most one per event, the derived
// true-count is a unit-step sum, so the relsum.RangeTracker's streaming
// interval [Min, Max] is exactly the set of counts attained by consistent
// cuts of the prefix; the predicate has possibly held iff one of the
// spec's levels lies in that interval — the sum decomposition of §4.3
// carried over to the online setting.
type Tracker struct {
	spec  Spec
	sum   *relsum.RangeTracker
	found bool
}

// NewTracker starts a tracker for the spec; initTruth gives the initial
// value of each process's boolean variable (nil means all false).
func NewTracker(spec Spec, initTruth []bool) *Tracker {
	var baseline int64
	for _, b := range initTruth {
		if b {
			baseline++
		}
	}
	t := &Tracker{spec: spec, sum: relsum.NewRangeTracker(baseline)}
	t.check()
	return t
}

// SetTrace routes the underlying range tracker's closure work counters
// into the given trace. A nil trace disables accounting.
func (t *Tracker) SetTrace(tr *obs.Trace) { t.sum.SetTrace(tr) }

// Observe adds one event: id and requires as for relsum.RangeTracker,
// delta the change of the process's boolean variable (-1, 0 or +1).
func (t *Tracker) Observe(id int64, delta int64, requires []int64) {
	t.sum.Observe(id, delta, requires)
}

// Flush recomputes the attainable count interval and returns whether the
// predicate has (now or earlier) possibly held.
func (t *Tracker) Flush() bool {
	t.sum.Flush()
	t.check()
	return t.found
}

// Prune forwards to the underlying range tracker (same contract).
func (t *Tracker) Prune(ids []int64) {
	t.sum.Prune(ids)
	t.check()
}

func (t *Tracker) check() {
	if t.found {
		return
	}
	min, max := t.sum.Range()
	for _, m := range t.spec.Levels {
		if m < 0 || m > t.spec.N {
			continue
		}
		if int64(m) >= min && int64(m) <= max {
			t.found = true
			return
		}
	}
}

// Found reports whether the predicate has been detected.
func (t *Tracker) Found() bool { return t.found }

// CountRange returns the attainable true-count interval observed so far.
func (t *Tracker) CountRange() (min, max int64) { return t.sum.Range() }

// Window returns the number of retained events.
func (t *Tracker) Window() int { return t.sum.Window() }
