package symmetric

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/gen"
)

// streamTracker feeds c's events into a fresh Tracker for spec in a random
// linearization with periodic frontier pruning, returning the tracker.
func streamTracker(c *computation.Computation, spec Spec, name string, rng *rand.Rand) *Tracker {
	init := make([]bool, c.NumProcs())
	for p := 0; p < c.NumProcs(); p++ {
		init[p] = c.Var(name, c.Initial(computation.ProcID(p)).ID) != 0
	}
	tr := NewTracker(spec, init)

	// Random causality-respecting order.
	n := c.NumEvents()
	indeg := make([]int, n)
	var ready []computation.EventID
	c.Events(func(e computation.Event) bool {
		indeg[int(e.ID)] = len(c.DirectPreds(e.ID))
		if indeg[int(e.ID)] == 0 {
			ready = append(ready, e.ID)
		}
		return true
	})
	step := 0
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		id := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		e := c.Event(id)
		if !e.IsInitial() {
			var reqs []int64
			for _, p := range c.DirectPreds(id) {
				if !c.Event(p).IsInitial() {
					reqs = append(reqs, int64(p))
				}
			}
			d := c.Var(name, id) - c.Var(name, c.Prev(id))
			tr.Observe(int64(id), d, reqs)
			if step++; step%4 == 0 {
				tr.Flush()
			}
		}
		for _, s := range c.DirectSuccs(id) {
			indeg[int(s)]--
			if indeg[int(s)] == 0 {
				ready = append(ready, s)
			}
		}
	}
	tr.Flush()
	return tr
}

// TestTrackerAgreesWithPossibly cross-checks the online tracker against
// the offline Possibly detector across several symmetric specs.
func TestTrackerAgreesWithPossibly(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed * 131))
		c := gen.Random(gen.Params{Seed: seed, Procs: 3 + int(seed%3), Events: 7, MsgFrac: 0.4})
		gen.BoolVar(seed+5, c, "b", 0.4)
		truth := func(e computation.Event) bool { return c.Var("b", e.ID) != 0 }
		n := c.NumProcs()
		specs := []Spec{Xor(n), NoSimpleMajority(n), ExactlyK(n, n/2), NotAllEqual(n)}
		for _, spec := range specs {
			want, _, err := Possibly(c, spec, truth)
			if err != nil {
				t.Fatal(err)
			}
			got := streamTracker(c, spec, "b", rng).Found()
			if got != want {
				t.Fatalf("seed %d spec %v: tracker %v, offline Possibly %v", seed, spec, got, want)
			}
		}
	}
}
