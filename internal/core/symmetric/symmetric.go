// Package symmetric detects symmetric global predicates on boolean
// variables, one per process, following Section 4.3 of Mittal & Garg.
//
// A predicate of n boolean variables is symmetric iff it is invariant
// under every permutation of its variables; equivalently (Kohavi), it is
// specified by a set of levels M, holding exactly when the number of true
// variables lies in M. Since Possibly distributes over disjunction and a
// boolean variable changes by at most one per event, Possibly(phi) for a
// symmetric phi reduces to |M| instances of the polynomial-time
// Possibly(sum = m) detector of core/relsum — this is the corollary the
// paper highlights: exclusive-or of local predicates, absence of a simple
// or two-thirds majority, exactly-k tokens and "not all equal" all become
// efficiently detectable.
package symmetric

import (
	"fmt"
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Truth supplies the boolean variable of the event's process at the state
// following the event.
type Truth func(computation.Event) bool

// Spec is a symmetric predicate over n boolean variables: it holds at a
// cut iff the number of processes whose variable is true lies in Levels.
type Spec struct {
	// N is the number of variables (one per process of the computation).
	N int
	// Levels is the sorted set of true-counts at which the predicate
	// holds; entries outside [0, N] are ignored.
	Levels []int
}

// String renders the spec.
func (s Spec) String() string {
	return fmt.Sprintf("count in %v of %d", s.Levels, s.N)
}

// FromFunc builds a Spec from an arbitrary symmetric predicate given as a
// function of the true-count.
func FromFunc(n int, holds func(count int) bool) Spec {
	s := Spec{N: n}
	for m := 0; m <= n; m++ {
		if holds(m) {
			s.Levels = append(s.Levels, m)
		}
	}
	return s
}

// Parity holds when the number of true variables is odd (the exclusive-or
// of the local predicates) or even, per the odd flag.
func Parity(n int, odd bool) Spec {
	return FromFunc(n, func(m int) bool { return (m%2 == 1) == odd })
}

// Xor is the exclusive-or of the n local predicates: odd parity.
func Xor(n int) Spec { return Parity(n, true) }

// NoSimpleMajority holds when neither the true nor the false variables
// form a strict majority — possible only at count n/2 with n even.
func NoSimpleMajority(n int) Spec {
	return FromFunc(n, func(m int) bool { return 2*m <= n && 2*(n-m) <= n })
}

// NoTwoThirdsMajority holds when neither side reaches a two-thirds
// majority: 3*count < 2n and 3*(n-count) < 2n.
func NoTwoThirdsMajority(n int) Spec {
	return FromFunc(n, func(m int) bool { return 3*m < 2*n && 3*(n-m) < 2*n })
}

// ExactlyK holds when exactly k variables are true (for token predicates:
// exactly k tokens present).
func ExactlyK(n, k int) Spec { return Spec{N: n, Levels: []int{k}} }

// NotAllEqual holds unless all variables agree.
func NotAllEqual(n int) Spec {
	return FromFunc(n, func(m int) bool { return m != 0 && m != n })
}

// countVar is the derived 0/1 variable injected into a scratch copy of the
// computation; boolean variables flip by at most one per event, so the
// unit-step machinery of relsum always applies.
const countVar = "__symmetric_count"

// withCount returns a sealed copy of c carrying the 0/1 count variable.
func withCount(c *computation.Computation, truth Truth) *computation.Computation {
	cc := c.Clone()
	cc.Events(func(e computation.Event) bool {
		if truth(e) {
			cc.SetVar(countVar, e.ID, 1)
		}
		return true
	})
	cc.MustSeal()
	return cc
}

// Possibly reports whether some consistent cut satisfies the symmetric
// predicate, returning a witness cut when one exists. Runs in polynomial
// time: one SumRange plus at most one witness walk.
func Possibly(c *computation.Computation, spec Spec, truth Truth) (bool, computation.Cut, error) {
	return PossiblyTraced(c, spec, truth, nil)
}

// PossiblyTraced is Possibly with work counters (levels probed, closure
// work) accumulated into the trace.
func PossiblyTraced(c *computation.Computation, spec Spec, truth Truth, tr *obs.Trace) (bool, computation.Cut, error) {
	return PossiblyPar(c, spec, truth, 1, tr)
}

// PossiblyPar is PossiblyTraced with the closure computations run on a
// bounded worker pool (the at most one witness probe stays sequential).
// Identical verdict, witness and counters for every worker count.
func PossiblyPar(c *computation.Computation, spec Spec, truth Truth, workers int, tr *obs.Trace) (bool, computation.Cut, error) {
	cc := withCount(c, truth)
	min, max := relsum.SumRangePar(cc, countVar, workers, tr)
	var probed int64
	defer func() { tr.Add("symmetric.levels_probed", probed) }()
	for _, m := range spec.Levels {
		if m < 0 || m > spec.N {
			continue
		}
		probed++
		if int64(m) < min || int64(m) > max {
			continue
		}
		ok, cut, err := relsum.PossiblyEqWitnessPar(cc, countVar, int64(m), workers, tr)
		if err != nil {
			return false, nil, err
		}
		if !ok {
			return false, nil, fmt.Errorf("symmetric: internal error: level %d in range [%d,%d] but no witness", m, min, max)
		}
		return true, cut, nil
	}
	return false, nil, nil
}

// Definitely reports whether every run passes through a cut satisfying the
// symmetric predicate. Definitely does not distribute over disjunction, so
// this falls back to region reachability in the cut lattice (worst-case
// exponential); the paper's polynomial corollary covers Possibly only.
func Definitely(c *computation.Computation, spec Spec, truth Truth) (bool, error) {
	return DefinitelyTraced(c, spec, truth, nil)
}

// DefinitelyTraced is Definitely with region-reachability work counters
// accumulated into the trace.
func DefinitelyTraced(c *computation.Computation, spec Spec, truth Truth, tr *obs.Trace) (bool, error) {
	return DefinitelyPar(c, spec, truth, 1, tr)
}

// DefinitelyPar is DefinitelyTraced with the region-reachability sweep
// run on a bounded worker pool.
func DefinitelyPar(c *computation.Computation, spec Spec, truth Truth, workers int, tr *obs.Trace) (bool, error) {
	levels := make(map[int]bool, len(spec.Levels))
	for _, m := range spec.Levels {
		levels[m] = true
	}
	holds := func(cc *computation.Computation, k computation.Cut) bool {
		return levels[cc.CountTrue(k, func(e computation.Event) bool { return truth(e) })]
	}
	not := func(cc *computation.Computation, k computation.Cut) bool { return !holds(cc, k) }
	avoidable := lattice.PathExistsPar(c, c.InitialCut(), c.FinalCut(), not, workers, tr)
	return !avoidable, nil
}

// Holds evaluates the predicate at a cut directly.
func Holds(c *computation.Computation, spec Spec, truth Truth, k computation.Cut) bool {
	count := c.CountTrue(k, func(e computation.Event) bool { return truth(e) })
	i := sort.SearchInts(spec.Levels, count)
	return i < len(spec.Levels) && spec.Levels[i] == count
}
