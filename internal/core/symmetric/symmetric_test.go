package symmetric

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

func randomComputation(rng *rand.Rand, np, me, msgs int) *computation.Computation {
	c := computation.New()
	for p := 0; p < np; p++ {
		c.AddProcess()
		n := 1 + rng.Intn(me)
		for i := 0; i < n; i++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	for tries := 0; tries < msgs; tries++ {
		p := computation.ProcID(rng.Intn(np))
		q := computation.ProcID(rng.Intn(np))
		if p == q {
			continue
		}
		i := 1 + rng.Intn(c.Len(p)-1)
		j := 1 + rng.Intn(c.Len(q)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
		}
	}
	return c.MustSeal()
}

func randomTruth(rng *rand.Rand, c *computation.Computation, density float64) Truth {
	tabs := make([][]bool, c.NumProcs())
	for p := range tabs {
		tabs[p] = make([]bool, c.Len(computation.ProcID(p)))
		for i := range tabs[p] {
			tabs[p][i] = rng.Float64() < density
		}
	}
	return func(e computation.Event) bool {
		return tabs[int(e.Proc)][e.Index]
	}
}

func TestSpecBuilders(t *testing.T) {
	if got := Xor(3).Levels; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Xor(3).Levels = %v, want [1 3]", got)
	}
	if got := Parity(4, false).Levels; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Errorf("Parity(4,false).Levels = %v, want [0 2 4]", got)
	}
	if got := NoSimpleMajority(4).Levels; len(got) != 1 || got[0] != 2 {
		t.Errorf("NoSimpleMajority(4).Levels = %v, want [2]", got)
	}
	if got := NoSimpleMajority(3).Levels; len(got) != 0 {
		t.Errorf("NoSimpleMajority(3).Levels = %v, want empty (odd n)", got)
	}
	if got := NoTwoThirdsMajority(6).Levels; len(got) != 3 || got[0] != 3 || got[2] != 5 {
		// 3m < 12 and 3(6-m) < 12 => m > 2 and m < 4?? recompute: m in {3}
		t.Logf("NoTwoThirdsMajority(6).Levels = %v", got)
	}
	if got := ExactlyK(5, 2).Levels; len(got) != 1 || got[0] != 2 {
		t.Errorf("ExactlyK(5,2).Levels = %v", got)
	}
	if got := NotAllEqual(3).Levels; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("NotAllEqual(3).Levels = %v, want [1 2]", got)
	}
}

func TestNoTwoThirdsMajorityExact(t *testing.T) {
	// n = 6: need 3m < 12 (m <= 3) and 18 - 3m < 12 (m >= 3): exactly {3}.
	if got := NoTwoThirdsMajority(6).Levels; len(got) != 1 || got[0] != 3 {
		t.Errorf("NoTwoThirdsMajority(6).Levels = %v, want [3]", got)
	}
	// n = 5: 3m < 10 (m <= 3) and 15 - 3m < 10 (m >= 2): {2, 3}.
	if got := NoTwoThirdsMajority(5).Levels; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("NoTwoThirdsMajority(5).Levels = %v, want [2 3]", got)
	}
}

func oracle(c *computation.Computation, spec Spec, truth Truth) bool {
	ok, _ := lattice.Possibly(c, func(cc *computation.Computation, k computation.Cut) bool {
		return Holds(cc, spec, truth, k)
	})
	return ok
}

func TestPossiblyMatchesLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(179))
	for trial := 0; trial < 150; trial++ {
		np := 2 + rng.Intn(3)
		c := randomComputation(rng, np, 4, 8)
		truth := randomTruth(rng, c, 0.4)
		specs := []Spec{
			Xor(np),
			Parity(np, false),
			NoSimpleMajority(np),
			ExactlyK(np, rng.Intn(np+1)),
			NotAllEqual(np),
			FromFunc(np, func(m int) bool { return rng.Intn(2) == 0 }),
		}
		for _, spec := range specs {
			got, cut, err := Possibly(c, spec, truth)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, spec, err)
			}
			want := oracle(c, spec, truth)
			if got != want {
				t.Fatalf("trial %d: Possibly(%v) = %v, oracle = %v", trial, spec, got, want)
			}
			if got {
				if !c.CutConsistent(cut) {
					t.Fatalf("trial %d: witness cut %v inconsistent", trial, cut)
				}
				if !Holds(c, spec, truth, cut) {
					t.Fatalf("trial %d: predicate %v does not hold at witness %v", trial, spec, cut)
				}
			}
		}
	}
}

func TestDefinitelyMatchesLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 80; trial++ {
		np := 2 + rng.Intn(2)
		c := randomComputation(rng, np, 4, 6)
		truth := randomTruth(rng, c, 0.4)
		for _, spec := range []Spec{Xor(np), ExactlyK(np, 1), NotAllEqual(np)} {
			got, err := Definitely(c, spec, truth)
			if err != nil {
				t.Fatal(err)
			}
			want := lattice.Definitely(c, func(cc *computation.Computation, k computation.Cut) bool {
				return Holds(cc, spec, truth, k)
			})
			if got != want {
				t.Fatalf("trial %d: Definitely(%v) = %v, oracle = %v", trial, spec, got, want)
			}
		}
	}
}

func TestEmptyLevels(t *testing.T) {
	c := computation.New()
	c.AddProcesses(2)
	c.MustSeal()
	truth := func(computation.Event) bool { return true }
	ok, _, err := Possibly(c, Spec{N: 2}, truth)
	if err != nil || ok {
		t.Errorf("empty levels: Possibly = %v, %v; want false", ok, err)
	}
	def, err := Definitely(c, Spec{N: 2}, truth)
	if err != nil || def {
		t.Errorf("empty levels: Definitely = %v, %v; want false", def, err)
	}
}

func TestOutOfRangeLevelsIgnored(t *testing.T) {
	c := computation.New()
	c.AddProcesses(2)
	c.MustSeal()
	truth := func(computation.Event) bool { return false }
	ok, _, err := Possibly(c, Spec{N: 2, Levels: []int{-1, 7}}, truth)
	if err != nil || ok {
		t.Errorf("out-of-range levels: Possibly = %v, %v; want false", ok, err)
	}
}

func TestXorTwoProcessExample(t *testing.T) {
	// p0 flips its bit true at event a; p1 at event b, with a message
	// a -> b forcing order. XOR holds between the flips.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a, b); err != nil {
		t.Fatal(err)
	}
	c.MustSeal()
	truth := func(e computation.Event) bool { return e.ID == a || e.ID == b }
	ok, cut, err := Possibly(c, Xor(2), truth)
	if err != nil || !ok {
		t.Fatalf("Possibly(Xor) = %v, %v; want true", ok, err)
	}
	if n := c.CountTrue(cut, func(e computation.Event) bool { return truth(e) }); n != 1 {
		t.Errorf("witness count = %d, want 1", n)
	}
	// Every run flips p0 first then p1, passing through count=1: XOR is
	// definite.
	def, err := Definitely(c, Xor(2), truth)
	if err != nil || !def {
		t.Errorf("Definitely(Xor) = %v, %v; want true", def, err)
	}
}
