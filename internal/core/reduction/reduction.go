// Package reduction implements the NP-hardness constructions of Mittal &
// Garg (ICDCS 2001), in both directions:
//
//   - Section 3.1 (Theorem 1): a non-monotone 3-CNF formula is transformed
//     into a computation and a singular 2-CNF predicate such that the
//     formula is satisfiable iff some consistent cut satisfies the
//     predicate; a witness cut yields a satisfying assignment.
//   - Section 4.1 (Theorem 3): a subset-sum instance is transformed into a
//     computation with one arbitrary-increment integer variable per
//     process such that the target sum is reachable at a consistent cut
//     iff the required subset exists.
//   - Corollary 2: a singular CNF predicate over boolean variables is
//     re-expressed as a conjunction of clauses over integer inequalities,
//     showing the intractability transfers to relational clause predicates.
//
// The experiment harness uses these constructions with an independent SAT
// (respectively subset-sum) solver to validate the reductions empirically.
package reduction

import (
	"errors"
	"fmt"
	"sort"

	"github.com/distributed-predicates/gpd/internal/cnf"
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/subsetsum"
)

// ErrNotNonMonotone indicates an input formula outside the non-monotone
// 3-CNF fragment required by the Section 3.1 construction; rewrite with
// cnf.ToNonMonotone first.
var ErrNotNonMonotone = errors.New("reduction: formula is not non-monotone 3-CNF")

// SingularInstance is a singular 2-CNF detection instance constructed from
// a formula.
type SingularInstance struct {
	// C is the constructed computation.
	C *computation.Computation
	// Pred is the singular predicate, one clause per formula clause.
	Pred *singular.Predicate
	// NumVars is the variable count of the source formula.
	NumVars int

	truth map[computation.EventID]bool
	lit   map[computation.EventID]cnf.Lit
}

// Truth returns the boolean-variable valuation of the instance.
func (in *SingularInstance) Truth() singular.Truth {
	return func(e computation.Event) bool { return in.truth[e.ID] }
}

// SingularFromCNF builds the Section 3.1 computation for a non-monotone
// 3-CNF formula: for each clause, one or two processes whose "true events"
// correspond to the clause's literal occurrences, with an arrow from the
// successor of every positive occurrence's true event to every conflicting
// negative occurrence's true event. The formula is satisfiable iff
// Possibly(Pred) holds on C.
func SingularFromCNF(f *cnf.Formula) (*SingularInstance, error) {
	if !f.IsNonMonotone3CNF() {
		return nil, ErrNotNonMonotone
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	in := &SingularInstance{
		C:       computation.New(),
		Pred:    &singular.Predicate{},
		NumVars: f.NumVars,
		truth:   make(map[computation.EventID]bool),
		lit:     make(map[computation.EventID]cnf.Lit),
	}
	// occurrences[v] collects the true events of positive and negative
	// occurrences of variable v.
	type occs struct{ pos, neg []computation.EventID }
	occ := make(map[int]*occs, f.NumVars)
	record := func(id computation.EventID, l cnf.Lit) {
		in.truth[id] = true
		in.lit[id] = l
		o := occ[l.Var()]
		if o == nil {
			o = &occs{}
			occ[l.Var()] = o
		}
		if l.Pos() {
			o.pos = append(o.pos, id)
		} else {
			o.neg = append(o.neg, id)
		}
	}
	// addLitProcess creates a two-event process t, f with t the true
	// event of literal l.
	addLitProcess := func(l cnf.Lit) computation.ProcID {
		p := in.C.AddProcess()
		t := in.C.AddInternal(p)
		in.C.AddInternal(p) // trailing false event
		in.C.SetLabel(t, l.String())
		record(t, l)
		return p
	}
	for ci, cl := range f.Clauses {
		if len(cl) == 0 {
			return nil, fmt.Errorf("reduction: clause %d is empty", ci)
		}
		var pcl singular.Clause
		switch len(cl) {
		case 1:
			p := addLitProcess(cl[0])
			pcl = singular.Clause{{Proc: p}}
		case 2:
			pa := addLitProcess(cl[0])
			pb := addLitProcess(cl[1])
			pcl = singular.Clause{{Proc: pa}, {Proc: pb}}
		case 3:
			// Pick one positive and one negative literal for the
			// shared process; the remaining literal gets its own.
			posIdx, negIdx := -1, -1
			for i, l := range cl {
				if l.Pos() && posIdx < 0 {
					posIdx = i
				}
				if !l.Pos() && negIdx < 0 {
					negIdx = i
				}
			}
			if posIdx < 0 || negIdx < 0 {
				return nil, fmt.Errorf("%w: clause %d has no mixed pair", ErrNotNonMonotone, ci)
			}
			restIdx := 0
			for restIdx == posIdx || restIdx == negIdx {
				restIdx++
			}
			pa := in.C.AddProcess()
			tp := in.C.AddInternal(pa)
			in.C.AddInternal(pa) // false event between the two true events
			tn := in.C.AddInternal(pa)
			in.C.SetLabel(tp, cl[posIdx].String())
			in.C.SetLabel(tn, cl[negIdx].String())
			record(tp, cl[posIdx])
			record(tn, cl[negIdx])
			pb := addLitProcess(cl[restIdx])
			pcl = singular.Clause{{Proc: pa}, {Proc: pb}}
		default:
			return nil, fmt.Errorf("%w: clause %d has %d literals", ErrNotNonMonotone, ci, len(cl))
		}
		in.Pred.Clauses = append(in.Pred.Clauses, pcl)
	}
	// Conflict arrows: successor of each positive occurrence's true event
	// -> each conflicting negative occurrence's true event. Pairs on the
	// same process are already mutually exclusive (a cut passes through
	// at most one event per process) and are skipped. Variables are
	// visited in sorted order so the constructed computation's message
	// set is inserted identically run to run.
	vars := make([]int, 0, len(occ))
	for v := range occ {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		o := occ[v]
		for _, tp := range o.pos {
			from := in.C.Next(tp)
			for _, tn := range o.neg {
				if in.C.Event(from).Proc == in.C.Event(tn).Proc {
					continue
				}
				if err := in.C.AddMessage(from, tn); err != nil {
					return nil, fmt.Errorf("reduction: conflict arrow: %w", err)
				}
			}
		}
	}
	if err := in.C.Seal(); err != nil {
		return nil, fmt.Errorf("reduction: constructed computation: %w", err)
	}
	return in, nil
}

// Assignment converts a detection witness (one true event per clause, as
// returned by the singular detectors) into a satisfying assignment of the
// source formula: each witness event's literal is made true and remaining
// variables default to false. The construction guarantees the result is
// consistent and satisfies the formula.
func (in *SingularInstance) Assignment(witness []computation.EventID) (cnf.Assignment, error) {
	a := make(cnf.Assignment, in.NumVars+1)
	forced := make([]bool, in.NumVars+1)
	for _, id := range witness {
		l, ok := in.lit[id]
		if !ok {
			return nil, fmt.Errorf("reduction: witness event %v is not a literal's true event", in.C.Event(id))
		}
		v := l.Var()
		if forced[v] && a[v] != l.Pos() {
			return nil, fmt.Errorf("reduction: witness assigns variable %d both ways", v)
		}
		a[v] = l.Pos()
		forced[v] = true
	}
	return a, nil
}

// SumVar is the variable name used by the subset-sum construction.
const SumVar = "x"

// RelsumFromSubsetSum builds the Section 4.1 computation: one process per
// element, whose single event sets its variable from 0 to the element's
// size (an arbitrary increment). Possibly(sum == target) on the result is
// equivalent to the subset-sum instance.
func RelsumFromSubsetSum(in subsetsum.Instance) *computation.Computation {
	c := computation.New()
	for _, size := range in.Sizes {
		p := c.AddProcess()
		id := c.AddInternal(p)
		c.SetVar(SumVar, id, size)
	}
	c.MustSeal()
	return c
}

// SubsetFromCut recovers the chosen subset from a consistent cut of the
// subset-sum computation: element i is selected iff process i's event is
// inside the cut.
func SubsetFromCut(k computation.Cut) []int {
	var subset []int
	for p, idx := range k {
		if idx >= 1 {
			subset = append(subset, p)
		}
	}
	return subset
}

// InequalityClause is one clause of a relational singular predicate of the
// form (x relop k) per literal, per Corollary 2.
type InequalityClause struct {
	Terms []InequalityTerm
}

// InequalityTerm is "variable of process Proc relop K".
type InequalityTerm struct {
	Proc computation.ProcID
	Op   string // ">=" or "<="
	K    int64
}

// IneqVar is the variable name used by the Corollary 2 transformation.
const IneqVar = "u"

// InequalityFromSingular re-expresses a boolean singular predicate as a
// conjunction of inequality clauses over fresh integer variables
// (Corollary 2): each boolean b becomes an integer u with u = 1 when b
// holds and u = 0 otherwise, and the literal b (resp. !b) becomes u >= 1
// (resp. u <= 0). The integer tables are written into a sealed copy of the
// computation. Detecting the inequality conjunction is therefore exactly
// as hard as detecting the boolean predicate.
func InequalityFromSingular(
	c *computation.Computation,
	p *singular.Predicate,
	truth singular.Truth,
) (*computation.Computation, []InequalityClause, error) {
	if err := p.Validate(c); err != nil {
		return nil, nil, err
	}
	cc := c.Clone()
	cc.Events(func(e computation.Event) bool {
		if truth(e) {
			cc.SetVar(IneqVar, e.ID, 1)
		}
		return true
	})
	if err := cc.Seal(); err != nil {
		return nil, nil, err
	}
	var out []InequalityClause
	for _, cl := range p.Clauses {
		var ic InequalityClause
		for _, l := range cl {
			t := InequalityTerm{Proc: l.Proc, Op: ">=", K: 1}
			if l.Negated {
				t = InequalityTerm{Proc: l.Proc, Op: "<=", K: 0}
			}
			ic.Terms = append(ic.Terms, t)
		}
		out = append(out, ic)
	}
	return cc, out, nil
}

// HoldsInequalities evaluates the inequality conjunction at a cut.
func HoldsInequalities(c *computation.Computation, clauses []InequalityClause, k computation.Cut) bool {
	for _, cl := range clauses {
		sat := false
		for _, t := range cl.Terms {
			v := c.Var(IneqVar, c.EventAt(t.Proc, k[int(t.Proc)]).ID)
			switch t.Op {
			case ">=":
				sat = sat || v >= t.K
			case "<=":
				sat = sat || v <= t.K
			}
			if sat {
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}
