package reduction

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/cnf"
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/sat"
	"github.com/distributed-predicates/gpd/internal/subsetsum"
)

func randomFormula(rng *rand.Rand, nv, nc int) *cnf.Formula {
	f := &cnf.Formula{NumVars: nv}
	for i := 0; i < nc; i++ {
		n := 1 + rng.Intn(3)
		cl := make(cnf.Clause, 0, n)
		for j := 0; j < n; j++ {
			l := cnf.Lit(1 + rng.Intn(nv))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl = append(cl, l)
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// TestTheorem1Reduction validates the Section 3.1 reduction end to end:
// satisfiability of random 3-CNF formulas (after the non-monotone rewrite)
// agrees with singular 2-CNF detection on the constructed computation, and
// detection witnesses convert to satisfying assignments.
func TestTheorem1Reduction(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 250; trial++ {
		orig := randomFormula(rng, 2+rng.Intn(5), 1+rng.Intn(6))
		f, err := cnf.ToNonMonotone(orig)
		if err != nil {
			t.Fatalf("trial %d: ToNonMonotone: %v", trial, err)
		}
		in, err := SingularFromCNF(f)
		if err != nil {
			t.Fatalf("trial %d: SingularFromCNF: %v", trial, err)
		}
		want := sat.Satisfiable(f)
		res, err := singular.Detect(in.C, in.Pred, in.Truth(), singular.ChainCover)
		if err != nil {
			t.Fatalf("trial %d: Detect: %v", trial, err)
		}
		if res.Found != want {
			t.Fatalf("trial %d: detection = %v, SAT = %v\nformula: %v", trial, res.Found, want, f)
		}
		if res.Found {
			a, err := in.Assignment(res.Witness)
			if err != nil {
				t.Fatalf("trial %d: Assignment: %v", trial, err)
			}
			if !f.Eval(a) {
				t.Fatalf("trial %d: extracted assignment does not satisfy the formula\nformula: %v\nassignment: %v", trial, f, a)
			}
			// The restriction must satisfy the original 3-CNF too.
			if !orig.Eval(cnf.RestrictAssignment(a, orig.NumVars)) {
				t.Fatalf("trial %d: restricted assignment does not satisfy the original", trial)
			}
		}
	}
}

// TestTheorem1ConsistencyIffNonConflicting checks the structural claim of
// the construction: two true events are inconsistent iff their literals
// are conflicting, except for events on a shared process.
func TestTheorem1ConsistencyIffNonConflicting(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	for trial := 0; trial < 100; trial++ {
		orig := randomFormula(rng, 2+rng.Intn(4), 1+rng.Intn(5))
		f, err := cnf.ToNonMonotone(orig)
		if err != nil {
			t.Fatal(err)
		}
		in, err := SingularFromCNF(f)
		if err != nil {
			t.Fatal(err)
		}
		var trues []computation.EventID
		in.C.Events(func(e computation.Event) bool {
			if in.Truth()(e) {
				trues = append(trues, e.ID)
			}
			return true
		})
		for _, a := range trues {
			for _, b := range trues {
				if a == b {
					continue
				}
				la, lb := in.lit[a], in.lit[b]
				sameProc := in.C.Event(a).Proc == in.C.Event(b).Proc
				conflicting := la.Var() == lb.Var() && la.Pos() != lb.Pos()
				consistent := in.C.ConsistentEvents(a, b)
				if sameProc {
					if consistent {
						t.Fatalf("trial %d: same-process true events %v,%v consistent", trial, a, b)
					}
					continue
				}
				if consistent == conflicting {
					t.Fatalf("trial %d: events %v(%v), %v(%v): consistent=%v conflicting=%v",
						trial, a, la, b, lb, consistent, conflicting)
				}
			}
		}
	}
}

func TestSingularFromCNFRejectsMonotone(t *testing.T) {
	f := &cnf.Formula{NumVars: 3, Clauses: []cnf.Clause{{1, 2, 3}}}
	if _, err := SingularFromCNF(f); !errors.Is(err, ErrNotNonMonotone) {
		t.Errorf("err = %v, want ErrNotNonMonotone", err)
	}
	long := &cnf.Formula{NumVars: 4, Clauses: []cnf.Clause{{1, -2, 3, 4}}}
	if _, err := SingularFromCNF(long); !errors.Is(err, ErrNotNonMonotone) {
		t.Errorf("err = %v, want ErrNotNonMonotone", err)
	}
}

func TestSingularFromCNFKnownInstances(t *testing.T) {
	// (v) & (!v) is unsatisfiable.
	unsat := &cnf.Formula{NumVars: 1, Clauses: []cnf.Clause{{1}, {-1}}}
	in, err := SingularFromCNF(unsat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := singular.Detect(in.C, in.Pred, in.Truth(), singular.ChainCover)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("(v) & (!v) must not be detectable")
	}
	// (v | w) & (!v | w) is satisfiable (w = true).
	sat2 := &cnf.Formula{NumVars: 2, Clauses: []cnf.Clause{{1, 2}, {-1, 2}}}
	in2, err := SingularFromCNF(sat2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := singular.Detect(in2.C, in2.Pred, in2.Truth(), singular.ChainCover)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Found {
		t.Fatal("(v | w) & (!v | w) must be detectable")
	}
	a, err := in2.Assignment(res2.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if !sat2.Eval(a) {
		t.Fatalf("assignment %v does not satisfy", a)
	}
}

// TestTheorem3Reduction validates the subset-sum reduction: the target is
// reachable as a cut sum iff the subset exists, and the witness cut
// recovers a valid subset.
func TestTheorem3Reduction(t *testing.T) {
	rng := rand.New(rand.NewSource(197))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(1 + rng.Intn(12))
		}
		target := int64(rng.Intn(40))
		inst := subsetsum.Instance{Sizes: sizes, Target: target}
		want, _ := subsetsum.Solve(inst)

		c := RelsumFromSubsetSum(inst)
		got, cut := lattice.Possibly(c, func(cc *computation.Computation, k computation.Cut) bool {
			return cc.SumVar(SumVar, k) == target
		})
		if got != want {
			t.Fatalf("trial %d: detection = %v, subset-sum = %v (sizes=%v target=%d)",
				trial, got, want, sizes, target)
		}
		if got {
			subset := SubsetFromCut(cut)
			if s := subsetsum.Sum(sizes, subset); s != target {
				t.Fatalf("trial %d: recovered subset %v sums to %d, want %d", trial, subset, s, target)
			}
		}
	}
}

// TestCorollary2Transform checks that the inequality re-expression agrees
// with the boolean predicate at every consistent cut.
func TestCorollary2Transform(t *testing.T) {
	rng := rand.New(rand.NewSource(199))
	for trial := 0; trial < 60; trial++ {
		c := computation.New()
		np := 4
		for p := 0; p < np; p++ {
			c.AddProcess()
			for i := 0; i < 1+rng.Intn(3); i++ {
				c.AddInternal(computation.ProcID(p))
			}
		}
		c.MustSeal()
		p := &singular.Predicate{Clauses: []singular.Clause{
			{{Proc: 0}, {Proc: 1, Negated: true}},
			{{Proc: 2, Negated: rng.Intn(2) == 0}, {Proc: 3}},
		}}
		tabs := make([][]bool, np)
		for pp := range tabs {
			tabs[pp] = make([]bool, c.Len(computation.ProcID(pp)))
			for i := range tabs[pp] {
				tabs[pp][i] = rng.Intn(2) == 0
			}
		}
		truth := singular.TruthFromTables(tabs)
		cc, clauses, err := InequalityFromSingular(c, p, truth)
		if err != nil {
			t.Fatal(err)
		}
		lattice.Explore(cc, func(k computation.Cut) bool {
			boolean := p.Holds(c, truth, k)
			ineq := HoldsInequalities(cc, clauses, k)
			if boolean != ineq {
				t.Fatalf("trial %d: cut %v: boolean=%v inequalities=%v", trial, k, boolean, ineq)
			}
			return true
		})
	}
}

func TestAssignmentRejectsBadWitness(t *testing.T) {
	f := &cnf.Formula{NumVars: 2, Clauses: []cnf.Clause{{1, 2}}}
	in, err := SingularFromCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	// An initial event is not a literal's true event.
	if _, err := in.Assignment([]computation.EventID{in.C.Initial(0).ID}); err == nil {
		t.Error("expected error for non-true-event witness")
	}
}
