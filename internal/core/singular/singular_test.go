package singular

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

// randomComputation builds a random acyclic computation.
func randomComputation(rng *rand.Rand, np, me, msgs int) *computation.Computation {
	c := computation.New()
	for p := 0; p < np; p++ {
		c.AddProcess()
		n := 1 + rng.Intn(me)
		for i := 0; i < n; i++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	for tries := 0; tries < msgs; tries++ {
		p := computation.ProcID(rng.Intn(np))
		q := computation.ProcID(rng.Intn(np))
		if p == q {
			continue
		}
		i := 1 + rng.Intn(c.Len(p)-1)
		j := 1 + rng.Intn(c.Len(q)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
		}
	}
	return c.MustSeal()
}

// randomPredicate partitions the first g*k processes into g clauses of k
// literals with random polarities.
func randomPredicate(rng *rand.Rand, g, k int) *Predicate {
	p := &Predicate{}
	proc := 0
	for i := 0; i < g; i++ {
		var cl Clause
		for j := 0; j < k; j++ {
			cl = append(cl, Literal{Proc: computation.ProcID(proc), Negated: rng.Intn(2) == 0})
			proc++
		}
		p.Clauses = append(p.Clauses, cl)
	}
	return p
}

func randomTruth(rng *rand.Rand, c *computation.Computation, density float64) Truth {
	tabs := make([][]bool, c.NumProcs())
	for p := range tabs {
		tabs[p] = make([]bool, c.Len(computation.ProcID(p)))
		for i := range tabs[p] {
			tabs[p][i] = rng.Float64() < density
		}
	}
	return TruthFromTables(tabs)
}

func oracle(c *computation.Computation, p *Predicate, truth Truth) bool {
	ok, _ := lattice.Possibly(c, func(cc *computation.Computation, k computation.Cut) bool {
		return p.Holds(cc, truth, k)
	})
	return ok
}

func verifyWitness(t *testing.T, c *computation.Computation, p *Predicate, truth Truth, res Result) {
	t.Helper()
	if len(res.Witness) != len(p.Clauses) {
		t.Fatalf("witness has %d events for %d clauses", len(res.Witness), len(p.Clauses))
	}
	if !c.PairwiseConsistent(res.Witness) {
		t.Fatalf("witness %v not pairwise consistent", res.Witness)
	}
	if !c.CutConsistent(res.Cut) {
		t.Fatalf("cut %v not consistent", res.Cut)
	}
	if !p.Holds(c, truth, res.Cut) {
		t.Fatalf("predicate does not hold at witness cut %v", res.Cut)
	}
}

func TestValidate(t *testing.T) {
	c := computation.New()
	c.AddProcesses(4)
	c.MustSeal()
	good := &Predicate{Clauses: []Clause{
		{{Proc: 0}, {Proc: 1}},
		{{Proc: 2}, {Proc: 3, Negated: true}},
	}}
	if err := good.Validate(c); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	dupAcross := &Predicate{Clauses: []Clause{{{Proc: 0}}, {{Proc: 0}}}}
	if err := dupAcross.Validate(c); !errors.Is(err, ErrNotSingular) {
		t.Errorf("duplicate across clauses: err = %v", err)
	}
	dupWithin := &Predicate{Clauses: []Clause{{{Proc: 1}, {Proc: 1, Negated: true}}}}
	if err := dupWithin.Validate(c); !errors.Is(err, ErrNotSingular) {
		t.Errorf("duplicate within clause: err = %v", err)
	}
	empty := &Predicate{Clauses: []Clause{{}}}
	if err := empty.Validate(c); !errors.Is(err, ErrNotSingular) {
		t.Errorf("empty clause: err = %v", err)
	}
	unknown := &Predicate{Clauses: []Clause{{{Proc: 9}}}}
	if err := unknown.Validate(c); err == nil {
		t.Error("unknown process must fail validation")
	}
}

func TestEmptyPredicate(t *testing.T) {
	c := computation.New()
	c.AddProcess()
	c.MustSeal()
	res, err := Detect(c, &Predicate{}, func(computation.Event) bool { return false }, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("empty predicate must hold")
	}
}

func TestGeneralAlgorithmsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 200; trial++ {
		g := 1 + rng.Intn(2)
		k := 1 + rng.Intn(2)
		np := g*k + rng.Intn(2)
		c := randomComputation(rng, np, 4, np*3)
		p := randomPredicate(rng, g, k)
		truth := randomTruth(rng, c, 0.4)
		want := oracle(c, p, truth)
		for _, strat := range []Strategy{ProcessSubsets, ChainCover} {
			res, err := Detect(c, p, truth, strat)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, strat, err)
			}
			if res.Found != want {
				t.Fatalf("trial %d: %v = %v, oracle = %v", trial, strat, res.Found, want)
			}
			if res.Found {
				verifyWitness(t, c, p, truth, res)
			}
		}
	}
}

// receiveOrderedComputation funnels all messages into process 0, so every
// receive of every meta-process lies on one process and receives are
// trivially totally ordered per meta-process only if each group contains at
// most one receiving process. We instead funnel per-group: all receives go
// to the group's first process.
func receiveOrderedComputation(rng *rand.Rand, g, k, me int) (*computation.Computation, *Predicate) {
	np := g * k
	c := computation.New()
	for p := 0; p < np; p++ {
		c.AddProcess()
		n := 2 + rng.Intn(me)
		for i := 0; i < n; i++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	p := &Predicate{}
	proc := 0
	for i := 0; i < g; i++ {
		var cl Clause
		for j := 0; j < k; j++ {
			cl = append(cl, Literal{Proc: computation.ProcID(proc), Negated: rng.Intn(2) == 0})
			proc++
		}
		p.Clauses = append(p.Clauses, cl)
	}
	// Messages: any process may send, but within each group only the
	// first process receives (its receives are then locally ordered).
	for tries := 0; tries < np*4; tries++ {
		from := computation.ProcID(rng.Intn(np))
		group := rng.Intn(g)
		to := computation.ProcID(group * k)
		if from == to {
			continue
		}
		i := 1 + rng.Intn(c.Len(from)-1)
		j := 1 + rng.Intn(c.Len(to)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(from, i).ID, c.EventAt(to, j).ID)
		}
	}
	return c.MustSeal(), p
}

func TestReceiveOrderedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	applicable := 0
	for trial := 0; trial < 200; trial++ {
		c, p := receiveOrderedComputation(rng, 1+rng.Intn(2), 1+rng.Intn(2), 3)
		truth := randomTruth(rng, c, 0.4)
		res, err := Detect(c, p, truth, ReceiveOrdered)
		if errors.Is(err, ErrNotOrdered) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		applicable++
		if want := oracle(c, p, truth); res.Found != want {
			t.Fatalf("trial %d: receive-ordered = %v, oracle = %v\npred=%v", trial, res.Found, want, p)
		}
		if res.Found {
			verifyWitness(t, c, p, truth, res)
		}
	}
	if applicable < 100 {
		t.Fatalf("only %d/200 trials were receive-ordered; generator broken", applicable)
	}
}

// sendOrderedComputation: within each group only the first process sends.
func sendOrderedComputation(rng *rand.Rand, g, k, me int) (*computation.Computation, *Predicate) {
	np := g * k
	c := computation.New()
	for p := 0; p < np; p++ {
		c.AddProcess()
		n := 2 + rng.Intn(me)
		for i := 0; i < n; i++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	p := &Predicate{}
	proc := 0
	for i := 0; i < g; i++ {
		var cl Clause
		for j := 0; j < k; j++ {
			cl = append(cl, Literal{Proc: computation.ProcID(proc), Negated: rng.Intn(2) == 0})
			proc++
		}
		p.Clauses = append(p.Clauses, cl)
	}
	for tries := 0; tries < np*4; tries++ {
		group := rng.Intn(g)
		from := computation.ProcID(group * k)
		to := computation.ProcID(rng.Intn(np))
		if from == to {
			continue
		}
		i := 1 + rng.Intn(c.Len(from)-1)
		j := 1 + rng.Intn(c.Len(to)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(from, i).ID, c.EventAt(to, j).ID)
		}
	}
	return c.MustSeal(), p
}

func TestSendOrderedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	applicable := 0
	for trial := 0; trial < 200; trial++ {
		c, p := sendOrderedComputation(rng, 1+rng.Intn(2), 1+rng.Intn(2), 3)
		truth := randomTruth(rng, c, 0.4)
		res, err := Detect(c, p, truth, SendOrdered)
		if errors.Is(err, ErrNotOrdered) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		applicable++
		if want := oracle(c, p, truth); res.Found != want {
			t.Fatalf("trial %d: send-ordered = %v, oracle = %v\npred=%v", trial, res.Found, want, p)
		}
		if res.Found {
			verifyWitness(t, c, p, truth, res)
		}
	}
	if applicable < 100 {
		t.Fatalf("only %d/200 trials were send-ordered; generator broken", applicable)
	}
}

func TestAutoFallsBackToChains(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	sawChains := false
	for trial := 0; trial < 100; trial++ {
		c := randomComputation(rng, 4, 4, 12)
		p := randomPredicate(rng, 2, 2)
		truth := randomTruth(rng, c, 0.4)
		res, err := Detect(c, p, truth, Auto)
		if err != nil {
			t.Fatalf("trial %d: Auto must not fail: %v", trial, err)
		}
		if res.Strategy == ChainCover {
			sawChains = true
		}
		if want := oracle(c, p, truth); res.Found != want {
			t.Fatalf("trial %d: Auto = %v, oracle = %v (strategy %v)", trial, res.Found, want, res.Strategy)
		}
	}
	if !sawChains {
		t.Error("expected at least one trial to fall back to the chain-cover algorithm")
	}
}

func TestNotOrderedDetected(t *testing.T) {
	// Two processes in one clause, each receiving a message concurrently:
	// receives are concurrent, so the receive-ordered algorithm must
	// refuse.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	p2 := c.AddProcess()
	p3 := c.AddProcess()
	s0 := c.AddInternal(p2)
	s1 := c.AddInternal(p3)
	r0 := c.AddInternal(p0)
	r1 := c.AddInternal(p1)
	if err := c.AddMessage(s0, r0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMessage(s1, r1); err != nil {
		t.Fatal(err)
	}
	c.MustSeal()
	p := &Predicate{Clauses: []Clause{{{Proc: p0}, {Proc: p1}}}}
	truth := func(computation.Event) bool { return true }
	if _, err := Detect(c, p, truth, ReceiveOrdered); !errors.Is(err, ErrNotOrdered) {
		t.Errorf("ReceiveOrdered err = %v, want ErrNotOrdered", err)
	}
	// Symmetrically the senders p2, p3 in one clause break send-order.
	ps := &Predicate{Clauses: []Clause{{{Proc: p2}, {Proc: p3}}}}
	if _, err := Detect(c, ps, truth, SendOrdered); !errors.Is(err, ErrNotOrdered) {
		t.Errorf("SendOrdered err = %v, want ErrNotOrdered", err)
	}
}

func TestChainCoverNeverMoreCombinationsThanSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	for trial := 0; trial < 60; trial++ {
		c := randomComputation(rng, 4, 5, 16)
		p := randomPredicate(rng, 2, 2)
		truth := randomTruth(rng, c, 0.5)
		ra, err := Detect(c, p, truth, ProcessSubsets)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := Detect(c, p, truth, ChainCover)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Found != rb.Found {
			t.Fatalf("trial %d: A found %v, B found %v", trial, ra.Found, rb.Found)
		}
		// When neither finds, B explores its full (smaller) product.
		if !ra.Found && rb.Combinations > ra.Combinations {
			t.Fatalf("trial %d: B tried %d > A's %d combinations",
				trial, rb.Combinations, ra.Combinations)
		}
	}
}

func TestChainCoverSizes(t *testing.T) {
	// A clause over two processes whose true events are all ordered by a
	// message chain needs a single chain.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a, b); err != nil {
		t.Fatal(err)
	}
	c.MustSeal()
	p := &Predicate{Clauses: []Clause{{{Proc: p0}, {Proc: p1}}}}
	truth := func(e computation.Event) bool { return e.ID == a || e.ID == b }
	sizes, err := ChainCoverSizes(c, p, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("ChainCoverSizes = %v, want [1]", sizes)
	}
}

func TestTruthHelpers(t *testing.T) {
	c := computation.New()
	p := c.AddProcess()
	a := c.AddInternal(p)
	c.SetVar("flag", a, 1)
	c.MustSeal()
	fromVar := TruthFromVar(c, "flag")
	if !fromVar(c.Event(a)) || fromVar(c.Initial(p)) {
		t.Error("TruthFromVar wrong")
	}
	fromTab := TruthFromTables([][]bool{{false, true}})
	if !fromTab(c.Event(a)) || fromTab(c.Initial(p)) {
		t.Error("TruthFromTables wrong")
	}
	// Out of range reads are false.
	if fromTab(computation.Event{Proc: 5, Index: 0}) {
		t.Error("missing row must read false")
	}
}

func TestPredicateString(t *testing.T) {
	p := &Predicate{Clauses: []Clause{
		{{Proc: 0}, {Proc: 1, Negated: true}},
		{{Proc: 2}},
	}}
	want := "(x(p0) | !x(p1)) & (x(p2))"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if p.K() != 2 {
		t.Errorf("K = %d, want 2", p.K())
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Auto: "auto", ReceiveOrdered: "receive-ordered", SendOrdered: "send-ordered",
		ProcessSubsets: "process-subsets", ChainCover: "chain-cover",
		Strategy(42): "strategy(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", s, got, want)
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	c := computation.New()
	c.AddProcess()
	c.AddInternal(0)
	c.MustSeal()
	p := &Predicate{Clauses: []Clause{{{Proc: 0}}}}
	if _, err := Detect(c, p, func(computation.Event) bool { return true }, Strategy(99)); err == nil {
		t.Error("unknown strategy must error")
	}
}
