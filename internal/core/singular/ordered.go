package singular

import (
	"fmt"
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
)

// detectOrdered runs the polynomial special-case detector of Section 3.2.
// With sendOrdered false it requires the computation to be receive-ordered
// with respect to the predicate's meta-processes: all receive events on the
// processes of each clause must be totally ordered by happened-before. With
// sendOrdered true it requires sends to be totally ordered, and reduces to
// the receive-ordered case on the time-reversed (and padded) computation.
func detectOrdered(
	c *computation.Computation,
	p *Predicate,
	cands [][]computation.EventID,
	sendOrdered bool,
) (Result, error) {
	strategy := ReceiveOrdered
	if sendOrdered {
		strategy = SendOrdered
	}
	groups := make([][]computation.ProcID, len(p.Clauses))
	for i, cl := range p.Clauses {
		for _, l := range cl {
			groups[i] = append(groups[i], l.Proc)
		}
	}

	work := c
	queues := cands
	var back func(computation.EventID) computation.EventID
	if sendOrdered {
		rev := reversePadded(c)
		work = rev.c
		queues = make([][]computation.EventID, len(cands))
		for i, t := range cands {
			queues[i] = make([]computation.EventID, len(t))
			for j, id := range t {
				queues[i][j] = rev.image(c, id)
			}
		}
		back = func(id computation.EventID) computation.EventID { return rev.preimage(c, id) }
	} else {
		// Defensive copy: the queues are re-sorted below.
		queues = make([][]computation.EventID, len(cands))
		for i, t := range cands {
			queues[i] = append([]computation.EventID(nil), t...)
		}
	}

	if err := checkReceiveOrdered(work, groups); err != nil {
		return Result{}, err
	}
	topoPos, err := extendedOrderPositions(work, groups)
	if err != nil {
		return Result{}, err
	}
	for i := range queues {
		q := queues[i]
		sort.Slice(q, func(a, b int) bool { return topoPos[q[a]] < topoPos[q[b]] })
	}

	found, witness, elims := eliminateQueues(queues,
		func(id computation.EventID) []int32 { return work.Clock(id) },
		func(id computation.EventID) int { return int(work.Event(id).Proc) },
	)
	res := Result{Found: found, Witness: witness, Strategy: strategy, Combinations: 1, Eliminations: elims}
	if found && back != nil {
		for i, id := range res.Witness {
			res.Witness[i] = back(id)
		}
	}
	return finish(c, res), nil
}

// checkReceiveOrdered verifies that the receive events on each
// meta-process are totally ordered by happened-before.
func checkReceiveOrdered(c *computation.Computation, groups [][]computation.ProcID) error {
	for gi, group := range groups {
		var recvs []computation.EventID
		for _, p := range group {
			for _, id := range c.ProcEvents(p) {
				if c.Event(id).Kind.IsReceive() {
					recvs = append(recvs, id)
				}
			}
		}
		for i := 0; i < len(recvs); i++ {
			for j := i + 1; j < len(recvs); j++ {
				a, b := recvs[i], recvs[j]
				if !c.Precedes(a, b) && !c.Precedes(b, a) {
					return fmt.Errorf("%w: receives %v and %v of meta-process %d are concurrent",
						ErrNotOrdered, c.Event(a), c.Event(b), gi)
				}
			}
		}
	}
	return nil
}

// extendedOrderPositions builds the extended partial order of Section 3.2 —
// for every pair of independent events e, r on the same meta-process with r
// a receive event, an arrow e -> r is added — and returns the position of
// every event in a linearization of it. The linearization satisfies
// Property P: if x -> e for x outside e's meta-process, then x -> f for
// every f after e in the linearization on the same meta-process, which is
// what makes queue elimination sound.
func extendedOrderPositions(
	c *computation.Computation,
	groups [][]computation.ProcID,
) (map[computation.EventID]int, error) {
	ext := c.Clone()
	for _, group := range groups {
		var all, recvs []computation.EventID
		for _, p := range group {
			for _, id := range c.ProcEvents(p) {
				all = append(all, id)
				if c.Event(id).Kind.IsReceive() {
					recvs = append(recvs, id)
				}
			}
		}
		for _, r := range recvs {
			for _, e := range all {
				if e == r || !c.Independent(e, r) {
					continue
				}
				if err := ext.AddEdge(e, r); err != nil {
					return nil, fmt.Errorf("singular: extend order: %w", err)
				}
			}
		}
	}
	if err := ext.Seal(); err != nil {
		return nil, fmt.Errorf("%w: extended order is cyclic: %v", ErrNotOrdered, err)
	}
	pos := make(map[computation.EventID]int, ext.NumEvents())
	for i, id := range ext.Topo() {
		pos[id] = i
	}
	return pos, nil
}

// reversed is a time-reversed, padded copy of a computation. Every process
// gets one trailing pad event; the reversal maps the padded event at local
// index i of a process of length L (including the pad) to local index L-1-i.
type reversed struct {
	c *computation.Computation
}

// reversePadded builds the reversal. Message and extra edges are flipped;
// pads become the initial events of the reversal.
func reversePadded(c *computation.Computation) reversed {
	r := computation.New()
	for p := 0; p < c.NumProcs(); p++ {
		pid := r.AddProcess()
		// Original process has Len events (incl. its initial event);
		// padded length is Len+1, so the reversal also has Len+1
		// events: the pad is the reversal's initial event and the
		// original initial event is the reversal's final event.
		for i := 0; i < c.Len(computation.ProcID(p)); i++ {
			r.AddInternal(pid)
		}
	}
	for _, m := range c.Messages() {
		if err := r.AddMessage(rimage(c, r, m.Receive), rimage(c, r, m.Send)); err != nil {
			// Cannot happen: reversal of a valid message is valid.
			panic(fmt.Sprintf("singular: reverse message: %v", err))
		}
	}
	for _, e := range c.Edges() {
		if err := r.AddEdge(rimage(c, r, e.To), rimage(c, r, e.From)); err != nil {
			panic(fmt.Sprintf("singular: reverse edge: %v", err))
		}
	}
	r.MustSeal()
	return reversed{c: r}
}

// rimage maps an original event to its counterpart in the reversal.
func rimage(c, r *computation.Computation, id computation.EventID) computation.EventID {
	e := c.Event(id)
	// Padded length is c.Len+1; reversal index of padded index i is
	// (c.Len) - i, and original events keep their padded index.
	ri := c.Len(e.Proc) - e.Index
	return r.EventAt(e.Proc, ri).ID
}

// image maps an original candidate event e to the reversal image of its
// padded successor succ(e) — the event whose consistency in the reversal
// coincides with e's consistency in the original (see package tests).
func (rv reversed) image(c *computation.Computation, id computation.EventID) computation.EventID {
	e := c.Event(id)
	// Padded successor has index e.Index+1; reversal index = Len - (e.Index+1).
	ri := c.Len(e.Proc) - e.Index - 1
	return rv.c.EventAt(e.Proc, ri).ID
}

// preimage inverts image.
func (rv reversed) preimage(c *computation.Computation, rid computation.EventID) computation.EventID {
	re := rv.c.Event(rid)
	idx := c.Len(re.Proc) - re.Index - 1
	return c.EventAt(re.Proc, idx).ID
}
