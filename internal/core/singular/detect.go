package singular

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Strategy selects the detection algorithm.
type Strategy int

const (
	// Auto picks the cheapest applicable algorithm: the receive-ordered
	// detector, then the send-ordered one, then chain covers.
	Auto Strategy = iota + 1
	// ReceiveOrdered runs the polynomial special-case algorithm; it
	// fails with ErrNotOrdered if receives are not totally ordered on
	// some meta-process.
	ReceiveOrdered
	// SendOrdered runs the polynomial special-case algorithm on the
	// time-reversed computation; it fails with ErrNotOrdered if sends
	// are not totally ordered on some meta-process.
	SendOrdered
	// ProcessSubsets is general algorithm A: one CPDHB run per
	// selection of one process per clause (up to k^g selections).
	ProcessSubsets
	// ChainCover is general algorithm B: one CPDHB run per selection of
	// one chain per clause from minimum chain covers of the true events
	// (up to c^g selections, c = max cover size).
	ChainCover
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case ReceiveOrdered:
		return "receive-ordered"
	case SendOrdered:
		return "send-ordered"
	case ProcessSubsets:
		return "process-subsets"
	case ChainCover:
		return "chain-cover"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Result is the outcome of a detection.
type Result struct {
	// Found reports whether Possibly(predicate) holds.
	Found bool
	// Witness, when Found, has one true event per clause; the events
	// are pairwise consistent (Observation 1).
	Witness []computation.EventID
	// Cut, when Found, is the least consistent cut passing through all
	// witness events; the predicate holds at it.
	Cut computation.Cut
	// Strategy is the algorithm that produced the answer.
	Strategy Strategy
	// Combinations counts the candidate-queue combinations tried (1 for
	// the ordered algorithms, up to k^g or c^g for the general ones).
	Combinations int
	// Eliminations counts candidate eliminations across all runs.
	Eliminations int
	// Candidates counts the true events enumerated across all clauses
	// (the total queue length the elimination starts from).
	Candidates int
}

// Detect decides Possibly(p) on the sealed computation using the given
// strategy. truth supplies the per-process boolean variables.
func Detect(c *computation.Computation, p *Predicate, truth Truth, strategy Strategy) (Result, error) {
	return DetectTraced(c, p, truth, strategy, nil)
}

// DetectTraced is Detect with work counters accumulated into the trace:
// candidate (true) events enumerated, CPDHB sub-runs (queue combinations)
// tried, candidates eliminated, plus a note naming the strategy that
// produced the answer (which, under Auto, the caller cannot otherwise
// predict).
func DetectTraced(c *computation.Computation, p *Predicate, truth Truth, strategy Strategy, tr *obs.Trace) (Result, error) {
	return DetectPar(c, p, truth, strategy, 1, tr)
}

// DetectPar is DetectTraced with the per-selection CPDHB runs and the
// chain-cover comparability scans spread over a bounded worker pool.
// Selections are merged in odometer order, so the result (witness,
// combination and elimination counts included) is identical for every
// worker count; workers <= 1 runs the exact sequential code.
func DetectPar(c *computation.Computation, p *Predicate, truth Truth, strategy Strategy, workers int, tr *obs.Trace) (Result, error) {
	res, err := detect(c, p, truth, strategy, workers)
	if err == nil && tr != nil {
		tr.Note("singular.strategy", res.Strategy.String())
		tr.Add("singular.candidate_events", int64(res.Candidates))
		tr.Add("singular.cpdhb_runs", int64(res.Combinations))
		tr.Add("singular.eliminations", int64(res.Eliminations))
	}
	return res, err
}

func detect(c *computation.Computation, p *Predicate, truth Truth, strategy Strategy, workers int) (Result, error) {
	if err := p.Validate(c); err != nil {
		return Result{}, err
	}
	if len(p.Clauses) == 0 {
		return Result{Found: true, Cut: c.InitialCut(), Strategy: strategy, Combinations: 1}, nil
	}
	cands := p.trueEvents(c, truth)
	total := 0
	for _, t := range cands {
		total += len(t)
	}
	for _, t := range cands {
		if len(t) == 0 {
			return Result{Strategy: strategy, Candidates: total}, nil
		}
	}
	res, err := func() (Result, error) {
		switch strategy {
		case ReceiveOrdered:
			return detectOrdered(c, p, cands, false)
		case SendOrdered:
			return detectOrdered(c, p, cands, true)
		case ProcessSubsets:
			return detectSubsets(c, p, cands, workers)
		case ChainCover:
			return detectChains(c, cands, workers)
		case Auto:
			if res, err := detectOrdered(c, p, cands, false); err == nil {
				return res, nil
			}
			if res, err := detectOrdered(c, p, cands, true); err == nil {
				return res, nil
			}
			return detectChains(c, cands, workers)
		default:
			return Result{}, fmt.Errorf("singular: unknown strategy %d", int(strategy))
		}
	}()
	if err == nil {
		res.Candidates = total
	}
	return res, err
}

// eliminateQueues runs the CPDHB elimination over candidate queues, one per
// clause. Each queue must be ordered so that elimination is sound: whenever
// succ(e) happened-before the head of another queue, succ(e) also
// happened-before every later entry of that queue (guaranteed by chain
// order, per-process order, or Property P of the ordered algorithms).
//
// clock must return the vector timestamp of an event in the computation
// whose consistency is being decided, and proc the component index of the
// event's process.
func eliminateQueues(
	queues [][]computation.EventID,
	clock func(computation.EventID) []int32,
	proc func(computation.EventID) int,
) (found bool, witness []computation.EventID, eliminations int) {
	cur := make([]int, len(queues))
	dirty := make([]int, len(queues))
	inDirty := make([]bool, len(queues))
	for i := range queues {
		dirty[i] = i
		inDirty[i] = true
	}
	bump := func(i int) bool {
		cur[i]++
		eliminations++
		if cur[i] >= len(queues[i]) {
			return false
		}
		if !inDirty[i] {
			dirty = append(dirty, i)
			inDirty[i] = true
		}
		return true
	}
	for len(dirty) > 0 {
		i := dirty[len(dirty)-1]
		dirty = dirty[:len(dirty)-1]
		inDirty[i] = false
		ei := queues[i][cur[i]]
		ci, pi := clock(ei), proc(ei)
		for j := range queues {
			if j == i {
				continue
			}
			ej := queues[j][cur[j]]
			cj, pj := clock(ej), proc(ej)
			// succ(e_i) <= e_j: e_j has seen past e_i on e_i's process.
			if cj[pi] > ci[pi] {
				if !bump(i) {
					return false, nil, eliminations
				}
				ei = queues[i][cur[i]]
				ci, pi = clock(ei), proc(ei)
				continue
			}
			// succ(e_j) <= e_i.
			if ci[pj] > cj[pj] {
				if !bump(j) {
					return false, nil, eliminations
				}
			}
		}
	}
	witness = make([]computation.EventID, len(queues))
	for i := range queues {
		witness[i] = queues[i][cur[i]]
	}
	return true, witness, eliminations
}

// finish fills in the witness cut.
func finish(c *computation.Computation, res Result) Result {
	if res.Found {
		res.Cut = c.CutThrough(res.Witness...)
	}
	return res
}
