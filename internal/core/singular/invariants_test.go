package singular

// Invariant tests for the detection machinery beyond input/output
// agreement: strategy consistency, witness structure, work counters, and
// the correctness of the time-reversal used by the send-ordered detector.

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
)

// TestAllStrategiesAgree: wherever multiple strategies apply, they must
// give the same verdict.
func TestAllStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 150; trial++ {
		c := randomComputation(rng, 4, 5, 10)
		p := randomPredicate(rng, 2, 2)
		truth := randomTruth(rng, c, 0.35)
		var verdicts []bool
		for _, s := range []Strategy{ProcessSubsets, ChainCover, Auto} {
			res, err := Detect(c, p, truth, s)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, s, err)
			}
			verdicts = append(verdicts, res.Found)
		}
		for _, s := range []Strategy{ReceiveOrdered, SendOrdered} {
			res, err := Detect(c, p, truth, s)
			if err != nil {
				continue // not applicable to this computation
			}
			verdicts = append(verdicts, res.Found)
		}
		for i := 1; i < len(verdicts); i++ {
			if verdicts[i] != verdicts[0] {
				t.Fatalf("trial %d: strategies disagree: %v", trial, verdicts)
			}
		}
	}
}

// TestWitnessEventsBelongToTheirClauses: every witness event must lie on
// one of its clause's processes and make that literal true.
func TestWitnessEventsBelongToTheirClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 120; trial++ {
		c := randomComputation(rng, 4, 5, 10)
		p := randomPredicate(rng, 2, 2)
		truth := randomTruth(rng, c, 0.5)
		res, err := Detect(c, p, truth, ChainCover)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			continue
		}
		for i, id := range res.Witness {
			e := c.Event(id)
			matched := false
			for _, l := range p.Clauses[i] {
				if l.Proc == e.Proc {
					matched = true
					if truth(e) == l.Negated {
						t.Fatalf("trial %d: witness %v does not satisfy literal %v", trial, e, l)
					}
				}
			}
			if !matched {
				t.Fatalf("trial %d: witness %v not on clause %d's processes", trial, e, i)
			}
		}
	}
}

// TestCombinationsBounded: algorithm A tries at most prod(k_i)
// selections; algorithm B at most prod(c_i) with c_i the chain cover
// sizes.
func TestCombinationsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	for trial := 0; trial < 60; trial++ {
		c := randomComputation(rng, 4, 5, 12)
		p := randomPredicate(rng, 2, 2)
		truth := randomTruth(rng, c, 0.4)
		ra, err := Detect(c, p, truth, ProcessSubsets)
		if err != nil {
			t.Fatal(err)
		}
		boundA := 1
		for _, cl := range p.Clauses {
			boundA *= len(cl)
		}
		if ra.Combinations > boundA {
			t.Fatalf("trial %d: A tried %d > k^g bound %d", trial, ra.Combinations, boundA)
		}
		rb, err := Detect(c, p, truth, ChainCover)
		if err != nil {
			t.Fatal(err)
		}
		sizes, err := ChainCoverSizes(c, p, truth)
		if err != nil {
			t.Fatal(err)
		}
		boundB := 1
		empty := false
		for _, s := range sizes {
			if s == 0 {
				empty = true
			}
			boundB *= s
		}
		if !empty && rb.Combinations > boundB {
			t.Fatalf("trial %d: B tried %d > c^g bound %d (covers %v)", trial, rb.Combinations, boundB, sizes)
		}
	}
}

// TestReversalPreservesConsistency: the consistency of original events
// equals the consistency of their images in the time-reversed padded
// computation — the identity the send-ordered detector relies on.
func TestReversalPreservesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	for trial := 0; trial < 60; trial++ {
		c := randomComputation(rng, 3, 4, 8)
		rev := reversePadded(c)
		var ids []computation.EventID
		c.Events(func(e computation.Event) bool {
			ids = append(ids, e.ID)
			return true
		})
		for _, a := range ids {
			for _, b := range ids {
				want := c.ConsistentEvents(a, b)
				ra := rev.image(c, a)
				rb := rev.image(c, b)
				got := rev.c.ConsistentEvents(ra, rb)
				if got != want {
					t.Fatalf("trial %d: consistency(%v,%v)=%v but reversed images give %v",
						trial, c.Event(a), c.Event(b), want, got)
				}
			}
		}
	}
}

// TestReversalRoundTrip: preimage inverts image.
func TestReversalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	c := randomComputation(rng, 3, 5, 8)
	rev := reversePadded(c)
	c.Events(func(e computation.Event) bool {
		if got := rev.preimage(c, rev.image(c, e.ID)); got != e.ID {
			t.Fatalf("round trip %v -> %v", e.ID, got)
		}
		return true
	})
}

// TestOrderedDetectorsAreDeterministic: repeated runs on the same input
// give identical witnesses (no map-iteration nondeterminism).
func TestOrderedDetectorsAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(337))
	for trial := 0; trial < 20; trial++ {
		c, p := receiveOrderedComputation(rng, 2, 2, 4)
		truth := randomTruth(rng, c, 0.4)
		first, err := Detect(c, p, truth, ReceiveOrdered)
		if err != nil {
			continue
		}
		for rep := 0; rep < 5; rep++ {
			again, err := Detect(c, p, truth, ReceiveOrdered)
			if err != nil {
				t.Fatal(err)
			}
			if again.Found != first.Found {
				t.Fatalf("trial %d: verdict changed across reruns", trial)
			}
			if first.Found {
				for i := range first.Witness {
					if first.Witness[i] != again.Witness[i] {
						t.Fatalf("trial %d: witness changed across reruns", trial)
					}
				}
			}
		}
	}
}

// TestEliminationsNeverExceedCandidates: each elimination permanently
// discards one candidate of one queue, so within one combination the count
// is bounded by the total number of candidates.
func TestEliminationsNeverExceedCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(347))
	for trial := 0; trial < 60; trial++ {
		c, p := receiveOrderedComputation(rng, 2, 2, 5)
		truth := randomTruth(rng, c, 0.5)
		res, err := Detect(c, p, truth, ReceiveOrdered)
		if err != nil {
			continue
		}
		total := 0
		for _, q := range p.trueEvents(c, truth) {
			total += len(q)
		}
		if res.Eliminations > total {
			t.Fatalf("trial %d: %d eliminations > %d candidates", trial, res.Eliminations, total)
		}
	}
}
