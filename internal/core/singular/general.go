package singular

import (
	"github.com/distributed-predicates/gpd/internal/chains"
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/par"
)

// detectSubsets is general algorithm A (Section 3.3): enumerate all
// selections of one process per clause, restrict each clause's candidates
// to the selected process (a totally ordered queue), and run the CPDHB
// elimination for each selection. The number of selections is at most k^g
// for g clauses of at most k literals.
func detectSubsets(
	c *computation.Computation,
	p *Predicate,
	cands [][]computation.EventID,
	workers int,
) (Result, error) {
	// Split each clause's candidates by hosting process; keep only
	// processes that actually have true events.
	perClause := make([][][]computation.EventID, len(cands))
	for i, t := range cands {
		byProc := make(map[computation.ProcID][]computation.EventID)
		for _, id := range t {
			pr := c.Event(id).Proc
			byProc[pr] = append(byProc[pr], id)
		}
		// Deterministic order: follow the clause's literal order.
		for _, l := range p.Clauses[i] {
			if q, ok := byProc[l.Proc]; ok {
				perClause[i] = append(perClause[i], q)
			}
		}
	}
	return runSelections(c, perClause, ProcessSubsets, workers), nil
}

// detectChains is general algorithm B (Section 3.3): cover each clause's
// true events with a minimum number of chains of the happened-before order
// (Dilworth via matching) and enumerate selections of one chain per
// clause. Each chain is totally ordered by causality, so the CPDHB
// elimination is sound on it; the number of selections is at most c^g
// where c bounds the cover sizes. Since the per-process split of algorithm
// A is itself a chain cover (usually not minimum), B never tries more
// combinations than A.
func detectChains(
	c *computation.Computation,
	cands [][]computation.EventID,
	workers int,
) (Result, error) {
	perClause := make([][][]computation.EventID, len(cands))
	for i, t := range cands {
		cover := chains.CoverPar(len(t), func(a, b int) bool {
			return c.Precedes(t[a], t[b])
		}, workers)
		for _, chain := range cover {
			q := make([]computation.EventID, len(chain))
			for j, idx := range chain {
				q[j] = t[idx]
			}
			perClause[i] = append(perClause[i], q)
		}
	}
	return runSelections(c, perClause, ChainCover, workers), nil
}

// runSelections enumerates the cartesian product of queue choices, running
// the elimination for each selection until one succeeds. With workers > 1
// selections are drawn from the odometer in blocks, eliminated
// concurrently (eliminateQueues is a pure function of the queues and the
// sealed computation), and merged back in odometer order — so the first
// successful selection, and the combination/elimination totals up to it,
// are exactly the sequential ones. Work past the first success within a
// block is speculative and discarded.
func runSelections(
	c *computation.Computation,
	perClause [][][]computation.EventID,
	strategy Strategy,
	workers int,
) Result {
	res := Result{Strategy: strategy}
	for i := range perClause {
		if len(perClause[i]) == 0 {
			return res // a clause with no true events at all
		}
	}
	sel := make([]int, len(perClause))
	clock := func(id computation.EventID) []int32 { return c.Clock(id) }
	proc := func(id computation.EventID) int { return int(c.Event(id).Proc) }
	// step advances the odometer, reporting false on wrap-around.
	step := func() bool {
		for i := 0; i < len(sel); i++ {
			sel[i]++
			if sel[i] < len(perClause[i]) {
				return true
			}
			sel[i] = 0
		}
		return false
	}
	if workers <= 1 {
		queues := make([][]computation.EventID, len(perClause))
		for {
			for i, s := range sel {
				queues[i] = perClause[i][s]
			}
			res.Combinations++
			found, witness, elims := eliminateQueues(queues, clock, proc)
			res.Eliminations += elims
			if found {
				res.Found = true
				res.Witness = witness
				return finish(c, res)
			}
			if !step() {
				return res
			}
		}
	}
	type outcome struct {
		found   bool
		witness []computation.EventID
		elims   int
	}
	// Blocks sized so par.Do's chunk floor still yields one chunk per
	// worker; this also bounds the speculative overshoot per block.
	block := workers * 16
	exhausted := false
	for !exhausted {
		var sels [][]int
		for len(sels) < block && !exhausted {
			sels = append(sels, append([]int(nil), sel...))
			exhausted = !step()
		}
		out := make([]outcome, len(sels))
		par.Do(workers, len(sels), func(lo, hi int) {
			queues := make([][]computation.EventID, len(perClause))
			for i := lo; i < hi; i++ {
				for j, s := range sels[i] {
					queues[j] = perClause[j][s]
				}
				found, witness, elims := eliminateQueues(queues, clock, proc)
				out[i] = outcome{found, witness, elims}
			}
		})
		for i := range sels {
			res.Combinations++
			res.Eliminations += out[i].elims
			if out[i].found {
				res.Found = true
				res.Witness = out[i].witness
				return finish(c, res)
			}
		}
	}
	return res
}

// ChainCoverSizes reports the minimum chain cover size of each clause's
// true events — the c_i of algorithm B — without running detection. The
// benchmark harness uses it to predict the A-versus-B combination counts.
func ChainCoverSizes(c *computation.Computation, p *Predicate, truth Truth) ([]int, error) {
	if err := p.Validate(c); err != nil {
		return nil, err
	}
	cands := p.trueEvents(c, truth)
	out := make([]int, len(cands))
	for i, t := range cands {
		out[i] = chains.Width(len(t), func(a, b int) bool {
			return c.Precedes(t[a], t[b])
		})
	}
	return out, nil
}
