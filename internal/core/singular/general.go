package singular

import (
	"github.com/distributed-predicates/gpd/internal/chains"
	"github.com/distributed-predicates/gpd/internal/computation"
)

// detectSubsets is general algorithm A (Section 3.3): enumerate all
// selections of one process per clause, restrict each clause's candidates
// to the selected process (a totally ordered queue), and run the CPDHB
// elimination for each selection. The number of selections is at most k^g
// for g clauses of at most k literals.
func detectSubsets(
	c *computation.Computation,
	p *Predicate,
	cands [][]computation.EventID,
) (Result, error) {
	// Split each clause's candidates by hosting process; keep only
	// processes that actually have true events.
	perClause := make([][][]computation.EventID, len(cands))
	for i, t := range cands {
		byProc := make(map[computation.ProcID][]computation.EventID)
		for _, id := range t {
			pr := c.Event(id).Proc
			byProc[pr] = append(byProc[pr], id)
		}
		// Deterministic order: follow the clause's literal order.
		for _, l := range p.Clauses[i] {
			if q, ok := byProc[l.Proc]; ok {
				perClause[i] = append(perClause[i], q)
			}
		}
	}
	return runSelections(c, perClause, ProcessSubsets), nil
}

// detectChains is general algorithm B (Section 3.3): cover each clause's
// true events with a minimum number of chains of the happened-before order
// (Dilworth via matching) and enumerate selections of one chain per
// clause. Each chain is totally ordered by causality, so the CPDHB
// elimination is sound on it; the number of selections is at most c^g
// where c bounds the cover sizes. Since the per-process split of algorithm
// A is itself a chain cover (usually not minimum), B never tries more
// combinations than A.
func detectChains(
	c *computation.Computation,
	cands [][]computation.EventID,
) (Result, error) {
	perClause := make([][][]computation.EventID, len(cands))
	for i, t := range cands {
		cover := chains.Cover(len(t), func(a, b int) bool {
			return c.Precedes(t[a], t[b])
		})
		for _, chain := range cover {
			q := make([]computation.EventID, len(chain))
			for j, idx := range chain {
				q[j] = t[idx]
			}
			perClause[i] = append(perClause[i], q)
		}
	}
	return runSelections(c, perClause, ChainCover), nil
}

// runSelections enumerates the cartesian product of queue choices, running
// the elimination for each selection until one succeeds.
func runSelections(
	c *computation.Computation,
	perClause [][][]computation.EventID,
	strategy Strategy,
) Result {
	res := Result{Strategy: strategy}
	for i := range perClause {
		if len(perClause[i]) == 0 {
			return res // a clause with no true events at all
		}
	}
	sel := make([]int, len(perClause))
	queues := make([][]computation.EventID, len(perClause))
	clock := func(id computation.EventID) []int32 { return c.Clock(id) }
	proc := func(id computation.EventID) int { return int(c.Event(id).Proc) }
	for {
		for i, s := range sel {
			queues[i] = perClause[i][s]
		}
		res.Combinations++
		found, witness, elims := eliminateQueues(queues, clock, proc)
		res.Eliminations += elims
		if found {
			res.Found = true
			res.Witness = witness
			return finish(c, res)
		}
		// Odometer step.
		i := 0
		for ; i < len(sel); i++ {
			sel[i]++
			if sel[i] < len(perClause[i]) {
				break
			}
			sel[i] = 0
		}
		if i == len(sel) {
			return res
		}
	}
}

// ChainCoverSizes reports the minimum chain cover size of each clause's
// true events — the c_i of algorithm B — without running detection. The
// benchmark harness uses it to predict the A-versus-B combination counts.
func ChainCoverSizes(c *computation.Computation, p *Predicate, truth Truth) ([]int, error) {
	if err := p.Validate(c); err != nil {
		return nil, err
	}
	cands := p.trueEvents(c, truth)
	out := make([]int, len(cands))
	for i, t := range cands {
		out[i] = chains.Width(len(t), func(a, b int) bool {
			return c.Precedes(t[a], t[b])
		})
	}
	return out, nil
}
