// Package singular implements detection of singular k-CNF predicates — the
// central objects of Mittal & Garg (ICDCS 2001). A predicate in CNF over
// boolean variables, one variable per process, is singular iff no two
// clauses contain variables of the same process. Detecting Possibly(phi)
// for singular 2-CNF predicates is NP-complete in general (Theorem 1); this
// package provides:
//
//   - the polynomial-time detector for receive-ordered and send-ordered
//     computations (Section 3.2, via Tarafdar & Garg's CPDSC technique
//     lifted to meta-processes),
//   - the general-case algorithms of Section 3.3: algorithm A tries every
//     selection of one process per clause (<= k^g CPDHB runs) and algorithm
//     B every selection of one chain per clause from a minimum chain cover
//     of the clause's true events (<= c^g runs, an exponential improvement
//     whenever the covers are small).
//
// All detectors answer the Possibly modality and return a witness cut when
// the predicate holds.
package singular

import (
	"errors"
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
)

// Common errors returned by detectors.
var (
	// ErrNotSingular indicates a predicate violating the singularity
	// condition.
	ErrNotSingular = errors.New("singular: predicate is not singular")
	// ErrNotOrdered indicates that the computation is not
	// receive-ordered (or send-ordered) with respect to the predicate's
	// meta-processes, so the polynomial special-case algorithm does not
	// apply.
	ErrNotOrdered = errors.New("singular: computation is not receive-/send-ordered for this predicate")
)

// Literal is one literal of a clause: the boolean variable hosted by Proc,
// possibly negated.
type Literal struct {
	Proc    computation.ProcID
	Negated bool
}

// String renders the literal as "x(p3)" or "!x(p3)".
func (l Literal) String() string {
	if l.Negated {
		return fmt.Sprintf("!x(p%d)", l.Proc)
	}
	return fmt.Sprintf("x(p%d)", l.Proc)
}

// Clause is a disjunction of literals on distinct processes.
type Clause []Literal

// Predicate is a singular CNF predicate: a conjunction of clauses such
// that every process hosts at most one variable and occurs in at most one
// clause.
type Predicate struct {
	Clauses []Clause
}

// Truth supplies the value of the boolean variable hosted by the event's
// process in the local state following the event.
type Truth func(computation.Event) bool

// TruthFromTables converts per-process boolean tables (indexed by local
// event index) into a Truth function. Missing rows and indices read false.
func TruthFromTables(truth [][]bool) Truth {
	return func(e computation.Event) bool {
		p := int(e.Proc)
		return p < len(truth) && e.Index < len(truth[p]) && truth[p][e.Index]
	}
}

// TruthFromVar reads the variable table named name of the computation,
// treating non-zero as true.
func TruthFromVar(c *computation.Computation, name string) Truth {
	return func(e computation.Event) bool { return c.Var(name, e.ID) != 0 }
}

// Validate checks the singularity condition against a computation: every
// process occurs in at most one literal across all clauses, and all
// processes exist.
func (p *Predicate) Validate(c *computation.Computation) error {
	seen := make(map[computation.ProcID]int)
	for i, cl := range p.Clauses {
		if len(cl) == 0 {
			return fmt.Errorf("%w: clause %d is empty", ErrNotSingular, i)
		}
		for _, l := range cl {
			if int(l.Proc) < 0 || int(l.Proc) >= c.NumProcs() {
				return fmt.Errorf("singular: clause %d references unknown process %d", i, l.Proc)
			}
			if j, dup := seen[l.Proc]; dup {
				return fmt.Errorf("%w: process %d occurs in clauses %d and %d",
					ErrNotSingular, l.Proc, j, i)
			}
			seen[l.Proc] = i
		}
	}
	return nil
}

// K returns the maximum clause size.
func (p *Predicate) K() int {
	k := 0
	for _, cl := range p.Clauses {
		if len(cl) > k {
			k = len(cl)
		}
	}
	return k
}

// trueEvents lists, for each clause, the events on the clause's processes
// whose literal evaluates true — the candidate representatives of
// Observation 1. Within each clause the events are in (process, index)
// order.
func (p *Predicate) trueEvents(c *computation.Computation, truth Truth) [][]computation.EventID {
	out := make([][]computation.EventID, len(p.Clauses))
	for i, cl := range p.Clauses {
		for _, l := range cl {
			neg := l.Negated
			for _, id := range c.ProcEvents(l.Proc) {
				if truth(c.Event(id)) != neg {
					out[i] = append(out[i], id)
				}
			}
		}
	}
	return out
}

// Holds evaluates the predicate at a consistent cut: every clause must have
// some literal true at the cut's frontier event on the literal's process.
func (p *Predicate) Holds(c *computation.Computation, truth Truth, k computation.Cut) bool {
	for _, cl := range p.Clauses {
		sat := false
		for _, l := range cl {
			e := c.EventAt(l.Proc, k[int(l.Proc)])
			if truth(e) != l.Negated {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// String renders the predicate in CNF notation.
func (p *Predicate) String() string {
	s := ""
	for i, cl := range p.Clauses {
		if i > 0 {
			s += " & "
		}
		s += "("
		for j, l := range cl {
			if j > 0 {
				s += " | "
			}
			s += l.String()
		}
		s += ")"
	}
	return s
}
