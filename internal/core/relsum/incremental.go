package relsum

import (
	"github.com/distributed-predicates/gpd/internal/maxflow"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Incremental (online) tracking of the sum range. A RangeTracker consumes
// the events of a computation one at a time, in any order consistent with
// causality (every event arrives after all of its causal predecessors),
// and maintains the exact minimum and maximum of S over every consistent
// cut of the prefix observed so far. It is the streaming counterpart of
// SumRange, in the spirit of Chauhan et al., "A Distributed Abstraction
// Algorithm for Online Predicate Detection" (arXiv:1304.4326).
//
// Memory is bounded by pruning: once a downward-closed set of events P is
// known to lie below every event that can still arrive (the caller derives
// P from the vector-clock frontier: P is contained in the causal past of
// the latest delivered event of EVERY process), those events can be folded
// into a scalar baseline and dropped. Correctness of the fold:
//
//   - cuts that do not contain P contain no event delivered after the
//     prune (any such event f has P ⊆ past(f)), so they are cuts of the
//     pre-prune prefix and were covered by the flush the prune performs;
//   - cuts that do contain P are exactly P ∪ I for an ideal I of the
//     retained window, and their sum is baseline + weight(I), which is
//     what post-prune flushes compute.
//
// The running extrema therefore latch the true prefix extrema at every
// Flush, and after the final event they equal SumRange of the complete
// computation. For unit-step variables, successive flush intervals share
// the sum of the pruned cut, so every integer in [Min, Max] is attained
// by some consistent cut (the intermediate-value property of Theorem 4
// lifted to the streaming setting) — which is what makes the tracker a
// sound and complete online detector for Possibly(S = k).

// RangeTracker maintains min/max of S over the consistent cuts of a
// growing computation prefix. Not safe for concurrent use.
type RangeTracker struct {
	baseline int64 // S at the pruned cut P
	min, max int64 // running extrema over every cut covered so far

	// Retained window, dense slots.
	slots   map[int64]int // external event id -> slot
	ids     []int64       // slot -> external event id
	weights []int64       // slot -> per-event change of S
	reqs    [][]int       // slot -> required slots (direct predecessors)

	dirty   bool       // events observed since the last Flush
	flushes int        // closure recomputations, for stats
	tr      *obs.Trace // optional work accounting (nil: free)
}

// SetTrace routes the tracker's closure work counters (augmenting paths,
// closure sizes) into the given trace. A nil trace disables accounting.
func (t *RangeTracker) SetTrace(tr *obs.Trace) { t.tr = tr }

// NewRangeTracker starts a tracker with the given baseline — the value of
// S at the initial cut (the sum of the per-process initial values).
func NewRangeTracker(baseline int64) *RangeTracker {
	return &RangeTracker{
		baseline: baseline,
		min:      baseline,
		max:      baseline,
		slots:    make(map[int64]int),
	}
}

// Observe adds one event to the window. id must be unique for the lifetime
// of the tracker; weight is the change of S caused by the event; requires
// lists the ids of the event's direct causal predecessors. Predecessors
// that were already pruned are ignored (they are below every cut the
// tracker still forms); predecessors never observed are a caller bug and
// make the closure constraints incomplete.
func (t *RangeTracker) Observe(id int64, weight int64, requires []int64) {
	if _, ok := t.slots[id]; ok {
		return // duplicate delivery: idempotent
	}
	slot := len(t.weights)
	t.slots[id] = slot
	t.ids = append(t.ids, id)
	t.weights = append(t.weights, weight)
	var rs []int
	for _, r := range requires {
		if s, ok := t.slots[r]; ok {
			rs = append(rs, s)
		}
	}
	t.reqs = append(t.reqs, rs)
	t.dirty = true
}

// Flush recomputes the extrema over the current window (two max-weight
// closure computations) and folds them into the running min/max. Cheap
// when nothing changed since the last call.
func (t *RangeTracker) Flush() (min, max int64) {
	if !t.dirty {
		return t.min, t.max
	}
	t.dirty = false
	t.flushes++
	n := len(t.weights)
	if n == 0 {
		return t.min, t.max
	}
	var requires [][2]int
	for v, rs := range t.reqs {
		for _, u := range rs {
			requires = append(requires, [2]int{v, u})
		}
	}
	best, _ := maxflow.MaxClosureTraced(t.weights, requires, t.tr)
	if hi := t.baseline + best; hi > t.max {
		t.max = hi
	}
	neg := make([]int64, n)
	for i, w := range t.weights {
		neg[i] = -w
	}
	worst, _ := maxflow.MaxClosureTraced(neg, requires, t.tr)
	if lo := t.baseline - worst; lo < t.min {
		t.min = lo
	}
	return t.min, t.max
}

// Prune folds the given events into the baseline and drops them from the
// window. The set must be downward closed within the window, and the
// caller must guarantee that every event yet to be observed causally
// succeeds all of them (the vector-clock frontier argument above). Prune
// flushes first so no cut goes uncovered. Unknown ids are ignored.
func (t *RangeTracker) Prune(ids []int64) {
	t.Flush()
	drop := make(map[int]bool, len(ids))
	for _, id := range ids {
		if s, ok := t.slots[id]; ok {
			drop[s] = true
		}
	}
	if len(drop) == 0 {
		return
	}
	remap := make([]int, len(t.weights))
	newIDs := t.ids[:0]
	newW := t.weights[:0]
	var newReqs [][]int
	for s := range t.weights {
		if drop[s] {
			t.baseline += t.weights[s]
			delete(t.slots, t.ids[s])
			remap[s] = -1
			continue
		}
		remap[s] = len(newW)
		newIDs = append(newIDs, t.ids[s])
		newW = append(newW, t.weights[s])
	}
	for s, rs := range t.reqs {
		if drop[s] {
			continue
		}
		kept := rs[:0]
		for _, u := range rs {
			if remap[u] >= 0 {
				kept = append(kept, remap[u])
			}
		}
		newReqs = append(newReqs, kept)
	}
	t.ids, t.weights, t.reqs = newIDs, newW, newReqs
	for s, id := range t.ids {
		t.slots[id] = s
	}
}

// Range returns the running extrema as of the last Flush.
func (t *RangeTracker) Range() (min, max int64) { return t.min, t.max }

// Baseline returns S at the pruned cut.
func (t *RangeTracker) Baseline() int64 { return t.baseline }

// Window returns the number of retained (unpruned) events.
func (t *RangeTracker) Window() int { return len(t.weights) }

// Flushes returns the number of closure recomputations performed.
func (t *RangeTracker) Flushes() int { return t.flushes }
