package relsum

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/simulator"
)

// bruteInFlight counts messages sent-but-not-received at a cut.
func bruteInFlight(c *computation.Computation, k computation.Cut) int64 {
	var n int64
	for _, m := range c.Messages() {
		if k.Contains(c.Event(m.Send)) && !k.Contains(c.Event(m.Receive)) {
			n++
		}
	}
	return n
}

func TestInFlightWeightMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 60; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 5, MsgFrac: 0.8})
		w := InFlightWeight(c)
		lattice.Explore(c, func(k computation.Cut) bool {
			want := bruteInFlight(c, k)
			got := WeightedAt(c, 0, w, k)
			if got != want {
				t.Fatalf("trial %d cut %v: weighted %d, brute %d", trial, k, got, want)
			}
			return true
		})
	}
}

func TestInFlightRangeMatchesLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	for trial := 0; trial < 80; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 5, MsgFrac: 1.0})
		gotMin, gotMax := InFlightRange(c)
		wantMin, wantMax := int64(1<<62), int64(-1<<62)
		lattice.Explore(c, func(k computation.Cut) bool {
			n := bruteInFlight(c, k)
			if n < wantMin {
				wantMin = n
			}
			if n > wantMax {
				wantMax = n
			}
			return true
		})
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("trial %d: InFlightRange = [%d,%d], lattice = [%d,%d]",
				trial, gotMin, gotMax, wantMin, wantMax)
		}
	}
}

func TestInFlightMinIsZero(t *testing.T) {
	// The initial cut has nothing in flight, so min is always 0.
	c := gen.Random(gen.Params{Seed: 5, Procs: 4, Events: 8, MsgFrac: 0.8})
	min, _ := InFlightRange(c)
	if min != 0 {
		t.Fatalf("min in-flight = %d, want 0", min)
	}
}

func TestPossiblyWeightedAllRelops(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	for trial := 0; trial < 60; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.8})
		w := InFlightWeight(c)
		for _, r := range []Relop{Lt, Le, Eq, Ge, Gt, Ne} {
			for k := int64(0); k <= 3; k++ {
				got, err := PossiblyWeighted(c, 0, w, r, k)
				if errors.Is(err, ErrNotUnitStep) {
					continue // an event carries several messages
				}
				if err != nil {
					t.Fatal(err)
				}
				want, _ := lattice.Possibly(c, func(cc *computation.Computation, cut computation.Cut) bool {
					return r.Eval(bruteInFlight(cc, cut), k)
				})
				if got != want {
					t.Fatalf("trial %d: PossiblyWeighted(inflight %v %d) = %v, oracle = %v",
						trial, r, k, got, want)
				}
			}
		}
	}
}

func TestPossiblyQuiescentWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	checked := 0
	for trial := 0; trial < 80; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 5, MsgFrac: 0.6})
		w := InFlightWeight(c)
		if validateUnitWeight(c, w) != nil {
			continue // multi-message events: out of scope for equality
		}
		checked++
		_, max := InFlightRange(c)
		for k := int64(0); k <= max; k++ {
			ok, cut, err := PossiblyQuiescent(c, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: occupancy %d within [0,%d] must be witnessed", trial, k, max)
			}
			if got := bruteInFlight(c, cut); got != k {
				t.Fatalf("trial %d: witness has %d in flight, want %d", trial, got, k)
			}
			if !c.CutConsistent(cut) {
				t.Fatalf("trial %d: witness cut inconsistent", trial)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d/80 computations were unit-weight; generator too message-dense", checked)
	}
}

func TestWeightedSumEquivalentToVarSum(t *testing.T) {
	// The per-variable SumRange must equal the weighted formulation with
	// delta weights — the refactoring identity.
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 50; trial++ {
		c := unitStepComputation(rng, 3, 4, 6)
		var base int64
		for p := 0; p < c.NumProcs(); p++ {
			base += c.Var(varName, c.Initial(computation.ProcID(p)).ID)
		}
		w := func(e computation.Event) int64 { return delta(c, varName, e.ID) }
		wmin, wmax := WeightedRange(c, base, w)
		smin, smax := SumRange(c, varName)
		if wmin != smin || wmax != smax {
			t.Fatalf("trial %d: weighted [%d,%d] != var-sum [%d,%d]", trial, wmin, wmax, smin, smax)
		}
	}
}

func TestTokenRingChannelBound(t *testing.T) {
	// In a token ring with T tokens, at most T messages are ever in
	// flight simultaneously.
	for seed := int64(0); seed < 8; seed++ {
		sim := simulator.New(seed, simulator.NewTokenRingProcs(5, 2, 1, 3))
		c, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		min, max := InFlightRange(c)
		if min != 0 {
			t.Fatalf("seed %d: min in-flight = %d", seed, min)
		}
		if max > 2 {
			t.Fatalf("seed %d: %d tokens in flight simultaneously, ring has 2", seed, max)
		}
	}
}

func TestDefinitelyWeightedMatchesLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(479))
	relops := []Relop{Lt, Le, Eq, Ge, Gt, Ne}
	for trial := 0; trial < 60; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.6})
		w := InFlightWeight(c)
		unit := validateUnitWeight(c, w) == nil
		for _, r := range relops {
			for k := int64(0); k <= 2; k++ {
				got, err := DefinitelyWeighted(c, 0, w, r, k)
				if err != nil {
					if r == Eq && !unit {
						continue
					}
					t.Fatal(err)
				}
				want := lattice.Definitely(c, func(cc *computation.Computation, cut computation.Cut) bool {
					return r.Eval(bruteInFlight(cc, cut), k)
				})
				if got != want {
					t.Fatalf("trial %d: DefinitelyWeighted(inflight %v %d) = %v, oracle = %v",
						trial, r, k, got, want)
				}
			}
		}
	}
}

func TestDefinitelyWeightedUnknownRelop(t *testing.T) {
	c := gen.Random(gen.Params{Seed: 1, Procs: 2, Events: 2, MsgFrac: 0})
	if _, err := DefinitelyWeighted(c, 0, InFlightWeight(c), Relop(42), 0); err == nil {
		t.Fatal("unknown relop must error")
	}
}
