package relsum

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/gen"
)

// feed streams c's non-initial events into a tracker in a random
// linearization, pruning every pruneEvery deliveries using the
// vector-clock frontier rule, and returns the tracker.
func feed(t *testing.T, c *computation.Computation, name string, pruneEvery int, rng *rand.Rand) *RangeTracker {
	t.Helper()
	var baseline int64
	c.Events(func(e computation.Event) bool {
		if e.IsInitial() {
			baseline += c.Var(name, e.ID)
		}
		return true
	})
	tr := NewRangeTracker(baseline)

	// Random linearization of the topological order.
	order := randomLinearization(c, rng)
	np := c.NumProcs()
	last := make([][]int32, np) // latest delivered clock per process
	delivered := 0
	pruned := make(map[computation.EventID]bool)
	for _, id := range order {
		e := c.Event(id)
		var reqs []int64
		for _, p := range c.DirectPreds(id) {
			if !c.Event(p).IsInitial() {
				reqs = append(reqs, int64(p))
			}
		}
		tr.Observe(int64(id), delta(c, name, id), reqs)
		last[int(e.Proc)] = c.Clock(id)
		delivered++
		if pruneEvery > 0 && delivered%pruneEvery == 0 {
			tr.Flush()
			pruneFrontier(c, tr, last, pruned)
		}
	}
	tr.Flush()
	return tr
}

// pruneFrontier prunes every event below the component-wise minimum of
// the latest delivered clocks (the set of events in the causal past of
// every process's latest event).
func pruneFrontier(c *computation.Computation, tr *RangeTracker, last [][]int32, pruned map[computation.EventID]bool) {
	np := c.NumProcs()
	min := make([]int32, np)
	for q := range min {
		min[q] = int32(1 << 30)
	}
	for _, clk := range last {
		if clk == nil {
			return // some process has not reported: nothing is stable
		}
		for q, v := range clk {
			if v < min[q] {
				min[q] = v
			}
		}
	}
	var ids []int64
	c.Events(func(e computation.Event) bool {
		if !e.IsInitial() && !pruned[e.ID] && int32(e.Index)+1 <= min[int(e.Proc)] {
			ids = append(ids, int64(e.ID))
			pruned[e.ID] = true
		}
		return true
	})
	tr.Prune(ids)
}

// randomLinearization returns a random topological order of the events.
func randomLinearization(c *computation.Computation, rng *rand.Rand) []computation.EventID {
	n := c.NumEvents()
	indeg := make([]int, n)
	var ready []computation.EventID
	c.Events(func(e computation.Event) bool {
		indeg[int(e.ID)] = len(c.DirectPreds(e.ID))
		if indeg[int(e.ID)] == 0 {
			ready = append(ready, e.ID)
		}
		return true
	})
	var out []computation.EventID
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		id := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		if !c.Event(id).IsInitial() {
			out = append(out, id)
		}
		for _, s := range c.DirectSuccs(id) {
			indeg[int(s)]--
			if indeg[int(s)] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return out
}

// TestRangeTrackerAgreesWithSumRange streams random unit-step
// computations and checks that the online extrema match the offline
// closure computation, with and without pruning.
func TestRangeTrackerAgreesWithSumRange(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		c := gen.Random(gen.Params{Seed: seed, Procs: 2 + int(seed%4), Events: 8, MsgFrac: 0.4})
		gen.UnitStepVar(seed+1, c, "x")
		wantMin, wantMax := SumRange(c, "x")
		for _, pruneEvery := range []int{0, 1, 5} {
			tr := feed(t, c, "x", pruneEvery, rng)
			gotMin, gotMax := tr.Range()
			if gotMin != wantMin || gotMax != wantMax {
				t.Fatalf("seed %d pruneEvery %d: tracker range [%d,%d], SumRange [%d,%d]",
					seed, pruneEvery, gotMin, gotMax, wantMin, wantMax)
			}
		}
	}
}

// TestRangeTrackerArbitrarySteps checks the extrema (not equality
// detection) also agree for non-unit steps, where SumRange is still exact.
func TestRangeTrackerArbitrarySteps(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := gen.Random(gen.Params{Seed: seed, Procs: 3, Events: 6, MsgFrac: 0.5})
		gen.ArbitraryStepVar(seed+7, c, "y", 5)
		wantMin, wantMax := SumRange(c, "y")
		tr := feed(t, c, "y", 3, rng)
		gotMin, gotMax := tr.Range()
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("seed %d: tracker range [%d,%d], SumRange [%d,%d]",
				seed, gotMin, gotMax, wantMin, wantMax)
		}
	}
}

// TestRangeTrackerPruneBoundsWindow checks that frontier pruning actually
// shrinks the window on a well-connected computation.
func TestRangeTrackerPruneBoundsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := gen.Random(gen.Params{Seed: 11, Procs: 4, Events: 40, MsgFrac: 2.0})
	gen.UnitStepVar(3, c, "x")
	tr := feed(t, c, "x", 8, rng)
	if tr.Window() >= c.NumEvents()-c.NumProcs() {
		t.Fatalf("pruning never shrank the window: %d of %d events retained",
			tr.Window(), c.NumEvents()-c.NumProcs())
	}
	if tr.Flushes() == 0 {
		t.Fatal("no flushes recorded")
	}
}
