// Package relsum implements detection of relational sum predicates
// "x1 + ... + xn relop k", where each xi is an integer variable on process
// i, following Section 4 of Mittal & Garg (ICDCS 2001).
//
// The headline result: when every event changes its process's variable by
// at most one (unit-step computations), Possibly(S = k) is decidable in
// polynomial time — by Theorem 7(1) it holds iff Possibly(S <= k) and
// Possibly(S >= k) both hold, i.e. iff k lies between the minimum and the
// maximum of S over all consistent cuts. Those extrema are computed exactly
// by a max-weight closure (min-cut) construction over the event DAG, since
// consistent cuts are precisely the order ideals (Chase & Garg's technique
// for relational predicates). With arbitrary per-event changes the problem
// is NP-complete (Theorem 3; see core/reduction).
//
// Definitely(S = k) is decided through the Theorem 7(2) decomposition
// Definitely(S <= k) and Definitely(S >= k); the paper defers those two
// primitives to earlier work, and this package decides them by reachability
// inside the cut lattice restricted to the complementary region (worst-case
// exponential, unlike the Possibly side).
package relsum

import (
	"errors"
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// ErrNotUnitStep indicates a variable that changes by more than one at
// some event, outside the scope of the polynomial equality detectors.
var ErrNotUnitStep = errors.New("relsum: variable changes by more than one at an event")

// Relop is a relational operator.
type Relop int

const (
	// Lt is <.
	Lt Relop = iota + 1
	// Le is <=.
	Le
	// Eq is =.
	Eq
	// Ge is >=.
	Ge
	// Gt is >.
	Gt
	// Ne is !=.
	Ne
)

// String renders the operator.
func (r Relop) String() string {
	switch r {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "=="
	case Ge:
		return ">="
	case Gt:
		return ">"
	case Ne:
		return "!="
	default:
		return fmt.Sprintf("relop(%d)", int(r))
	}
}

// ParseRelop parses "<", "<=", "==", "=", ">=", ">", "!=".
func ParseRelop(s string) (Relop, error) {
	switch s {
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case "=", "==":
		return Eq, nil
	case ">=":
		return Ge, nil
	case ">":
		return Gt, nil
	case "!=":
		return Ne, nil
	default:
		return 0, fmt.Errorf("relsum: unknown relational operator %q", s)
	}
}

// Eval applies the operator.
func (r Relop) Eval(s, k int64) bool {
	switch r {
	case Lt:
		return s < k
	case Le:
		return s <= k
	case Eq:
		return s == k
	case Ge:
		return s >= k
	case Gt:
		return s > k
	case Ne:
		return s != k
	default:
		return false
	}
}

// delta returns the change of the named variable caused by the event
// (value after the event minus value after its local predecessor).
func delta(c *computation.Computation, name string, id computation.EventID) int64 {
	prev := c.Prev(id)
	if prev == computation.NoEvent {
		return 0 // initial events carry the baseline, not a change
	}
	return c.Var(name, id) - c.Var(name, prev)
}

// MaxStep returns the largest absolute per-event change of the named
// variable across the computation.
func MaxStep(c *computation.Computation, name string) int64 {
	var max int64
	c.Events(func(e computation.Event) bool {
		d := delta(c, name, e.ID)
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
		return true
	})
	return max
}

// ValidateUnitStep returns ErrNotUnitStep (wrapped, identifying the event)
// unless every event changes the variable by at most one.
func ValidateUnitStep(c *computation.Computation, name string) error {
	var bad computation.Event
	found := false
	c.Events(func(e computation.Event) bool {
		d := delta(c, name, e.ID)
		if d > 1 || d < -1 {
			bad, found = e, true
			return false
		}
		return true
	})
	if found {
		return fmt.Errorf("%w: event %v changes %q by %d",
			ErrNotUnitStep, bad, name, delta(c, name, bad.ID))
	}
	return nil
}

// SumRange returns the minimum and maximum of S = sum of the named
// variable over all consistent cuts, in polynomial time via two max-weight
// closure computations on the event DAG. It does not require unit steps.
func SumRange(c *computation.Computation, name string) (min, max int64) {
	return SumRangeTraced(c, name, nil)
}

// SumRangeTraced is SumRange with closure work counters (augmenting paths,
// closure sizes) accumulated into the trace.
func SumRangeTraced(c *computation.Computation, name string, tr *obs.Trace) (min, max int64) {
	return SumRangePar(c, name, 1, tr)
}

// sumRangeWitness is SumRange but also returns cuts achieving the extremes.
func sumRangeWitness(c *computation.Computation, name string, tr *obs.Trace) (min, max int64, argmin, argmax computation.Cut) {
	return sumRangeWitnessPar(c, name, 1, tr)
}

// maskToCut converts a closure membership mask over event ids into the
// frontier cut containing exactly the chosen events plus all initial
// events.
func maskToCut(c *computation.Computation, mask []bool) computation.Cut {
	k := c.InitialCut()
	c.Events(func(e computation.Event) bool {
		if !e.IsInitial() && mask[int(e.ID)] && e.Index > k[int(e.Proc)] {
			k[int(e.Proc)] = e.Index
		}
		return true
	})
	return k
}

// Sum evaluates S at a cut.
func Sum(c *computation.Computation, name string, k computation.Cut) int64 {
	return c.SumVar(name, k)
}

// region returns the lattice predicate "S relop k".
func region(name string, r Relop, k int64) lattice.Predicate {
	return func(c *computation.Computation, cut computation.Cut) bool {
		return r.Eval(c.SumVar(name, cut), k)
	}
}
