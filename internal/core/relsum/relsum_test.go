package relsum

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

const varName = "x"

// unitStepComputation builds a random computation whose variable x changes
// by -1, 0 or +1 at every event.
func unitStepComputation(rng *rand.Rand, np, me, msgs int) *computation.Computation {
	c := computation.New()
	for p := 0; p < np; p++ {
		c.AddProcess()
		v := int64(rng.Intn(3) - 1)
		c.SetVar(varName, c.Initial(computation.ProcID(p)).ID, v)
		n := 1 + rng.Intn(me)
		for i := 0; i < n; i++ {
			id := c.AddInternal(computation.ProcID(p))
			v += int64(rng.Intn(3) - 1)
			c.SetVar(varName, id, v)
		}
	}
	for tries := 0; tries < msgs; tries++ {
		p := computation.ProcID(rng.Intn(np))
		q := computation.ProcID(rng.Intn(np))
		if p == q {
			continue
		}
		i := 1 + rng.Intn(c.Len(p)-1)
		j := 1 + rng.Intn(c.Len(q)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
		}
	}
	return c.MustSeal()
}

func TestSumRangeMatchesLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	for trial := 0; trial < 150; trial++ {
		c := unitStepComputation(rng, 2+rng.Intn(3), 4, 10)
		wantMin, wantMax := lattice.SumRange(c, varName)
		gotMin, gotMax := SumRange(c, varName)
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("trial %d: SumRange = [%d,%d], lattice = [%d,%d]",
				trial, gotMin, gotMax, wantMin, wantMax)
		}
	}
}

func TestSumRangeArbitrarySteps(t *testing.T) {
	// The closure computation must be exact regardless of step sizes.
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 100; trial++ {
		c := computation.New()
		np := 2 + rng.Intn(2)
		for p := 0; p < np; p++ {
			c.AddProcess()
			v := int64(rng.Intn(21) - 10)
			c.SetVar(varName, c.Initial(computation.ProcID(p)).ID, v)
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				id := c.AddInternal(computation.ProcID(p))
				v += int64(rng.Intn(11) - 5)
				c.SetVar(varName, id, v)
			}
		}
		for tries := 0; tries < 8; tries++ {
			p := computation.ProcID(rng.Intn(np))
			q := computation.ProcID(rng.Intn(np))
			if p == q {
				continue
			}
			i := 1 + rng.Intn(c.Len(p)-1)
			j := 1 + rng.Intn(c.Len(q)-1)
			if i < j {
				_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
			}
		}
		c.MustSeal()
		wantMin, wantMax := lattice.SumRange(c, varName)
		gotMin, gotMax := SumRange(c, varName)
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("trial %d: SumRange = [%d,%d], lattice = [%d,%d]",
				trial, gotMin, gotMax, wantMin, wantMax)
		}
	}
}

func TestPossiblyMatchesLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	relops := []Relop{Lt, Le, Eq, Ge, Gt, Ne}
	for trial := 0; trial < 120; trial++ {
		c := unitStepComputation(rng, 2+rng.Intn(3), 4, 8)
		k := int64(rng.Intn(9) - 4)
		for _, r := range relops {
			got, err := Possibly(c, varName, r, k)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, r, err)
			}
			want, _ := lattice.Possibly(c, region(varName, r, k))
			if got != want {
				t.Fatalf("trial %d: Possibly(S %v %d) = %v, oracle = %v", trial, r, k, got, want)
			}
		}
	}
}

func TestPossiblyEqWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for trial := 0; trial < 120; trial++ {
		c := unitStepComputation(rng, 2+rng.Intn(3), 4, 8)
		k := int64(rng.Intn(9) - 4)
		ok, cut, err := PossiblyEqWitness(c, varName, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, _ := lattice.Possibly(c, region(varName, Eq, k))
		if ok != want {
			t.Fatalf("trial %d: witness search = %v, oracle = %v", trial, ok, want)
		}
		if ok {
			if !c.CutConsistent(cut) {
				t.Fatalf("trial %d: witness cut %v inconsistent", trial, cut)
			}
			if got := c.SumVar(varName, cut); got != k {
				t.Fatalf("trial %d: witness sum = %d, want %d", trial, got, k)
			}
		}
	}
}

func TestDefinitelyMatchesLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	relops := []Relop{Lt, Le, Eq, Ge, Gt, Ne}
	for trial := 0; trial < 80; trial++ {
		c := unitStepComputation(rng, 2+rng.Intn(2), 4, 6)
		k := int64(rng.Intn(7) - 3)
		for _, r := range relops {
			got, err := Definitely(c, varName, r, k)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, r, err)
			}
			want := lattice.Definitely(c, region(varName, r, k))
			if got != want {
				t.Fatalf("trial %d: Definitely(S %v %d) = %v, oracle = %v", trial, r, k, got, want)
			}
		}
	}
}

// TestTheorem4IntermediateValue validates the paper's Theorem 4 as a
// property: along any lattice path of a unit-step computation, S takes
// every value between its endpoint values.
func TestTheorem4IntermediateValue(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	for trial := 0; trial < 60; trial++ {
		c := unitStepComputation(rng, 3, 4, 8)
		// Random path from bottom to top.
		cur := c.InitialCut()
		seen := map[int64]bool{c.SumVar(varName, cur): true}
		lo := c.SumVar(varName, cur)
		hi := lo
		for !cur.Equal(c.FinalCut()) {
			en := c.Enabled(cur)
			id := en[rng.Intn(len(en))]
			cur = c.Execute(cur, c.Event(id).Proc)
			s := c.SumVar(varName, cur)
			seen[s] = true
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		for v := lo; v <= hi; v++ {
			if !seen[v] {
				t.Fatalf("trial %d: path range [%d,%d] skips %d", trial, lo, hi, v)
			}
		}
	}
}

func TestArbitraryStepEqRejected(t *testing.T) {
	c := computation.New()
	p := c.AddProcess()
	id := c.AddInternal(p)
	c.SetVar(varName, id, 5) // jump of 5
	c.MustSeal()
	if _, err := Possibly(c, varName, Eq, 3); !errors.Is(err, ErrNotUnitStep) {
		t.Errorf("Possibly Eq: err = %v, want ErrNotUnitStep", err)
	}
	if _, err := Definitely(c, varName, Eq, 3); !errors.Is(err, ErrNotUnitStep) {
		t.Errorf("Definitely Eq: err = %v, want ErrNotUnitStep", err)
	}
	if _, _, err := PossiblyEqWitness(c, varName, 3); !errors.Is(err, ErrNotUnitStep) {
		t.Errorf("PossiblyEqWitness: err = %v, want ErrNotUnitStep", err)
	}
	// Order operators remain exact with arbitrary steps.
	ok, err := Possibly(c, varName, Ge, 5)
	if err != nil || !ok {
		t.Errorf("Possibly Ge = %v, %v; want true", ok, err)
	}
}

func TestMaxStepAndValidate(t *testing.T) {
	c := computation.New()
	p := c.AddProcess()
	a := c.AddInternal(p)
	b := c.AddInternal(p)
	c.SetVar(varName, a, 1)
	c.SetVar(varName, b, -1) // step of -2
	c.MustSeal()
	if got := MaxStep(c, varName); got != 2 {
		t.Errorf("MaxStep = %d, want 2", got)
	}
	if err := ValidateUnitStep(c, varName); !errors.Is(err, ErrNotUnitStep) {
		t.Errorf("ValidateUnitStep err = %v", err)
	}
	// A unit-step variable passes.
	if err := ValidateUnitStep(c, "missing"); err != nil {
		t.Errorf("all-zero variable must validate: %v", err)
	}
}

func TestRelopParseAndString(t *testing.T) {
	for _, s := range []string{"<", "<=", "==", ">=", ">", "!="} {
		r, err := ParseRelop(s)
		if err != nil {
			t.Fatalf("ParseRelop(%q): %v", s, err)
		}
		if got := r.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if r, err := ParseRelop("="); err != nil || r != Eq {
		t.Errorf("ParseRelop(=) = %v, %v", r, err)
	}
	if _, err := ParseRelop("<>"); err == nil {
		t.Error("ParseRelop(<>) must fail")
	}
	if got := Relop(42).String(); got != "relop(42)" {
		t.Errorf("unknown relop String = %q", got)
	}
}

func TestRelopEval(t *testing.T) {
	cases := []struct {
		r    Relop
		s, k int64
		want bool
	}{
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Eq, 2, 2, true}, {Eq, 1, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
		{Ne, 1, 2, true}, {Ne, 2, 2, false},
		{Relop(42), 1, 1, false},
	}
	for _, tc := range cases {
		if got := tc.r.Eval(tc.s, tc.k); got != tc.want {
			t.Errorf("Eval(%d %v %d) = %v, want %v", tc.s, tc.r, tc.k, got, tc.want)
		}
	}
}

func TestTokenConservationExample(t *testing.T) {
	// Three processes passing two tokens: x counts tokens held. Verify
	// Possibly(S = 2) at every cut (conservation) and the derived facts.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	p2 := c.AddProcess()
	c.SetVar(varName, c.Initial(p0).ID, 2)
	// p0 sends one token to p1; p1 forwards it to p2.
	s1 := c.AddInternal(p0)
	c.SetVar(varName, s1, 1)
	r1 := c.AddInternal(p1)
	c.SetVar(varName, r1, 1)
	s2 := c.AddInternal(p1)
	c.SetVar(varName, s2, 0)
	r2 := c.AddInternal(p2)
	c.SetVar(varName, r2, 1)
	if err := c.AddMessage(s1, r1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMessage(s2, r2); err != nil {
		t.Fatal(err)
	}
	c.MustSeal()
	min, max := SumRange(c, varName)
	// While a token is in flight the observed sum drops to 1, but the
	// two transfers cannot overlap (p1 forwards only after receiving),
	// so the sum never reaches 0 and never exceeds 2.
	if max != 2 {
		t.Errorf("max = %d, want 2", max)
	}
	if min != 1 {
		t.Errorf("min = %d, want 1 (one token in flight at a time)", min)
	}
	ok, err := Possibly(c, varName, Eq, 1)
	if err != nil || !ok {
		t.Errorf("Possibly(S=1) = %v, %v", ok, err)
	}
	def, err := Definitely(c, varName, Le, 1)
	if err != nil || !def {
		t.Errorf("Definitely(S<=1) = %v, %v; every run observes a token in flight", def, err)
	}
}
