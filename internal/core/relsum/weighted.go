package relsum

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Weight assigns to each non-initial event the change it causes to some
// global quantity; the quantity at a consistent cut equals base plus the
// sum of weights of the cut's non-initial events. Per-process variable
// sums are the special case weight(e) = x(e) - x(prev(e)); channel
// occupancy is weight(e) = (#messages sent at e) - (#messages received at
// e). Any such "ideal sum" admits the same polynomial min/max machinery
// via max-weight closures.
type Weight func(computation.Event) int64

// WeightedRange returns the minimum and maximum over all consistent cuts
// of base + sum of event weights, in polynomial time (two max-weight
// closure computations).
func WeightedRange(c *computation.Computation, base int64, w Weight) (min, max int64) {
	return WeightedRangeTraced(c, base, w, nil)
}

// WeightedRangeTraced is WeightedRange with closure work counters
// accumulated into the trace.
func WeightedRangeTraced(c *computation.Computation, base int64, w Weight, tr *obs.Trace) (min, max int64) {
	min, max, _, _ = weightedRangeWitness(c, base, w, tr)
	return min, max
}

func weightedRangeWitness(c *computation.Computation, base int64, w Weight, tr *obs.Trace) (min, max int64, argmin, argmax computation.Cut) {
	return weightedRangeWitnessPar(c, base, w, 1, tr)
}

// WeightedAt evaluates the quantity at a cut directly.
func WeightedAt(c *computation.Computation, base int64, w Weight, k computation.Cut) int64 {
	s := base
	for p := 0; p < c.NumProcs(); p++ {
		for i := 1; i <= k[p]; i++ {
			s += w(c.EventAt(computation.ProcID(p), i))
		}
	}
	return s
}

// PossiblyWeighted decides Possibly(quantity relop k) for an ideal-sum
// quantity. Order operators are exact with arbitrary weights; equality
// and its witness require unit weights (|w(e)| <= 1), mirroring the
// paper's Theorem 7/Theorem 3 split.
func PossiblyWeighted(c *computation.Computation, base int64, w Weight, r Relop, k int64) (bool, error) {
	return PossiblyWeightedTraced(c, base, w, r, k, nil)
}

// PossiblyWeightedTraced is PossiblyWeighted with closure work counters
// accumulated into the trace.
func PossiblyWeightedTraced(c *computation.Computation, base int64, w Weight, r Relop, k int64, tr *obs.Trace) (bool, error) {
	return PossiblyWeightedPar(c, base, w, r, k, 1, tr)
}

func validateUnitWeight(c *computation.Computation, w Weight) error {
	var bad computation.Event
	found := false
	c.Events(func(e computation.Event) bool {
		if e.IsInitial() {
			return true
		}
		if d := w(e); d > 1 || d < -1 {
			bad, found = e, true
			return false
		}
		return true
	})
	if found {
		return fmt.Errorf("%w: event %v has weight outside [-1,1]", ErrNotUnitStep, bad)
	}
	return nil
}

// InFlightWeight returns the weight function for the channel-occupancy
// quantity: the number of messages sent but not yet received. Each send
// at an event contributes +1 per message, each delivery -1. The initial
// occupancy of a computation is zero.
func InFlightWeight(c *computation.Computation) Weight {
	// Precompute per-event send/receive counts (an event may carry
	// several messages in either direction).
	delta := make([]int64, c.NumEvents())
	for _, m := range c.Messages() {
		delta[int(m.Send)]++
		delta[int(m.Receive)]--
	}
	return func(e computation.Event) int64 { return delta[int(e.ID)] }
}

// InFlightRange returns the minimum and maximum number of in-flight
// messages over all consistent cuts — e.g. max gives the channel-buffer
// bound the system actually needs, and min == 0 at reachable quiescent
// states.
func InFlightRange(c *computation.Computation) (min, max int64) {
	return InFlightRangeTraced(c, nil)
}

// InFlightRangeTraced is InFlightRange with closure work counters
// accumulated into the trace.
func InFlightRangeTraced(c *computation.Computation, tr *obs.Trace) (min, max int64) {
	return WeightedRangeTraced(c, 0, InFlightWeight(c), tr)
}

// PossiblyQuiescent reports whether some consistent cut other than the
// trivially quiescent initial cut has no messages in flight — with the
// witness cut. (The initial and final cuts of a complete computation are
// always quiescent; the interesting question is usually about bounds, see
// InFlightRange, but a witness for equality demonstrates Theorem 4's
// constructive side for channel quantities. Requires every event to send
// or receive at most one message in total, the unit-weight condition.)
func PossiblyQuiescent(c *computation.Computation, k int64) (bool, computation.Cut, error) {
	return PossiblyQuiescentTraced(c, k, nil)
}

// PossiblyQuiescentTraced is PossiblyQuiescent with closure work counters
// accumulated into the trace.
func PossiblyQuiescentTraced(c *computation.Computation, k int64, tr *obs.Trace) (bool, computation.Cut, error) {
	return PossiblyQuiescentPar(c, k, 1, tr)
}

// scanWeighted walks initial -> via -> final looking for quantity == k.
func scanWeighted(c *computation.Computation, w Weight, k int64, via computation.Cut) (computation.Cut, bool) {
	cur := c.InitialCut()
	val := int64(0)
	if val == k {
		return cur, true
	}
	for _, target := range []computation.Cut{via, c.FinalCut()} {
		for !cur.Equal(target) {
			advanced := false
			for _, id := range c.Enabled(cur) {
				e := c.Event(id)
				if e.Index <= target[int(e.Proc)] {
					cur = c.Execute(cur, e.Proc)
					val += w(e)
					advanced = true
					break
				}
			}
			if !advanced {
				return nil, false
			}
			if val == k {
				return cur, true
			}
		}
	}
	return nil, false
}
