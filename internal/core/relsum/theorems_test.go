package relsum

// This file validates the paper's Section 4 statements verbatim, as
// properties over randomized unit-step computations, independently of the
// detector implementations (which the main test file already cross-checks
// against oracles).

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

// possiblyOracle checks Possibly(S relop k) exhaustively.
func possiblyOracle(c *computation.Computation, r Relop, k int64) bool {
	ok, _ := lattice.Possibly(c, region(varName, r, k))
	return ok
}

// definitelyOracle checks Definitely(S relop k) exhaustively.
func definitelyOracle(c *computation.Computation, r Relop, k int64) bool {
	return lattice.Definitely(c, region(varName, r, k))
}

// TestLemma5 validates: Possibly(S <= k) and Possibly(S >= k) implies
// Possibly(S = k) on unit-step computations (and, with Theorem 7(1), the
// converse).
func TestLemma5(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	for trial := 0; trial < 120; trial++ {
		c := unitStepComputation(rng, 2+rng.Intn(2), 4, 6)
		for k := int64(-4); k <= 4; k++ {
			le := possiblyOracle(c, Le, k)
			ge := possiblyOracle(c, Ge, k)
			eq := possiblyOracle(c, Eq, k)
			if le && ge && !eq {
				t.Fatalf("trial %d k=%d: Lemma 5 violated (le && ge but !eq)", trial, k)
			}
			// Theorem 7(1): the converse direction.
			if eq && (!le || !ge) {
				t.Fatalf("trial %d k=%d: eq implies le && ge", trial, k)
			}
		}
	}
}

// TestLemma6 validates: Definitely(S <= k) and Definitely(S >= k) implies
// Definitely(S = k) on unit-step computations (Theorem 7(2) adds the
// converse).
func TestLemma6(t *testing.T) {
	rng := rand.New(rand.NewSource(257))
	for trial := 0; trial < 80; trial++ {
		c := unitStepComputation(rng, 2+rng.Intn(2), 4, 5)
		for k := int64(-3); k <= 3; k++ {
			le := definitelyOracle(c, Le, k)
			ge := definitelyOracle(c, Ge, k)
			eq := definitelyOracle(c, Eq, k)
			if le && ge && !eq {
				t.Fatalf("trial %d k=%d: Lemma 6 violated", trial, k)
			}
			if eq && (!le || !ge) {
				t.Fatalf("trial %d k=%d: Theorem 7(2) converse violated", trial, k)
			}
		}
	}
}

// TestLemma5FailsWithoutUnitSteps exhibits the counterexample structure:
// with jumps, Possibly(S<=k) and Possibly(S>=k) can both hold while
// Possibly(S=k) fails — the gap Theorem 3's NP-completeness lives in.
func TestLemma5FailsWithoutUnitSteps(t *testing.T) {
	// One process jumping 0 -> 2: k = 1 is skipped.
	c := computation.New()
	p := c.AddProcess()
	e := c.AddInternal(p)
	c.SetVar(varName, e, 2)
	c.MustSeal()
	if !possiblyOracle(c, Le, 1) || !possiblyOracle(c, Ge, 1) {
		t.Fatal("setup broken: both sides should hold")
	}
	if possiblyOracle(c, Eq, 1) {
		t.Fatal("S never equals 1 in this computation")
	}
}

// TestTheorem7AgainstDetectors re-states Theorem 7 using the library's
// polynomial detectors rather than the oracle, over both modalities.
func TestTheorem7AgainstDetectors(t *testing.T) {
	rng := rand.New(rand.NewSource(263))
	for trial := 0; trial < 100; trial++ {
		c := unitStepComputation(rng, 2+rng.Intn(2), 4, 6)
		k := int64(rng.Intn(7) - 3)
		eq, err := Possibly(c, varName, Eq, k)
		if err != nil {
			t.Fatal(err)
		}
		le, _ := Possibly(c, varName, Le, k)
		ge, _ := Possibly(c, varName, Ge, k)
		if eq != (le && ge) {
			t.Fatalf("trial %d: Theorem 7(1) broken by detectors: eq=%v le=%v ge=%v", trial, eq, le, ge)
		}
		deq, err := Definitely(c, varName, Eq, k)
		if err != nil {
			t.Fatal(err)
		}
		dle, _ := Definitely(c, varName, Le, k)
		dge, _ := Definitely(c, varName, Ge, k)
		if deq != (dle && dge) {
			t.Fatalf("trial %d: Theorem 7(2) broken by detectors: eq=%v le=%v ge=%v", trial, deq, dle, dge)
		}
	}
}

// TestSumRangeIsTight: both extremes returned by SumRange are attained by
// actual consistent cuts (the closure masks are witnesses).
func TestSumRangeIsTight(t *testing.T) {
	rng := rand.New(rand.NewSource(269))
	for trial := 0; trial < 80; trial++ {
		c := unitStepComputation(rng, 2+rng.Intn(3), 5, 8)
		min, max, argmin, argmax := sumRangeWitness(c, varName, nil)
		if !c.CutConsistent(argmin) || !c.CutConsistent(argmax) {
			t.Fatalf("trial %d: extreme cuts not consistent", trial)
		}
		if got := c.SumVar(varName, argmin); got != min {
			t.Fatalf("trial %d: argmin sum %d != min %d", trial, got, min)
		}
		if got := c.SumVar(varName, argmax); got != max {
			t.Fatalf("trial %d: argmax sum %d != max %d", trial, got, max)
		}
	}
}

// TestDefinitelyMonotoneInK: Definitely(S <= k) is monotone in k, and
// Definitely(S >= k) is antitone — a structural sanity property.
func TestDefinitelyMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 40; trial++ {
		c := unitStepComputation(rng, 2, 5, 5)
		prevLe, prevGe := false, true
		for k := int64(-5); k <= 5; k++ {
			le, _ := Definitely(c, varName, Le, k)
			ge, _ := Definitely(c, varName, Ge, k)
			if prevLe && !le {
				t.Fatalf("trial %d: Definitely(S<=k) lost at k=%d", trial, k)
			}
			if !prevGe && ge {
				t.Fatalf("trial %d: Definitely(S>=k) gained at k=%d", trial, k)
			}
			prevLe, prevGe = le, ge
		}
	}
}
