package relsum

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/maxflow"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// This file holds the parallel routes of the sum detectors. Every range
// computation bottoms out in the same pair of max-weight closures
// (minimum and maximum of the quantity), built by closureInputs and
// solved by maxflow.MaxClosurePairTraced — which splits the worker
// budget across the two independent flows and parallelizes the BFS
// phases inside each. The Definitely side threads its workers into the
// lattice region-reachability sweep instead. workers <= 1 everywhere
// reproduces the exact sequential call sequence.

// closureInputs builds the closure instance shared by every ranged
// detector: per-event weights (zero for initial events, which are part
// of every cut) and the requirement edges "event requires its
// non-initial direct predecessors".
func closureInputs(c *computation.Computation, w Weight) (weights []int64, requires [][2]int) {
	weights = make([]int64, c.NumEvents())
	c.Events(func(e computation.Event) bool {
		if e.IsInitial() {
			return true
		}
		weights[int(e.ID)] = w(e)
		for _, p := range c.DirectPreds(e.ID) {
			if !c.Event(p).IsInitial() {
				requires = append(requires, [2]int{int(e.ID), int(p)})
			}
		}
		return true
	})
	return weights, requires
}

// deltaWeight is the per-event change of a named per-process variable —
// the weight function that makes variable sums an ideal-sum quantity.
func deltaWeight(c *computation.Computation, name string) Weight {
	return func(e computation.Event) int64 { return delta(c, name, e.ID) }
}

// baselineOf sums the named variable over the initial events (its value
// at the initial cut).
func baselineOf(c *computation.Computation, name string) int64 {
	var base int64
	c.Events(func(e computation.Event) bool {
		if e.IsInitial() {
			base += c.Var(name, e.ID)
		}
		return true
	})
	return base
}

// weightedRangeWitnessPar computes the exact range of base + ideal sum
// together with cuts achieving the extremes, solving the two closures
// on a bounded worker pool.
func weightedRangeWitnessPar(c *computation.Computation, base int64, w Weight, workers int, tr *obs.Trace) (min, max int64, argmin, argmax computation.Cut) {
	weights, requires := closureInputs(c, w)
	best, maskMax, worst, maskMin := maxflow.MaxClosurePairTraced(weights, requires, workers, tr)
	max = base + best
	argmax = maskToCut(c, maskMax)
	min = base - worst
	argmin = maskToCut(c, maskMin)
	return min, max, argmin, argmax
}

// sumRangeWitnessPar is weightedRangeWitnessPar specialised to a named
// per-process variable sum.
func sumRangeWitnessPar(c *computation.Computation, name string, workers int, tr *obs.Trace) (min, max int64, argmin, argmax computation.Cut) {
	return weightedRangeWitnessPar(c, baselineOf(c, name), deltaWeight(c, name), workers, tr)
}

// SumRangePar is SumRangeTraced with the two closure computations run
// on a bounded worker pool. Identical extrema and counters for every
// worker count.
func SumRangePar(c *computation.Computation, name string, workers int, tr *obs.Trace) (min, max int64) {
	min, max, _, _ = sumRangeWitnessPar(c, name, workers, tr)
	return min, max
}

// WeightedRangePar is WeightedRangeTraced on a bounded worker pool.
func WeightedRangePar(c *computation.Computation, base int64, w Weight, workers int, tr *obs.Trace) (min, max int64) {
	min, max, _, _ = weightedRangeWitnessPar(c, base, w, workers, tr)
	return min, max
}

// InFlightRangePar is InFlightRangeTraced on a bounded worker pool.
func InFlightRangePar(c *computation.Computation, workers int, tr *obs.Trace) (min, max int64) {
	return WeightedRangePar(c, 0, InFlightWeight(c), workers, tr)
}

// PossiblyPar is PossiblyTraced with the range computation run on a
// bounded worker pool.
func PossiblyPar(c *computation.Computation, name string, r Relop, k int64, workers int, tr *obs.Trace) (bool, error) {
	min, max := SumRangePar(c, name, workers, tr)
	return possiblyFromRange(c, name, r, k, min, max)
}

// possiblyFromRange applies the Theorem 7(1) range decision shared by
// the sequential and parallel Possibly routes.
func possiblyFromRange(c *computation.Computation, name string, r Relop, k, min, max int64) (bool, error) {
	switch r {
	case Lt:
		return min < k, nil
	case Le:
		return min <= k, nil
	case Ge:
		return max >= k, nil
	case Gt:
		return max > k, nil
	case Ne:
		return min != k || max != k, nil
	case Eq:
		if err := ValidateUnitStep(c, name); err != nil {
			return false, err
		}
		return min <= k && k <= max, nil
	default:
		return false, fmt.Errorf("relsum: unknown relational operator %v", r)
	}
}

// PossiblyEqWitnessPar is PossiblyEqWitnessTraced with the extremal
// cuts computed on a bounded worker pool; the witness path scans stay
// sequential (they are linear in the number of events).
func PossiblyEqWitnessPar(c *computation.Computation, name string, k int64, workers int, tr *obs.Trace) (bool, computation.Cut, error) {
	if err := ValidateUnitStep(c, name); err != nil {
		return false, nil, err
	}
	min, max, argmin, argmax := sumRangeWitnessPar(c, name, workers, tr)
	if k < min || k > max {
		return false, nil, nil
	}
	// Path 1 covers [min, S(final)], path 2 covers [S(final), max]; their
	// union is [min, max].
	if cut, ok := scanPath(c, name, k, argmin); ok {
		return true, cut, nil
	}
	if cut, ok := scanPath(c, name, k, argmax); ok {
		return true, cut, nil
	}
	// Unreachable for unit-step computations; guarded for safety.
	return false, nil, fmt.Errorf("relsum: internal error: no witness for k=%d in [%d,%d]", k, min, max)
}

// PossiblyQuiescentPar is PossiblyQuiescentTraced on a bounded worker
// pool.
func PossiblyQuiescentPar(c *computation.Computation, k int64, workers int, tr *obs.Trace) (bool, computation.Cut, error) {
	w := InFlightWeight(c)
	if err := validateUnitWeight(c, w); err != nil {
		return false, nil, err
	}
	min, max, argmin, argmax := weightedRangeWitnessPar(c, 0, w, workers, tr)
	if k < min || k > max {
		return false, nil, nil
	}
	// Walk paths through both extreme cuts; by the intermediate-value
	// property one of them passes through occupancy k.
	if cut, ok := scanWeighted(c, w, k, argmin); ok {
		return true, cut, nil
	}
	if cut, ok := scanWeighted(c, w, k, argmax); ok {
		return true, cut, nil
	}
	return false, nil, fmt.Errorf("relsum: internal error: no in-flight witness for %d in [%d,%d]", k, min, max)
}

// PossiblyWeightedPar is PossiblyWeightedTraced on a bounded worker
// pool.
func PossiblyWeightedPar(c *computation.Computation, base int64, w Weight, r Relop, k int64, workers int, tr *obs.Trace) (bool, error) {
	min, max := WeightedRangePar(c, base, w, workers, tr)
	switch r {
	case Lt:
		return min < k, nil
	case Le:
		return min <= k, nil
	case Ge:
		return max >= k, nil
	case Gt:
		return max > k, nil
	case Ne:
		return min != k || max != k, nil
	case Eq:
		if err := validateUnitWeight(c, w); err != nil {
			return false, err
		}
		return min <= k && k <= max, nil
	default:
		return false, fmt.Errorf("relsum: unknown relational operator %v", r)
	}
}

// DefinitelyPar is DefinitelyTraced with the region-reachability sweeps
// run on a bounded worker pool.
func DefinitelyPar(c *computation.Computation, name string, r Relop, k int64, workers int, tr *obs.Trace) (bool, error) {
	switch r {
	case Lt:
		return definitelyLe(c, name, k-1, workers, tr), nil
	case Le:
		return definitelyLe(c, name, k, workers, tr), nil
	case Ge:
		return definitelyGe(c, name, k, workers, tr), nil
	case Gt:
		return definitelyGe(c, name, k+1, workers, tr), nil
	case Ne:
		// A run avoids S != k iff it stays on the S == k plateau.
		return !avoidable(c, region(name, Ne, k), workers, tr), nil
	case Eq:
		if err := ValidateUnitStep(c, name); err != nil {
			return false, err
		}
		// Theorem 7(2): with unit steps a run hits S == k exactly
		// when it dips to <= k and rises to >= k (intermediate value
		// along the run).
		return definitelyLe(c, name, k, workers, tr) && definitelyGe(c, name, k, workers, tr), nil
	default:
		return false, fmt.Errorf("relsum: unknown relational operator %v", r)
	}
}

// DefinitelyWeightedPar is DefinitelyWeightedTraced with the
// region-reachability sweeps run on a bounded worker pool.
func DefinitelyWeightedPar(c *computation.Computation, base int64, w Weight, r Relop, k int64, workers int, tr *obs.Trace) (bool, error) {
	at := func(cc *computation.Computation, cut computation.Cut) int64 {
		return WeightedAt(cc, base, w, cut)
	}
	reg := func(rr Relop, kk int64) lattice.Predicate {
		return func(cc *computation.Computation, cut computation.Cut) bool {
			return rr.Eval(at(cc, cut), kk)
		}
	}
	switch r {
	case Lt, Le, Ge, Gt, Ne:
		return !avoidable(c, reg(r, k), workers, tr), nil
	case Eq:
		if err := validateUnitWeight(c, w); err != nil {
			return false, err
		}
		return !avoidable(c, reg(Le, k), workers, tr) && !avoidable(c, reg(Ge, k), workers, tr), nil
	default:
		return false, fmt.Errorf("relsum: unknown relational operator %v", r)
	}
}
