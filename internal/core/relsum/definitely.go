package relsum

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Definitely decides Definitely(S relop k): does every run of the
// computation pass through a consistent cut with S relop k?
//
// A run avoids the predicate iff the cut lattice contains a bottom-to-top
// path inside the complementary region, so each operator reduces to one
// region-reachability query (for = on unit-step computations, to the two
// queries of Theorem 7(2): Definitely(S = k) iff Definitely(S <= k) and
// Definitely(S >= k)). Region reachability explores at most the consistent
// cuts of the region — far fewer than the run enumeration of the naive
// detector, but still exponential in the worst case; the paper defers
// polynomial algorithms for the <=/>= primitives to prior work and this
// package keeps their role explicit instead.
func Definitely(c *computation.Computation, name string, r Relop, k int64) (bool, error) {
	return DefinitelyTraced(c, name, r, k, nil)
}

// DefinitelyTraced is Definitely with region-reachability work counters
// accumulated into the trace.
func DefinitelyTraced(c *computation.Computation, name string, r Relop, k int64, tr *obs.Trace) (bool, error) {
	switch r {
	case Lt:
		return definitelyLe(c, name, k-1, tr), nil
	case Le:
		return definitelyLe(c, name, k, tr), nil
	case Ge:
		return definitelyGe(c, name, k, tr), nil
	case Gt:
		return definitelyGe(c, name, k+1, tr), nil
	case Ne:
		// A run avoids S != k iff it stays on the S == k plateau.
		return !avoidable(c, region(name, Ne, k), tr), nil
	case Eq:
		if err := ValidateUnitStep(c, name); err != nil {
			return false, err
		}
		// Theorem 7(2): with unit steps a run hits S == k exactly
		// when it dips to <= k and rises to >= k (intermediate value
		// along the run).
		return definitelyLe(c, name, k, tr) && definitelyGe(c, name, k, tr), nil
	default:
		return false, fmt.Errorf("relsum: unknown relational operator %v", r)
	}
}

// definitelyLe reports whether every run passes through a cut with S <= k:
// equivalently, no run stays entirely inside the region S > k.
func definitelyLe(c *computation.Computation, name string, k int64, tr *obs.Trace) bool {
	return !avoidable(c, region(name, Le, k), tr)
}

// definitelyGe reports whether every run passes through a cut with S >= k.
func definitelyGe(c *computation.Computation, name string, k int64, tr *obs.Trace) bool {
	return !avoidable(c, region(name, Ge, k), tr)
}

// avoidable reports whether some run avoids the predicate entirely, i.e.
// the lattice has a bottom-to-top path through the complement.
func avoidable(c *computation.Computation, pred lattice.Predicate, tr *obs.Trace) bool {
	not := func(cc *computation.Computation, cut computation.Cut) bool { return !pred(cc, cut) }
	return lattice.PathExistsTraced(c, c.InitialCut(), c.FinalCut(), not, tr)
}

// DefinitelyWeighted decides Definitely(quantity relop k) for an
// ideal-sum quantity (see Weight): does every run pass through a cut
// satisfying it? Decided by region reachability (worst-case exponential);
// equality requires unit weights and uses the Theorem 7(2) decomposition.
func DefinitelyWeighted(c *computation.Computation, base int64, w Weight, r Relop, k int64) (bool, error) {
	return DefinitelyWeightedTraced(c, base, w, r, k, nil)
}

// DefinitelyWeightedTraced is DefinitelyWeighted with region-reachability
// work counters accumulated into the trace.
func DefinitelyWeightedTraced(c *computation.Computation, base int64, w Weight, r Relop, k int64, tr *obs.Trace) (bool, error) {
	at := func(cc *computation.Computation, cut computation.Cut) int64 {
		return WeightedAt(cc, base, w, cut)
	}
	reg := func(rr Relop, kk int64) lattice.Predicate {
		return func(cc *computation.Computation, cut computation.Cut) bool {
			return rr.Eval(at(cc, cut), kk)
		}
	}
	switch r {
	case Lt, Le, Ge, Gt, Ne:
		return !avoidable(c, reg(r, k), tr), nil
	case Eq:
		if err := validateUnitWeight(c, w); err != nil {
			return false, err
		}
		return !avoidable(c, reg(Le, k), tr) && !avoidable(c, reg(Ge, k), tr), nil
	default:
		return false, fmt.Errorf("relsum: unknown relational operator %v", r)
	}
}
