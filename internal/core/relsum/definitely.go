package relsum

import (
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Definitely decides Definitely(S relop k): does every run of the
// computation pass through a consistent cut with S relop k?
//
// A run avoids the predicate iff the cut lattice contains a bottom-to-top
// path inside the complementary region, so each operator reduces to one
// region-reachability query (for = on unit-step computations, to the two
// queries of Theorem 7(2): Definitely(S = k) iff Definitely(S <= k) and
// Definitely(S >= k)). Region reachability explores at most the consistent
// cuts of the region — far fewer than the run enumeration of the naive
// detector, but still exponential in the worst case; the paper defers
// polynomial algorithms for the <=/>= primitives to prior work and this
// package keeps their role explicit instead.
func Definitely(c *computation.Computation, name string, r Relop, k int64) (bool, error) {
	return DefinitelyTraced(c, name, r, k, nil)
}

// DefinitelyTraced is Definitely with region-reachability work counters
// accumulated into the trace.
func DefinitelyTraced(c *computation.Computation, name string, r Relop, k int64, tr *obs.Trace) (bool, error) {
	return DefinitelyPar(c, name, r, k, 1, tr)
}

// definitelyLe reports whether every run passes through a cut with S <= k:
// equivalently, no run stays entirely inside the region S > k.
func definitelyLe(c *computation.Computation, name string, k int64, workers int, tr *obs.Trace) bool {
	return !avoidable(c, region(name, Le, k), workers, tr)
}

// definitelyGe reports whether every run passes through a cut with S >= k.
func definitelyGe(c *computation.Computation, name string, k int64, workers int, tr *obs.Trace) bool {
	return !avoidable(c, region(name, Ge, k), workers, tr)
}

// avoidable reports whether some run avoids the predicate entirely, i.e.
// the lattice has a bottom-to-top path through the complement.
func avoidable(c *computation.Computation, pred lattice.Predicate, workers int, tr *obs.Trace) bool {
	not := func(cc *computation.Computation, cut computation.Cut) bool { return !pred(cc, cut) }
	return lattice.PathExistsPar(c, c.InitialCut(), c.FinalCut(), not, workers, tr)
}

// DefinitelyWeighted decides Definitely(quantity relop k) for an
// ideal-sum quantity (see Weight): does every run pass through a cut
// satisfying it? Decided by region reachability (worst-case exponential);
// equality requires unit weights and uses the Theorem 7(2) decomposition.
func DefinitelyWeighted(c *computation.Computation, base int64, w Weight, r Relop, k int64) (bool, error) {
	return DefinitelyWeightedTraced(c, base, w, r, k, nil)
}

// DefinitelyWeightedTraced is DefinitelyWeighted with region-reachability
// work counters accumulated into the trace.
func DefinitelyWeightedTraced(c *computation.Computation, base int64, w Weight, r Relop, k int64, tr *obs.Trace) (bool, error) {
	return DefinitelyWeightedPar(c, base, w, r, k, 1, tr)
}
