package relsum

import (
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Possibly decides Possibly(S relop k) for the named variable sum.
//
// For the order operators <, <=, >=, > the answer follows from the exact
// extrema of S over consistent cuts (SumRange) with no assumption on the
// per-event change. For = the computation must be unit-step; the answer is
// then min <= k <= max by Theorem 7(1) of the paper (with arbitrary steps
// the problem is NP-complete, Theorem 3, and ErrNotUnitStep is returned).
// For != the answer is "some consistent cut has S != k", which also falls
// out of the extrema.
func Possibly(c *computation.Computation, name string, r Relop, k int64) (bool, error) {
	return PossiblyTraced(c, name, r, k, nil)
}

// PossiblyTraced is Possibly with closure work counters accumulated into
// the trace.
func PossiblyTraced(c *computation.Computation, name string, r Relop, k int64, tr *obs.Trace) (bool, error) {
	return PossiblyPar(c, name, r, k, 1, tr)
}

// PossiblyEqWitness decides Possibly(S = k) on a unit-step computation and,
// when it holds, produces a consistent cut with S exactly k. The witness is
// constructed in polynomial time from Theorem 4 (the intermediate-value
// property of lattice paths): walk from the initial cut to an extremal cut
// and on to the final cut; along a path S changes by at most one per step,
// so every value between the path's extremes is hit.
func PossiblyEqWitness(c *computation.Computation, name string, k int64) (bool, computation.Cut, error) {
	return PossiblyEqWitnessTraced(c, name, k, nil)
}

// PossiblyEqWitnessTraced is PossiblyEqWitness with closure work counters
// accumulated into the trace.
func PossiblyEqWitnessTraced(c *computation.Computation, name string, k int64, tr *obs.Trace) (bool, computation.Cut, error) {
	return PossiblyEqWitnessPar(c, name, k, 1, tr)
}

// scanPath walks the lattice path initial -> via -> final and returns the
// first cut with S == k, if any.
func scanPath(c *computation.Computation, name string, k int64, via computation.Cut) (computation.Cut, bool) {
	cur := c.InitialCut()
	if c.SumVar(name, cur) == k {
		return cur, true
	}
	segments := []computation.Cut{via, c.FinalCut()}
	for _, target := range segments {
		for !cur.Equal(target) {
			advanced := false
			for _, id := range c.Enabled(cur) {
				e := c.Event(id)
				if e.Index <= target[int(e.Proc)] {
					cur = c.Execute(cur, e.Proc)
					advanced = true
					break
				}
			}
			if !advanced {
				// target not reachable monotonically (cannot happen
				// for targets that are consistent cuts above cur).
				return nil, false
			}
			if c.SumVar(name, cur) == k {
				return cur, true
			}
		}
	}
	return nil, false
}
