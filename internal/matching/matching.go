// Package matching implements Hopcroft–Karp maximum bipartite matching.
// It is the engine behind minimum chain covers (Dilworth's theorem via
// Fulkerson's reduction) in the chains package.
package matching

// Bipartite is a bipartite graph with nL left and nR right vertices.
type Bipartite struct {
	nL, nR int
	adj    [][]int
}

// NewBipartite returns an empty bipartite graph.
func NewBipartite(nL, nR int) *Bipartite {
	return &Bipartite{nL: nL, nR: nR, adj: make([][]int, nL)}
}

// AddEdge connects left vertex u to right vertex v.
func (b *Bipartite) AddEdge(u, v int) {
	b.adj[u] = append(b.adj[u], v)
}

const unmatched = -1

// MaxMatching computes a maximum matching with the Hopcroft–Karp algorithm.
// It returns the matching size and, for each left vertex, its matched right
// vertex (or -1).
func (b *Bipartite) MaxMatching() (int, []int) {
	matchL := make([]int, b.nL)
	matchR := make([]int, b.nR)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	dist := make([]int, b.nL)
	size := 0
	for b.bfs(matchL, matchR, dist) {
		for u := 0; u < b.nL; u++ {
			if matchL[u] == unmatched && b.dfs(u, matchL, matchR, dist) {
				size++
			}
		}
	}
	return size, matchL
}

const inf = int(^uint(0) >> 1)

func (b *Bipartite) bfs(matchL, matchR, dist []int) bool {
	queue := make([]int, 0, b.nL)
	for u := 0; u < b.nL; u++ {
		if matchL[u] == unmatched {
			dist[u] = 0
			queue = append(queue, u)
		} else {
			dist[u] = inf
		}
	}
	found := false
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range b.adj[u] {
			w := matchR[v]
			if w == unmatched {
				found = true
			} else if dist[w] == inf {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return found
}

func (b *Bipartite) dfs(u int, matchL, matchR, dist []int) bool {
	for _, v := range b.adj[u] {
		w := matchR[v]
		if w == unmatched || (dist[w] == dist[u]+1 && b.dfs(w, matchL, matchR, dist)) {
			matchL[u] = v
			matchR[v] = u
			return true
		}
	}
	dist[u] = inf
	return false
}
