package matching

import (
	"math/rand"
	"testing"
)

func TestPerfectMatching(t *testing.T) {
	b := NewBipartite(3, 3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	b.AddEdge(2, 2)
	size, matchL := b.MaxMatching()
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	seen := make(map[int]bool)
	for u, v := range matchL {
		if v < 0 {
			t.Fatalf("left %d unmatched", u)
		}
		if seen[v] {
			t.Fatalf("right %d matched twice", v)
		}
		seen[v] = true
	}
}

func TestNoEdges(t *testing.T) {
	b := NewBipartite(2, 2)
	size, matchL := b.MaxMatching()
	if size != 0 {
		t.Fatalf("size = %d, want 0", size)
	}
	for _, v := range matchL {
		if v != -1 {
			t.Fatalf("matchL = %v, want all -1", matchL)
		}
	}
}

func TestAugmentingPathNeeded(t *testing.T) {
	// Greedy might match 0-0 and block 1; max matching is 2 via 0-1, 1-0.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	size, _ := b.MaxMatching()
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

// bruteMatching enumerates assignments for small graphs.
func bruteMatching(nL, nR int, adj [][]int) int {
	best := 0
	usedR := make([]bool, nR)
	var rec func(u, count int)
	rec = func(u, count int) {
		if count > best {
			best = count
		}
		if u == nL {
			return
		}
		rec(u+1, count) // leave u unmatched
		for _, v := range adj[u] {
			if !usedR[v] {
				usedR[v] = true
				rec(u+1, count+1)
				usedR[v] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		nL := 1 + rng.Intn(6)
		nR := 1 + rng.Intn(6)
		b := NewBipartite(nL, nR)
		adj := make([][]int, nL)
		for u := 0; u < nL; u++ {
			for v := 0; v < nR; v++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(u, v)
					adj[u] = append(adj[u], v)
				}
			}
		}
		want := bruteMatching(nL, nR, adj)
		got, matchL := b.MaxMatching()
		if got != want {
			t.Fatalf("trial %d: size = %d, brute = %d", trial, got, want)
		}
		// Validate the matching itself.
		seen := make(map[int]bool)
		n := 0
		for u, v := range matchL {
			if v < 0 {
				continue
			}
			ok := false
			for _, w := range adj[u] {
				if w == v {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("trial %d: matched non-edge %d-%d", trial, u, v)
			}
			if seen[v] {
				t.Fatalf("trial %d: right %d matched twice", trial, v)
			}
			seen[v] = true
			n++
		}
		if n != got {
			t.Fatalf("trial %d: reported %d, actual %d", trial, got, n)
		}
	}
}
