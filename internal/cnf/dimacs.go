package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a formula in the standard DIMACS CNF format: comment
// lines starting with 'c', a header "p cnf <vars> <clauses>", then clauses
// as whitespace-separated literals terminated by 0 (clauses may span
// lines). The declared clause count is checked when a header is present.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	f := &Formula{}
	declared := -1
	var cur Clause
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: line %d: bad DIMACS header %q", lineNo, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("cnf: line %d: bad DIMACS header %q", lineNo, line)
			}
			f.NumVars = nv
			declared = nc
			continue
		}
		for _, tok := range strings.Fields(line) {
			x, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: bad literal %q", lineNo, tok)
			}
			if x == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			l := Lit(x)
			if l.Var() > f.NumVars {
				f.NumVars = l.Var()
			}
			cur = append(cur, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cnf: read DIMACS: %w", err)
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	if declared >= 0 && declared != len(f.Clauses) {
		return nil, fmt.Errorf("cnf: header declares %d clauses, found %d", declared, len(f.Clauses))
	}
	return f, nil
}

// WriteDIMACS writes the formula in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, cl := range f.Clauses {
		for _, l := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
