package cnf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestLitBasics(t *testing.T) {
	l := Lit(3)
	if l.Var() != 3 || !l.Pos() {
		t.Fatalf("Lit(3): Var=%d Pos=%v", l.Var(), l.Pos())
	}
	n := l.Neg()
	if n.Var() != 3 || n.Pos() {
		t.Fatalf("Neg: Var=%d Pos=%v", n.Var(), n.Pos())
	}
	if l.String() != "x3" || n.String() != "!x3" {
		t.Fatalf("String: %q %q", l.String(), n.String())
	}
}

func TestEval(t *testing.T) {
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, -2}, {2, 3}}}
	// x1=T x2=T x3=F: (T|F)=T, (T|F)=T.
	if !f.Eval(Assignment{false, true, true, false}) {
		t.Error("expected satisfied")
	}
	// x1=F x2=T x3=F: (F|F)=F.
	if f.Eval(Assignment{false, false, true, false}) {
		t.Error("expected falsified")
	}
}

func TestValidate(t *testing.T) {
	good := &Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	zero := &Formula{NumVars: 2, Clauses: []Clause{{0}}}
	if err := zero.Validate(); err == nil {
		t.Error("Validate must reject the zero literal")
	}
	outOfRange := &Formula{NumVars: 2, Clauses: []Clause{{5}}}
	if err := outOfRange.Validate(); err == nil {
		t.Error("Validate must reject out-of-range variables")
	}
}

func TestIsNonMonotone3CNF(t *testing.T) {
	cases := []struct {
		f    Formula
		want bool
	}{
		{Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}}}, false},    // all positive
		{Formula{NumVars: 3, Clauses: []Clause{{-1, -2, -3}}}, false}, // all negative
		{Formula{NumVars: 3, Clauses: []Clause{{1, -2, 3}}}, true},    // mixed
		{Formula{NumVars: 3, Clauses: []Clause{{1, 2}}}, true},        // short clause
		{Formula{NumVars: 4, Clauses: []Clause{{1, -2, 3, 4}}}, false},
	}
	for i, tc := range cases {
		if got := tc.f.IsNonMonotone3CNF(); got != tc.want {
			t.Errorf("case %d: IsNonMonotone3CNF = %v, want %v", i, got, tc.want)
		}
	}
}

func bruteSat(f *Formula) (bool, Assignment) {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		a := make(Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(a) {
			return true, a
		}
	}
	return false, nil
}

func randomFormula(rng *rand.Rand, nv, nc, maxLen int) *Formula {
	f := &Formula{NumVars: nv}
	for i := 0; i < nc; i++ {
		n := 1 + rng.Intn(maxLen)
		cl := make(Clause, 0, n)
		for j := 0; j < n; j++ {
			v := 1 + rng.Intn(nv)
			l := Lit(v)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl = append(cl, l)
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

func TestToNonMonotonePreservesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 300; trial++ {
		f := randomFormula(rng, 2+rng.Intn(6), 1+rng.Intn(8), 3)
		g, err := ToNonMonotone(f)
		if err != nil {
			t.Fatalf("ToNonMonotone: %v", err)
		}
		if !g.IsNonMonotone3CNF() {
			t.Fatalf("result not non-monotone: %v", g)
		}
		fs, _ := bruteSat(f)
		gs, ga := bruteSat(g)
		if fs != gs {
			t.Fatalf("trial %d: sat(%v)=%v but sat(transformed)=%v", trial, f, fs, gs)
		}
		if gs {
			// The restriction of a satisfying assignment must satisfy f.
			ra := RestrictAssignment(ga, f.NumVars)
			if !f.Eval(ra) {
				t.Fatalf("trial %d: restricted assignment does not satisfy original", trial)
			}
		}
	}
}

func TestToNonMonotoneRejectsLongClauses(t *testing.T) {
	f := &Formula{NumVars: 4, Clauses: []Clause{{1, 2, 3, 4}}}
	if _, err := ToNonMonotone(f); err == nil {
		t.Error("expected error for clause longer than 3")
	}
}

func TestVars(t *testing.T) {
	f := &Formula{NumVars: 9, Clauses: []Clause{{3, -7}, {-3, 1}}}
	got := f.Vars()
	want := []int{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 30; trial++ {
		f := randomFormula(rng, 1+rng.Intn(8), 1+rng.Intn(10), 4)
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, f); err != nil {
			t.Fatalf("WriteDIMACS: %v", err)
		}
		g, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("ParseDIMACS: %v", err)
		}
		if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
			t.Fatalf("shape: got %d/%d want %d/%d", g.NumVars, len(g.Clauses), f.NumVars, len(f.Clauses))
		}
		for i := range f.Clauses {
			if len(f.Clauses[i]) != len(g.Clauses[i]) {
				t.Fatalf("clause %d length differs", i)
			}
			for j := range f.Clauses[i] {
				if f.Clauses[i][j] != g.Clauses[i][j] {
					t.Fatalf("clause %d literal %d differs", i, j)
				}
			}
		}
	}
}

func TestParseDIMACSFeatures(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
c mid comment
2 3
0
`
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseDIMACS: %v", err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("got %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[1][1] != Lit(3) {
		t.Fatalf("clause parse wrong: %v", f.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, in := range []string{
		"p cnf x 2\n1 0\n",
		"p cnf 2 5\n1 0\n", // wrong clause count
		"1 q 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("ParseDIMACS(%q): expected error", in)
		}
	}
}

func TestParseDIMACSNoHeader(t *testing.T) {
	f, err := ParseDIMACS(strings.NewReader("1 -4 0\n2 0"))
	if err != nil {
		t.Fatalf("ParseDIMACS: %v", err)
	}
	if f.NumVars != 4 || len(f.Clauses) != 2 {
		t.Fatalf("got %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
}

func TestFormulaString(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{{1, -2}, {2}}}
	if got := f.String(); got != "(x1 | !x2) & (x2)" {
		t.Errorf("String = %q", got)
	}
}
