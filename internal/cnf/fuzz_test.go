package cnf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACS hardens the DIMACS parser: it must never panic, and any
// accepted formula must survive a write/parse round trip unchanged.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\n2 3 0\n")
	f.Add("c comment\n1 0")
	f.Add("p cnf 0 0\n")
	f.Add("p cnf x y\n")
	f.Add("1 2 -3 0 4 0")
	f.Add("")
	f.Add("p cnf 2 1\n1 99 0\n")
	f.Add(strings.Repeat("1 ", 100) + "0")
	f.Fuzz(func(t *testing.T, in string) {
		formula, err := ParseDIMACS(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, formula); err != nil {
			t.Fatalf("write: %v", err)
		}
		again, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("reparse of own encoding: %v", err)
		}
		if again.NumVars != formula.NumVars || len(again.Clauses) != len(formula.Clauses) {
			t.Fatalf("round trip changed shape")
		}
		for i := range formula.Clauses {
			if len(formula.Clauses[i]) != len(again.Clauses[i]) {
				t.Fatalf("clause %d length changed", i)
			}
			for j := range formula.Clauses[i] {
				if formula.Clauses[i][j] != again.Clauses[i][j] {
					t.Fatalf("clause %d literal %d changed", i, j)
				}
			}
		}
	})
}

// FuzzToNonMonotone checks the rewrite never panics and always produces a
// non-monotone formula or an error on arbitrary small formulas.
func FuzzToNonMonotone(f *testing.F) {
	f.Add(uint16(0x1234), uint8(3), uint8(4))
	f.Add(uint16(0xffff), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, bits uint16, nvRaw, ncRaw uint8) {
		nv := int(nvRaw%6) + 1
		nc := int(ncRaw % 8)
		formula := &Formula{NumVars: nv}
		x := uint32(bits) + 1
		next := func(n int) int {
			x = x*1664525 + 1013904223
			return int(x>>16) % n
		}
		for i := 0; i < nc; i++ {
			n := next(3) + 1
			cl := make(Clause, 0, n)
			for j := 0; j < n; j++ {
				l := Lit(next(nv) + 1)
				if next(2) == 0 {
					l = l.Neg()
				}
				cl = append(cl, l)
			}
			formula.Clauses = append(formula.Clauses, cl)
		}
		out, err := ToNonMonotone(formula)
		if err != nil {
			t.Fatalf("3-CNF input rejected: %v", err)
		}
		if !out.IsNonMonotone3CNF() {
			t.Fatalf("output not non-monotone: %v", out)
		}
	})
}
