// Package cnf represents boolean formulas in conjunctive normal form and
// the formula transformations used by the paper's NP-hardness arguments, in
// particular the rewriting of an arbitrary 3-CNF formula into a
// "non-monotone" 3-CNF formula: one where every clause with exactly three
// literals contains at least one positive and one negative literal
// (Section 3.1 of Mittal & Garg).
package cnf

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Lit is a literal: variable v (numbered from 1) is the literal +v, its
// negation -v. Zero is not a valid literal.
type Lit int

// Var returns the variable of the literal (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l > 0 }

// Neg returns the negation of the literal.
func (l Lit) Neg() Lit { return -l }

// String renders the literal as "x3" or "!x3".
func (l Lit) String() string {
	if l < 0 {
		return fmt.Sprintf("!x%d", -l)
	}
	return fmt.Sprintf("x%d", int(l))
}

// Clause is a disjunction of literals.
type Clause []Lit

// String renders the clause as "(x1 | !x2)".
func (cl Clause) String() string {
	parts := make([]string, len(cl))
	for i, l := range cl {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// Formula is a CNF formula: a conjunction of clauses over variables
// 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// String renders the formula as a conjunction of clauses.
func (f *Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, cl := range f.Clauses {
		parts[i] = cl.String()
	}
	return strings.Join(parts, " & ")
}

// Assignment maps variables (1-based) to truth values; index 0 is unused.
type Assignment []bool

// Eval evaluates the formula under a complete assignment.
func (f *Formula) Eval(a Assignment) bool {
	for _, cl := range f.Clauses {
		sat := false
		for _, l := range cl {
			v := l.Var()
			if v < len(a) && a[v] == l.Pos() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Validate checks structural sanity: no zero literals, variables within
// range, no empty formula restrictions are imposed (an empty clause is
// allowed and simply unsatisfiable).
func (f *Formula) Validate() error {
	for i, cl := range f.Clauses {
		for _, l := range cl {
			if l == 0 {
				return fmt.Errorf("cnf: clause %d contains the zero literal", i)
			}
			if l.Var() > f.NumVars {
				return fmt.Errorf("cnf: clause %d references variable %d > NumVars %d", i, l.Var(), f.NumVars)
			}
		}
	}
	return nil
}

// MaxClauseLen returns the number of literals in the longest clause.
func (f *Formula) MaxClauseLen() int {
	max := 0
	for _, cl := range f.Clauses {
		if len(cl) > max {
			max = len(cl)
		}
	}
	return max
}

// IsNonMonotone3CNF reports whether the formula satisfies the paper's
// non-monotone condition: every clause has at most three literals and every
// clause with exactly three literals has at least one positive and one
// negative literal.
func (f *Formula) IsNonMonotone3CNF() bool {
	for _, cl := range f.Clauses {
		if len(cl) > 3 {
			return false
		}
		if len(cl) == 3 {
			pos, neg := false, false
			for _, l := range cl {
				if l.Pos() {
					pos = true
				} else {
					neg = true
				}
			}
			if !pos || !neg {
				return false
			}
		}
	}
	return true
}

// ToNonMonotone rewrites the formula into an equisatisfiable non-monotone
// 3-CNF formula using the paper's substitution: a clause of three positive
// literals (a | b | c) becomes (a | b | !z) & (z | c) & (!z | !c) where z
// is a fresh variable forced to equal !c; symmetrically for all-negative
// clauses. Clauses with at most two literals, or already mixed, are kept.
// Satisfying assignments of the result restrict to satisfying assignments
// of the original and vice versa.
//
// The input must be 3-CNF (clauses of at most three literals).
func ToNonMonotone(f *Formula) (*Formula, error) {
	if f.MaxClauseLen() > 3 {
		return nil, errors.New("cnf: ToNonMonotone requires a 3-CNF input")
	}
	out := &Formula{NumVars: f.NumVars}
	fresh := f.NumVars
	for _, cl := range f.Clauses {
		if len(cl) < 3 {
			out.Clauses = append(out.Clauses, append(Clause(nil), cl...))
			continue
		}
		pos, neg := 0, 0
		for _, l := range cl {
			if l.Pos() {
				pos++
			} else {
				neg++
			}
		}
		if pos > 0 && neg > 0 {
			out.Clauses = append(out.Clauses, append(Clause(nil), cl...))
			continue
		}
		// Monotone triple: introduce a fresh variable z equivalent to
		// the negation of the clause's last literal, and replace that
		// literal with the z-literal of the opposite sign. The new
		// three-literal clause is mixed, and the two binary forcing
		// clauses make the substitution exact, so satisfiability is
		// preserved in both directions.
		fresh++
		z := Lit(fresh)
		a, b, c := cl[0], cl[1], cl[2]
		var repl Lit
		var force1, force2 Clause
		if c.Pos() {
			// All positive: use !z with z forced to equal !c.
			repl = z.Neg()
			force1 = Clause{z, c}
			force2 = Clause{z.Neg(), c.Neg()}
		} else {
			// All negative: use z with z forced to equal c (i.e. the
			// negation of c's underlying variable).
			repl = z
			force1 = Clause{z, c.Neg()}
			force2 = Clause{z.Neg(), c}
		}
		out.Clauses = append(out.Clauses,
			Clause{a, b, repl},
			force1,
			force2,
		)
	}
	out.NumVars = fresh
	return out, nil
}

// RestrictAssignment drops the auxiliary variables introduced by
// ToNonMonotone, returning an assignment over the original n variables.
func RestrictAssignment(a Assignment, n int) Assignment {
	out := make(Assignment, n+1)
	copy(out, a[:min(len(a), n+1)])
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Vars returns the sorted set of variables actually occurring in the
// formula.
func (f *Formula) Vars() []int {
	set := make(map[int]bool)
	for _, cl := range f.Clauses {
		for _, l := range cl {
			set[l.Var()] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
