package lattice

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/obs"
)

var workerCounts = []int{1, 2, 3, 4, 8}

// sumAtLeast builds a predicate over the running sum of a generated
// unit-step variable — cheap enough to sweep full lattices, expensive
// enough that the witness position varies with the threshold.
func sumAtLeast(name string, k int64) Predicate {
	return func(c *computation.Computation, cut computation.Cut) bool {
		return c.SumVar(name, cut) >= k
	}
}

func parTestComputations(t *testing.T) []*computation.Computation {
	t.Helper()
	var cs []*computation.Computation
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		cs = append(cs, randomComputation(rng, 3+i%2, 4))
	}
	cs = append(cs, grid(4, 5), grid(0, 0))
	for i, c := range cs {
		gen.UnitStepVar(int64(100+i), c, "x")
	}
	return cs
}

// TestPossiblyParMatchesSequential: verdict, witness and every counter
// must be identical across worker counts.
func TestPossiblyParMatchesSequential(t *testing.T) {
	for ci, c := range parTestComputations(t) {
		for _, k := range []int64{-100, 0, 2, 100} {
			pred := sumAtLeast("x", k)
			refTr := obs.NewTrace()
			refOK, refWit := PossiblyTraced(c, pred, refTr)
			for _, w := range workerCounts {
				tr := obs.NewTrace()
				ok, wit := PossiblyPar(c, pred, w, tr)
				if ok != refOK {
					t.Fatalf("c%d k=%d w=%d: Possibly = %v, want %v", ci, k, w, ok, refOK)
				}
				if (wit == nil) != (refWit == nil) || (wit != nil && !wit.Equal(refWit)) {
					t.Fatalf("c%d k=%d w=%d: witness %v, want %v", ci, k, w, wit, refWit)
				}
				assertSameCounters(t, refTr, tr, fmt.Sprintf("Possibly c%d k=%d w=%d", ci, k, w))
			}
		}
	}
}

func TestDefinitelyParMatchesSequential(t *testing.T) {
	for ci, c := range parTestComputations(t) {
		for _, k := range []int64{-100, 0, 2, 100} {
			pred := sumAtLeast("x", k)
			refTr := obs.NewTrace()
			ref := DefinitelyTraced(c, pred, refTr)
			for _, w := range workerCounts {
				tr := obs.NewTrace()
				got := DefinitelyPar(c, pred, w, tr)
				if got != ref {
					t.Fatalf("c%d k=%d w=%d: Definitely = %v, want %v", ci, k, w, got, ref)
				}
				assertSameCounters(t, refTr, tr, fmt.Sprintf("Definitely c%d k=%d w=%d", ci, k, w))
			}
		}
	}
}

func TestPathExistsParMatchesSequential(t *testing.T) {
	for ci, c := range parTestComputations(t) {
		from := c.InitialCut()
		to := c.FinalCut()
		for _, k := range []int64{-100, -1, 0, 1, 100} {
			allowed := sumAtLeast("x", k)
			refTr := obs.NewTrace()
			ref := PathExistsTraced(c, from, to, allowed, refTr)
			for _, w := range workerCounts {
				tr := obs.NewTrace()
				got := PathExistsPar(c, from, to, allowed, w, tr)
				if got != ref {
					t.Fatalf("c%d k=%d w=%d: PathExists = %v, want %v", ci, k, w, got, ref)
				}
				assertSameCounters(t, refTr, tr, fmt.Sprintf("PathExists c%d k=%d w=%d", ci, k, w))
			}
		}
		// Nil allowed (pure reachability) as well.
		for _, w := range workerCounts {
			if got := PathExistsPar(c, from, to, nil, w, nil); !got {
				t.Fatalf("c%d w=%d: PathExists(nil) = false, want true", ci, w)
			}
		}
	}
}

// TestLevelCuts: the level sets partition the lattice — summing their
// sizes over all levels must reproduce Count, every cut at level L has
// exactly L non-initial events, and the frontier order is identical for
// every worker count.
func TestLevelCuts(t *testing.T) {
	for ci, c := range parTestComputations(t) {
		maxLevel := c.NumEvents() - c.NumProcs() // non-initial events
		var total int64
		for l := 0; l <= maxLevel; l++ {
			ref := LevelCuts(c, l)
			total += int64(len(ref))
			if len(ref) == 0 {
				t.Fatalf("c%d: no cuts at level %d <= %d", ci, l, maxLevel)
			}
			for _, k := range ref {
				lvl := 0
				for p := 0; p < c.NumProcs(); p++ {
					lvl += k[p] // component p counts non-initial events executed on p
				}
				if lvl != l {
					t.Fatalf("c%d: cut %v at level set %d has level %d", ci, k, l, lvl)
				}
			}
			for _, w := range workerCounts[1:] {
				got := LevelCutsTraced(c, l, w, nil)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("c%d level %d w=%d: frontier differs from sequential", ci, l, w)
				}
			}
		}
		if want := Count(c); total != want {
			t.Errorf("c%d: level sets cover %d cuts, want %d", ci, total, want)
		}
		if got := LevelCuts(c, maxLevel+1); len(got) != 0 {
			t.Errorf("c%d: level %d past the final cut has %d cuts, want 0", ci, maxLevel+1, len(got))
		}
		if got := LevelCuts(c, -1); got != nil {
			t.Errorf("c%d: negative level returned %v", ci, got)
		}
	}
}

func assertSameCounters(t *testing.T, want, got *obs.Trace, label string) {
	t.Helper()
	wr, gr := want.Report(), got.Report()
	if !reflect.DeepEqual(wr.Counters, gr.Counters) {
		t.Fatalf("%s: counters %v, want %v", label, gr.Counters, wr.Counters)
	}
}
