package lattice

import (
	"testing"
	"testing/quick"

	"github.com/distributed-predicates/gpd/internal/computation"
)

// latticeSpec generates small computations for quick properties.
type latticeSpec struct {
	Lens  [3]uint8
	Pairs [5][4]uint8
}

func (s latticeSpec) build() *computation.Computation {
	c := computation.New()
	for p := 0; p < len(s.Lens); p++ {
		c.AddProcess()
		n := int(s.Lens[p]%3) + 1
		for i := 0; i < n; i++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	for _, m := range s.Pairs {
		from := computation.ProcID(int(m[0]) % c.NumProcs())
		to := computation.ProcID(int(m[1]) % c.NumProcs())
		if from == to {
			continue
		}
		i := 1 + int(m[2])%(c.Len(from)-1)
		j := 1 + int(m[3])%(c.Len(to)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(from, i).ID, c.EventAt(to, j).ID)
		}
	}
	return c.MustSeal()
}

// TestDefinitelyImpliesPossibly: every computation has at least one run,
// so a predicate that definitely holds possibly holds.
func TestDefinitelyImpliesPossibly(t *testing.T) {
	f := func(s latticeSpec, markBits uint32) bool {
		c := s.build()
		// Predicate from hash of the cut key and markBits.
		pred := func(_ *computation.Computation, k computation.Cut) bool {
			h := uint32(1)
			for _, v := range k {
				h = h*31 + uint32(v)
			}
			return (h^markBits)%3 == 0
		}
		if Definitely(c, pred) {
			ok, _ := Possibly(c, pred)
			return ok
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPossiblyComplementDuality: not Possibly(B) iff Definitely(not B)
// holds vacuously everywhere — more precisely, if no cut satisfies B then
// every run trivially avoids it, and Definitely(B) must be false unless
// the computation has no runs (impossible).
func TestPossiblyComplementDuality(t *testing.T) {
	f := func(s latticeSpec) bool {
		c := s.build()
		never := func(*computation.Computation, computation.Cut) bool { return false }
		always := func(*computation.Computation, computation.Cut) bool { return true }
		if ok, _ := Possibly(c, never); ok {
			return false
		}
		if Definitely(c, never) {
			return false
		}
		if ok, _ := Possibly(c, always); !ok {
			return false
		}
		return Definitely(c, always)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCountBounds: the number of consistent cuts is between the longest
// process length and the product of all process lengths.
func TestCountBounds(t *testing.T) {
	f := func(s latticeSpec) bool {
		c := s.build()
		n := Count(c)
		product := int64(1)
		longest := int64(0)
		for p := 0; p < c.NumProcs(); p++ {
			l := int64(c.Len(computation.ProcID(p)))
			product *= l
			if l > longest {
				longest = l
			}
		}
		return n >= longest && n <= product
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRunsCountMatchesLevelSum: the number of runs equals the number of
// maximal paths through the lattice; every run has exactly NumEvents -
// NumProcs steps.
func TestRunsHaveUniformLength(t *testing.T) {
	f := func(s latticeSpec) bool {
		c := s.build()
		want := c.NumEvents() - c.NumProcs()
		ok := true
		n := 0
		Runs(c, func(run []computation.EventID) bool {
			if len(run) != want {
				ok = false
				return false
			}
			n++
			return n < 200 // cap the enumeration
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPathExistsUnrestrictedAlwaysUpward: with no region restriction, any
// consistent cut is reachable from the initial cut and reaches the final
// cut.
func TestPathExistsUnrestrictedAlwaysUpward(t *testing.T) {
	f := func(s latticeSpec) bool {
		c := s.build()
		ok := true
		n := 0
		Explore(c, func(k computation.Cut) bool {
			if !PathExists(c, c.InitialCut(), k, nil) {
				ok = false
				return false
			}
			if !PathExists(c, k, c.FinalCut(), nil) {
				ok = false
				return false
			}
			n++
			return n < 100
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
