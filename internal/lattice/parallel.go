package lattice

import (
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/par"
)

// The parallel kernels below all follow the same determinism-preserving
// shape: each breadth-first level (an antichain frontier of the cut
// lattice) is split into contiguous chunks handed to a bounded worker
// pool (par.Do), and the workers do only the embarrassingly parallel
// part — evaluate the predicate, enumerate successor cuts, precompute
// their dedup keys. A single sequential merge then walks the frontier
// in index order, applying the seen-map, bumping the work counters and
// taking every early-exit decision exactly where the sequential code
// would. Verdicts, witnesses and counters are therefore bit-identical
// for every worker count; parallelism 1 short-circuits to the original
// sequential functions.

// succ is a successor cut precomputed by a worker, with its dedup key
// so the merge loop does only map work.
type succ struct {
	cut computation.Cut
	key string
}

// PossiblyPar is PossiblyTraced with the level sweep spread over a
// bounded worker pool. workers <= 1 runs the exact sequential kernel;
// any worker count returns the same verdict, witness and counters.
func PossiblyPar(c *computation.Computation, pred Predicate, workers int, tr *obs.Trace) (bool, computation.Cut) {
	if workers <= 1 {
		return PossiblyTraced(c, pred, tr)
	}
	var cuts, levels, width int64
	defer func() {
		tr.Add("lattice.cuts_explored", cuts)
		tr.Add("lattice.levels_swept", levels)
		tr.Max("lattice.max_frontier_width", width)
	}()
	type visit struct {
		holds bool
		succs []succ
	}
	level := []computation.Cut{c.InitialCut()}
	seen := map[string]bool{c.InitialCut().Key(): true}
	for len(level) > 0 {
		levels++
		if int64(len(level)) > width {
			width = int64(len(level))
		}
		out := make([]visit, len(level))
		par.Do(workers, len(level), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := level[i]
				if pred(c, k) {
					// The merge stops at the first satisfying cut in
					// frontier order; successors are never needed.
					out[i].holds = true
					continue
				}
				for _, id := range c.Enabled(k) {
					nk := c.Execute(k, c.Event(id).Proc)
					out[i].succs = append(out[i].succs, succ{nk, nk.Key()})
				}
			}
		})
		var next []computation.Cut
		for i, k := range level {
			cuts++
			if out[i].holds {
				return true, k.Clone()
			}
			for _, s := range out[i].succs {
				if !seen[s.key] {
					seen[s.key] = true
					next = append(next, s.cut)
				}
			}
		}
		level = next
	}
	return false, nil
}

// DefinitelyPar is DefinitelyTraced with each level's successor
// generation and predicate evaluation spread over a bounded worker
// pool. workers <= 1 runs the exact sequential kernel; any worker count
// returns the same verdict and counters.
func DefinitelyPar(c *computation.Computation, pred Predicate, workers int, tr *obs.Trace) bool {
	if workers <= 1 {
		return DefinitelyTraced(c, pred, tr)
	}
	var cuts, levels, width int64
	defer func() {
		tr.Add("lattice.cuts_explored", cuts)
		tr.Add("lattice.levels_swept", levels)
		tr.Max("lattice.max_frontier_width", width)
	}()
	start := c.InitialCut()
	cuts++
	if pred(c, start) {
		return true
	}
	type dsucc struct {
		cut   computation.Cut
		key   string
		holds bool
	}
	type visit struct {
		isFinal bool
		succs   []dsucc
	}
	level := []computation.Cut{start}
	final := c.FinalCut()
	for len(level) > 0 {
		levels++
		if int64(len(level)) > width {
			width = int64(len(level))
		}
		out := make([]visit, len(level))
		par.Do(workers, len(level), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := level[i]
				if k.Equal(final) {
					out[i].isFinal = true
					continue
				}
				for _, id := range c.Enabled(k) {
					nk := c.Execute(k, c.Event(id).Proc)
					out[i].succs = append(out[i].succs, dsucc{nk, nk.Key(), pred(c, nk)})
				}
			}
		})
		seen := make(map[string]bool)
		var next []computation.Cut
		for i := range level {
			if out[i].isFinal {
				// A complete run avoided the predicate.
				return false
			}
			for _, s := range out[i].succs {
				cuts++
				if s.holds {
					continue // this path is intercepted
				}
				if !seen[s.key] {
					seen[s.key] = true
					next = append(next, s.cut)
				}
			}
		}
		level = next
	}
	return true
}

// PathExistsPar is PathExistsTraced with the breadth-first region sweep
// spread over a bounded worker pool. The sequential FIFO order equals
// level order, so the level-synchronous merge visits (and counts) cuts
// in exactly the sequential sequence. workers <= 1 runs the exact
// sequential kernel.
func PathExistsPar(c *computation.Computation, from, to computation.Cut, allowed Predicate, workers int, tr *obs.Trace) bool {
	if workers <= 1 {
		return PathExistsTraced(c, from, to, allowed, tr)
	}
	var cuts int64
	defer func() {
		tr.Add("lattice.region_cuts_explored", cuts)
	}()
	if !from.Leq(to) {
		return false
	}
	if allowed != nil && (!allowed(c, from) || !allowed(c, to)) {
		return false
	}
	if from.Equal(to) {
		return true
	}
	type rsucc struct {
		cut  computation.Cut
		key  string
		ok   bool
		isTo bool
	}
	seen := map[string]bool{from.Key(): true}
	queue := []computation.Cut{from}
	for len(queue) > 0 {
		out := make([][]rsucc, len(queue))
		par.Do(workers, len(queue), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := queue[i]
				for _, id := range c.Enabled(k) {
					nk := c.Execute(k, c.Event(id).Proc)
					if !nk.Leq(to) {
						continue
					}
					s := rsucc{cut: nk, ok: allowed == nil || allowed(c, nk)}
					if s.ok {
						s.isTo = nk.Equal(to)
						if !s.isTo {
							s.key = nk.Key()
						}
					}
					out[i] = append(out[i], s)
				}
			}
		})
		var next []computation.Cut
		for i := range queue {
			cuts++
			for _, s := range out[i] {
				if !s.ok {
					continue
				}
				if s.isTo {
					return true
				}
				if !seen[s.key] {
					seen[s.key] = true
					next = append(next, s.cut)
				}
			}
		}
		queue = next
	}
	return false
}

// LevelCuts returns every consistent cut at the given level (number of
// non-initial events executed), in breadth-first frontier order. The
// result is empty when the level exceeds the computation's event count.
// This is the level-set primitive behind the equilevel detectors (Garg
// & Streit, "Parallel Algorithms for Equilevel Predicates", 2023):
// every run passes through exactly one cut of each level, so both
// modalities of an equilevel predicate reduce to one antichain scan.
func LevelCuts(c *computation.Computation, level int) []computation.Cut {
	return LevelCutsTraced(c, level, 1, nil)
}

// LevelCutsTraced is LevelCuts with a bounded worker pool over each
// frontier and the number of cuts explored (all levels up to and
// including the target) accumulated into the trace. The frontier order
// and counters are identical for every worker count.
func LevelCutsTraced(c *computation.Computation, level, workers int, tr *obs.Trace) []computation.Cut {
	var cuts int64
	defer func() {
		tr.Add("lattice.level_cuts_explored", cuts)
	}()
	if level < 0 {
		return nil
	}
	cur := []computation.Cut{c.InitialCut()}
	for d := 0; d < level && len(cur) > 0; d++ {
		cuts += int64(len(cur))
		out := make([][]succ, len(cur))
		par.Do(workers, len(cur), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := cur[i]
				for _, id := range c.Enabled(k) {
					nk := c.Execute(k, c.Event(id).Proc)
					out[i] = append(out[i], succ{nk, nk.Key()})
				}
			}
		})
		// Successor levels never revisit earlier levels (the level of a
		// cut is its event count), so dedup is per transition.
		seen := make(map[string]bool)
		var next []computation.Cut
		for i := range cur {
			for _, s := range out[i] {
				if !seen[s.key] {
					seen[s.key] = true
					next = append(next, s.cut)
				}
			}
		}
		cur = next
	}
	cuts += int64(len(cur))
	return cur
}
