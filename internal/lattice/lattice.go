// Package lattice explores the lattice of consistent cuts (global states) of
// a distributed computation. It provides the Cooper–Marzullo style
// breadth-first enumeration and the exhaustive Possibly/Definitely detectors
// built on it.
//
// These detectors are exponential in the number of processes — the
// combinatorial explosion the paper sets out to avoid — and serve two roles
// here: as correctness oracles for the polynomial algorithms, and as the
// baseline that the benchmark harness compares against.
package lattice

import (
	"math"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/obs"
)

// Predicate is a global predicate evaluated on a consistent cut.
type Predicate func(*computation.Computation, computation.Cut) bool

// Explore visits every consistent cut of the computation exactly once, in
// breadth-first (level) order starting from the initial cut. It stops early
// when visit returns false. The computation must be sealed.
func Explore(c *computation.Computation, visit func(computation.Cut) bool) {
	ExploreTraced(c, visit, nil)
}

// ExploreTraced is Explore, accumulating work counters into the trace:
// cuts enumerated, levels swept and the widest frontier (level width) —
// the quantities that make the exponential blowup of exhaustive detection
// visible. Counters are added once per run, so a nil trace costs nothing
// and a live one costs three map updates.
func ExploreTraced(c *computation.Computation, visit func(computation.Cut) bool, tr *obs.Trace) {
	var cuts, levels, width int64
	defer func() {
		tr.Add("lattice.cuts_explored", cuts)
		tr.Add("lattice.levels_swept", levels)
		tr.Max("lattice.max_frontier_width", width)
	}()
	level := []computation.Cut{c.InitialCut()}
	seen := map[string]bool{c.InitialCut().Key(): true}
	for len(level) > 0 {
		levels++
		if int64(len(level)) > width {
			width = int64(len(level))
		}
		var next []computation.Cut
		for _, k := range level {
			cuts++
			if !visit(k) {
				return
			}
			for _, id := range c.Enabled(k) {
				nk := c.Execute(k, c.Event(id).Proc)
				key := nk.Key()
				if !seen[key] {
					seen[key] = true
					next = append(next, nk)
				}
			}
		}
		level = next
	}
}

// Count returns the number of consistent cuts of the computation.
func Count(c *computation.Computation) int64 {
	var n int64
	Explore(c, func(computation.Cut) bool {
		n++
		return true
	})
	return n
}

// Possibly reports whether some consistent cut satisfies the predicate, and
// returns a witness cut when one exists. This is the exhaustive detector for
// Possibly(phi) under the weak modality.
func Possibly(c *computation.Computation, pred Predicate) (bool, computation.Cut) {
	return PossiblyTraced(c, pred, nil)
}

// PossiblyTraced is Possibly with work counters accumulated into the trace.
func PossiblyTraced(c *computation.Computation, pred Predicate, tr *obs.Trace) (bool, computation.Cut) {
	var witness computation.Cut
	found := false
	ExploreTraced(c, func(k computation.Cut) bool {
		if pred(c, k) {
			witness = k.Clone()
			found = true
			return false
		}
		return true
	}, tr)
	return found, witness
}

// Definitely reports whether every run of the computation passes through a
// cut satisfying the predicate (the strong modality). It performs the
// level-synchronous sweep of Cooper and Marzullo: maintain the set of cuts
// at each level reachable from the initial cut along paths avoiding the
// predicate; the predicate definitely holds iff that set becomes empty
// before the final cut is reached.
func Definitely(c *computation.Computation, pred Predicate) bool {
	return DefinitelyTraced(c, pred, nil)
}

// DefinitelyTraced is Definitely with work counters accumulated into the
// trace: cuts swept, levels and the widest surviving frontier.
func DefinitelyTraced(c *computation.Computation, pred Predicate, tr *obs.Trace) bool {
	var cuts, levels, width int64
	defer func() {
		tr.Add("lattice.cuts_explored", cuts)
		tr.Add("lattice.levels_swept", levels)
		tr.Max("lattice.max_frontier_width", width)
	}()
	start := c.InitialCut()
	cuts++
	if pred(c, start) {
		return true
	}
	level := []computation.Cut{start}
	final := c.FinalCut()
	for len(level) > 0 {
		levels++
		if int64(len(level)) > width {
			width = int64(len(level))
		}
		seen := make(map[string]bool)
		var next []computation.Cut
		for _, k := range level {
			if k.Equal(final) {
				// A complete run avoided the predicate.
				return false
			}
			for _, id := range c.Enabled(k) {
				nk := c.Execute(k, c.Event(id).Proc)
				cuts++
				if pred(c, nk) {
					continue // this path is intercepted
				}
				key := nk.Key()
				if !seen[key] {
					seen[key] = true
					next = append(next, nk)
				}
			}
		}
		level = next
	}
	return true
}

// PathExists reports whether the lattice contains a path of consistent cuts
// from one cut to another (from must be <= to component-wise) such that
// every cut on the path, including the endpoints, satisfies allowed. A nil
// allowed admits every cut. This is the reachability primitive behind
// Theorem 4 of the paper.
func PathExists(c *computation.Computation, from, to computation.Cut, allowed Predicate) bool {
	return PathExistsTraced(c, from, to, allowed, nil)
}

// PathExistsTraced is PathExists with the number of region cuts explored
// accumulated into the trace.
func PathExistsTraced(c *computation.Computation, from, to computation.Cut, allowed Predicate, tr *obs.Trace) bool {
	var cuts int64
	defer func() {
		tr.Add("lattice.region_cuts_explored", cuts)
	}()
	if !from.Leq(to) {
		return false
	}
	if allowed != nil && (!allowed(c, from) || !allowed(c, to)) {
		return false
	}
	if from.Equal(to) {
		return true
	}
	seen := map[string]bool{from.Key(): true}
	queue := []computation.Cut{from}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		cuts++
		for _, id := range c.Enabled(k) {
			nk := c.Execute(k, c.Event(id).Proc)
			if !nk.Leq(to) {
				continue
			}
			if allowed != nil && !allowed(c, nk) {
				continue
			}
			if nk.Equal(to) {
				return true
			}
			key := nk.Key()
			if !seen[key] {
				seen[key] = true
				queue = append(queue, nk)
			}
		}
	}
	return false
}

// Runs enumerates the runs (maximal paths, i.e. linearizations) of the
// computation as sequences of event ids, invoking visit for each. It stops
// when visit returns false. The number of runs is exponential; use only on
// small computations (oracle checks and tests).
func Runs(c *computation.Computation, visit func([]computation.EventID) bool) {
	run := make([]computation.EventID, 0, c.NumEvents())
	k := c.InitialCut()
	final := c.FinalCut()
	stopped := false
	var rec func()
	rec = func() {
		if stopped {
			return
		}
		if k.Equal(final) {
			if !visit(run) {
				stopped = true
			}
			return
		}
		for _, id := range c.Enabled(k) {
			p := c.Event(id).Proc
			k[int(p)]++
			run = append(run, id)
			rec()
			run = run[:len(run)-1]
			k[int(p)]--
			if stopped {
				return
			}
		}
	}
	rec()
}

// SumRange returns the minimum and maximum over all consistent cuts of the
// sum of the named variable at the cut's frontier, by exhaustive lattice
// exploration. It is the oracle counterpart of the max-flow computation in
// core/relsum.
func SumRange(c *computation.Computation, name string) (min, max int64) {
	min, max = math.MaxInt64, math.MinInt64
	Explore(c, func(k computation.Cut) bool {
		s := c.SumVar(name, k)
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		return true
	})
	return min, max
}

// RunExtremes computes, by exhaustive run enumeration, the two run
// quantities used for Definitely(sum = k): the maximum over runs of the
// minimum sum along the run, and the minimum over runs of the maximum sum
// along the run. Each run is scored over every cut it passes through,
// including the initial and final cuts.
func RunExtremes(c *computation.Computation, name string) (maxOfMins, minOfMaxes int64) {
	maxOfMins, minOfMaxes = math.MinInt64, math.MaxInt64
	Runs(c, func(run []computation.EventID) bool {
		k := c.InitialCut()
		lo := c.SumVar(name, k)
		hi := lo
		for _, id := range run {
			k[int(c.Event(id).Proc)]++
			s := c.SumVar(name, k)
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if lo > maxOfMins {
			maxOfMins = lo
		}
		if hi < minOfMaxes {
			minOfMaxes = hi
		}
		return true
	})
	return maxOfMins, minOfMaxes
}
