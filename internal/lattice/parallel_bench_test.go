package lattice

import (
	"fmt"
	"testing"

	"github.com/distributed-predicates/gpd/internal/gen"
)

// BenchmarkParallelLattice sweeps a wide lattice (independent-ish
// processes, few messages) with the Definitely kernel — the worst-case
// level-synchronous BFS — at increasing worker counts. The par=1 case
// is the exact sequential kernel, so sub-benchmark ratios are the
// speedup the acceptance gate reads.
func BenchmarkParallelLattice(b *testing.B) {
	c := gen.Random(gen.Params{Seed: 42, Procs: 7, Events: 5, MsgFrac: 0.3})
	gen.UnitStepVar(43, c, "x")
	// A threshold the sweep never reaches keeps the frontier alive to the
	// final cut: every level is generated and evaluated.
	pred := sumAtLeast("x", 1000)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if DefinitelyPar(c, pred, w, nil) {
					b.Fatal("unexpected Definitely verdict")
				}
			}
		})
	}
}
