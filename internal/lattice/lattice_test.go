package lattice

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
)

// grid builds two independent processes with n and m non-initial events;
// its lattice is the full (n+1) x (m+1) grid.
func grid(n, m int) *computation.Computation {
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	for i := 0; i < n; i++ {
		c.AddInternal(p0)
	}
	for i := 0; i < m; i++ {
		c.AddInternal(p1)
	}
	return c.MustSeal()
}

func randomComputation(rng *rand.Rand, np, me int) *computation.Computation {
	c := computation.New()
	for p := 0; p < np; p++ {
		c.AddProcess()
		n := 1 + rng.Intn(me)
		for i := 0; i < n; i++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	for tries := 0; tries < np*me; tries++ {
		p := computation.ProcID(rng.Intn(np))
		q := computation.ProcID(rng.Intn(np))
		if p == q {
			continue
		}
		i := 1 + rng.Intn(c.Len(p)-1)
		j := 1 + rng.Intn(c.Len(q)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
		}
	}
	return c.MustSeal()
}

func TestCountGrid(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{0, 0}, {1, 0}, {2, 3}, {4, 4}} {
		c := grid(tc.n, tc.m)
		want := int64((tc.n + 1) * (tc.m + 1))
		if got := Count(c); got != want {
			t.Errorf("Count(grid %dx%d) = %d, want %d", tc.n, tc.m, got, want)
		}
	}
}

func TestCountChain(t *testing.T) {
	// Two processes fully synchronized by a message ladder have a linear
	// lattice segment; verify against brute-force consistency check.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		c := randomComputation(rng, 3, 4)
		want := int64(0)
		bruteAllCuts(c, func(k computation.Cut) {
			if c.CutConsistent(k) {
				want++
			}
		})
		if got := Count(c); got != want {
			t.Fatalf("trial %d: Count = %d, brute = %d", trial, got, want)
		}
	}
}

func bruteAllCuts(c *computation.Computation, fn func(computation.Cut)) {
	k := c.InitialCut()
	var rec func(p int)
	rec = func(p int) {
		if p == c.NumProcs() {
			fn(k.Clone())
			return
		}
		for i := 0; i < c.Len(computation.ProcID(p)); i++ {
			k[p] = i
			rec(p + 1)
		}
		k[p] = 0
	}
	rec(0)
}

func TestExploreVisitsConsistentCutsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		c := randomComputation(rng, 3, 4)
		seen := make(map[string]int)
		Explore(c, func(k computation.Cut) bool {
			if !c.CutConsistent(k) {
				t.Fatalf("Explore visited inconsistent cut %v", k)
			}
			seen[k.Key()]++
			return true
		})
		for key, n := range seen {
			if n != 1 {
				t.Fatalf("cut %s visited %d times", key, n)
			}
		}
	}
}

func TestExploreEarlyStop(t *testing.T) {
	c := grid(3, 3)
	n := 0
	Explore(c, func(computation.Cut) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d cuts, want 5", n)
	}
}

func TestPossiblyFindsWitness(t *testing.T) {
	c := grid(2, 2)
	pred := func(_ *computation.Computation, k computation.Cut) bool {
		return k[0] == 2 && k[1] == 1
	}
	ok, w := Possibly(c, pred)
	if !ok {
		t.Fatal("Possibly = false, want true")
	}
	if !pred(c, w) {
		t.Fatalf("witness %v does not satisfy predicate", w)
	}
	never := func(*computation.Computation, computation.Cut) bool { return false }
	if ok, _ := Possibly(c, never); ok {
		t.Error("Possibly(false) must be false")
	}
}

// bruteDefinitely checks the strong modality by enumerating all runs.
func bruteDefinitely(c *computation.Computation, pred Predicate) bool {
	all := true
	Runs(c, func(run []computation.EventID) bool {
		k := c.InitialCut()
		hit := pred(c, k)
		for _, id := range run {
			k[int(c.Event(id).Proc)]++
			if pred(c, k) {
				hit = true
			}
		}
		if !hit {
			all = false
			return false
		}
		return true
	})
	return all
}

func TestDefinitelyMatchesRunEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		c := randomComputation(rng, 3, 3)
		// Random "sum of marked events" style predicate.
		marks := make(map[string]bool)
		Explore(c, func(k computation.Cut) bool {
			if rng.Intn(4) == 0 {
				marks[k.Key()] = true
			}
			return true
		})
		pred := func(_ *computation.Computation, k computation.Cut) bool {
			return marks[k.Key()]
		}
		want := bruteDefinitely(c, pred)
		if got := Definitely(c, pred); got != want {
			t.Fatalf("trial %d: Definitely = %v, brute = %v", trial, got, want)
		}
	}
}

func TestDefinitelyInitialCut(t *testing.T) {
	c := grid(2, 2)
	atInitial := func(_ *computation.Computation, k computation.Cut) bool {
		return k.Size() == 0
	}
	if !Definitely(c, atInitial) {
		t.Error("predicate true at initial cut must be definite")
	}
	atCorner := func(_ *computation.Computation, k computation.Cut) bool {
		return k[0] == 2 && k[1] == 0
	}
	if Definitely(c, atCorner) {
		t.Error("a corner cut is avoidable in a grid")
	}
	// A full anti-chain barrier: all cuts at level 2 of the 2x2 grid.
	atLevel := func(_ *computation.Computation, k computation.Cut) bool {
		return k.Size() == 2
	}
	if !Definitely(c, atLevel) {
		t.Error("every run passes through every level")
	}
}

func TestPathExists(t *testing.T) {
	c := grid(2, 2)
	from := computation.Cut{0, 0}
	to := computation.Cut{2, 2}
	if !PathExists(c, from, to, nil) {
		t.Error("path to final cut must exist")
	}
	if PathExists(c, to, from, nil) {
		t.Error("no backward path")
	}
	// Forbid the whole middle level: no path can cross.
	avoidMid := func(_ *computation.Computation, k computation.Cut) bool {
		return k.Size() != 2
	}
	if PathExists(c, from, to, avoidMid) {
		t.Error("every path crosses level 2; blocking it must cut all paths")
	}
	// Allow one middle cut back.
	holeAt := func(_ *computation.Computation, k computation.Cut) bool {
		return k.Size() != 2 || (k[0] == 1 && k[1] == 1)
	}
	if !PathExists(c, from, to, holeAt) {
		t.Error("path through the single allowed middle cut must exist")
	}
	if !PathExists(c, from, from, nil) {
		t.Error("trivial path from a cut to itself")
	}
}

func TestRunsGrid(t *testing.T) {
	// Runs of an n x m grid = binomial(n+m, n).
	c := grid(2, 2)
	n := 0
	Runs(c, func(run []computation.EventID) bool {
		if len(run) != 4 {
			t.Fatalf("run length %d, want 4", len(run))
		}
		n++
		return true
	})
	if n != 6 {
		t.Errorf("runs = %d, want C(4,2) = 6", n)
	}
}

func TestRunsAreLinearizations(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	c := randomComputation(rng, 3, 3)
	Runs(c, func(run []computation.EventID) bool {
		pos := make(map[computation.EventID]int, len(run))
		for i, id := range run {
			pos[id] = i
		}
		for _, a := range run {
			for _, b := range run {
				if c.Precedes(a, b) && pos[a] > pos[b] {
					t.Fatalf("run violates order: %v before %v", c.Event(b), c.Event(a))
				}
			}
		}
		return true
	})
}

func TestRunsEarlyStop(t *testing.T) {
	c := grid(3, 3)
	n := 0
	Runs(c, func([]computation.EventID) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop: %d visits, want 1", n)
	}
}

func TestSumRange(t *testing.T) {
	// p0: x goes 0 -> 1 -> 2; p1: y goes 0 -> -1. Independent.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a1 := c.AddInternal(p0)
	a2 := c.AddInternal(p0)
	b1 := c.AddInternal(p1)
	c.SetVar("x", a1, 1)
	c.SetVar("x", a2, 2)
	c.SetVar("x", b1, -1)
	c.MustSeal()
	min, max := SumRange(c, "x")
	if min != -1 || max != 2 {
		t.Errorf("SumRange = [%d,%d], want [-1,2]", min, max)
	}
}

func TestRunExtremes(t *testing.T) {
	// Two processes, each flips its variable 0 -> 1. Sum goes 0..2; every
	// run passes through sum=1: maxOfMins = 0 (initial), minOfMaxes = 2
	// (final); more interestingly each run's min is 0 and max is 2 here.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	c.SetVar("x", a, 1)
	c.SetVar("x", b, 1)
	c.MustSeal()
	maxOfMins, minOfMaxes := RunExtremes(c, "x")
	if maxOfMins != 0 {
		t.Errorf("maxOfMins = %d, want 0", maxOfMins)
	}
	if minOfMaxes != 2 {
		t.Errorf("minOfMaxes = %d, want 2", minOfMaxes)
	}
}
