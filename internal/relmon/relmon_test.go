package relmon

import (
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/vclock"
)

// replay streams a random two-process computation through the monitor in
// a random linearization, with online vector clocks, and returns the
// monitor.
func replay(t *testing.T, rng *rand.Rand, c *computation.Computation) *SumMonitor {
	t.Helper()
	m := NewSumMonitor()
	clocks := []*vclock.Clock{vclock.NewClock(0, 2), vclock.NewClock(1, 2)}
	stampOf := make(map[computation.EventID]vclock.VC)
	// Initial states first (zero clocks are fine: nothing is known).
	m.Observe(0, c.Var("x", c.Initial(0).ID), clocks[0].Now())
	m.Observe(1, c.Var("x", c.Initial(1).ID), clocks[1].Now())
	k := c.InitialCut()
	for !k.Equal(c.FinalCut()) {
		en := c.Enabled(k)
		id := en[rng.Intn(len(en))]
		e := c.Event(id)
		var incoming vclock.VC
		for _, pre := range c.DirectPreds(id) {
			if c.Event(pre).Proc != e.Proc {
				if incoming == nil {
					incoming = stampOf[pre].Clone()
				} else {
					incoming.Merge(stampOf[pre])
				}
			}
		}
		var stamp vclock.VC
		if incoming != nil {
			stamp = clocks[int(e.Proc)].Receive(incoming)
		} else {
			stamp = clocks[int(e.Proc)].Event()
		}
		stampOf[id] = stamp
		m.Observe(int(e.Proc), c.Var("x", id), stamp)
		k = c.Execute(k, e.Proc)
	}
	return m
}

func randomTwoProc(rng *rand.Rand) *computation.Computation {
	c := computation.New()
	for p := 0; p < 2; p++ {
		c.AddProcess()
		v := int64(rng.Intn(3) - 1)
		c.SetVar("x", c.Initial(computation.ProcID(p)).ID, v)
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			id := c.AddInternal(computation.ProcID(p))
			v += int64(rng.Intn(3) - 1)
			c.SetVar("x", id, v)
		}
	}
	for tries := 0; tries < 6; tries++ {
		p := computation.ProcID(rng.Intn(2))
		q := 1 - p
		i := 1 + rng.Intn(c.Len(p)-1)
		j := 1 + rng.Intn(c.Len(q)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
		}
	}
	return c.MustSeal()
}

func TestOnlineMatchesOfflineSumRange(t *testing.T) {
	rng := rand.New(rand.NewSource(457))
	for trial := 0; trial < 200; trial++ {
		c := randomTwoProc(rng)
		m := replay(t, rng, c)
		if !m.Known() {
			t.Fatalf("trial %d: no consistent pair observed", trial)
		}
		wantMin, wantMax := relsum.SumRange(c, "x")
		if m.Min() != wantMin || m.Max() != wantMax {
			t.Fatalf("trial %d: online [%d,%d], offline [%d,%d]",
				trial, m.Min(), m.Max(), wantMin, wantMax)
		}
		for k := wantMin - 1; k <= wantMax+1; k++ {
			want := k >= wantMin && k <= wantMax
			if got := m.PossiblyEq(k); got != want {
				t.Fatalf("trial %d: PossiblyEq(%d) = %v, want %v", trial, k, got, want)
			}
		}
	}
}

func TestPruningBoundsMemory(t *testing.T) {
	// A tightly synchronized ping-pong: the queues must stay small even
	// after many observations.
	m := NewSumMonitor()
	c0 := vclock.NewClock(0, 2)
	c1 := vclock.NewClock(1, 2)
	m.Observe(0, 0, c0.Now())
	m.Observe(1, 0, c1.Now())
	for round := 0; round < 500; round++ {
		s := c0.Send()
		m.Observe(0, int64(round%2), s)
		r := c1.Receive(s)
		m.Observe(1, int64(round%3), r)
		s2 := c1.Send()
		m.Observe(1, 0, s2)
		r2 := c0.Receive(s2)
		m.Observe(0, 0, r2)
	}
	stored, pruned := m.Stats()
	if stored > 8 {
		t.Fatalf("stored %d states; pruning broken", stored)
	}
	if pruned < 1000 {
		t.Fatalf("pruned only %d states over 2000 observations", pruned)
	}
}

func TestUnsynchronizedKeepsAll(t *testing.T) {
	// With no messages everything is concurrent: every pair is
	// consistent and min/max must span all combinations.
	m := NewSumMonitor()
	c0 := vclock.NewClock(0, 2)
	c1 := vclock.NewClock(1, 2)
	m.Observe(0, 0, c0.Now())
	m.Observe(1, 0, c1.Now())
	vals0 := []int64{1, -2, 3}
	vals1 := []int64{5, -1}
	for _, v := range vals0 {
		m.Observe(0, v, c0.Event())
	}
	for _, v := range vals1 {
		m.Observe(1, v, c1.Event())
	}
	if m.Min() != -3 { // -2 + -1
		t.Errorf("Min = %d, want -3", m.Min())
	}
	if m.Max() != 8 { // 3 + 5
		t.Errorf("Max = %d, want 8", m.Max())
	}
}

func TestKnownBeforeAnyPair(t *testing.T) {
	m := NewSumMonitor()
	if m.Known() {
		t.Fatal("empty monitor cannot know anything")
	}
	if m.PossiblyEq(0) {
		t.Fatal("PossiblyEq must be false before any pair")
	}
	c0 := vclock.NewClock(0, 2)
	m.Observe(0, 1, c0.Now())
	if m.Known() {
		t.Fatal("a single process state forms no pair")
	}
}
