// Package relmon provides online monitoring of two-process relational sum
// predicates, in the spirit of Garg & Waldecker's original unstable-
// predicate detector ([8] in the paper): two processes stream their local
// states (variable value plus vector timestamp) to a checker that
// maintains the exact minimum and maximum of x0 + x1 over all consistent
// state pairs seen so far. Any Possibly(x0 + x1 relop k) query is then
// answered immediately, while the paper's Theorem 7 extends equality
// queries to unit-step variables.
//
// The checker stores only states that may still pair with a future state
// of the other process: once the other process's latest state causally
// knows a state's successor, that state can never again be part of a
// consistent pair and is pruned — the same elimination inequality that
// drives conjunctive detection. Under regular synchronization the queues
// stay O(1).
package relmon

import (
	"math"

	"github.com/distributed-predicates/gpd/internal/vclock"
)

// state is one reported local state.
type state struct {
	value int64
	vc    vclock.VC
}

// SumMonitor tracks min/max of x0 + x1 over consistent state pairs.
// Confine to one goroutine (wrap like monitor.Monitor for concurrency).
type SumMonitor struct {
	queues [2][]state
	min    int64
	max    int64
	seen   bool
	// Pruned counts discarded states; exported via Stats.
	pruned int
	stored int
}

// NewSumMonitor returns an empty monitor. Observe each process's states in
// local order, starting with its initial state (zero timestamp except the
// local component).
func NewSumMonitor() *SumMonitor {
	return &SumMonitor{min: math.MaxInt64, max: math.MinInt64}
}

// Observe reports the state of process p (0 or 1) with value v and vector
// timestamp vc (2 components). States of one process must arrive in local
// order; the two streams may interleave arbitrarily.
func (m *SumMonitor) Observe(p int, v int64, vc vclock.VC) {
	q := 1 - p
	s := state{value: v, vc: vc.Clone()}
	// Evaluate against every stored state of the other process that is
	// consistent with s: neither side's successor is known to the other.
	for _, o := range m.queues[q] {
		if s.vc[q] <= o.vc[q] && o.vc[p] <= s.vc[p] {
			sum := s.value + o.value
			if sum < m.min {
				m.min = sum
			}
			if sum > m.max {
				m.max = sum
			}
			m.seen = true
		}
	}
	// Prune other-process states whose successor s already knows: no
	// future state of p (knowing at least as much as s) can pair with
	// them.
	kept := m.queues[q][:0]
	for _, o := range m.queues[q] {
		if s.vc[q] > o.vc[q] {
			m.pruned++
			continue
		}
		kept = append(kept, o)
	}
	m.queues[q] = kept
	// Store s unless the other side's latest state already rules it out.
	if n := len(m.queues[q]); n > 0 {
		latest := m.queues[q][n-1]
		if latest.vc[p] > s.vc[p] {
			m.pruned++
			return
		}
	}
	m.queues[p] = append(m.queues[p], s)
	m.stored++
}

// Known reports whether at least one consistent pair has been observed.
func (m *SumMonitor) Known() bool { return m.seen }

// Min returns the minimum of x0 + x1 over all consistent pairs observed
// so far (undefined before Known).
func (m *SumMonitor) Min() int64 { return m.min }

// Max returns the maximum so far (undefined before Known).
func (m *SumMonitor) Max() int64 { return m.max }

// PossiblyEq reports whether x0 + x1 == k is possible given the states so
// far, assuming unit-step variables (Theorem 7(1): k is possible iff it
// lies within [Min, Max]).
func (m *SumMonitor) PossiblyEq(k int64) bool {
	return m.seen && m.min <= k && k <= m.max
}

// Stats returns bookkeeping counters: states currently stored and states
// pruned so far.
func (m *SumMonitor) Stats() (stored, pruned int) {
	return len(m.queues[0]) + len(m.queues[1]), m.pruned
}
