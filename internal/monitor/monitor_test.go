package monitor

import (
	"sync"
	"testing"
	"time"

	"github.com/distributed-predicates/gpd/internal/vclock"
)

func waitDetected(t *testing.T, m *Monitor) bool {
	t.Helper()
	select {
	case <-m.Detected():
		return true
	case <-time.After(2 * time.Second):
		return false
	}
}

func TestDetectsConcurrentTrueEvents(t *testing.T) {
	m := New(2, []int{0, 1})
	defer m.Shutdown()
	p0 := m.Probe(0)
	p1 := m.Probe(1)
	p0.Internal(true)
	p1.Internal(true)
	if !waitDetected(t, m) {
		t.Fatal("concurrent true events not detected")
	}
	w := m.Witness()
	if len(w) != 2 {
		t.Fatalf("witness = %v", w)
	}
}

func TestDoesNotDetectOrderedTrueEvents(t *testing.T) {
	m := New(2, []int{0, 1})
	defer m.Shutdown()
	p0 := m.Probe(0)
	p1 := m.Probe(1)
	// p0 is true only before sending; p1 true only after receiving and
	// then a later local event on p0's side invalidates... Construct:
	// p0 true event, then p0 sends; p1 receives, then p1 true event.
	// The receive knows of 2 events on p0 > the true event's 1: the
	// pair is inconsistent and nothing else is true.
	p0.Internal(true)
	stamp := p0.Send(false)
	p1.Receive(stamp, false)
	p1.Internal(true)
	// Give the checker a moment.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-m.Detected():
		t.Fatal("ordered true events must not be detected")
	default:
	}
	if m.Witness() != nil {
		t.Fatal("witness must be nil")
	}
}

func TestDetectsAfterElimination(t *testing.T) {
	m := New(2, []int{0, 1})
	defer m.Shutdown()
	p0 := m.Probe(0)
	p1 := m.Probe(1)
	// First p0 true event is superseded (p1 has seen past it), but a
	// second, concurrent one completes the conjunction.
	p0.Internal(true)
	stamp := p0.Send(false)
	p1.Receive(stamp, false)
	p1.Internal(true)
	p0.Internal(true)
	if !waitDetected(t, m) {
		t.Fatal("fresh concurrent true event not detected")
	}
}

func TestConcurrentProcessesGoroutines(t *testing.T) {
	// Three goroutine processes exchanging stamped messages over Go
	// channels; each becomes true once. All true events are concurrent
	// (no messages between the flips), so detection must fire.
	const n = 3
	m := New(n, []int{0, 1, 2})
	defer m.Shutdown()
	chans := make([]chan vclock.VC, n)
	for i := range chans {
		chans[i] = make(chan vclock.VC, n)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			pr := m.Probe(me)
			pr.Internal(false)
			pr.Internal(true) // the conjunct flips true
			// Then gossip to everyone (after the true events, so the
			// true states remain pairwise consistent).
			stamp := pr.Send(true)
			for j := 0; j < n; j++ {
				if j != me {
					chans[j] <- stamp
				}
			}
			for j := 0; j < n-1; j++ {
				pr.Receive(<-chans[me], true)
			}
		}(i)
	}
	wg.Wait()
	if !waitDetected(t, m) {
		t.Fatal("conjunction not detected in goroutine run")
	}
	w := m.Witness()
	if len(w) != 3 {
		t.Fatalf("witness = %v", w)
	}
	// Witness must be pairwise consistent: no component observed past
	// another's own component.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && w[j][i] > w[i][i] {
				t.Fatalf("witness not consistent: w[%d]=%v has seen past w[%d]=%v", j, w[j], i, w[i])
			}
		}
	}
}

func TestShutdownUnblocksProbes(t *testing.T) {
	m := New(1, []int{0})
	p0 := m.Probe(0)
	m.Shutdown()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			p0.Internal(true) // must not block after shutdown
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("probe blocked after shutdown")
	}
}

func TestWitnessIsCopy(t *testing.T) {
	m := New(2, []int{0, 1})
	defer m.Shutdown()
	m.Probe(0).Internal(true)
	m.Probe(1).Internal(true)
	if !waitDetected(t, m) {
		t.Fatal("not detected")
	}
	w := m.Witness()
	w[0][0] = 99
	if m.Witness()[0][0] == 99 {
		t.Fatal("Witness must return a copy")
	}
}

func TestProbeSendCarriesTruth(t *testing.T) {
	m := New(2, []int{0, 1})
	defer m.Shutdown()
	p0 := m.Probe(0)
	p1 := m.Probe(1)
	// A true SEND event must be reported like any other true event. The
	// sender's state remains true while the message is in flight, so it
	// is consistent with the receiver's post-delivery true state: the
	// conjunction must be detected.
	stamp := p0.Send(true)
	p1.Receive(stamp, true)
	if !waitDetected(t, m) {
		t.Fatal("send-reported truth did not participate in detection")
	}
}
