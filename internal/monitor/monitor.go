// Package monitor provides passive online detection of weak conjunctive
// predicates in a running (or simulated) distributed application, in the
// style of Garg & Waldecker: every process carries a Probe that maintains
// its vector clock and reports the timestamps of its true events to a
// central checker goroutine; the checker runs the queue-elimination
// algorithm (conjunctive.Checker) incrementally and announces the first
// consistent global state in which every local predicate holds.
//
// The monitor is transport-agnostic: applications call Probe.Send to stamp
// outgoing messages and Probe.Receive on delivery, piggybacking the vector
// clocks on whatever channel they already use.
package monitor

import (
	"sync"

	"github.com/distributed-predicates/gpd/internal/conjunctive"
	"github.com/distributed-predicates/gpd/internal/vclock"
)

// Monitor owns the checker goroutine.
type Monitor struct {
	n        int
	obs      chan observation
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	detected chan struct{}

	mu      sync.Mutex
	witness []vclock.VC
}

type observation struct {
	proc int
	vc   vclock.VC
}

// New starts a monitor for n processes, detecting the conjunction of the
// local predicates of the involved processes. Call Shutdown when done.
func New(n int, involved []int) *Monitor {
	m := &Monitor{
		n:        n,
		obs:      make(chan observation, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		detected: make(chan struct{}),
	}
	checker := conjunctive.NewChecker(involved)
	go m.run(checker)
	return m
}

// run is the checker loop; it is the only goroutine touching checker.
func (m *Monitor) run(checker *conjunctive.Checker) {
	defer close(m.done)
	found := false
	for {
		select {
		case o := <-m.obs:
			if !found && checker.Observe(o.proc, o.vc) {
				found = true
				m.mu.Lock()
				m.witness = checker.Witness()
				m.mu.Unlock()
				close(m.detected)
			}
		case <-m.stop:
			return
		}
	}
}

// Detected returns a channel closed when the predicate has been detected.
func (m *Monitor) Detected() <-chan struct{} { return m.detected }

// Witness returns the vector timestamps of the detected true events (one
// per involved process), or nil if nothing has been detected yet.
func (m *Monitor) Witness() []vclock.VC {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.witness == nil {
		return nil
	}
	out := make([]vclock.VC, len(m.witness))
	for i, vc := range m.witness {
		out[i] = vc.Clone()
	}
	return out
}

// Shutdown stops the checker goroutine and waits for it to exit. It is
// idempotent and safe to call from multiple goroutines, including
// concurrently with in-flight Probe reports (reports select on the stop
// channel and fall through once it closes).
func (m *Monitor) Shutdown() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Probe instruments one application process. A Probe is confined to its
// process's goroutine; only the report channel crosses goroutines.
type Probe struct {
	mon   *Monitor
	clock *vclock.Clock
}

// Probe creates the instrument for process p.
func (m *Monitor) Probe(p int) *Probe {
	return &Probe{mon: m, clock: vclock.NewClock(p, m.n)}
}

// report sends a true-event timestamp to the checker, not blocking forever
// if the monitor has been shut down.
func (pr *Probe) report(vc vclock.VC) {
	select {
	case pr.mon.obs <- observation{proc: pr.clock.Self(), vc: vc}:
	case <-pr.mon.stop:
	}
}

// Internal records an internal event; truth is the local predicate value
// in the new state.
func (pr *Probe) Internal(truth bool) {
	vc := pr.clock.Event()
	if truth {
		pr.report(vc)
	}
}

// Send records a send event and returns the vector timestamp to piggyback
// on the outgoing message.
func (pr *Probe) Send(truth bool) vclock.VC {
	vc := pr.clock.Send()
	if truth {
		pr.report(vc)
	}
	return vc
}

// Receive records the delivery of a message carrying the given timestamp.
func (pr *Probe) Receive(stamp vclock.VC, truth bool) {
	vc := pr.clock.Receive(stamp)
	if truth {
		pr.report(vc)
	}
}
