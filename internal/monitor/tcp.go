package monitor

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/distributed-predicates/gpd/internal/obs"
	"github.com/distributed-predicates/gpd/internal/vclock"
)

// This file provides a TCP transport for the online checker, so monitored
// processes can run in separate OS processes or machines: each process
// dials the checker and streams newline-delimited JSON observations; the
// checker answers each with the current detection status, and pushes the
// final witness to anyone who asks.

// wireObservation is one reported true event.
type wireObservation struct {
	Proc int       `json:"proc"`
	VC   vclock.VC `json:"vc"`
}

// wireStatus is the checker's reply to every observation.
type wireStatus struct {
	Detected bool        `json:"detected"`
	Witness  []vclock.VC `json:"witness,omitempty"`
}

// Server runs the conjunctive checker behind a TCP listener.
type Server struct {
	mon *Monitor
	ln  net.Listener

	idleTimeout  time.Duration // max silence before a peer is disconnected
	writeTimeout time.Duration // max stall writing a status reply
	logger       *slog.Logger
	flight       *obs.Flight

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Option configures a Server.
type Option func(*Server)

// WithIdleTimeout bounds how long a connection may stay silent between
// observations before the server disconnects it; zero means no limit. A
// hung or stalled peer therefore cannot pin a serve goroutine (and its
// buffers) forever.
func WithIdleTimeout(d time.Duration) Option {
	return func(s *Server) { s.idleTimeout = d }
}

// WithWriteTimeout bounds how long the server may block writing a status
// reply to a peer that has stopped reading; zero means no limit.
func WithWriteTimeout(d time.Duration) Option {
	return func(s *Server) { s.writeTimeout = d }
}

// WithLogger routes the server's structured connection-lifecycle logs
// (debug level) to l; the default discards them.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithFlight leaves per-observation lifecycle records in the flight
// recorder (shard -1: the checker is unsharded, so its records land on
// the transport track).
func WithFlight(f *obs.Flight) Option {
	return func(s *Server) { s.flight = f }
}

// discardLogger rejects every record at the level gate, so disabled
// logging costs one Enabled call.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// ListenAndServe starts a checker server on addr (e.g. "127.0.0.1:0") for
// n processes and the given involved set. Close releases it.
func ListenAndServe(addr string, n int, involved []int, opts ...Option) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listen: %w", err)
	}
	s := &Server{
		mon:          New(n, involved),
		ln:           ln,
		writeTimeout: 30 * time.Second,
		logger:       discardLogger(),
		conns:        make(map[net.Conn]struct{}),
		done:         make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address to hand to probes.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Detected exposes the underlying monitor's detection channel.
func (s *Server) Detected() <-chan struct{} { return s.mon.Detected() }

// Witness exposes the underlying monitor's witness.
func (s *Server) Witness() []vclock.VC { return s.mon.Witness() }

// Close stops accepting, closes all connections and shuts the checker
// down. It is idempotent: repeated calls return the first error. Closing
// the connections unblocks any serve goroutine stuck on a hung peer, so
// Close never wedges behind one.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.closeErr = s.ln.Close()
		// Snapshot under the lock, close outside it: net.Conn.Close is
		// I/O and must not run while holding s.mu (serve goroutines take
		// the same lock to deregister, and a stalled close would wedge
		// them behind it).
		s.mu.Lock()
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		s.wg.Wait()
		s.mon.Shutdown()
	})
	return s.closeErr
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error: keep serving.
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	peer := conn.RemoteAddr().String()
	s.logger.Debug("probe connected", "peer", peer)
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.flight.Record(obs.FlightRecord{
			Session: peer, Shard: -1, Proc: -1,
			Stage: obs.StageDisconnect, Detail: "probe disconnected",
		})
		s.logger.Debug("probe disconnected", "peer", peer)
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	announced := false // first Detected=true reply on this connection
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return // connection already dead; without the deadline a silent probe would hold the goroutine forever
			}
		}
		var wobs wireObservation
		if err := dec.Decode(&wobs); err != nil {
			return // EOF, deadline or broken connection: the probe is done
		}
		s.flight.Record(obs.FlightRecord{
			Seq: s.flight.NextSeq(), Session: peer, Shard: -1, Proc: wobs.Proc,
			Stage: obs.StageRecv, Detail: "observation",
		})
		// Forward into the checker goroutine.
		select {
		case s.mon.obs <- observation{proc: wobs.Proc, vc: wobs.VC}:
		case <-s.mon.stop:
			return
		}
		st := wireStatus{}
		// The checker processes observations asynchronously; report
		// the status as of now (detection latches, so a positive
		// answer is always correct and a lagging negative is refined
		// by the next observation or by Detected()).
		select {
		case <-s.mon.Detected():
			st.Detected = true
			st.Witness = s.mon.Witness()
		default:
		}
		if st.Detected && !announced {
			announced = true
			s.flight.Record(obs.FlightRecord{
				Session: peer, Shard: -1, Proc: wobs.Proc,
				Stage: obs.StageVerdict, Detail: "detection announced",
			})
			s.logger.Info("detection announced", "peer", peer, "proc", wobs.Proc)
		}
		if s.writeTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
				return // connection already dead; an unarmed deadline would let a stalled probe wedge the reply
			}
		}
		if err := enc.Encode(st); err != nil {
			return
		}
	}
}

// RemoteProbe instruments one process against a remote checker server. It
// owns the process's vector clock, like Probe, but ships observations
// over TCP. Confine a RemoteProbe to one goroutine.
type RemoteProbe struct {
	clock    *vclock.Clock
	conn     net.Conn
	enc      *json.Encoder
	dec      *json.Decoder
	detected bool
}

// DialProbe connects process p (of n) to the checker at addr.
func DialProbe(addr string, p, n int) (*RemoteProbe, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: dial checker: %w", err)
	}
	return &RemoteProbe{
		clock: vclock.NewClock(p, n),
		conn:  conn,
		enc:   json.NewEncoder(conn),
		dec:   json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Close releases the connection.
func (rp *RemoteProbe) Close() error { return rp.conn.Close() }

// Detected reports whether the checker has announced detection on this
// connection.
func (rp *RemoteProbe) Detected() bool { return rp.detected }

func (rp *RemoteProbe) report(vc vclock.VC) error {
	if err := rp.enc.Encode(wireObservation{Proc: rp.clock.Self(), VC: vc}); err != nil {
		return fmt.Errorf("monitor: send observation: %w", err)
	}
	var st wireStatus
	if err := rp.dec.Decode(&st); err != nil {
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("monitor: checker closed the connection: %w", err)
		}
		return fmt.Errorf("monitor: read status: %w", err)
	}
	if st.Detected {
		rp.detected = true
	}
	return nil
}

// Internal records an internal event, reporting it when truth holds.
func (rp *RemoteProbe) Internal(truth bool) error {
	vc := rp.clock.Event()
	if truth {
		return rp.report(vc)
	}
	return nil
}

// Send records a send event and returns the timestamp to piggyback.
func (rp *RemoteProbe) Send(truth bool) (vclock.VC, error) {
	vc := rp.clock.Send()
	if truth {
		if err := rp.report(vc); err != nil {
			return nil, err
		}
	}
	return vc, nil
}

// Receive records a message delivery carrying the given timestamp.
func (rp *RemoteProbe) Receive(stamp vclock.VC, truth bool) error {
	vc := rp.clock.Receive(stamp)
	if truth {
		return rp.report(vc)
	}
	return nil
}
