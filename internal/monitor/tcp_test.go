package monitor

import (
	"sync"
	"testing"
	"time"
)

func TestTCPDetectsConcurrentTrueEvents(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p0, err := DialProbe(s.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := DialProbe(s.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	if err := p1.Internal(true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Detected():
	case <-time.After(3 * time.Second):
		t.Fatal("detection did not fire over TCP")
	}
	if w := s.Witness(); len(w) != 2 {
		t.Fatalf("witness = %v", w)
	}
}

func TestTCPOrderedNotDetected(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p0, err := DialProbe(s.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := DialProbe(s.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	// p0 true, then sends (false state); p1 receives then its only true
	// event — inconsistent with p0's.
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	stamp, err := p0.Send(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Receive(stamp, false); err != nil {
		t.Fatal(err)
	}
	if err := p1.Internal(true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	select {
	case <-s.Detected():
		t.Fatal("ordered true events must not be detected")
	default:
	}
}

func TestTCPStatusPiggyback(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p0, err := DialProbe(s.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := DialProbe(s.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	if err := p1.Internal(true); err != nil {
		t.Fatal(err)
	}
	<-s.Detected()
	// The next report must carry detected=true back to the probe.
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	if !p0.Detected() {
		t.Fatal("probe did not learn about the detection")
	}
}

func TestTCPManyProcessesConcurrently(t *testing.T) {
	const n = 5
	involved := []int{0, 1, 2, 3, 4}
	s, err := ListenAndServe("127.0.0.1:0", n, involved)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			pr, err := DialProbe(s.Addr(), me, n)
			if err != nil {
				t.Error(err)
				return
			}
			defer pr.Close()
			// A few false internal steps, then the true event; no
			// messages so all true events are concurrent.
			pr.Internal(false)
			pr.Internal(false)
			if err := pr.Internal(true); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	select {
	case <-s.Detected():
	case <-time.After(3 * time.Second):
		t.Fatal("five concurrent true events not detected")
	}
	w := s.Witness()
	if len(w) != n {
		t.Fatalf("witness size %d, want %d", len(w), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && w[j][i] > w[i][i] {
				t.Fatalf("witness not pairwise consistent: %v", w)
			}
		}
	}
}

func TestServerCloseUnblocks(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := DialProbe(s.Addr(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	// Reporting after close fails but must not hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = pr.Internal(true)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("probe hung after server close")
	}
	pr.Close()
}

func TestDialFailure(t *testing.T) {
	if _, err := DialProbe("127.0.0.1:1", 0, 1); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}
