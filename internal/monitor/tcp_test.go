package monitor

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/distributed-predicates/gpd/internal/obs"
)

func TestTCPDetectsConcurrentTrueEvents(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p0, err := DialProbe(s.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := DialProbe(s.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	if err := p1.Internal(true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Detected():
	case <-time.After(3 * time.Second):
		t.Fatal("detection did not fire over TCP")
	}
	if w := s.Witness(); len(w) != 2 {
		t.Fatalf("witness = %v", w)
	}
}

func TestTCPOrderedNotDetected(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p0, err := DialProbe(s.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := DialProbe(s.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	// p0 true, then sends (false state); p1 receives then its only true
	// event — inconsistent with p0's.
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	stamp, err := p0.Send(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Receive(stamp, false); err != nil {
		t.Fatal(err)
	}
	if err := p1.Internal(true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	select {
	case <-s.Detected():
		t.Fatal("ordered true events must not be detected")
	default:
	}
}

func TestTCPStatusPiggyback(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p0, err := DialProbe(s.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := DialProbe(s.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	if err := p1.Internal(true); err != nil {
		t.Fatal(err)
	}
	<-s.Detected()
	// The next report must carry detected=true back to the probe.
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	if !p0.Detected() {
		t.Fatal("probe did not learn about the detection")
	}
}

func TestTCPManyProcessesConcurrently(t *testing.T) {
	const n = 5
	involved := []int{0, 1, 2, 3, 4}
	s, err := ListenAndServe("127.0.0.1:0", n, involved)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			pr, err := DialProbe(s.Addr(), me, n)
			if err != nil {
				t.Error(err)
				return
			}
			defer pr.Close()
			// A few false internal steps, then the true event; no
			// messages so all true events are concurrent.
			pr.Internal(false)
			pr.Internal(false)
			if err := pr.Internal(true); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	select {
	case <-s.Detected():
	case <-time.After(3 * time.Second):
		t.Fatal("five concurrent true events not detected")
	}
	w := s.Witness()
	if len(w) != n {
		t.Fatalf("witness size %d, want %d", len(w), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && w[j][i] > w[i][i] {
				t.Fatalf("witness not pairwise consistent: %v", w)
			}
		}
	}
}

func TestServerCloseUnblocks(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := DialProbe(s.Addr(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	// Reporting after close fails but must not hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = pr.Internal(true)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("probe hung after server close")
	}
	pr.Close()
}

func TestDialFailure(t *testing.T) {
	if _, err := DialProbe("127.0.0.1:1", 0, 1); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

// TestTCPFlightAndLogs runs a detection with the flight recorder and a
// structured logger attached: observations leave recv records, the
// first positive status a verdict record, closed probes disconnect
// records, and the detection announcement lands in the log.
func TestTCPFlightAndLogs(t *testing.T) {
	fl := obs.NewFlight(64)
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1}, WithFlight(fl), WithLogger(logger))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p0, err := DialProbe(s.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := DialProbe(s.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	if err := p1.Internal(true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Detected():
	case <-time.After(3 * time.Second):
		t.Fatal("detection did not fire over TCP")
	}
	// The verdict record rides the status reply of a later observation;
	// poke until it lands (the reply that carried the detection may race
	// the Detected() channel).
	deadline := time.Now().Add(3 * time.Second)
	for !hasStage(fl, obs.StageVerdict) {
		if time.Now().After(deadline) {
			t.Fatalf("no verdict record; ring: %+v", fl.Snapshot())
		}
		if err := p0.Internal(true); err != nil {
			t.Fatal(err)
		}
	}
	p0.Close()
	p1.Close()
	for !hasStage(fl, obs.StageDisconnect) {
		if time.Now().After(deadline) {
			t.Fatalf("no disconnect record; ring: %+v", fl.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	if !hasStage(fl, obs.StageRecv) {
		t.Errorf("no recv records; ring: %+v", fl.Snapshot())
	}
	for _, r := range fl.Snapshot() {
		if r.Shard != -1 {
			t.Errorf("monitor record on shard %d, want -1 (transport): %+v", r.Shard, r)
		}
	}
	logged := logBuf.String()
	for _, want := range []string{"probe connected", "detection announced", "probe disconnected"} {
		if !strings.Contains(logged, want) {
			t.Errorf("log missing %q:\n%s", want, logged)
		}
	}
}

// hasStage reports whether the ring holds a record at the given stage.
func hasStage(fl *obs.Flight, stage obs.FlightStage) bool {
	for _, r := range fl.Snapshot() {
		if r.Stage == stage {
			return true
		}
	}
	return false
}

// syncBuffer is a mutex-guarded strings.Builder: the slog handler
// writes from serve goroutines while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}
