package monitor

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestShutdownIdempotent verifies that Shutdown can be called repeatedly
// and from multiple goroutines without panicking (regression: a second
// Shutdown used to close an already-closed channel).
func TestShutdownIdempotent(t *testing.T) {
	m := New(2, []int{0, 1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Shutdown()
		}()
	}
	wg.Wait()
	m.Shutdown() // and once more after everything is down
}

// TestShutdownDuringReports races Shutdown against probes that are still
// reporting; run under -race this pins the safety of the stop path.
func TestShutdownDuringReports(t *testing.T) {
	m := New(3, []int{0, 1, 2})
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pr := m.Probe(p)
			for i := 0; i < 1000; i++ {
				pr.Internal(i%2 == 0)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		m.Shutdown()
		m.Shutdown()
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return while probes were reporting")
	}
}

// TestServerCloseIdempotent covers the TCP wrapper: double Close must not
// panic and must return the same error.
func TestServerCloseIdempotent(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestStalledPeerDisconnected verifies the idle timeout: a peer that
// connects and then goes silent is disconnected instead of pinning a
// serve goroutine forever, and the server still serves working probes.
func TestStalledPeerDisconnected(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", 2, []int{0, 1},
		WithIdleTimeout(50*time.Millisecond), WithWriteTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The stalled peer: dials and never writes.
	stalled, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// The server must hang up on it: a read on our side sees EOF/reset.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := stalled.Read(buf); err == nil {
		t.Fatal("expected the server to disconnect the stalled peer")
	}

	// Meanwhile live probes still work end to end.
	p0, err := DialProbe(s.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := DialProbe(s.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if err := p0.Internal(true); err != nil {
		t.Fatal(err)
	}
	if err := p1.Internal(true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Detected():
	case <-time.After(5 * time.Second):
		t.Fatal("no detection after both probes reported true")
	}
}
