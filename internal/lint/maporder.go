package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// orderSensitivePkgs are the module-relative prefixes whose outputs are
// compared run-for-run: the theory core and detector kernel (replay and
// agreement tests diff reports, witnesses, and work counters), the
// serving layers (stats snapshots and flight records feed goldens and
// CI scrapes), and this lint suite itself (its findings are diffed
// against a committed baseline). In these packages a map range whose
// iteration order reaches an output is a reproducibility bug — the
// exact class that leaked into conjunctive's work counters before the
// elimination order was canonicalized.
var orderSensitivePkgs = []string{
	"internal/lattice", "internal/chains", "internal/linear",
	"internal/maxflow", "internal/core", "internal/detect", "internal/pred",
	"internal/conjunctive", "internal/cnf", "internal/slicing",
	"internal/stream", "internal/mux", "internal/obs", "internal/lint",
}

// AnalyzerMapOrder flags map-range loops whose iteration order can
// escape the loop, in packages whose outputs must be deterministic.
//
// A loop escapes order when its body:
//
//   - appends an iteration-derived value to a slice declared outside the
//     loop, and the slice is not passed to a sort/slices.Sort* call later
//     in the same function ("collect then sort" is the sanctioned idiom);
//   - concatenates an iteration-derived value onto an outer string;
//   - feeds an iteration-derived argument to a method on outer state
//     whose result is discarded (reports, counters, trace sinks — a
//     fire-and-forget consumer sees the entries in map order; calls
//     whose results are consumed are treated as reads);
//   - returns an iteration-derived value (which entry wins the selection
//     depends on map order);
//   - exits early (break/return) after an order-dependent effect: a
//     write of an iteration-derived value to outer state, or a compound
//     accumulation on an outer variable (which iteration the exit lands
//     on — and so the counter value — depends on the order).
//
// Keyed writes (out[k] = v), commutative accumulation without an early
// exit (sum += v), and deleting the current key are order-independent
// and pass.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not escape into reports, counters, witnesses, or appended slices in deterministic packages",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !relPathMatches(pass.Pkg.RelPath, orderSensitivePkgs) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(pass.Pkg, rs.X) {
					return true
				}
				checkMapRange(pass, fd, rs)
				return true
			})
		}
	}
}

// mapRange carries the per-loop analysis state.
type mapRange struct {
	pass *Pass
	fd   *ast.FuncDecl
	rs   *ast.RangeStmt
	// iterObjs are the loop's key/value variables.
	iterObjs map[types.Object]bool
	// rangedObj is the root of the ranged expression, for the delete-
	// current-key exemption and the messages.
	rangedObj types.Object
	// reported dedupes findings per site (chained calls share a start
	// position and would double-report).
	reported map[token.Pos]bool
}

func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	mr := &mapRange{pass: pass, fd: fd, rs: rs,
		iterObjs: make(map[types.Object]bool), reported: make(map[token.Pos]bool)}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				mr.iterObjs[obj] = true
			} else if obj := pass.Pkg.Info.Uses[id]; obj != nil {
				mr.iterObjs[obj] = true
			}
		}
	}
	if root := rootIdent(rs.X); root != nil {
		mr.rangedObj = pass.Pkg.Info.Uses[root]
	}
	mr.walkBody()
}

// iterDerived reports whether the expression varies with the iteration:
// it mentions a key/value variable or anything declared inside the loop
// body.
func (mr *mapRange) iterDerived(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if mentionsAny(mr.pass.Pkg, e, mr.iterObjs) {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if declaredWithin(mr.pass.Pkg, id, mr.rs) {
				found = true
			}
		}
		return !found
	})
	return found
}

// outerRoot resolves the root object of an lvalue or receiver chain and
// reports whether it lives outside the loop.
func (mr *mapRange) outerRoot(e ast.Expr) (types.Object, bool) {
	root := rootIdent(e)
	if root == nil {
		return nil, false
	}
	obj := mr.pass.Pkg.Info.Uses[root]
	if obj == nil {
		obj = mr.pass.Pkg.Info.Defs[root]
	}
	if obj == nil || mr.iterObjs[obj] {
		return nil, false
	}
	if obj.Pos() >= mr.rs.Pos() && obj.Pos() <= mr.rs.End() {
		return nil, false // loop-local
	}
	return obj, true
}

// sortedAfter reports whether obj is handed to a sort call after pos in
// the enclosing function — the collect-then-sort idiom.
func (mr *mapRange) sortedAfter(obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(mr.fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !isSortCall(mr.pass.Pkg, call) {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil {
				if o := mr.pass.Pkg.Info.Uses[root]; o == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// walkBody scans the loop body for order escapes, in source order so
// the early-exit check knows which effects precede an exit.
func (mr *mapRange) walkBody() {
	effect := false // an order-dependent effect seen so far
	var walk func(s ast.Stmt)
	walkList := func(list []ast.Stmt) {
		for _, s := range list {
			walk(s)
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if mr.checkAssign(s) {
				effect = true
			}
		case *ast.IncDecStmt:
			if _, outer := mr.outerRoot(s.X); outer {
				effect = true // commutative alone; order-dependent under an early exit
			}
		case *ast.ExprStmt:
			if mr.checkCall(s.X, true) {
				effect = true
			}
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && effect {
				mr.reportf(s.Pos(), "early break out of a range over %s after an order-dependent effect; which iterations ran depends on map order — iterate sorted keys instead", mr.ranged())
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if mr.iterDerived(res) {
					mr.reportf(s.Pos(), "return of an iteration-dependent value from inside a range over %s; which entry wins depends on map order — iterate sorted keys instead", mr.ranged())
					break
				}
			}
			if effect {
				mr.reportf(s.Pos(), "return from inside a range over %s after an order-dependent effect; which iterations ran depends on map order — iterate sorted keys instead", mr.ranged())
			}
		case *ast.IfStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			walkList(s.Body.List)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.ForStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			walkList(s.Body.List)
			if s.Post != nil {
				walk(s.Post)
			}
		case *ast.RangeStmt:
			// Nested loops are analyzed on their own when they range a
			// map; their statements still count as this loop's effects.
			walkList(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.DeferStmt:
			if mr.checkCall(s.Call, true) {
				effect = true
			}
		case *ast.GoStmt:
			if mr.checkCall(s.Call, true) {
				effect = true
			}
		}
	}
	walkList(mr.rs.Body.List)
}

// checkAssign classifies one assignment inside the loop and reports the
// escaping shapes. It returns whether the assignment is an
// order-dependent effect for the early-exit analysis.
func (mr *mapRange) checkAssign(s *ast.AssignStmt) bool {
	effect := false
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs != nil && mr.checkCall(rhs, false) {
			effect = true
		}
		obj, outer := mr.outerRoot(lhs)
		if !outer {
			continue
		}
		// Keyed writes are order-independent: out[k] = v.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && mr.iterDerived(ix.Index) {
			continue
		}
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(mr.pass.Pkg, call) {
				if mr.appendEscapes(obj, call) {
					mr.reportf(s.Pos(), "range over %s appends iteration-dependent values to %s without a later sort; the slice's element order is map order — sort it (or the keys) before it escapes", mr.ranged(), obj.Name())
				}
				effect = true
				continue
			}
			if mr.iterDerived(rhs) {
				effect = true
				if isStringType(obj) && s.Tok == token.ASSIGN {
					// plain reassignment x = x + k handled by ADD below
					// only when spelled +=; check explicitly here.
					if bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok && bin.Op == token.ADD && mentionsObj(mr.pass.Pkg, bin, obj) {
						mr.reportf(s.Pos(), "range over %s concatenates iteration-dependent values onto %s; the result depends on map order — sort the keys first", mr.ranged(), obj.Name())
					}
				}
			}
		case token.ADD_ASSIGN:
			if isStringType(obj) && mr.iterDerived(rhs) {
				mr.reportf(s.Pos(), "range over %s concatenates iteration-dependent values onto %s; the result depends on map order — sort the keys first", mr.ranged(), obj.Name())
			}
			effect = true
		default: // other compound assignments accumulate
			effect = true
		}
	}
	return effect
}

// checkCall scans an expression for stateful-consumer calls: a method on
// outer state taking an iteration-derived argument sees the entries in
// map order. Only discarded calls (the expression is its own statement,
// or under go/defer) are reported as sinks — a call whose result is
// consumed is a read (c.EventAt(p, k) in a predicate), not a consumer.
// Returns whether anything order-dependent was found.
func (mr *mapRange) checkCall(e ast.Expr, discarded bool) bool {
	if e == nil {
		return false
	}
	effect := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, isDelete := builtinName(mr.pass.Pkg, call); isDelete && fn == "delete" {
			// delete(m, k) of the current key from the ranged map is the
			// sanctioned drain idiom; deleting from any other outer map
			// (or another key) makes the visit set order-dependent.
			if len(call.Args) == 2 {
				root := rootIdent(call.Args[0])
				sameMap := root != nil && mr.rangedObj != nil && mr.pass.Pkg.Info.Uses[root] == mr.rangedObj
				keyIsLoopKey := mr.isLoopKey(call.Args[1])
				if sameMap && keyIsLoopKey {
					return true
				}
				if mr.iterDerived(call.Args[1]) || sameMap {
					effect = true
				}
			}
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isSortCall(mr.pass.Pkg, call) {
			return true
		}
		recvRoot := callChainRoot(sel.X)
		if recvRoot == nil {
			return true
		}
		obj, outer := mr.outerRoot(recvRoot)
		if !outer {
			return true
		}
		// Only methods that can retain state matter; skip calls into the
		// standard library's pure value types via the package qualifier
		// (e.g. strconv.Itoa — obj is a PkgName, stateless by construction
		// only for funcs, so require a variable receiver).
		if _, isPkg := obj.(*types.PkgName); isPkg {
			return true
		}
		if !discarded {
			return true
		}
		for _, arg := range call.Args {
			if mr.iterDerived(arg) {
				effect = true
				mr.reportf(call.Pos(), "range over %s feeds iteration-dependent arguments to %s.%s; the consumer sees entries in map order — iterate sorted keys instead", mr.ranged(), obj.Name(), sel.Sel.Name)
				break
			}
		}
		return true
	})
	return effect
}

// appendEscapes reports whether the append call pushes iteration-derived
// values onto obj and no later sort fixes the order.
func (mr *mapRange) appendEscapes(obj types.Object, call *ast.CallExpr) bool {
	derived := false
	for _, arg := range call.Args[1:] {
		if mr.iterDerived(arg) {
			derived = true
			break
		}
	}
	if !derived {
		return false
	}
	return !mr.sortedAfter(obj, mr.rs.End())
}

// isLoopKey reports whether the expression is exactly the loop's key
// variable.
func (mr *mapRange) isLoopKey(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	key, ok := mr.rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	obj := mr.pass.Pkg.Info.Uses[id]
	if obj == nil {
		obj = mr.pass.Pkg.Info.Defs[id]
	}
	keyObj := mr.pass.Pkg.Info.Defs[key]
	if keyObj == nil {
		keyObj = mr.pass.Pkg.Info.Uses[key]
	}
	return obj != nil && obj == keyObj
}

// ranged renders the ranged expression for messages.
func (mr *mapRange) ranged() string {
	if mr.rangedObj != nil {
		return "map " + mr.rangedObj.Name()
	}
	return "a map"
}

func (mr *mapRange) reportf(pos token.Pos, format string, args ...any) {
	if mr.reported[pos] {
		return
	}
	mr.reported[pos] = true
	mr.pass.Reportf(pos, format, args...)
}

// mentionsObj reports whether the expression references the object.
func mentionsObj(pkg *Package, e ast.Expr, obj types.Object) bool {
	return mentionsAny(pkg, e, map[types.Object]bool{obj: true})
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	name, ok := builtinName(pkg, call)
	return ok && name == "append"
}

// builtinName resolves a call to a builtin function's name.
func builtinName(pkg *Package, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return "", false
	}
	return id.Name, true
}

// isStringType reports whether the object's type is string-kinded.
func isStringType(obj types.Object) bool {
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// callChainRoot peels a receiver chain down to the expression whose
// root identifier owns the state: a.b.C(x).D -> a.
func callChainRoot(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				e = sel.X
				continue
			}
			return nil
		case *ast.SelectorExpr:
			if rootIdent(x) != nil {
				return x
			}
			e = x.X
		default:
			return e
		}
	}
}
