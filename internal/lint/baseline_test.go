package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// maporderFindings runs the maporder analyzer over its fixture and
// returns the findings plus the fixture root they are relative to.
func maporderFindings(t *testing.T) (string, []Finding) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "maporder")
	pkgs := fixture(t, "maporder")
	findings := Run(pkgs, []*Analyzer{AnalyzerMapOrder})
	if len(findings) < 3 {
		t.Fatalf("maporder fixture yielded %d findings, want several", len(findings))
	}
	return dir, findings
}

func TestBaselineRoundTrip(t *testing.T) {
	dir, findings := maporderFindings(t)

	var buf bytes.Buffer
	if err := NewBaseline(dir, findings).Write(&buf); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	b, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	if got := b.New(dir, findings); len(got) != 0 {
		t.Errorf("full baseline left %d findings new, want 0: %v", len(got), got)
	}
	if msgs := b.Ratchet(findings); len(msgs) != 0 {
		t.Errorf("ratchet against own findings fired: %v", msgs)
	}

	// Dropping one entry must surface exactly that finding as new and
	// trip the ratchet for its rule.
	short := &Baseline{Version: baselineVersion, Findings: b.Findings[1:]}
	newOnes := short.New(dir, findings)
	if len(newOnes) != 1 {
		t.Fatalf("short baseline left %d findings new, want 1", len(newOnes))
	}
	if got := entryFor(dir, newOnes[0]); got != b.Findings[0] {
		t.Errorf("wrong finding surfaced: got %+v, want %+v", got, b.Findings[0])
	}
	msgs := short.Ratchet(findings)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "maporder") {
		t.Errorf("ratchet = %v, want one maporder violation", msgs)
	}

	// Duplicate findings are a multiset: a second copy of a baselined
	// finding is still new.
	doubled := append(append([]Finding(nil), findings...), findings[0])
	if got := b.New(dir, doubled); len(got) != 1 {
		t.Errorf("duplicated finding: %d new, want 1", len(got))
	}
}

func TestBaselinePathsAreModuleRelative(t *testing.T) {
	dir, findings := maporderFindings(t)
	for _, e := range NewBaseline(dir, findings).Findings {
		if filepath.IsAbs(e.File) || strings.Contains(e.File, `\`) {
			t.Errorf("baseline entry file %q is not a relative slash path", e.File)
		}
	}
}

func TestBaselineVersionMismatch(t *testing.T) {
	_, err := ReadBaseline(strings.NewReader(`{"version": 99, "findings": []}`))
	if err == nil || !strings.Contains(err.Error(), "-update-baseline") {
		t.Errorf("version mismatch error = %v, want mention of -update-baseline", err)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ".", nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings serialized as %q, want []", got)
	}
}

// TestSARIFShape runs a real analyzer over its fixture, renders SARIF,
// and checks the 2.1.0 shape GitHub code scanning depends on through a
// schema-agnostic unmarshal.
func TestSARIFShape(t *testing.T) {
	dir, findings := maporderFindings(t)

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, dir, []*Analyzer{AnalyzerMapOrder}, findings); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v := log["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %v, want the 2.1.0 schema URI", log["$schema"])
	}
	runs, _ := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs has %d entries, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "gpdlint" {
		t.Errorf("driver name = %v, want gpdlint", driver["name"])
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) != 1 || rules[0].(map[string]any)["id"] != "maporder" {
		t.Errorf("driver rules = %v, want the maporder rule", rules)
	}
	results, _ := run["results"].([]any)
	if len(results) != len(findings) {
		t.Fatalf("results has %d entries, want %d", len(results), len(findings))
	}
	for i, r := range results {
		res := r.(map[string]any)
		if res["ruleId"] != "maporder" {
			t.Errorf("result %d ruleId = %v", i, res["ruleId"])
		}
		if res["level"] != "warning" {
			t.Errorf("result %d level = %v, want warning", i, res["level"])
		}
		if msg, _ := res["message"].(map[string]any); msg["text"] == "" || msg["text"] == nil {
			t.Errorf("result %d has no message text", i)
		}
		locs, _ := res["locations"].([]any)
		if len(locs) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(locs))
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		art := phys["artifactLocation"].(map[string]any)
		uri, _ := art["uri"].(string)
		if uri == "" || strings.HasPrefix(uri, "/") || strings.Contains(uri, `\`) {
			t.Errorf("result %d uri = %q, want a relative slash path", i, uri)
		}
		if art["uriBaseId"] != "%SRCROOT%" {
			t.Errorf("result %d uriBaseId = %v, want %%SRCROOT%%", i, art["uriBaseId"])
		}
		if line, _ := phys["region"].(map[string]any)["startLine"].(float64); line < 1 {
			t.Errorf("result %d startLine = %v, want >= 1", i, line)
		}
	}
}

// TestExecOptionsBaselineFlow drives the full driver loop the way CI
// does: record a baseline, rerun against it clean, then shrink it and
// watch the run fail with only the new finding reported.
func TestExecOptionsBaselineFlow(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maporder")
	base := filepath.Join(t.TempDir(), "lint.baseline")
	az := []*Analyzer{AnalyzerMapOrder}

	var out, errOut bytes.Buffer
	code := ExecOptions(dir, []string{"./..."}, az, &out, &errOut, Options{
		Baseline: base, UpdateBaseline: true,
	})
	if code != ExitClean {
		t.Fatalf("update-baseline exit = %d, want %d\nstderr: %s", code, ExitClean, errOut.String())
	}
	if !strings.Contains(errOut.String(), "baseline") {
		t.Errorf("update-baseline said %q, want a baseline confirmation", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	code = ExecOptions(dir, []string{"./..."}, az, &out, &errOut, Options{
		Baseline: base, Ratchet: true,
	})
	if code != ExitClean {
		t.Fatalf("baselined rerun exit = %d, want %d\nstdout: %s\nstderr: %s",
			code, ExitClean, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("baselined rerun printed findings: %s", out.String())
	}
	if !strings.Contains(errOut.String(), "baselined") {
		t.Errorf("summary %q does not mention absorbed findings", errOut.String())
	}

	// Shrink the baseline by one entry: the rerun must fail and report
	// exactly one finding.
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	b.Findings = b.Findings[1:]
	f, err := os.Create(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errOut.Reset()
	code = ExecOptions(dir, []string{"./..."}, az, &out, &errOut, Options{
		Baseline: base, Ratchet: true,
	})
	if code != ExitFindings {
		t.Fatalf("shrunk-baseline rerun exit = %d, want %d", code, ExitFindings)
	}
	if n := strings.Count(strings.TrimSpace(out.String()), "\n") + 1; n != 1 {
		t.Errorf("shrunk-baseline rerun printed %d findings, want 1:\n%s", n, out.String())
	}
	if !strings.Contains(errOut.String(), "ratchet") {
		t.Errorf("stderr %q does not mention the ratchet", errOut.String())
	}
}

func TestExecOptionsCountOnly(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maporder")
	var out, errOut bytes.Buffer
	code := ExecOptions(dir, []string{"./..."}, []*Analyzer{AnalyzerMapOrder}, &out, &errOut, Options{CountOnly: true})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d", code, ExitFindings)
	}
	if out.Len() != 0 {
		t.Errorf("count-only printed findings: %s", out.String())
	}
	if !strings.Contains(errOut.String(), "maporder") {
		t.Errorf("summary %q does not carry the per-rule count", errOut.String())
	}
}

func TestExecOptionsUnknownFormat(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maporder")
	var out, errOut bytes.Buffer
	code := ExecOptions(dir, []string{"./..."}, []*Analyzer{AnalyzerMapOrder}, &out, &errOut, Options{Format: "xml"})
	if code != ExitError {
		t.Fatalf("exit = %d, want %d", code, ExitError)
	}
	if !strings.Contains(errOut.String(), "xml") {
		t.Errorf("error %q does not name the bad format", errOut.String())
	}
}
