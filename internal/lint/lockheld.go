package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerLockHeld flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives,
// select statements, ranging over a channel, time.Sleep, and net I/O
// (any call into package net or net/http). Holding a lock across any
// of these couples the lock's critical section to a peer or to the
// scheduler — the exact shape of the monitor-shutdown race fixed in
// PR 1. sync.Cond.Wait is deliberately not flagged (it releases the
// lock while blocked).
//
// The analysis walks each function body in source order, tracking
// which lock receivers are held (including defer-unlocked ones, which
// stay held to the end of the function). It is conservative in the way
// that matters for this codebase: lock/unlock pairs are matched
// lexically, and function literals start with a fresh lock set (they
// run on another goroutine or after release).
var AnalyzerLockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no channel operations, net I/O, or time.Sleep while holding a mutex",
	Run:  runLockHeld,
}

func runLockHeld(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w := &lockWalker{pass: pass, held: make(map[string]bool)}
					w.stmts(n.Body.List)
				}
				return false // nested literals are handled by the walker
			case *ast.FuncLit:
				// Only reached for literals outside any FuncDecl (e.g.
				// package-level var initializers).
				w := &lockWalker{pass: pass, held: make(map[string]bool)}
				w.stmts(n.Body.List)
				return false
			}
			return true
		})
	}
}

// lockWalker tracks the set of held lock receivers through one
// function body. order preserves acquisition order so findings name
// the most recently taken lock deterministically.
type lockWalker struct {
	pass  *Pass
	held  map[string]bool
	order []string
}

func (w *lockWalker) acquire(recv string) {
	if !w.held[recv] {
		w.held[recv] = true
		w.order = append(w.order, recv)
	}
}

func (w *lockWalker) release(recv string) {
	if w.held[recv] {
		delete(w.held, recv)
		for i := len(w.order) - 1; i >= 0; i-- {
			if w.order[i] == recv {
				w.order = append(w.order[:i], w.order[i+1:]...)
				break
			}
		}
	}
}

// mutexMethod classifies a call as a lock-state transition on a
// sync.Mutex/RWMutex receiver and returns the receiver's source
// rendering.
func (w *lockWalker) mutexMethod(call *ast.CallExpr) (recv string, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	fn, isFn := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// stmts walks a statement list in source order.
func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, name, ok := w.mutexMethod(call); ok {
				switch name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					w.acquire(recv)
				case "Unlock", "RUnlock":
					w.release(recv)
				}
				return
			}
		}
		w.exprs(s.X)
	case *ast.DeferStmt:
		if _, _, ok := w.mutexMethod(s.Call); ok {
			// defer mu.Unlock(): the lock stays held for the rest of
			// the function, which is exactly what the rule must see.
			return
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fresh := &lockWalker{pass: w.pass, held: make(map[string]bool)}
			fresh.stmts(lit.Body.List)
			return
		}
		w.exprs(s.Call)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fresh := &lockWalker{pass: w.pass, held: make(map[string]bool)}
			fresh.stmts(lit.Body.List)
			return
		}
		w.exprs(s.Call)
	case *ast.SendStmt:
		if len(w.held) > 0 {
			w.report(s.Pos(), "channel send")
		}
		w.exprs(s.Chan, s.Value)
	case *ast.SelectStmt:
		if len(w.held) > 0 {
			w.report(s.Pos(), "select")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.RangeStmt:
		if tv, ok := w.pass.Pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(w.held) > 0 {
				w.report(s.Pos(), "range over channel")
			}
		}
		w.exprs(s.X)
		w.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.exprs(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.exprs(s.Cond)
		}
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.exprs(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(cc.List...)
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.AssignStmt:
		w.exprs(s.Rhs...)
		w.exprs(s.Lhs...)
	case *ast.ReturnStmt:
		w.exprs(s.Results...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(vs.Values...)
				}
			}
		}
	case *ast.IncDecStmt:
		w.exprs(s.X)
	}
}

// exprs inspects expressions for blocking operations performed while a
// lock is held. Function literals are skipped (fresh goroutine or
// deferred context) except that their bodies are still scanned with a
// fresh lock set.
func (w *lockWalker) exprs(list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				fresh := &lockWalker{pass: w.pass, held: make(map[string]bool)}
				fresh.stmts(n.Body.List)
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && len(w.held) > 0 {
					w.report(n.Pos(), "channel receive")
				}
			case *ast.CallExpr:
				if len(w.held) > 0 {
					w.checkBlockingCall(n)
				}
			}
			return true
		})
	}
}

// checkBlockingCall flags calls that can block on a peer or the
// scheduler: time.Sleep and anything in package net or net/http
// (functions and methods alike, so a method call through the net.Conn
// interface counts).
func (w *lockWalker) checkBlockingCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			w.report(call.Pos(), "time.Sleep")
		}
	case "net", "net/http":
		w.report(call.Pos(), fn.Pkg().Path()+" I/O ("+fn.Name()+")")
	}
}

func (w *lockWalker) report(pos token.Pos, what string) {
	recv := w.order[len(w.order)-1]
	w.pass.Reportf(pos, "%s while holding %s; move the blocking work outside the critical section", what, recv)
}
