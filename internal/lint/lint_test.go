package lint

import (
	"bytes"
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixture loads one testdata module and returns its packages.
func fixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load([]string{"./..."}, filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkgs
}

// wantRe extracts the quoted regexps of a `// want "re" "re"` comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// golden runs one analyzer over its fixture module and checks the
// findings against the fixture's `// want` comments: every want must be
// matched by a finding on its line, and every finding must have a want.
func golden(t *testing.T, a *Analyzer) {
	t.Helper()
	pkgs := fixture(t, a.Name)
	findings := Run(pkgs, []*Analyzer{a})

	type site struct {
		file string
		line int
	}
	wants := make(map[site][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						k := site{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", a.Name)
	}
	for _, f := range findings {
		k := site{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(f.Msg) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding %s", f)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, re)
		}
	}
}

func TestGoldenLockHeld(t *testing.T)  { golden(t, AnalyzerLockHeld) }
func TestGoldenLayering(t *testing.T)  { golden(t, AnalyzerLayering) }
func TestGoldenObsNil(t *testing.T)    { golden(t, AnalyzerObsNil) }
func TestGoldenDetPTime(t *testing.T)  { golden(t, AnalyzerDetPTime) }
func TestGoldenCtxLeak(t *testing.T)   { golden(t, AnalyzerCtxLeak) }
func TestGoldenMapOrder(t *testing.T)  { golden(t, AnalyzerMapOrder) }
func TestGoldenLockOrder(t *testing.T) { golden(t, AnalyzerLockOrder) }
func TestGoldenHotAlloc(t *testing.T)  { golden(t, AnalyzerHotAlloc) }
func TestGoldenErrDrop(t *testing.T)   { golden(t, AnalyzerErrDrop) }

// TestIgnoreSuppression checks the directive semantics end to end: a
// well-formed directive suppresses, a reason-less one is reported and
// suppresses nothing, and a directive for another rule does not help.
func TestIgnoreSuppression(t *testing.T) {
	pkgs := fixture(t, "ignore")
	findings := Run(pkgs, []*Analyzer{AnalyzerDetPTime})

	var rules []string
	for _, f := range findings {
		rules = append(rules, fmt.Sprintf("%s@%d", f.Rule, f.Pos.Line))
	}
	// The fixture has four time.Now sites; only the first is suppressed.
	// Line numbers: see testdata/src/ignore/internal/lattice/lattice.go.
	detptime := 0
	ignore := 0
	for _, f := range findings {
		switch f.Rule {
		case "detptime":
			detptime++
		case "ignore":
			ignore++
		}
	}
	if detptime != 3 {
		t.Errorf("want 3 surviving detptime findings, got %d (%v)", detptime, rules)
	}
	if ignore != 1 {
		t.Errorf("want 1 malformed-directive finding, got %d (%v)", ignore, rules)
	}
	for _, f := range findings {
		if f.Rule == "detptime" && strings.Contains(f.Msg, "never replayed") {
			t.Errorf("suppressed finding survived: %s", f)
		}
	}
}

// TestExecExitCodes drives the whole Exec path over the three fixture
// shapes the driver distinguishes.
func TestExecExitCodes(t *testing.T) {
	cases := []struct {
		fixture string
		want    int
	}{
		{"clean", ExitClean},
		{"detptime", ExitFindings},
		{"broken", ExitError},
	}
	for _, tc := range cases {
		var out, errOut bytes.Buffer
		got := Exec(filepath.Join("testdata", "src", tc.fixture), []string{"./..."},
			Analyzers(), &out, &errOut)
		if got != tc.want {
			t.Errorf("Exec(%s) = %d, want %d (stdout=%q stderr=%q)",
				tc.fixture, got, tc.want, out.String(), errOut.String())
		}
		if tc.want == ExitClean && !strings.Contains(errOut.String(), "detptime 0") {
			t.Errorf("Exec(%s) summary missing per-rule counts: %q", tc.fixture, errOut.String())
		}
		if tc.want == ExitFindings && out.Len() == 0 {
			t.Errorf("Exec(%s) printed no findings", tc.fixture)
		}
		if tc.want == ExitError && !strings.Contains(errOut.String(), "gpdlint:") {
			t.Errorf("Exec(%s) printed no load error: %q", tc.fixture, errOut.String())
		}
	}
}

// TestExecSummaryOnFindings checks the per-rule summary also prints on
// failure, with the right counts.
func TestExecSummaryOnFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	got := Exec(filepath.Join("testdata", "src", "layering"), []string{"./..."},
		[]*Analyzer{AnalyzerLayering}, &out, &errOut)
	if got != ExitFindings {
		t.Fatalf("exit = %d, want %d", got, ExitFindings)
	}
	if !strings.Contains(errOut.String(), "layering 10") {
		t.Errorf("summary missing layering count: %q", errOut.String())
	}
}

// TestByName resolves rule subsets and rejects unknown names.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 9, nil", len(all), err)
	}
	two, err := ByName("lockheld, layering")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset: got %d, err %v", len(two), err)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName(nosuchrule) did not fail")
	}
	_, err = ByName("maporder,nosuchrule,alsomissing,nosuchrule")
	if err == nil {
		t.Fatal("ByName with unknown rules did not fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nosuchrule") || !strings.Contains(msg, "alsomissing") {
		t.Errorf("error does not name every unknown rule: %q", msg)
	}
	if !strings.Contains(msg, "available:") || !strings.Contains(msg, "maporder") {
		t.Errorf("error does not list the available rules: %q", msg)
	}
	if strings.Count(msg, "nosuchrule") != 1 {
		t.Errorf("duplicate unknown rule reported twice: %q", msg)
	}
}

// TestLoadRealModule smoke-tests the loader against the enclosing
// module itself: internal/lint must load, type-check, and classify its
// module-relative path.
func TestLoadRealModule(t *testing.T) {
	pkgs, err := Load([]string{"."}, ".")
	if err != nil {
		t.Fatalf("load self: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].RelPath != "internal/lint" {
		t.Fatalf("loaded %d packages, rel %q; want 1, internal/lint", len(pkgs), pkgs[0].RelPath)
	}
}
