package lint

import (
	"strconv"
	"strings"
)

// layerRule forbids a set of import edges: any package under one of the
// Layers prefixes (module-relative) importing anything under one of the
// Forbid prefixes is a finding. Forbid entries are module-relative
// unless they name a standard-library path (no dot in the first
// segment is not a reliable test, so entries are tagged explicitly with
// "std:"), and the special entry "<module>" forbids every module-local
// import.
type layerRule struct {
	Layers []string
	Forbid []string
	Why    string
}

// layerRules is the single table declaring the allowed shape of the
// import graph. Everything not forbidden here is allowed.
var layerRules = []layerRule{
	{
		// The theory core: the computation/lattice model and the
		// detection algorithms of the paper. Keeping it free of the
		// serving stack and the network is what makes the detectors
		// replayable and testable in isolation.
		Layers: []string{
			"internal/computation", "internal/vclock", "internal/lattice",
			"internal/cnf", "internal/chains", "internal/core",
			"internal/slicing", "internal/sat", "internal/subsetsum",
			"internal/maxflow", "internal/matching", "internal/linear",
			"internal/conjunctive", "internal/pred", "internal/gen",
			"internal/par",
		},
		Forbid: []string{"internal/stream", "internal/monitor", "std:net", "std:net/http"},
		Why:    "theory core stays serving-free",
	},
	{
		// The slicing theory builds on the computation model alone: the
		// detector kernel and the multiplexer import it (mux shares
		// per-variable slicers across predicates), never the other way
		// round. Keeping the edge one-directional is what lets the slice
		// constructor be checked against the lattice oracle with no
		// serving machinery in scope.
		Layers: []string{"internal/slicing"},
		Forbid: []string{"internal/detect", "internal/mux"},
		Why:    "the slicing theory stays kernel- and multiplexer-free",
	},
	{
		// The observability substrate is dependency-free by contract:
		// every other package may import it, so it may import none of
		// them (and certainly not the network).
		Layers: []string{"internal/obs"},
		Forbid: []string{"<module>", "std:net", "std:net/http"},
		Why:    "obs is the dependency-free substrate",
	},
	{
		// The detector kernel sits between the theory core and the
		// serving stacks: sessions resolve detectors through its
		// registry, never the other way round. Theory imports are fine;
		// the serving stacks and the network are not, which is what
		// keeps every registered detector replayable offline.
		Layers: []string{"internal/detect"},
		Forbid: []string{"internal/stream", "internal/monitor", "std:net", "std:net/http"},
		Why:    "the detector kernel stays serving-free",
	},
	{
		// The predicate multiplexer sits between the detector kernel and
		// the stream transport: stream attaches mux groups to sessions,
		// never the other way round. Keeping mux transport-free is what
		// lets the routing and projection layer be tested (and reasoned
		// about) against offline oracles alone.
		Layers: []string{"internal/mux"},
		Forbid: []string{"internal/stream", "internal/monitor", "std:net", "std:net/http"},
		Why:    "the predicate multiplexer stays transport-free",
	},
	{
		// The two serving stacks are peers, not layers of each other.
		Layers: []string{"internal/stream"},
		Forbid: []string{"internal/monitor"},
		Why:    "stream and monitor are independent serving stacks",
	},
	{
		Layers: []string{"internal/monitor"},
		Forbid: []string{"internal/stream"},
		Why:    "stream and monitor are independent serving stacks",
	},
}

// AnalyzerLayering enforces the import-graph table above.
var AnalyzerLayering = &Analyzer{
	Name: "layering",
	Doc:  "theory core must not import the serving stack (stream/monitor) or the network",
	Run:  runLayering,
}

func runLayering(pass *Pass) {
	rel := pass.Pkg.RelPath
	modPath := strings.TrimSuffix(pass.Pkg.Path, "/"+rel)
	if rel == "" {
		modPath = pass.Pkg.Path
	}
	for _, rule := range layerRules {
		if !relPathMatches(rel, rule.Layers) {
			continue
		}
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if bad, label := forbidden(path, modPath, rule.Forbid); bad {
					pass.Reportf(imp.Pos(), "package %s must not import %s (%s)",
						rel, label, rule.Why)
				}
			}
		}
	}
}

// forbidden reports whether the imported path hits one of the rule's
// forbidden prefixes, and with what human-readable label.
func forbidden(imported, modPath string, forbid []string) (bool, string) {
	local := imported == modPath || hasPathPrefix(imported, modPath)
	relImported := ""
	if local {
		relImported = strings.TrimPrefix(strings.TrimPrefix(imported, modPath), "/")
	}
	for _, f := range forbid {
		switch {
		case f == "<module>":
			if local {
				return true, "module-local packages"
			}
		case strings.HasPrefix(f, "std:"):
			if !local && hasPathPrefix(imported, strings.TrimPrefix(f, "std:")) {
				return true, imported
			}
		default:
			if local && hasPathPrefix(relImported, f) {
				return true, f
			}
		}
	}
	return false, ""
}
