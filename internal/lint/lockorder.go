package lint

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderPkgs are the module-relative prefixes whose mutexes join the
// global acquisition graph: the serving stacks and the multiplexer are
// the only long-lived multi-goroutine layers, and a lock-order cycle
// between any two of their mutexes is a deadlock waiting for the right
// interleaving.
var lockOrderPkgs = []string{
	"internal/stream", "internal/mux", "internal/monitor", "internal/obs",
}

// AnalyzerLockOrder builds the global mutex-acquisition graph — an edge
// A→B whenever some execution path acquires B while holding A, with
// lock identity keyed by struct field path (Type.field) so every method
// locking the same field agrees — and reports each cycle as a deadlock
// risk. Acquisitions through calls count: if f locks A and calls g, and
// g (transitively) locks B, the edge A→B is recorded at the call site.
// Calls through interfaces or function values are not followed; a
// consistent acquisition order everywhere else keeps the graph acyclic.
var AnalyzerLockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "the global mutex-acquisition graph (lock identity = struct field path) must be acyclic — cycles are deadlock risk",
	RunModule: runLockOrder,
}

// lockEdge is one A-held-while-acquiring-B observation.
type lockEdge struct {
	from, to lockKey
	pos      token.Pos // acquisition or call site that creates the edge
	via      string    // non-empty when the edge goes through a call chain
}

func runLockOrder(pass *ModulePass) {
	ix := pass.Index()

	// Pass 1: per-function summaries — the set of locks each function
	// may (transitively) acquire — via fixpoint over the static call
	// graph, so edges through helper calls are seen.
	acquires := make(map[*types.Func]map[lockKey]bool)
	inScope := func(fn *types.Func) bool {
		fi := ix.funcs[fn]
		return fi != nil && relPathMatches(fi.pkg.RelPath, lockOrderPkgs)
	}
	direct := make(map[*types.Func][]lockEdge)
	for _, fn := range ix.order {
		if !inScope(fn) {
			continue
		}
		acquires[fn] = make(map[lockKey]bool)
		fi := ix.funcs[fn]
		w := newLockOrderFlow(fi, func(lock lockKey, held []lockKey, pos token.Pos) {
			acquires[fn][lock] = true
			for _, h := range held {
				direct[fn] = append(direct[fn], lockEdge{from: h, to: lock, pos: pos})
			}
		}, nil)
		w.walk(fi.decl.Body.List)
	}
	for changed := true; changed; {
		changed = false
		for fn, acq := range acquires {
			for _, callee := range ix.callees[fn] {
				for lock := range acquires[callee] {
					if !acq[lock] {
						acq[lock] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: edges. Direct edges were recorded above; call edges add
	// held × callee-summary at each call site.
	edges := make(map[lockKey]map[lockKey]lockEdge)
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return
		}
		if edges[e.from] == nil {
			edges[e.from] = make(map[lockKey]lockEdge)
		}
		if old, ok := edges[e.from][e.to]; !ok || e.pos < old.pos {
			edges[e.from][e.to] = e
		}
	}
	for _, fn := range ix.order {
		if !inScope(fn) {
			continue
		}
		for _, e := range direct[fn] {
			addEdge(e)
		}
		fi := ix.funcs[fn]
		w := newLockOrderFlow(fi, nil, func(callee *types.Func, held []lockKey, pos token.Pos) {
			for lock := range acquires[callee] {
				for _, h := range held {
					addEdge(lockEdge{from: h, to: lock, pos: pos,
						via: funcName(pass.Pkgs, callee)})
				}
			}
		})
		w.walk(fi.decl.Body.List)
	}

	reportLockCycles(pass, edges)
}

// newLockOrderFlow builds the held-set walker for one function.
func newLockOrderFlow(fi *funcInfo, onAcquire func(lockKey, []lockKey, token.Pos), onCall func(*types.Func, []lockKey, token.Pos)) *lockFlow {
	var mk func() *lockFlow
	mk = func() *lockFlow {
		return &lockFlow{pkg: fi.pkg, onAcquire: onAcquire, onCall: onCall, fresh: mk}
	}
	return mk()
}

// reportLockCycles finds cycles in the acquisition graph and reports
// each once, canonicalized (rotated to the least lock, discovered in
// sorted order) so output is deterministic.
func reportLockCycles(pass *ModulePass, edges map[lockKey]map[lockKey]lockEdge) {
	nodes := make([]lockKey, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })

	seen := make(map[string]bool) // canonical cycle -> reported
	var stack []lockKey
	onStack := make(map[lockKey]int)
	var dfs func(n lockKey)
	dfs = func(n lockKey) {
		onStack[n] = len(stack)
		stack = append(stack, n)
		tos := make([]lockKey, 0, len(edges[n]))
		for t := range edges[n] {
			tos = append(tos, t)
		}
		sort.Slice(tos, func(i, j int) bool { return tos[i].String() < tos[j].String() })
		for _, t := range tos {
			if at, ok := onStack[t]; ok {
				cycle := append([]lockKey(nil), stack[at:]...)
				reportLockCycle(pass, edges, cycle, seen)
				continue
			}
			dfs(t)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
}

// reportLockCycle canonicalizes one cycle and reports it at the edge
// site that closes it.
func reportLockCycle(pass *ModulePass, edges map[lockKey]map[lockKey]lockEdge, cycle []lockKey, seen map[string]bool) {
	// Rotate so the least lock leads.
	least := 0
	for i := range cycle {
		if cycle[i].String() < cycle[least].String() {
			least = i
		}
	}
	rot := append(append([]lockKey(nil), cycle[least:]...), cycle[:least]...)
	parts := make([]string, 0, len(rot)+1)
	for _, k := range rot {
		parts = append(parts, k.String())
	}
	parts = append(parts, rot[0].String())
	canon := strings.Join(parts, " -> ")
	if seen[canon] {
		return
	}
	seen[canon] = true
	e := edges[rot[len(rot)-1]][rot[0]]
	msg := "lock-order cycle (deadlock risk): " + canon + "; acquire these mutexes in one global order"
	if e.via != "" {
		msg += " (edge via call to " + e.via + ")"
	}
	pass.Reportf(e.pos, "%s", msg)
}
