package lint

import (
	"strings"
)

// ignorePrefix introduces a suppression directive comment:
//
//	//lint:ignore rule1,rule2 reason
//
// The directive suppresses findings of the listed rules (or every rule,
// with "*") on the directive's own line and on the line directly below
// it, so it works both as a trailing comment on the offending line and
// as a standalone comment above it. The reason is mandatory.
const ignorePrefix = "//lint:ignore "

// directive is one parsed //lint:ignore comment.
type directive struct {
	file   string
	line   int
	rules  map[string]bool
	reason string
}

// directives extracts every ignore directive of a package. Directives
// with a missing reason are returned with reason "" so the runner can
// report them instead of honouring them.
func directives(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				body := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(body)
				d := directive{file: pos.Filename, line: pos.Line}
				if len(fields) > 0 {
					d.rules = make(map[string]bool)
					for _, r := range strings.Split(fields[0], ",") {
						d.rules[strings.TrimSpace(r)] = true
					}
					d.reason = strings.TrimSpace(strings.TrimPrefix(body, fields[0]))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// malformedDirectives reports ignore directives that carry no reason (or
// no rule list at all); such directives do not suppress anything.
func malformedDirectives(pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(body)
				if len(fields) >= 2 {
					continue
				}
				out = append(out, Finding{
					Pos:  pkg.Fset.Position(c.Pos()),
					Rule: "ignore",
					Msg:  "lint:ignore directive needs a rule list and a reason: //lint:ignore rule reason",
				})
			}
		}
	}
	return out
}

// suppress drops findings covered by a well-formed ignore directive.
func suppress(pkgs []*Package, findings []Finding) []Finding {
	type key struct {
		file string
		line int
	}
	covered := make(map[key]map[string]bool)
	for _, pkg := range pkgs {
		for _, d := range directives(pkg) {
			if d.reason == "" || len(d.rules) == 0 {
				continue // malformed; reported, never honoured
			}
			for _, line := range []int{d.line, d.line + 1} {
				k := key{d.file, line}
				if covered[k] == nil {
					covered[k] = make(map[string]bool)
				}
				for r := range d.rules {
					covered[k][r] = true
				}
			}
		}
	}
	kept := findings[:0]
	for _, f := range findings {
		rules := covered[key{f.Pos.Filename, f.Pos.Line}]
		if f.Rule != "ignore" && (rules["*"] || rules[f.Rule]) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
