package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerHotAlloc is the enforcement arm of the zero-alloc ingest
// roadmap item: functions annotated //lint:hotpath in their doc comment
// are hot-path roots (the ingest/Append/Step paths), and every function
// reachable from a root over the static call graph must not allocate.
// Reported allocation sites:
//
//   - composite literals that escape: address-taken (&T{...}) or of
//     reference kind (slice/map literals);
//   - make of a slice/map/chan (a slice make with an explicit capacity
//     is the sanctioned preallocation and passes);
//   - append to a slice not preallocated with make(_, _, cap) in the
//     same function (growth reallocates mid-ingest);
//   - string <-> []byte conversions (each copies);
//   - function literals that capture outer variables (the closure is
//     heap-allocated per call).
//
// Calls through interfaces or function values are not followed — a
// detector behind detect.Detector is checked by annotating its own Step.
// A function annotated //lint:coldpath is a slow-path boundary (SLO
// breach dumps, error reporting): reachability does not enter it.
var AnalyzerHotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "no allocation (escaping composites, growing appends, string/[]byte conversions, capturing closures) on //lint:hotpath-reachable paths",
	RunModule: runHotAlloc,
}

func runHotAlloc(pass *ModulePass) {
	ix := pass.Index()
	roots := hotpathRoots(ix)
	if len(roots) == 0 {
		return
	}
	reached := ix.reachable(roots, func(fn *types.Func) bool {
		return hasDirective(ix.funcs[fn], coldpathDirective)
	})
	for _, fn := range ix.order {
		root, ok := reached[fn]
		if !ok {
			continue
		}
		checkHotFunc(pass, ix.funcs[fn], funcName(pass.Pkgs, fn), funcName(pass.Pkgs, root))
	}
}

// checkHotFunc reports the allocation sites of one hot-path function.
func checkHotFunc(pass *ModulePass, fi *funcInfo, name, root string) {
	pkg := fi.pkg
	// prealloc collects the objects of slices created with an explicit
	// capacity in this function; appends to them do not grow.
	prealloc := make(map[types.Object]bool)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) < 3 {
				continue
			}
			if bn, isB := builtinName(pkg, call); !isB || bn != "make" {
				continue
			}
			if root := rootIdent(as.Lhs[i]); root != nil {
				if obj := objOf(pkg, root); obj != nil {
					prealloc[obj] = true
				}
			}
		}
		return true
	})

	where := " on the hot path from " + root
	if name == root {
		where = " (a //lint:hotpath root)"
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// &T{...}: the literal escapes to the heap.
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "escaping composite literal in %s%s; reuse a pooled or caller-provided value", name, where)
					return false // don't re-report the literal itself
				}
			}
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice/map literal allocates in %s%s; hoist it out of the hot path", name, where)
			}
		case *ast.CallExpr:
			if bn, ok := builtinName(pkg, n); ok {
				switch bn {
				case "make":
					if len(n.Args) >= 3 {
						return true // preallocation with capacity: sanctioned
					}
					if tv, ok := pkg.Info.Types[n.Args[0]]; ok && tv.Type != nil {
						switch tv.Type.Underlying().(type) {
						case *types.Slice, *types.Map, *types.Chan:
							pass.Reportf(n.Pos(), "make allocates in %s%s; preallocate with capacity outside the hot path", name, where)
						}
					}
				case "append":
					if len(n.Args) == 0 {
						return true
					}
					base := rootIdent(n.Args[0])
					if base != nil {
						if obj := objOf(pkg, base); obj != nil && prealloc[obj] {
							return true
						}
					}
					pass.Reportf(n.Pos(), "append may grow its backing array in %s%s; preallocate with make(_, _, cap)", name, where)
				}
				return true
			}
			// string <-> []byte conversions.
			if kind := byteStringConversion(pkg, n); kind != "" {
				pass.Reportf(n.Pos(), "%s conversion copies in %s%s; keep one representation through the hot path", kind, name, where)
			}
		case *ast.FuncLit:
			if captures := closureCaptures(pkg, n); len(captures) > 0 {
				pass.Reportf(n.Pos(), "closure captures %s in %s%s; a capturing closure allocates per call — hoist it or pass state explicitly", captures[0], name, where)
			}
			return false // literal bodies are separate functions
		}
		return true
	})
}

// objOf resolves an identifier's object from uses or defs.
func objOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// byteStringConversion classifies a conversion between string and
// []byte; returns "" for anything else.
func byteStringConversion(pkg *Package, call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return ""
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return ""
	}
	argTV, ok := pkg.Info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return ""
	}
	to, from := tv.Type.Underlying(), argTV.Type.Underlying()
	if isByteSlice(to) && isString(from) {
		return "string->[]byte"
	}
	if isString(to) && isByteSlice(from) {
		return "[]byte->string"
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// closureCaptures returns the names of outer variables a function
// literal references, sorted by first use.
func closureCaptures(pkg *Package, lit *ast.FuncLit) []string {
	var out []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Captured = declared outside the literal, not package-level.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if v.Parent() == pkg.Types.Scope() || v.Parent() == types.Universe {
			return true
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}
