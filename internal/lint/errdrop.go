package lint

import (
	"go/ast"
	"go/types"
)

// servingPkgs are the module-relative prefixes of the serving layer:
// the two network stacks, the multiplexer they fan into, and every
// binary. A silently dropped I/O error here turns a broken peer into a
// wedged session (a deadline that never armed, a reply that never
// flushed) instead of a loud disconnect.
var servingPkgs = []string{
	"internal/stream", "internal/monitor", "internal/mux", "cmd", "examples",
}

// AnalyzerErrDrop flags discarded errors on the serving layer's I/O
// boundaries:
//
//   - methods on a net.Conn (or any type declared in package net):
//     Read/Write/SetDeadline/SetReadDeadline/SetWriteDeadline — Close is
//     exempt (the deferred best-effort close is the codebase idiom);
//   - Encode/Decode methods (wire encoders/decoders);
//   - Flush methods (buffered writers).
//
// Discarded means the call is its own statement, the error position is
// assigned to _, or the call sits under go/defer.
var AnalyzerErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no discarded errors on net.Conn, Encoder/Decoder, or Flush paths in the serving layer",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	if !relPathMatches(pass.Pkg.RelPath, servingPkgs) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				checkDroppedCall(pass, s.X, "discarded")
			case *ast.GoStmt:
				checkDroppedCall(pass, s.Call, "discarded by go")
			case *ast.DeferStmt:
				checkDroppedCall(pass, s.Call, "discarded by defer")
			case *ast.AssignStmt:
				checkBlankAssign(pass, s)
			}
			return true
		})
	}
}

// checkDroppedCall reports a statement-level call whose error result
// vanishes.
func checkDroppedCall(pass *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	what := errDropTarget(pass, call)
	if what == "" {
		return
	}
	pass.Reportf(call.Pos(), "%s error %s; a failed %s wedges the session silently — handle or log it", what, how, what)
}

// checkBlankAssign reports x, _ := conn.Write(...) style discards where
// the blank identifier swallows the error result.
func checkBlankAssign(pass *Pass, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	what := errDropTarget(pass, call)
	if what == "" {
		return
	}
	sig := callSignature(pass.Pkg, call)
	if sig == nil {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len() && i < len(s.Lhs); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(), "%s error assigned to _; a failed %s wedges the session silently — handle or log it", what, what)
			return
		}
	}
}

// errDropTarget classifies the callee: a non-empty label means the call
// returns an error the serving layer must not drop.
func errDropTarget(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return ""
	}
	name := fn.Name()
	switch name {
	case "Encode", "Decode":
		return recvLabel(sig) + "." + name
	case "Flush":
		return recvLabel(sig) + ".Flush"
	case "Read", "Write", "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
		if recvIsNet(sig) {
			return recvLabel(sig) + "." + name
		}
	}
	return ""
}

// callSignature resolves the called function's signature.
func callSignature(pkg *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// returnsError reports whether any result is the error type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// recvIsNet reports whether the method's receiver type is declared in
// package net (net.Conn and friends, interface or concrete).
func recvIsNet(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	p := named.Obj().Pkg()
	return p != nil && p.Path() == "net"
}

// recvLabel names the receiver type for messages.
func recvLabel(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if p := named.Obj().Pkg(); p != nil {
			return p.Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
