package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the module-relative prefixes whose behaviour
// must be a pure function of their inputs: the replay/agreement tests
// (Detect vs oracles, incremental vs batch) compare runs event-for-
// event, and a wall-clock read or a draw from the global random source
// would silently break that without failing any unit test.
var deterministicPkgs = []string{
	"internal/computation", "internal/vclock", "internal/lattice",
	"internal/cnf", "internal/chains", "internal/core", "internal/slicing",
	"internal/sat", "internal/subsetsum", "internal/maxflow",
	"internal/matching", "internal/linear", "internal/conjunctive",
	"internal/pred", "internal/gen", "internal/simulator",
}

// bannedTimeFuncs are the wall-clock entry points of package time.
// (Deterministic code may still use time.Duration values handed in by a
// caller; only reading the clock is forbidden.)
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// AnalyzerDetPTime keeps deterministic packages deterministic.
var AnalyzerDetPTime = &Analyzer{
	Name: "detptime",
	Doc:  "no wall clock (time.Now/Since/...) or global rand source in deterministic packages",
	Run:  runDetPTime,
}

func runDetPTime(pass *Pass) {
	if !relPathMatches(pass.Pkg.RelPath, deterministicPkgs) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. on an explicitly seeded *rand.Rand or a
			// time.Duration) are fine; only package-level functions of
			// the banned packages read ambient state.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in deterministic package %s breaks replayable detection; take the value as a parameter",
						fn.Name(), pass.Pkg.RelPath)
				}
			case "math/rand", "math/rand/v2":
				// Constructors (rand.New, rand.NewSource, ...) build the
				// explicitly seeded generators deterministic code should
				// use; everything else draws from the shared global
				// source.
				if len(fn.Name()) < 3 || fn.Name()[:3] != "New" {
					pass.Reportf(sel.Pos(),
						"global rand.%s in deterministic package %s breaks replayable detection; use an explicitly seeded *rand.Rand",
						fn.Name(), pass.Pkg.RelPath)
				}
			}
			return true
		})
	}
}
