// Package lint is the project-specific static-analysis suite behind
// cmd/gpdlint. It loads every package of the module with go/parser and
// go/types (source importer, stdlib only — no external analysis
// frameworks) and runs a pluggable set of analyzers that machine-check
// invariants the compiler cannot see but the paper's guarantees depend
// on: deterministic replayable computations (no escaping map-iteration
// order, no wall clock), nil-safe observability calls, strict layering
// between the theory core and the serving stack, no blocking work under
// mutexes, a cycle-free global lock order, allocation-free hot paths,
// and no leaked goroutines or dropped transport errors.
//
// Findings print as "file:line: [rule] message". A finding is suppressed
// by a "//lint:ignore rule1,rule2 reason" comment on the offending line
// or on the line directly above it; the reason is mandatory, and a
// directive without one is itself reported under the "ignore" rule.
//
// Two further directives parameterize the hotalloc analyzer: a
// "//lint:hotpath" line in a function's doc comment marks it as a
// hot-path root — every function reachable from it through the static
// call graph must avoid avoidable allocations — and "//lint:coldpath"
// marks a slow-path boundary that reachability does not cross (for
// example the SLO breach dump, which is called from the ingest path but
// fires at most once per rule transition).
//
// A committed baseline (see Baseline) turns the suite into a ratchet:
// runs against it fail only on findings not already recorded, and with
// Options.Ratchet any per-rule count growth fails even when entry
// matching is confused. WriteJSON and WriteSARIF render findings for
// machines; CI uploads the SARIF 2.1.0 form to code scanning.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical file:line: [rule] message
// shape.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Fset positions every file of the load.
	Fset *token.FileSet
	// Path is the full import path.
	Path string
	// RelPath is the module-relative import path ("" for the module
	// root package). Analyzers classify packages by RelPath so fixture
	// modules under testdata exercise the same rules as the real one.
	RelPath string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
}

// Pass is one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule. A rule is either per-package (Run) or
// whole-module (RunModule): module rules see every loaded package at
// once, which is what lets lockorder stitch a global lock graph and
// hotalloc follow calls across package boundaries.
type Analyzer struct {
	// Name is the rule name used in findings and ignore directives.
	Name string
	// Doc is a one-line description for -list and the README catalog.
	Doc string
	// Run reports the rule's findings for one package.
	Run func(*Pass)
	// RunModule reports the rule's findings over the whole load at once.
	RunModule func(*ModulePass)
}

// ModulePass is one (analyzer, whole load) run. The shared module index
// (function declarations + static call graph) is built lazily and
// reused by every module analyzer of the same Run.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	index    *moduleIndex
	findings *[]Finding
}

// Reportf records a finding at pos. Every package of one load shares a
// FileSet, so any package's Fset positions the whole module.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Pkgs[0].Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Index returns the load's function/call-graph index, building it on
// first use.
func (p *ModulePass) Index() *moduleIndex {
	if p.index == nil {
		p.index = buildModuleIndex(p.Pkgs)
	}
	return p.index
}

// Analyzers returns the full rule set, sorted by name.
func Analyzers() []*Analyzer {
	as := []*Analyzer{
		AnalyzerLockHeld,
		AnalyzerLayering,
		AnalyzerObsNil,
		AnalyzerDetPTime,
		AnalyzerCtxLeak,
		AnalyzerMapOrder,
		AnalyzerLockOrder,
		AnalyzerHotAlloc,
		AnalyzerErrDrop,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName resolves a comma-separated rule list against the full set. All
// unknown names are rejected together, with the available rules listed,
// so a typo in a CI -rules flag fails loudly instead of silently
// narrowing the run.
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	index := make(map[string]*Analyzer, len(all))
	known := make([]string, 0, len(all))
	for _, a := range all {
		index[a.Name] = a
		known = append(known, a.Name)
	}
	var out []*Analyzer
	var unknown []string
	seen := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if seen[n] {
			continue
		}
		seen[n] = true
		a, ok := index[n]
		if !ok {
			unknown = append(unknown, strconv.Quote(n))
			continue
		}
		out = append(out, a)
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("lint: unknown rule(s) %s (available: %s)",
			strings.Join(unknown, ", "), strings.Join(known, ", "))
	}
	return out, nil
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppression, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	var mp *ModulePass // module analyzers share one lazily built index
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, findings: &findings}
			a.Run(pass)
		}
		findings = append(findings, malformedDirectives(pkg)...)
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if mp == nil {
			mp = &ModulePass{Pkgs: pkgs, findings: &findings}
		}
		mp.Analyzer = a
		a.RunModule(mp)
	}
	findings = suppress(pkgs, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings
}

// Exit codes of the gpdlint driver.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // the load itself failed (parse or type error)
)

// Options configures one driver run beyond the analyzer set.
type Options struct {
	// Format selects the finding encoding on out: "text" (default,
	// file:line: [rule] message), "json", or "sarif" (2.1.0).
	Format string
	// Baseline is the path of the accepted-findings file; when set, only
	// findings not absorbed by the baseline are reported and fail the
	// run.
	Baseline string
	// UpdateBaseline rewrites Baseline from this run's findings and
	// exits clean: the way a newly accepted debt level is recorded.
	UpdateBaseline bool
	// Ratchet additionally fails the run when any rule's finding count
	// exceeds its baseline count, even if entry matching absorbed them.
	Ratchet bool
	// CountOnly suppresses the per-finding lines of text output; only
	// the per-rule summary on errOut remains.
	CountOnly bool
}

// Exec is the plain driver: load, run, print text findings, summarize.
func Exec(dir string, patterns []string, analyzers []*Analyzer, out, errOut io.Writer) int {
	return ExecOptions(dir, patterns, analyzers, out, errOut, Options{})
}

// ExecOptions is the whole driver: load the patterns rooted at dir, run
// the analyzers, apply the baseline, render findings to out in the
// selected format, print a per-rule count summary to errOut (always,
// success included), and return the process exit code.
func ExecOptions(dir string, patterns []string, analyzers []*Analyzer, out, errOut io.Writer, opts Options) int {
	pkgs, err := Load(patterns, dir)
	if err != nil {
		fmt.Fprintf(errOut, "gpdlint: %v\n", err)
		return ExitError
	}
	findings := Run(pkgs, analyzers)

	if opts.UpdateBaseline {
		if opts.Baseline == "" {
			fmt.Fprintln(errOut, "gpdlint: -update-baseline needs -baseline <file>")
			return ExitError
		}
		if err := writeBaselineFile(opts.Baseline, dir, findings); err != nil {
			fmt.Fprintf(errOut, "gpdlint: %v\n", err)
			return ExitError
		}
		fmt.Fprintf(errOut, "gpdlint: baseline %s updated with %d finding(s)\n",
			opts.Baseline, len(findings))
		return ExitClean
	}

	report := findings
	absorbed := 0
	var ratchet []string
	if opts.Baseline != "" {
		b, err := readBaselineFile(opts.Baseline)
		if err != nil {
			fmt.Fprintf(errOut, "gpdlint: %v\n", err)
			return ExitError
		}
		report = b.New(dir, findings)
		absorbed = len(findings) - len(report)
		if opts.Ratchet {
			ratchet = b.Ratchet(findings)
		}
	}

	switch opts.Format {
	case "", "text":
		if !opts.CountOnly {
			for _, f := range report {
				fmt.Fprintln(out, relativize(dir, f))
			}
		}
	case "json":
		if err := WriteJSON(out, dir, report); err != nil {
			fmt.Fprintf(errOut, "gpdlint: %v\n", err)
			return ExitError
		}
	case "sarif":
		if err := WriteSARIF(out, dir, analyzers, report); err != nil {
			fmt.Fprintf(errOut, "gpdlint: %v\n", err)
			return ExitError
		}
	default:
		fmt.Fprintf(errOut, "gpdlint: unknown format %q (want text, json or sarif)\n", opts.Format)
		return ExitError
	}

	for _, m := range ratchet {
		fmt.Fprintf(errOut, "gpdlint: ratchet: %s\n", m)
	}
	counts := make(map[string]int)
	for _, f := range report {
		counts[f.Rule]++
	}
	parts := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		parts = append(parts, fmt.Sprintf("%s %d", a.Name, counts[a.Name]))
	}
	if n := counts["ignore"]; n > 0 {
		parts = append(parts, fmt.Sprintf("ignore %d", n))
	}
	suffix := ""
	if absorbed > 0 {
		suffix = fmt.Sprintf(", %d baselined", absorbed)
	}
	fmt.Fprintf(errOut, "gpdlint: %d finding(s) in %d package(s) (%s)%s\n",
		len(report), len(pkgs), strings.Join(parts, ", "), suffix)
	if len(report) > 0 || len(ratchet) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// writeBaselineFile records the findings at path, atomically enough for
// a tool run (write then rename is overkill for a committed file).
func writeBaselineFile(path, dir string, findings []Finding) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lint: write baseline: %w", err)
	}
	werr := NewBaseline(dir, findings).Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("lint: write baseline: %w", werr)
	}
	return nil
}

// readBaselineFile loads the baseline at path.
func readBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lint: read baseline: %w", err)
	}
	defer f.Close()
	return ReadBaseline(f)
}

// relativize shortens a finding's filename relative to dir for readable
// driver output.
func relativize(dir string, f Finding) Finding {
	base := dir
	if abs, err := filepath.Abs(dir); err == nil {
		base = abs
	}
	if rel, err := filepath.Rel(base, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f
}

// hasPathPrefix reports whether the slash-separated path is prefix
// itself or lies underneath it. An empty prefix matches only the empty
// path (the module root package), not everything.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// relPathMatches reports whether a module-relative package path matches
// any of the given prefixes.
func relPathMatches(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if hasPathPrefix(rel, p) {
			return true
		}
	}
	return false
}
