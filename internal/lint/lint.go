// Package lint is the project-specific static-analysis suite behind
// cmd/gpdlint. It loads every package of the module with go/parser and
// go/types (source importer, stdlib only — no external analysis
// frameworks) and runs a pluggable set of analyzers that machine-check
// invariants the compiler cannot see but the paper's guarantees depend
// on: deterministic replayable computations, nil-safe observability
// calls, strict layering between the theory core and the serving stack,
// no blocking work under mutexes, and no leaked goroutines.
//
// Findings print as "file:line: [rule] message". A finding is suppressed
// by a "//lint:ignore rule1,rule2 reason" comment on the offending line
// or on the line directly above it; the reason is mandatory, and a
// directive without one is itself reported under the "ignore" rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical file:line: [rule] message
// shape.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Fset positions every file of the load.
	Fset *token.FileSet
	// Path is the full import path.
	Path string
	// RelPath is the module-relative import path ("" for the module
	// root package). Analyzers classify packages by RelPath so fixture
	// modules under testdata exercise the same rules as the real one.
	RelPath string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
}

// Pass is one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the rule name used in findings and ignore directives.
	Name string
	// Doc is a one-line description for -list and the README catalog.
	Doc string
	// Run reports the rule's findings for one package.
	Run func(*Pass)
}

// Analyzers returns the full rule set, sorted by name.
func Analyzers() []*Analyzer {
	as := []*Analyzer{
		AnalyzerLockHeld,
		AnalyzerLayering,
		AnalyzerObsNil,
		AnalyzerDetPTime,
		AnalyzerCtxLeak,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// ByName resolves a comma-separated rule list against the full set.
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	index := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppression, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, findings: &findings}
			a.Run(pass)
		}
		findings = append(findings, malformedDirectives(pkg)...)
	}
	findings = suppress(pkgs, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings
}

// Exit codes of the gpdlint driver.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // the load itself failed (parse or type error)
)

// Exec is the whole driver: load the patterns rooted at dir, run the
// analyzers, print findings to out and a per-rule count summary to
// errOut (always, success included), and return the process exit code.
func Exec(dir string, patterns []string, analyzers []*Analyzer, out, errOut io.Writer) int {
	pkgs, err := Load(patterns, dir)
	if err != nil {
		fmt.Fprintf(errOut, "gpdlint: %v\n", err)
		return ExitError
	}
	findings := Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(out, relativize(dir, f))
	}
	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.Rule]++
	}
	parts := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		parts = append(parts, fmt.Sprintf("%s %d", a.Name, counts[a.Name]))
	}
	if n := counts["ignore"]; n > 0 {
		parts = append(parts, fmt.Sprintf("ignore %d", n))
	}
	fmt.Fprintf(errOut, "gpdlint: %d finding(s) in %d package(s) (%s)\n",
		len(findings), len(pkgs), strings.Join(parts, ", "))
	if len(findings) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// relativize shortens a finding's filename relative to dir for readable
// driver output.
func relativize(dir string, f Finding) Finding {
	if rel, err := filepath.Rel(dir, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f
}

// hasPathPrefix reports whether the slash-separated path is prefix
// itself or lies underneath it. An empty prefix matches only the empty
// path (the module root package), not everything.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// relPathMatches reports whether a module-relative package path matches
// any of the given prefixes.
func relPathMatches(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if hasPathPrefix(rel, p) {
			return true
		}
	}
	return false
}
