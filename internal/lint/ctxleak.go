package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// concurrentPkgs are the module-relative prefixes whose goroutines must
// be tied to a shutdown path: the serving stacks and the simulator are
// long-lived multi-tenant processes, and an untracked goroutine there
// is a leak that Shutdown/Close cannot wait for (the monitor-shutdown
// race of PR 1 started exactly this way). The parallelized theory
// packages are on the list too: their worker pools must join before the
// kernel returns (the ordered-merge determinism argument assumes all
// concurrent work has completed), so an untied goroutine there is not
// just a leak but a correctness hole.
var concurrentPkgs = []string{
	"internal/stream", "internal/monitor", "internal/simulator",
	"internal/par", "internal/lattice", "internal/maxflow",
	"internal/chains", "internal/linear", "internal/core", "internal/detect",
}

// AnalyzerCtxLeak enforces that every `go` statement in a concurrent
// package has a shutdown tie: either a sync.WaitGroup Add earlier in
// the launching function, or a callee body that visibly participates
// in shutdown (defer wg.Done(), a receive from a struct{} done/stop
// channel, or ctx.Done()).
var AnalyzerCtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "every goroutine in the serving stacks and the parallelized theory packages is tied to a shutdown path (WaitGroup, done channel, or context)",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	if !relPathMatches(pass.Pkg.RelPath, concurrentPkgs) {
		return
	}
	decls := packageFuncDecls(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncForLeaks(pass, fn, decls)
			return true
		})
	}
}

// packageFuncDecls maps each function/method object of the package to
// its declaration, so a `go m.run(...)` launch can be checked against
// run's body.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// checkFuncForLeaks examines every go statement in one function.
func checkFuncForLeaks(pass *Pass, fn *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	var addPositions []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(pass, call, "Add") {
			addPositions = append(addPositions, call.Pos())
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		for _, p := range addPositions {
			if p < g.Pos() {
				return true // wg.Add(...) precedes the launch
			}
		}
		if calleeHasShutdownTie(pass, g.Call, decls) {
			return true
		}
		pass.Reportf(g.Pos(),
			"goroutine has no shutdown tie: no WaitGroup.Add before launch, and the callee neither defers Done, receives on a done channel, nor watches ctx.Done()")
		return true
	})
}

// isWaitGroupCall reports whether call is method name on a
// sync.WaitGroup receiver.
func isWaitGroupCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// calleeHasShutdownTie resolves the launched function and scans its
// body for a shutdown tie.
func calleeHasShutdownTie(pass *Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) bool {
	var body *ast.BlockStmt
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		var ident *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			ident = fun
		case *ast.SelectorExpr:
			ident = fun.Sel
		}
		if ident == nil {
			return false
		}
		obj, ok := pass.Pkg.Info.Uses[ident].(*types.Func)
		if !ok {
			return false
		}
		decl, ok := decls[obj]
		if !ok || decl.Body == nil {
			return false
		}
		body = decl.Body
	}
	return bodyHasShutdownTie(pass, body)
}

// bodyHasShutdownTie scans a function body for any of the accepted
// shutdown ties.
func bodyHasShutdownTie(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isWaitGroupCall(pass, n.Call, "Done") {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isSignalChannel(pass, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if isContextDone(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSignalChannel reports whether e has type chan struct{} (any
// direction) — the done/stop channel idiom.
func isSignalChannel(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isContextDone reports whether call is ctx.Done() on a
// context.Context.
func isContextDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}
