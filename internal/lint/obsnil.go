package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsHandles are the nil-tolerant handle types of internal/obs: all of
// their methods are no-ops on a nil receiver, which is the whole point
// of the package — instrumented code never branches on whether metrics
// are enabled.
var obsHandles = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
	"Registry": true, "Trace": true, "Span": true, "Flight": true,
	"Ledger": true, "Scope": true,
}

// AnalyzerObsNil enforces the nil-safe usage discipline of obs handles
// outside internal/obs itself: no dereference, no field access, and no
// redundant nil guard around calls that are already nil-safe (a guard
// re-introduces exactly the inconsistently-checked branch the handles
// were designed to remove).
var AnalyzerObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "obs handles are used only through their nil-safe methods (no deref, no field access, no redundant nil guard)",
	Run:  runObsNil,
}

// isObsHandle reports whether t is (a pointer to) one of the obs handle
// types, identified by package-path suffix so fixture modules exercise
// the rule too.
func isObsHandle(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !obsHandles[obj.Name()] {
		return false
	}
	return hasPathPrefix(obj.Pkg().Path(), "internal/obs") ||
		hasSuffixSegment(obj.Pkg().Path(), "internal/obs")
}

// hasSuffixSegment reports whether path ends in the slash-separated
// suffix on a segment boundary.
func hasSuffixSegment(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

func runObsNil(pass *Pass) {
	if hasSuffixSegment(pass.Pkg.Path, "internal/obs") {
		return // the package itself may touch its own fields
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				selection, ok := info.Selections[n]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				if isObsHandle(selection.Recv()) {
					pass.Reportf(n.Sel.Pos(),
						"field access on obs handle %s; use its nil-safe methods", types.ExprString(n.X))
				}
			case *ast.StarExpr:
				tv, ok := info.Types[n.X]
				if !ok || tv.IsType() {
					return true // *obs.Counter as a type, not a deref
				}
				if isObsHandle(tv.Type) {
					if _, isPtr := tv.Type.(*types.Pointer); isPtr {
						pass.Reportf(n.Pos(),
							"dereference of obs handle %s copies its atomics; use the handle's nil-safe methods", types.ExprString(n.X))
					}
				}
			case *ast.IfStmt:
				checkRedundantGuard(pass, n)
			}
			return true
		})
	}
}

// checkRedundantGuard flags `if h != nil { h.Method(...) ... }` where h
// is an obs handle and the body only calls methods on h: the guard is
// dead weight (the methods are nil-safe) and the pattern drifts into
// the inconsistent compare-then-use bugs the handles exist to prevent.
func checkRedundantGuard(pass *Pass, stmt *ast.IfStmt) {
	if stmt.Init != nil || stmt.Else != nil {
		return
	}
	bin, ok := stmt.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return
	}
	handle := bin.X
	if isNil(pass, bin.X) {
		handle = bin.Y
	} else if !isNil(pass, bin.Y) {
		return
	}
	tv, ok := pass.Pkg.Info.Types[handle]
	if !ok || !isObsHandle(tv.Type) {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
		return
	}
	want := types.ExprString(handle)
	if len(stmt.Body.List) == 0 {
		return
	}
	for _, s := range stmt.Body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		// Walk chained calls (v.With("t").Inc(), l.Scope(t, f).AddSteps(n))
		// down to the root receiver: every hop stays on nil-safe handles,
		// so the chain is as guarded as a direct method call.
		if chainRoot(call) != want {
			return
		}
	}
	pass.Reportf(stmt.Pos(),
		"redundant nil guard: methods on obs handle %s are nil-safe no-ops", want)
}

// chainRoot unwinds a method-call chain to its receiver expression and
// returns its printed form: "v" for v.With("t").Inc(), "s.flight" for
// s.flight.Record(...). Returns "" when e is not a selector-rooted call.
func chainRoot(e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if inner, ok := sel.X.(*ast.CallExpr); ok {
		return chainRoot(inner)
	}
	return types.ExprString(sel.X)
}

// isNil reports whether e is the predeclared nil.
func isNil(pass *Pass, e ast.Expr) bool {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.Pkg.Info.Uses[ident].(*types.Nil)
	return isNilObj
}
