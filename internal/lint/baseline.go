package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// Baseline is the committed set of accepted findings — the ratchet's
// anchor. Entries identify a finding by module-relative file, rule, and
// message, deliberately ignoring the line number: edits above a finding
// move it without changing what it says, and the baseline must not churn
// (or worse, report a "new" finding) every time unrelated code shifts.
// Identical findings are matched as a multiset, so a second copy of an
// already-baselined finding still counts as new.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	File string `json:"file"` // module-relative, slash-separated
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// baselineVersion is bumped if the entry identity ever changes shape.
const baselineVersion = 1

// baselineKey is the identity findings and entries are matched on.
func (e BaselineEntry) key() string { return e.File + "\x00" + e.Rule + "\x00" + e.Msg }

// entryFor reduces a finding to its baseline identity, relative to the
// module root so the baseline is machine-independent.
func entryFor(dir string, f Finding) BaselineEntry {
	rel := relativize(dir, f)
	return BaselineEntry{
		File: filepath.ToSlash(rel.Pos.Filename),
		Rule: f.Rule,
		Msg:  f.Msg,
	}
}

// NewBaseline records the findings as the accepted set.
func NewBaseline(dir string, findings []Finding) *Baseline {
	b := &Baseline{Version: baselineVersion, Findings: make([]BaselineEntry, 0, len(findings))}
	for _, f := range findings {
		b.Findings = append(b.Findings, entryFor(dir, f))
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	return b
}

// WriteBaseline serializes the baseline as stable, diffable JSON.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a baseline written by Write.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("lint: parse baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline version %d, want %d (regenerate with -update-baseline)", b.Version, baselineVersion)
	}
	return &b, nil
}

// New returns the findings not covered by the baseline. Matching is a
// multiset consume: each baseline entry absorbs at most one finding with
// the same file+rule+msg, so genuine duplicates surface as new.
func (b *Baseline) New(dir string, findings []Finding) []Finding {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[e.key()]++
	}
	var out []Finding
	for _, f := range findings {
		k := entryFor(dir, f).key()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// Ratchet compares per-rule counts against the baseline and describes
// every rule whose count grew. It is the coarse backstop behind New:
// even if a rename or message drift confuses entry matching, the count
// per rule must never go up.
func (b *Baseline) Ratchet(findings []Finding) []string {
	base := make(map[string]int)
	for _, e := range b.Findings {
		base[e.Rule]++
	}
	now := make(map[string]int)
	for _, f := range findings {
		now[f.Rule]++
	}
	rules := make([]string, 0, len(now))
	for rule := range now {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	var out []string
	for _, rule := range rules {
		if now[rule] > base[rule] {
			out = append(out, fmt.Sprintf("rule %s: %d finding(s), baseline has %d — the ratchet only goes down", rule, now[rule], base[rule]))
		}
	}
	return out
}
