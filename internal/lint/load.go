package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Load parses and type-checks the packages matched by the patterns,
// resolved relative to dir. Patterns are directories ("." , "./cmd/x")
// or recursive globs ("./...", "./internal/..."); matched packages are
// returned for analysis, while module-local imports outside the
// patterns are loaded transparently. Test files are not analyzed: the
// invariants gpdlint enforces are production-code invariants.
//
// Loading uses only the standard library: go/parser for syntax,
// go/types for semantics, with module-local imports resolved from
// source inside the module and everything else through the stdlib
// source importer.
func Load(patterns []string, dir string) ([]*Package, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolve %q: %w", dir, err)
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	l, err := moduleLoader(modRoot, modPath)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	want, err := l.expand(patterns, abs)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range want {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// loaderCache memoizes one loader per module root for the lifetime of
// the process. Parsing and type-checking the module (and, through the
// source importer, its slice of the standard library) dominates a lint
// run; sharing the loader means the driver's text, baseline, and SARIF
// stages — and every fixture-module test — pay for the load once. The
// cache assumes sources do not change underneath a running process,
// which holds for both the CLI and the test suite.
var loaderCache = struct {
	sync.Mutex
	byRoot map[string]*loader
}{byRoot: make(map[string]*loader)}

// moduleLoader returns the process-wide loader for a module root,
// creating and indexing it on first use.
func moduleLoader(modRoot, modPath string) (*loader, error) {
	loaderCache.Lock()
	defer loaderCache.Unlock()
	if l, ok := loaderCache.byRoot[modRoot]; ok {
		return l, nil
	}
	l := &loader{
		fset:     token.NewFileSet(),
		modRoot:  modRoot,
		modPath:  modPath,
		dirs:     make(map[string]string),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	if err := l.index(); err != nil {
		return nil, err
	}
	loaderCache.byRoot[modRoot] = l
	return l, nil
}

// loader loads and memoizes the module's packages.
type loader struct {
	mu       sync.Mutex // serializes Load calls sharing this cached loader
	fset     *token.FileSet
	modRoot  string
	modPath  string
	dirs     map[string]string // import path -> directory
	pkgs     map[string]*Package
	checking map[string]bool // import-cycle guard
	std      types.ImporterFrom
}

// index walks the module tree once and records every package directory,
// so imports of unrequested module packages still resolve from source.
func (l *loader) index() error {
	return filepath.WalkDir(l.modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if bp, err := build.Default.ImportDir(p, 0); err == nil && len(bp.GoFiles) > 0 {
			rel, err := filepath.Rel(l.modRoot, p)
			if err != nil {
				return err
			}
			l.dirs[l.importPath(filepath.ToSlash(rel))] = p
		}
		return nil
	})
}

// importPath maps a module-relative slash path to the import path.
func (l *loader) importPath(rel string) string {
	if rel == "." || rel == "" {
		return l.modPath
	}
	return l.modPath + "/" + rel
}

// expand resolves the command-line patterns into import paths.
func (l *loader) expand(patterns []string, base string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, p
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		root := filepath.Join(base, filepath.FromSlash(pat))
		rel, err := filepath.Rel(l.modRoot, root)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: pattern %q leaves the module rooted at %s", pat, l.modRoot)
		}
		prefix := l.importPath(filepath.ToSlash(rel))
		matched := false
		for path := range l.dirs {
			if path == prefix || (recursive && hasPathPrefix(path, prefix)) {
				add(path)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matches no packages", pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Import resolves an import for the type checker: module-local packages
// load from source here, everything else goes to the stdlib source
// importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || hasPathPrefix(path, l.modPath) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package, memoized.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: no package %s in module %s", path, l.modPath)
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: scan %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	pkg := &Package{
		Fset:    l.fset,
		Path:    path,
		RelPath: rel,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
