module example.com/ctxleak

go 1.22
