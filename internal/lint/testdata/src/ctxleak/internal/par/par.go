// Package par stands in for the parallelized theory packages: worker
// pools must join before the kernel returns, so every launch needs a
// WaitGroup tie — an untied goroutine is a correctness hole, not just a
// leak.
package par

import "sync"

// DoChunked is the sanctioned worker-pool shape: wg.Add before each
// launch, the pool joined before returning.
func DoChunked(w, n int, fn func(lo, hi int)) {
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// DoLeaky forgets the WaitGroup registration: the results slice may be
// read before the workers finish, which is exactly the scheduling leak
// the parallel kernels must never have.
func DoLeaky(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		go func(i int) { // want `goroutine has no shutdown tie`
			fn(i)
		}(i)
	}
}
