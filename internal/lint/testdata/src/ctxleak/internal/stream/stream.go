// Package stream stands in for a concurrent serving package: every
// goroutine must be tied to a shutdown path.
package stream

import (
	"context"
	"sync"
)

// Worker owns a goroutine pool.
type Worker struct {
	wg   sync.WaitGroup
	done chan struct{}
	jobs chan int
}

// StartTracked launches with a WaitGroup registration: allowed.
func (w *Worker) StartTracked() {
	w.wg.Add(1)
	go w.loop()
}

func (w *Worker) loop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case j := <-w.jobs:
			_ = j
		}
	}
}

// StartDone launches a callee that watches the done channel: allowed.
func (w *Worker) StartDone() {
	go w.watch()
}

func (w *Worker) watch() {
	<-w.done
}

// StartCtx launches a literal that watches ctx.Done(): allowed.
func (w *Worker) StartCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// StartLeakLit launches a literal with no shutdown tie.
func (w *Worker) StartLeakLit() {
	go func() { // want `goroutine has no shutdown tie`
		for j := range w.jobs {
			_ = j
		}
	}()
}

// StartLeakMethod launches a method whose body has no shutdown tie.
func (w *Worker) StartLeakMethod() {
	go w.drain() // want `goroutine has no shutdown tie`
}

func (w *Worker) drain() {
	for j := range w.jobs {
		_ = j
	}
}
