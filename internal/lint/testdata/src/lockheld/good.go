package lockheld

import (
	"net"
	"sync"
	"time"
)

// Negative cases: released before blocking, snapshot-then-close, a
// condition wait (which releases the lock), and a fresh goroutine.

func (s *srv) releasedBeforeSend() {
	s.mu.Lock()
	s.conns[nil] = struct{}{}
	s.mu.Unlock()
	s.ch <- 1
	<-s.ch
	time.Sleep(time.Millisecond)
}

func (s *srv) snapshotThenClose() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

type queue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	items    []int
}

func (q *queue) pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.notEmpty.Wait() // releases q.mu while blocked: fine
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

func (s *srv) goroutineIsFresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // other goroutine: does not hold s.mu
	}()
}
