package lockheld

import (
	"net"
	"sync"
	"time"
)

type srv struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	conns map[net.Conn]struct{}
	ch    chan int
}

func (s *srv) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

func (s *srv) recvHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := <-s.ch // want `channel receive while holding s\.mu`
	_ = v
}

func (s *srv) sleepHeld() {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.rw`
	s.rw.RUnlock()
}

func (s *srv) closeHeld() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close() // want `net I/O \(Close\) while holding s\.mu`
	}
	s.mu.Unlock()
}

func (s *srv) selectHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select while holding s\.mu`
	default:
	}
}

func (s *srv) rangeChanHeld(jobs chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for j := range jobs { // want `range over channel while holding s\.mu`
		_ = j
	}
}
