module example.com/lockheld

go 1.22
