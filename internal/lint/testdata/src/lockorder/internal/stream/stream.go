// Package stream is the lockorder fixture's direct-cycle half: two
// mutexes acquired in opposite orders by two methods — the textbook
// deadlock the rule exists to catch — next to a pair that agrees on one
// global order.
package stream

import "sync"

type A struct {
	mu    sync.Mutex
	other *B
}

type B struct {
	mu    sync.Mutex
	other *A
}

// lockAB takes A.mu then B.mu: the edge A.mu -> B.mu.
func (a *A) lockAB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.other.mu.Lock()
	defer a.other.mu.Unlock()
}

// lockBA takes B.mu then A.mu: the reverse edge closes the cycle here.
func (b *B) lockBA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.other.mu.Lock() // want `lock-order cycle \(deadlock risk\): stream\.A\.mu -> stream\.B\.mu -> stream\.A\.mu`
	defer b.other.mu.Unlock()
}

// Consistent order everywhere: no cycle.
type ordered struct {
	first  sync.Mutex
	second sync.Mutex
}

func (o *ordered) both() {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	defer o.second.Unlock()
}

func (o *ordered) bothAgain() {
	o.first.Lock()
	o.second.Lock()
	o.second.Unlock()
	o.first.Unlock()
}
