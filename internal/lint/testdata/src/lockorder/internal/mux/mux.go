// Package mux is the lockorder fixture's via-call half: the reverse
// edge of the cycle is acquired inside a helper, so it is only visible
// through the call-graph summaries.
package mux

import "sync"

type C struct {
	mu    sync.Mutex
	other *D
}

type D struct {
	mu    sync.Mutex
	other *C
}

func (c *C) lockCD() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.other.lockD()
}

func (d *D) lockD() {
	d.mu.Lock()
	defer d.mu.Unlock()
}

func (d *D) lockDC() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.other.lockC() // want `lock-order cycle \(deadlock risk\): mux\.C\.mu -> mux\.D\.mu -> mux\.C\.mu.*via call to internal/mux\.C\.lockC`
}

func (c *C) lockC() {
	c.mu.Lock()
	defer c.mu.Unlock()
}
