// Package pkg does not parse: the driver must exit 2.
package pkg

func Broken( {
	return
}
