// Package detect is the maporder fixture: map ranges whose iteration
// order escapes into consumers, appended slices, concatenations, and
// selections, next to every sanctioned order-independent idiom.
package detect

import "sort"

// checker is a stateful consumer: the order of Observe calls changes its
// internal elimination order, like the real conjunctive token checker.
type checker struct {
	seen []int
	work int
}

func (c *checker) Observe(proc int, vcs []int) { c.seen = append(c.seen, proc) }
func (c *checker) Count(n int)                 { c.work += n }
func (c *checker) At(proc int) int             { return proc }

// detector mirrors the pre-canonicalization conjunctive bug: Flush fed
// the checker straight out of the pending map, so the elimination order
// — and the work counters diffed by the agreement tests — varied run to
// run.
type detector struct {
	pending map[int][]int
	checker *checker
}

func (d *detector) flushLeaky() {
	for p, vcs := range d.pending {
		d.checker.Observe(p, vcs) // want `feeds iteration-dependent arguments to d\.Observe; the consumer sees entries in map order`
		delete(d.pending, p)
	}
}

func (d *detector) flushSorted() {
	procs := make([]int, 0, len(d.pending))
	for p := range d.pending {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		d.checker.Observe(p, d.pending[p])
		delete(d.pending, p)
	}
}

// appendLeak collects map values into an outer slice with no later sort.
func appendLeak(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name) // want `appends iteration-dependent values to names without a later sort`
	}
	return names
}

// appendThenSort is the sanctioned collect-then-sort idiom.
func appendThenSort(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// concatLeak builds a report string in map order.
func concatLeak(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `concatenates iteration-dependent values onto out`
	}
	return out
}

// selectionLeak returns whichever entry the runtime happens to visit
// first — the order-dependent selection shape.
func selectionLeak(m map[int]bool) int {
	for p, bad := range m {
		if bad {
			return p // want `return of an iteration-dependent value`
		}
	}
	return -1
}

// earlyExitLeak breaks after accumulating: the counter's value depends
// on which iterations ran before the exit landed.
func earlyExitLeak(m map[string]int, limit int) int {
	total := 0
	for _, v := range m {
		total += v
		if total > limit {
			break // want `early break out of a range .* after an order-dependent effect`
		}
	}
	return total
}

// keyedWrites, commutative accumulation, existence checks, reads through
// consumed results, and draining the current key are all order-
// independent and must pass.
func sanctioned(m map[string]int, c *checker) (int, bool) {
	out := make(map[string]int, len(m))
	sum := 0
	for k, v := range m {
		out[k] = v + 1 // keyed write
		sum += v       // commutative, no early exit
		_ = c.At(v)    // consumed result: a read, not a consumer
		delete(m, k)   // current-key drain
	}
	found := false
	for _, v := range m {
		if v > 0 {
			found = true // constant: which iteration set it is unobservable
			break
		}
	}
	return sum, found
}
