// Package stream is the hotalloc fixture: an annotated ingest root, the
// helpers it reaches, a coldpath boundary, and an unannotated function
// whose allocations are nobody's business.
package stream

type event struct {
	proc int
	vc   []int64
}

type engine struct {
	out   []event
	ring  []event
	count int
}

// Append is the fixture's ingest root.
//
//lint:hotpath
func (e *engine) Append(ev event) {
	r := &event{proc: ev.proc} // want `escaping composite literal in internal/stream\.engine\.Append \(a //lint:hotpath root\)`
	_ = r
	vcs := []int64{1, 2} // want `slice/map literal allocates`
	_ = vcs
	buf := make([]event, 0) // want `make allocates in internal/stream\.engine\.Append`
	buf = append(buf, ev)   // want `append may grow its backing array` (make'd without capacity)
	pre := make([]event, 0, 8)
	pre = append(pre, ev) // preallocated with capacity: sanctioned
	_ = pre
	e.out = append(e.out, ev)   // want `append may grow its backing array in internal/stream\.engine\.Append`
	key := string(ev.vcBytes()) // want `\[\]byte->string conversion copies`
	_ = key
	fn := func() int { return ev.proc } // want `closure captures ev in internal/stream\.engine\.Append`
	_ = fn()
	e.record(ev)
	e.dump()
}

func (e *event) vcBytes() []byte { return nil }

// record is reachable from the root: its allocations are on the hot path.
func (e *engine) record(ev event) {
	e.ring = append(e.ring, ev) // want `append may grow its backing array in internal/stream\.engine\.record on the hot path from internal/stream\.engine\.Append`
}

// dump is the slow-path boundary: reachability stops here, so its
// allocations pass.
//
//lint:coldpath
func (e *engine) dump() {
	all := make([]event, 0)
	all = append(all, e.ring...)
	_ = all
}

// offline is not annotated and not reachable from a root: allocate away.
func (e *engine) offline(evs []event) []event {
	out := make([]event, 0)
	for _, ev := range evs {
		out = append(out, ev)
	}
	return out
}
