module example.com/hotalloc

go 1.22
