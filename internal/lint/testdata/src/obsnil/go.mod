module example.com/obsnil

go 1.22
