// Package obs is a miniature of the real observability substrate: all
// handle methods are nil-safe no-ops. V is exported only so the
// analyzer's field-access check has something to catch.
package obs

// Counter is a nil-safe counter handle.
type Counter struct{ V int64 }

// Inc bumps the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.V++
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.V
}

// Gauge is a nil-safe gauge handle.
type Gauge struct{ V int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.V = n
}

// Flight is a nil-safe flight-recorder handle.
type Flight struct{ N int }

// Record appends one record.
func (f *Flight) Record(stage string) {
	if f == nil {
		return
	}
	f.N++
}

// NextSeq issues a sequence number.
func (f *Flight) NextSeq() int {
	if f == nil {
		return 0
	}
	f.N++
	return f.N
}

// CounterVec is a nil-safe labeled counter family.
type CounterVec struct{ M map[string]*Counter }

// With returns the series for the label values, nil-safely.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := ""
	for _, val := range values {
		key += val + "\x1f"
	}
	c, ok := v.M[key]
	if !ok {
		c = &Counter{}
		if v.M == nil {
			v.M = make(map[string]*Counter)
		}
		v.M[key] = c
	}
	return c
}

// Ledger attributes cost to scopes, nil-safely.
type Ledger struct{ CPU int64 }

// Scope interns an attribution scope.
func (l *Ledger) Scope(tenant, family string) *Scope {
	if l == nil {
		return nil
	}
	return &Scope{}
}

// Scope is one (tenant, family) attribution bucket.
type Scope struct{ Steps int64 }

// AddSteps charges detector steps to the scope.
func (s *Scope) AddSteps(n int64) {
	if s == nil {
		return
	}
	s.Steps += n
}

// Registry interns named metrics.
type Registry struct{ counters map[string]*Counter }

// Counter returns the named counter, nil-safely.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}
