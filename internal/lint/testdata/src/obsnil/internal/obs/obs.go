// Package obs is a miniature of the real observability substrate: all
// handle methods are nil-safe no-ops. V is exported only so the
// analyzer's field-access check has something to catch.
package obs

// Counter is a nil-safe counter handle.
type Counter struct{ V int64 }

// Inc bumps the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.V++
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.V
}

// Gauge is a nil-safe gauge handle.
type Gauge struct{ V int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.V = n
}

// Flight is a nil-safe flight-recorder handle.
type Flight struct{ N int }

// Record appends one record.
func (f *Flight) Record(stage string) {
	if f == nil {
		return
	}
	f.N++
}

// NextSeq issues a sequence number.
func (f *Flight) NextSeq() int {
	if f == nil {
		return 0
	}
	f.N++
	return f.N
}

// Registry interns named metrics.
type Registry struct{ counters map[string]*Counter }

// Counter returns the named counter, nil-safely.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}
