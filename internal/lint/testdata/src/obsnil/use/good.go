package use

import "example.com/obsnil/internal/obs"

// Good sticks to nil-safe method calls; sampling guards whose body
// does more than call methods on the handle stay allowed.
func Good(c *obs.Counter, r *obs.Registry) int64 {
	c.Inc()
	r.Counter("events").Inc()
	enabled := c != nil
	if enabled {
		c.Inc()
	}
	if c != nil {
		v := c.Value()
		return v
	}
	return 0
}

// GoodFlight records unconditionally — the handle is nil-safe — and may
// branch on the sequence number it got back.
func GoodFlight(f *obs.Flight) {
	f.Record("recv")
	if seq := f.NextSeq(); seq > 0 {
		f.Record("delivered")
	}
}

// GoodVec goes through With unconditionally: the vector and the series
// it returns are both nil-safe.
func GoodVec(v *obs.CounterVec) {
	v.With("acme").Inc()
	series := v.With("rival")
	series.Inc()
}

// GoodLedger charges scopes through nil-safe methods only.
func GoodLedger(l *obs.Ledger) {
	scope := l.Scope("acme", "sum")
	scope.AddSteps(3)
	l.Scope("rival", "xor").AddSteps(1)
}
