package use

import "example.com/obsnil/internal/obs"

// Good sticks to nil-safe method calls; sampling guards whose body
// does more than call methods on the handle stay allowed.
func Good(c *obs.Counter, r *obs.Registry) int64 {
	c.Inc()
	r.Counter("events").Inc()
	enabled := c != nil
	if enabled {
		c.Inc()
	}
	if c != nil {
		v := c.Value()
		return v
	}
	return 0
}

// GoodFlight records unconditionally — the handle is nil-safe — and may
// branch on the sequence number it got back.
func GoodFlight(f *obs.Flight) {
	f.Record("recv")
	if seq := f.NextSeq(); seq > 0 {
		f.Record("delivered")
	}
}
