package use

import "example.com/obsnil/internal/obs"

// Good sticks to nil-safe method calls; sampling guards whose body
// does more than call methods on the handle stay allowed.
func Good(c *obs.Counter, r *obs.Registry) int64 {
	c.Inc()
	r.Counter("events").Inc()
	enabled := c != nil
	if enabled {
		c.Inc()
	}
	if c != nil {
		v := c.Value()
		return v
	}
	return 0
}
