package use

import "example.com/obsnil/internal/obs"

// Bad exercises every forbidden handle usage.
func Bad(c *obs.Counter, g *obs.Gauge) int64 {
	v := c.V      // want `field access on obs handle c`
	cc := *c      // want `dereference of obs handle c`
	if g != nil { // want `redundant nil guard`
		g.Set(1)
	}
	return v + cc.V // want `field access on obs handle cc`
}

// BadFlight exercises the same misuses against the flight recorder.
func BadFlight(f *obs.Flight) int {
	n := f.N      // want `field access on obs handle f`
	if f != nil { // want `redundant nil guard`
		f.Record("recv")
		f.Record("delivered")
	}
	return n
}
