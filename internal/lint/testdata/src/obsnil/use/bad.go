package use

import "example.com/obsnil/internal/obs"

// Bad exercises every forbidden handle usage.
func Bad(c *obs.Counter, g *obs.Gauge) int64 {
	v := c.V      // want `field access on obs handle c`
	cc := *c      // want `dereference of obs handle c`
	if g != nil { // want `redundant nil guard`
		g.Set(1)
	}
	return v + cc.V // want `field access on obs handle cc`
}

// BadFlight exercises the same misuses against the flight recorder.
func BadFlight(f *obs.Flight) int {
	n := f.N      // want `field access on obs handle f`
	if f != nil { // want `redundant nil guard`
		f.Record("recv")
		f.Record("delivered")
	}
	return n
}

// BadVec exercises the misuses against a labeled vector and its series.
func BadVec(v *obs.CounterVec) {
	m := v.M // want `field access on obs handle v`
	_ = m
	if v != nil { // want `redundant nil guard`
		v.With("acme").Inc()
	}
	vv := *v // want `dereference of obs handle v`
	_ = vv
}

// BadLedger exercises the misuses against the cost ledger and scopes.
func BadLedger(l *obs.Ledger, s *obs.Scope) int64 {
	cpu := l.CPU  // want `field access on obs handle l`
	if l != nil { // want `redundant nil guard`
		l.Scope("acme", "sum").AddSteps(1)
	}
	steps := s.Steps // want `field access on obs handle s`
	if s != nil {    // want `redundant nil guard`
		s.AddSteps(2)
	}
	return cpu + steps
}
