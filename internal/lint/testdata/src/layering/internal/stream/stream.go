// Package stream stands in for the serving stack: it may use the
// network, but not its peer serving stack.
package stream

import (
	"net"

	"example.com/layering/internal/monitor" // want `package internal/stream must not import internal/monitor`
)

// Frames reports a made-up frame count.
func Frames() int {
	_ = net.FlagUp
	return monitor.Observations()
}
