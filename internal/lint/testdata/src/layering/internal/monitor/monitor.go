// Package monitor stands in for the online checker stack; importing
// the network is its job, so no finding here.
package monitor

import "net"

// Observations reports a made-up observation count.
func Observations() int {
	_ = net.FlagLoopback
	return 1
}
