// Package slicing stands in for the slicing theory: it builds on the
// computation model alone, so the detector kernel and the multiplexer
// import it, never the other way round.
package slicing

import (
	"example.com/layering/internal/detect" // want `package internal/slicing must not import internal/detect`
	"example.com/layering/internal/lattice"
	"example.com/layering/internal/mux" // want `package internal/slicing must not import internal/mux`
)

// Join pretends to fold one event into the slice's join-irreducibles;
// the lattice import is the allowed theory edge.
func Join() int {
	return detect.Step() + mux.Route() + lattice.Explore(nil)
}
