// Package mux stands in for the predicate multiplexer: the detector
// kernel is the allowed downward edge, the serving stacks and the
// network are not.
package mux

import (
	"net/http" // want `package internal/mux must not import net/http`

	"example.com/layering/internal/detect"
	"example.com/layering/internal/stream" // want `package internal/mux must not import internal/stream`
)

// Route pretends to fan one delivered event out to its subscribers; the
// detect import is the allowed detector-kernel edge.
func Route() int {
	_ = http.MethodGet
	return stream.Frames() + detect.Step()
}
