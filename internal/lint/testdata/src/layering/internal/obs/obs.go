// Package obs stands in for the observability substrate, which is
// dependency-free by contract.
package obs

import (
	"sync/atomic"

	"example.com/layering/internal/util" // want `package internal/obs must not import module-local packages`
)

// Counter is a stand-in metric.
type Counter struct{ v atomic.Int64 }

// Inc bumps the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(util.One())
}
