// Package lattice stands in for the theory core: it must stay
// serving-free.
package lattice

import (
	"net" // want `package internal/lattice must not import net`
	"sort"

	"example.com/layering/internal/stream" // want `package internal/lattice must not import internal/stream`
)

// Explore pretends to explore a lattice of cuts.
func Explore(cuts []int) int {
	sort.Ints(cuts)
	_ = net.IPv4len
	return stream.Frames() + len(cuts)
}
