// Package detect stands in for the detector kernel: theory imports are
// allowed, the serving stacks and the network are not.
package detect

import (
	"net" // want `package internal/detect must not import net`

	"example.com/layering/internal/lattice"
	"example.com/layering/internal/stream" // want `package internal/detect must not import internal/stream`
)

// Step pretends to advance an incremental detector; the lattice import
// is the allowed theory edge.
func Step() int {
	_ = net.FlagUp
	return stream.Frames() + lattice.Explore(nil)
}
