// Package util is a neutral helper package other fixtures import.
package util

// One returns 1.
func One() int64 { return 1 }
