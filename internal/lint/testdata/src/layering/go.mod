module example.com/layering

go 1.22
