module example.com/ignore

go 1.22
