// Package lattice exercises //lint:ignore suppression against the
// detptime rule.
package lattice

import "time"

// Suppressed carries a well-formed directive: no finding survives.
func Suppressed() int64 {
	//lint:ignore detptime benchmarking scaffold, never replayed
	return time.Now().UnixNano()
}

// Unsuppressed has no directive: the finding survives.
func Unsuppressed() int64 {
	return time.Now().UnixNano()
}

// BadDirective has a directive without a reason: it suppresses nothing
// and is itself reported under the "ignore" rule.
func BadDirective() int64 {
	//lint:ignore detptime
	return time.Now().UnixNano()
}

// WrongRule suppresses a different rule, so the detptime finding
// survives.
func WrongRule() int64 {
	//lint:ignore lockheld the wrong rule on purpose
	return time.Now().UnixNano()
}
