// Package pkg is a trivially clean fixture: the driver must exit 0.
package pkg

// Add sums two ints.
func Add(a, b int) int { return a + b }
