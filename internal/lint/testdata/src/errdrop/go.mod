module example.com/errdrop

go 1.22
