// Package stream is the errdrop fixture: discarded errors on conn
// deadlines, encoders, and flushes, next to the handled versions and the
// deliberately exempt Close idiom.
package stream

import (
	"bufio"
	"encoding/json"
	"net"
	"time"
)

func serve(conn net.Conn) {
	defer conn.Close() // Close is exempt: best-effort teardown is the idiom

	conn.SetReadDeadline(time.Now()) // want `net\.Conn\.SetReadDeadline error discarded`

	bw := bufio.NewWriter(conn)
	enc := json.NewEncoder(bw)
	dec := json.NewDecoder(conn)

	enc.Encode(struct{}{}) // want `json\.Encoder\.Encode error discarded`

	var v struct{}
	dec.Decode(&v) // want `json\.Decoder\.Decode error discarded`

	bw.Flush() // want `bufio\.Writer\.Flush error discarded`

	n, _ := conn.Write(nil) // want `net\.Conn\.Write error assigned to _`
	_ = n

	defer bw.Flush() // want `bufio\.Writer\.Flush error discarded by defer`
}

// handled is the clean counterpart: every error is looked at.
func handled(conn net.Conn) error {
	if err := conn.SetWriteDeadline(time.Now()); err != nil {
		return err
	}
	bw := bufio.NewWriter(conn)
	if err := json.NewEncoder(bw).Encode(struct{}{}); err != nil {
		return err
	}
	return bw.Flush()
}

// reader is not a net type: its Read errors are none of this rule's
// business (io.Reader loops handle io.EOF idiomatically).
type reader struct{}

func (reader) Read(p []byte) (int, error) { return 0, nil }

func drain(r reader) {
	buf := make([]byte, 16)
	r.Read(buf)
}
