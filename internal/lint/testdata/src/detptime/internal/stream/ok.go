// Package stream is outside the deterministic set: the serving stack
// may read the wall clock freely.
package stream

import "time"

// Uptime is allowed to use the clock.
func Uptime(since time.Time) time.Duration {
	return time.Since(since)
}
