// Package lattice stands in for a deterministic package: replay and
// agreement tests depend on it being a pure function of its inputs.
package lattice

import (
	"math/rand"
	"time"
)

// Bad reads ambient state a replay cannot reproduce.
func Bad() time.Duration {
	start := time.Now()      // want `time\.Now in deterministic package internal/lattice`
	_ = rand.Intn(10)        // want `global rand\.Intn in deterministic package internal/lattice`
	time.Sleep(0)            // want `time\.Sleep in deterministic package internal/lattice`
	return time.Since(start) // want `time\.Since in deterministic package internal/lattice`
}
