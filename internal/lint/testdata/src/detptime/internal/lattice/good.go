package lattice

import (
	"math/rand"
	"time"
)

// Good takes its randomness and durations as explicit inputs.
func Good(seed int64, budget time.Duration) int {
	rng := rand.New(rand.NewSource(seed))
	if budget > 0 {
		return rng.Intn(10)
	}
	return 0
}
