module example.com/detptime

go 1.22
