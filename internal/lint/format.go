package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// This file renders findings for machines: a flat JSON array for
// scripting, and SARIF 2.1.0 for code-scanning UIs (GitHub annotates
// PR diffs from an uploaded SARIF file). Both use module-relative
// slash paths so the output is stable across checkouts.

// jsonFinding is one finding in -format json output.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// WriteJSON renders the findings as a JSON array (never null: an empty
// run is an empty array, so jq pipelines need no special case).
func WriteJSON(w io.Writer, dir string, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		rel := relativize(dir, f)
		out = append(out, jsonFinding{
			File: filepath.ToSlash(rel.Pos.Filename),
			Line: f.Pos.Line,
			Rule: f.Rule,
			Msg:  f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 subset — just enough structure for GitHub code scanning:
// one run, one driver, one rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF renders the findings as a SARIF 2.1.0 log. The rules
// section lists every analyzer that ran (found something or not), so the
// scanning UI can show the rule catalog; results carry module-relative
// paths under %SRCROOT%, which GitHub resolves against the repository
// root.
func WriteSARIF(w io.Writer, dir string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		rel := relativize(dir, f)
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "warning",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(rel.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Pos.Line},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "gpdlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
