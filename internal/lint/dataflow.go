package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the lightweight dataflow layer under the module-wide
// analyzers: an index of every declared function, a static call graph
// over it, reachability from annotated roots, and a source-order
// per-function traversal that threads a held-lock state through the
// statements it visits (a CFG approximation: branches are walked in
// order, function literals start fresh, defers pin their effect to the
// function end). It stays stdlib-only, like the loader.

// funcInfo is one declared function or method with a body.
type funcInfo struct {
	obj  *types.Func
	pkg  *Package
	decl *ast.FuncDecl
}

// moduleIndex is the whole-load view shared by module analyzers.
type moduleIndex struct {
	// funcs maps every declared function object of the load to its body.
	funcs map[*types.Func]*funcInfo
	// callees is the static call graph: direct calls and method calls
	// whose callee resolves to a declared function. Calls through
	// interface values or function-typed variables are not resolved —
	// the documented approximation of the framework.
	callees map[*types.Func][]*types.Func
	// order lists the callers in deterministic (position) order so graph
	// walks report findings stably.
	order []*types.Func
}

// buildModuleIndex indexes the load's functions and their static calls.
func buildModuleIndex(pkgs []*Package) *moduleIndex {
	ix := &moduleIndex{
		funcs:   make(map[*types.Func]*funcInfo),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ix.funcs[obj] = &funcInfo{obj: obj, pkg: pkg, decl: fd}
				ix.order = append(ix.order, obj)
			}
		}
	}
	sort.Slice(ix.order, func(i, j int) bool {
		return ix.funcs[ix.order[i]].decl.Pos() < ix.funcs[ix.order[j]].decl.Pos()
	})
	for _, caller := range ix.order {
		fi := ix.funcs[caller]
		seen := make(map[*types.Func]bool)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(fi.pkg, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, declared := ix.funcs[callee]; !declared {
				return true // stdlib, interface method, or bodiless decl
			}
			seen[callee] = true
			ix.callees[caller] = append(ix.callees[caller], callee)
			return true
		})
	}
	return ix
}

// staticCallee resolves the function object a call statically dispatches
// to: a plain identifier, a package-qualified function, or a method on a
// concrete receiver. Interface methods resolve to the interface's
// method object, which has no declaration in the index and therefore
// ends the walk there.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// reachable returns every function reachable from the roots over the
// static call graph, mapped to the root it was first reached from (BFS
// in deterministic order, so the attribution is stable). Functions for
// which skip returns true are not entered — the traversal's explicit
// boundary (nil means no boundary).
func (ix *moduleIndex) reachable(roots []*types.Func, skip func(*types.Func) bool) map[*types.Func]*types.Func {
	out := make(map[*types.Func]*types.Func)
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if _, ok := out[r]; !ok {
			out[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range ix.callees[fn] {
			if _, ok := out[callee]; ok {
				continue
			}
			if skip != nil && skip(callee) {
				continue
			}
			out[callee] = out[fn]
			queue = append(queue, callee)
		}
	}
	return out
}

// funcName renders a function object as pkgrel.(Recv).Name for
// readable findings.
func funcName(pkgs []*Package, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() == nil {
		return name
	}
	for _, pkg := range pkgs {
		if pkg.Types == fn.Pkg() && pkg.RelPath != "" {
			return pkg.RelPath + "." + name
		}
	}
	return fn.Pkg().Name() + "." + name
}

// declaredWithin reports whether the identifier's object is declared
// inside the given node's source range — the scope test the loop
// analyses use to tell loop-local state from escaping state.
func declaredWithin(pkg *Package, id *ast.Ident, n ast.Node) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// rootIdent returns the base identifier of a possibly selected/indexed
// expression: rootIdent(a.b[i].c) = a.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsAny reports whether the expression references any of the given
// objects (used to test whether a value is derived from a loop's
// key/value variables).
func mentionsAny(pkg *Package, e ast.Expr, objs map[types.Object]bool) bool {
	if e == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isMapType reports whether the expression's type is (or points to) a
// map.
func isMapType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	_, isMap := t.(*types.Map)
	return isMap
}

// isSortCall reports whether the call is into package sort or slices —
// the canonical way iteration-order escapes are fixed.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// hotpathDirective marks a function as a hot-path root for the hotalloc
// rule; coldpathDirective marks an explicit slow-path boundary (breach
// handling, error dumps) that hot-path reachability does not enter, even
// when the hot path calls it directly.
const (
	hotpathDirective  = "//lint:hotpath"
	coldpathDirective = "//lint:coldpath"
)

// hasDirective reports whether the function's doc comment carries the
// given directive on a line of its own (a trailing explanation after a
// space is allowed).
func hasDirective(fi *funcInfo, directive string) bool {
	if fi == nil || fi.decl.Doc == nil {
		return false
	}
	for _, c := range fi.decl.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// hotpathRoots returns the functions annotated //lint:hotpath in their
// doc comment, in declaration order.
func hotpathRoots(ix *moduleIndex) []*types.Func {
	var roots []*types.Func
	for _, fn := range ix.order {
		if hasDirective(ix.funcs[fn], hotpathDirective) {
			roots = append(roots, fn)
		}
	}
	return roots
}

// lockFlow walks one function body in source order, threading the set
// of held locks through every statement, and reports acquisition and
// call events to its hooks. Locks are identified by lockKey (struct
// field path or package-level variable), so two methods locking the
// same field agree on identity. Function literals are walked with a
// fresh held set: they run on another goroutine or after release.
type lockFlow struct {
	pkg  *Package
	held []lockKey // acquisition-ordered
	// onAcquire fires when a lock is taken with the locks already held.
	onAcquire func(lock lockKey, held []lockKey, pos token.Pos)
	// onCall fires for every statically resolved call, with the locks
	// held at the call site.
	onCall func(callee *types.Func, held []lockKey, pos token.Pos)
	// fresh starts a walker for a nested function literal.
	fresh func() *lockFlow
}

// lockKey identifies a mutex: "Type.field" for a struct field,
// "pkg.var" for a package-level or local mutex variable. Qual is the
// defining package's name, so identities are global across the load.
type lockKey struct {
	Qual string
	Name string
}

func (k lockKey) String() string {
	if k.Qual == "" {
		return k.Name
	}
	return k.Qual + "." + k.Name
}

// lockKeyOf resolves the lock identity behind the receiver expression of
// a Lock/Unlock call: the struct field path when the mutex is a field,
// otherwise the variable itself.
func lockKeyOf(pkg *Package, recv ast.Expr) (lockKey, bool) {
	rel := func(p *types.Package) string {
		if p == nil {
			return ""
		}
		return p.Name()
	}
	switch x := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		// x.mu — prefer the owning named type of the field.
		if selection, ok := pkg.Info.Selections[x]; ok && selection.Kind() == types.FieldVal {
			field := selection.Obj()
			t := selection.Recv()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return lockKey{Qual: rel(named.Obj().Pkg()), Name: named.Obj().Name() + "." + field.Name()}, true
			}
			return lockKey{Qual: rel(field.Pkg()), Name: field.Name()}, true
		}
		// pkg.mu — a package-level mutex referenced with a qualifier.
		if obj, ok := pkg.Info.Uses[x.Sel]; ok {
			return lockKey{Qual: rel(obj.Pkg()), Name: obj.Name()}, true
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[x]; ok {
			return lockKey{Qual: rel(obj.Pkg()), Name: obj.Name()}, true
		}
	}
	return lockKey{}, false
}

// mutexTransition classifies a call as a lock-state transition on a
// sync.Mutex/RWMutex and returns the lock identity.
func mutexTransition(pkg *Package, call *ast.CallExpr) (key lockKey, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockKey{}, false, false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, false, false
	}
	key, ok = lockKeyOf(pkg, sel.X)
	return key, acquire, ok
}

func (w *lockFlow) acquire(k lockKey, pos token.Pos) {
	for _, h := range w.held {
		if h == k {
			return
		}
	}
	if w.onAcquire != nil {
		w.onAcquire(k, w.held, pos)
	}
	w.held = append(w.held, k)
}

func (w *lockFlow) release(k lockKey) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == k {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// walk traverses a statement list in source order.
func (w *lockFlow) walk(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockFlow) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, acq, ok := mutexTransition(w.pkg, call); ok {
				if acq {
					w.acquire(key, call.Pos())
				} else {
					w.release(key)
				}
				return
			}
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		if _, acq, ok := mutexTransition(w.pkg, s.Call); ok && !acq {
			return // defer mu.Unlock(): held to function end
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.fresh().walk(lit.Body.List)
			return
		}
		w.expr(s.Call)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.fresh().walk(lit.Body.List)
			return
		}
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walk(cc.Body)
			}
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		w.walk(s.Body.List)
	case *ast.BlockStmt:
		w.walk(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.walk(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.walk(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				w.walk(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walk(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// expr scans an expression for lock transitions and calls, in source
// order. Function literals get a fresh walker.
func (w *lockFlow) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.fresh().walk(n.Body.List)
			return false
		case *ast.CallExpr:
			if key, acq, ok := mutexTransition(w.pkg, n); ok {
				if acq {
					w.acquire(key, n.Pos())
				} else {
					w.release(key)
				}
				return true
			}
			if w.onCall != nil && len(w.held) > 0 {
				if callee := staticCallee(w.pkg, n); callee != nil {
					w.onCall(callee, w.held, n.Pos())
				}
			}
		}
		return true
	})
}
