package computation

import (
	"strings"
	"testing"
)

// Direct unit tests for the helpers other packages exercise only
// indirectly.

func TestClone(t *testing.T) {
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a, b); err != nil {
		t.Fatal(err)
	}
	extra := c.AddInternal(p1)
	if err := c.AddEdge(a, extra); err != nil {
		t.Fatal(err)
	}
	c.SetLabel(a, "tag")
	c.SetVar("x", a, 5)
	c.MustSeal()
	cc := c.Clone()
	if cc.Sealed() {
		t.Error("clone must be unsealed")
	}
	cc.MustSeal()
	if cc.NumProcs() != c.NumProcs() || cc.NumEvents() != c.NumEvents() {
		t.Fatal("clone shape differs")
	}
	if len(cc.Messages()) != 1 || len(cc.Edges()) != 1 {
		t.Fatal("clone lost edges")
	}
	if cc.Event(a).Label != "tag" || cc.Var("x", a) != 5 {
		t.Fatal("clone lost annotations")
	}
	// Mutating the clone must not affect the original.
	cc.AddInternal(p0)
	cc.SetVar("x", a, 9)
	cc.SetLabel(a, "other")
	if c.NumEvents() == cc.NumEvents() {
		t.Error("clone aliases event storage")
	}
	if c.Var("x", a) != 5 {
		t.Error("clone aliases variable storage")
	}
	if c.Event(a).Label != "tag" {
		t.Error("clone aliases label storage")
	}
}

func TestAddProcesses(t *testing.T) {
	c := New()
	first := c.AddProcesses(3)
	if first != 0 || c.NumProcs() != 3 {
		t.Fatalf("AddProcesses: first=%d procs=%d", first, c.NumProcs())
	}
	second := c.AddProcesses(2)
	if second != 3 || c.NumProcs() != 5 {
		t.Fatalf("second batch: first=%d procs=%d", second, c.NumProcs())
	}
}

func TestEventPanicsOnBadID(t *testing.T) {
	c := New()
	c.AddProcess()
	defer func() {
		if recover() == nil {
			t.Error("Event(999) must panic")
		}
	}()
	c.Event(999)
}

func TestRequireSealedPanics(t *testing.T) {
	c := New()
	c.AddProcess()
	defer func() {
		if recover() == nil {
			t.Error("order query before Seal must panic")
		}
	}()
	c.Clock(0)
}

func TestMustSealPanicsOnCycle(t *testing.T) {
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a1 := c.AddInternal(p0)
	a2 := c.AddInternal(p0)
	b1 := c.AddInternal(p1)
	b2 := c.AddInternal(p1)
	if err := c.AddMessage(a2, b1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMessage(b2, a1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSeal must panic on a cycle")
		}
	}()
	c.MustSeal()
}

func TestCutKeyUnique(t *testing.T) {
	seen := map[string]Cut{}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			k := Cut{i, j}
			key := k.Key()
			if other, dup := seen[key]; dup {
				t.Fatalf("key collision: %v and %v -> %q", k, other, key)
			}
			seen[key] = k
		}
	}
	// Keys must distinguish multi-digit boundaries: <1,23> vs <12,3>.
	if (Cut{1, 23}).Key() == (Cut{12, 3}).Key() {
		t.Error("key ambiguity across component boundaries")
	}
}

func TestTopoIsTopological(t *testing.T) {
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a, b); err != nil {
		t.Fatal(err)
	}
	c.MustSeal()
	topo := c.Topo()
	pos := make(map[EventID]int, len(topo))
	for i, id := range topo {
		pos[id] = i
	}
	if len(topo) != c.NumEvents() {
		t.Fatalf("topo has %d events, want %d", len(topo), c.NumEvents())
	}
	c.Events(func(e Event) bool {
		for _, pred := range c.DirectPreds(e.ID) {
			if pos[pred] >= pos[e.ID] {
				t.Fatalf("topo order violates edge %d -> %d", pred, e.ID)
			}
		}
		return true
	})
	// Copies, not aliases.
	topo[0] = EventID(999)
	if c.Topo()[0] == EventID(999) {
		t.Error("Topo must return a copy")
	}
}

func TestDirectNeighbors(t *testing.T) {
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a, b); err != nil {
		t.Fatal(err)
	}
	c.MustSeal()
	succs := c.DirectSuccs(a)
	if len(succs) != 1 || succs[0] != b {
		t.Fatalf("DirectSuccs(a) = %v, want [b]", succs)
	}
	preds := c.DirectPreds(b)
	// b's predecessors: its initial event and a.
	if len(preds) != 2 {
		t.Fatalf("DirectPreds(b) = %v", preds)
	}
	hasA := false
	for _, p := range preds {
		if p == a {
			hasA = true
		}
	}
	if !hasA {
		t.Fatalf("DirectPreds(b) = %v lacks a", preds)
	}
}

func TestEventString(t *testing.T) {
	c := New()
	p := c.AddProcess()
	a := c.AddInternal(p)
	c.SetLabel(a, "hello")
	e := c.Event(a)
	if got := e.String(); !strings.Contains(got, "p0[1]") || !strings.Contains(got, "hello") {
		t.Errorf("String = %q", got)
	}
	if got := c.Initial(p).String(); got != "p0[0]" {
		t.Errorf("initial String = %q", got)
	}
}
