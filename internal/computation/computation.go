package computation

import (
	"errors"
	"fmt"
)

// Common construction and validation errors.
var (
	// ErrCyclic indicates the declared edges induce a cycle, so the
	// structure is not a partial order.
	ErrCyclic = errors.New("computation: order relation is cyclic")
	// ErrSameProcess indicates a message between two events of one
	// process that is not consistent with the local order.
	ErrBackwardLocal = errors.New("computation: edge contradicts local order")
	// ErrUnknownEvent indicates an event id that does not exist.
	ErrUnknownEvent = errors.New("computation: unknown event")
	// ErrInitialEvent indicates an operation that is illegal on the
	// fictitious initial event of a process (for example receiving a
	// message at it).
	ErrInitialEvent = errors.New("computation: operation not allowed on initial event")
)

// Computation is a finite distributed computation: a set of processes, each
// with a totally ordered local event sequence beginning with an implicit
// initial event, plus messages and optional extra order edges.
//
// A Computation is built incrementally with AddProcess, AddEvent, AddMessage
// and AddEdge, and then sealed with Seal, which validates acyclicity and
// precomputes vector clocks. Query methods that depend on the order relation
// (Precedes, Consistent, ...) require the computation to be sealed; mutating
// it afterwards automatically unseals it.
type Computation struct {
	events []Event
	procs  [][]EventID // procs[p] lists the events of p in local order
	msgs   []Message
	edges  []Edge

	// succs/preds are the direct (non-transitive) neighbors induced by
	// local order, messages and extra edges. Built lazily by Seal.
	succs [][]EventID
	preds [][]EventID

	// clock[e][p] is the number of events of process p that precede or
	// equal event e; equivalently, the Fidge/Mattern vector timestamp
	// with components counted from 1 at the initial event.
	clock [][]int32

	topo   []EventID // a topological order of all events
	sealed bool

	vars map[string][]int64 // named per-event variable valuations
}

// New returns an empty computation.
func New() *Computation {
	return &Computation{vars: make(map[string][]int64)}
}

// Clone returns a deep copy of the computation's structure (processes,
// events, messages, edges, labels and variables). The copy is unsealed.
func (c *Computation) Clone() *Computation {
	out := New()
	out.events = make([]Event, len(c.events))
	copy(out.events, c.events)
	out.procs = make([][]EventID, len(c.procs))
	for p := range c.procs {
		out.procs[p] = append([]EventID(nil), c.procs[p]...)
	}
	out.msgs = append([]Message(nil), c.msgs...)
	out.edges = append([]Edge(nil), c.edges...)
	for name, tab := range c.vars {
		out.vars[name] = append([]int64(nil), tab...)
	}
	return out
}

// NumProcs returns the number of processes.
func (c *Computation) NumProcs() int { return len(c.procs) }

// NumEvents returns the total number of events, including initial events.
func (c *Computation) NumEvents() int { return len(c.events) }

// Len returns the number of events on process p, including its initial
// event.
func (c *Computation) Len(p ProcID) int { return len(c.procs[int(p)]) }

// Messages returns a copy of the message list.
func (c *Computation) Messages() []Message {
	out := make([]Message, len(c.msgs))
	copy(out, c.msgs)
	return out
}

// Edges returns a copy of the extra (non-message) order edges.
func (c *Computation) Edges() []Edge {
	out := make([]Edge, len(c.edges))
	copy(out, c.edges)
	return out
}

// AddProcess adds a new process and returns its id. The process starts with
// its fictitious initial event.
func (c *Computation) AddProcess() ProcID {
	p := ProcID(len(c.procs))
	id := EventID(len(c.events))
	c.events = append(c.events, Event{ID: id, Proc: p, Index: 0, Kind: KindInitial})
	c.procs = append(c.procs, []EventID{id})
	c.unseal()
	return p
}

// AddProcesses adds n processes and returns the id of the first one; the
// rest follow consecutively.
func (c *Computation) AddProcesses(n int) ProcID {
	first := ProcID(len(c.procs))
	for i := 0; i < n; i++ {
		c.AddProcess()
	}
	return first
}

// AddEvent appends a new event of the given kind to process p and returns
// its id.
func (c *Computation) AddEvent(p ProcID, kind Kind) EventID {
	id := EventID(len(c.events))
	idx := len(c.procs[int(p)])
	c.events = append(c.events, Event{ID: id, Proc: p, Index: idx, Kind: kind})
	c.procs[int(p)] = append(c.procs[int(p)], id)
	c.unseal()
	return id
}

// AddInternal appends an internal event to process p.
func (c *Computation) AddInternal(p ProcID) EventID { return c.AddEvent(p, KindInternal) }

// AddMessage records a message from the send event to the receive event and
// upgrades the kinds of the two events accordingly. Neither endpoint may be
// an initial event. A message between two events of the same process must
// agree with the local order.
func (c *Computation) AddMessage(send, recv EventID) error {
	if err := c.checkEdge(send, recv); err != nil {
		return err
	}
	c.msgs = append(c.msgs, Message{Send: send, Receive: recv})
	c.markSend(send)
	c.markReceive(recv)
	c.unseal()
	return nil
}

// AddEdge records an extra order edge from one event to another without
// attaching message semantics; both endpoints keep their kinds. Use this for
// extended causality models.
func (c *Computation) AddEdge(from, to EventID) error {
	if err := c.checkEdge(from, to); err != nil {
		return err
	}
	c.edges = append(c.edges, Edge{From: from, To: to})
	c.unseal()
	return nil
}

func (c *Computation) checkEdge(from, to EventID) error {
	if !c.valid(from) || !c.valid(to) {
		return fmt.Errorf("%w: edge %d -> %d", ErrUnknownEvent, from, to)
	}
	if c.events[to].IsInitial() {
		return fmt.Errorf("%w: edge into initial event %v", ErrInitialEvent, c.events[to])
	}
	if c.events[from].IsInitial() {
		return fmt.Errorf("%w: explicit edge out of initial event %v", ErrInitialEvent, c.events[from])
	}
	ef, et := c.events[from], c.events[to]
	if ef.Proc == et.Proc && ef.Index >= et.Index {
		return fmt.Errorf("%w: %v -> %v", ErrBackwardLocal, ef, et)
	}
	return nil
}

func (c *Computation) markSend(id EventID) {
	switch c.events[id].Kind {
	case KindInternal:
		c.events[id].Kind = KindSend
	case KindReceive:
		c.events[id].Kind = KindSendReceive
	}
}

func (c *Computation) markReceive(id EventID) {
	switch c.events[id].Kind {
	case KindInternal:
		c.events[id].Kind = KindReceive
	case KindSend:
		c.events[id].Kind = KindSendReceive
	}
}

func (c *Computation) valid(id EventID) bool {
	return id >= 0 && int(id) < len(c.events)
}

// Event returns the event with the given id. It panics on an unknown id;
// ids obtained from this computation are always valid.
func (c *Computation) Event(id EventID) Event {
	if !c.valid(id) {
		panic(fmt.Sprintf("computation: event id %d out of range [0,%d)", id, len(c.events)))
	}
	return c.events[id]
}

// EventAt returns the event at the given local index of process p.
func (c *Computation) EventAt(p ProcID, index int) Event {
	return c.events[c.procs[int(p)][index]]
}

// Initial returns the initial event of process p.
func (c *Computation) Initial(p ProcID) Event { return c.EventAt(p, 0) }

// Final returns the final (last) event of process p.
func (c *Computation) Final(p ProcID) Event {
	row := c.procs[int(p)]
	return c.events[row[len(row)-1]]
}

// Prev returns the id of the predecessor of the event on its process, or
// NoEvent if it is the initial event.
func (c *Computation) Prev(id EventID) EventID {
	e := c.Event(id)
	if e.Index == 0 {
		return NoEvent
	}
	return c.procs[int(e.Proc)][e.Index-1]
}

// Next returns the id of the successor of the event on its process, or
// NoEvent if it is the final event.
func (c *Computation) Next(id EventID) EventID {
	e := c.Event(id)
	row := c.procs[int(e.Proc)]
	if e.Index+1 >= len(row) {
		return NoEvent
	}
	return row[e.Index+1]
}

// SetLabel attaches an application label to an event.
func (c *Computation) SetLabel(id EventID, label string) {
	if c.valid(id) {
		c.events[id].Label = label
	}
}

// Events calls fn for every event in (process, index) order. It stops early
// if fn returns false.
func (c *Computation) Events(fn func(Event) bool) {
	for p := range c.procs {
		for _, id := range c.procs[p] {
			if !fn(c.events[id]) {
				return
			}
		}
	}
}

// ProcEvents returns the event ids of process p in local order. The returned
// slice is a copy.
func (c *Computation) ProcEvents(p ProcID) []EventID {
	row := c.procs[int(p)]
	out := make([]EventID, len(row))
	copy(out, row)
	return out
}

// SetVar sets the value of the named per-event variable at event id.
// Variables default to 0 at every event where they are not set. Variable
// tables are preserved by serialization and are the usual way traces carry
// the local integer variables that relational predicates range over.
func (c *Computation) SetVar(name string, id EventID, v int64) {
	tab := c.vars[name]
	for len(tab) <= int(id) {
		tab = append(tab, 0)
	}
	tab[int(id)] = v
	c.vars[name] = tab
}

// Var returns the value of the named variable at event id (0 when unset).
func (c *Computation) Var(name string, id EventID) int64 {
	tab := c.vars[name]
	if int(id) >= len(tab) {
		return 0
	}
	return tab[int(id)]
}

// VarNames returns the names of all variable tables, in no particular order.
func (c *Computation) VarNames() []string {
	out := make([]string, 0, len(c.vars))
	for k := range c.vars {
		out = append(out, k)
	}
	return out
}

func (c *Computation) unseal() {
	c.sealed = false
	c.succs, c.preds, c.clock, c.topo = nil, nil, nil, nil
}
