package computation

import "fmt"

// Seal validates the order relation and precomputes the data structures
// used by query methods: direct successor/predecessor lists, a topological
// order, and vector-clock timestamps. It returns ErrCyclic (wrapped) if the
// declared edges induce a cycle. Sealing an already sealed computation is a
// no-op.
func (c *Computation) Seal() error {
	if c.sealed {
		return nil
	}
	n := len(c.events)
	c.succs = make([][]EventID, n)
	c.preds = make([][]EventID, n)
	add := func(from, to EventID) {
		c.succs[from] = append(c.succs[from], to)
		c.preds[to] = append(c.preds[to], from)
	}
	for _, row := range c.procs {
		for i := 1; i < len(row); i++ {
			add(row[i-1], row[i])
		}
	}
	for _, m := range c.msgs {
		add(m.Send, m.Receive)
	}
	for _, e := range c.edges {
		add(e.From, e.To)
	}

	// Kahn's algorithm: a topological order exists iff the relation is
	// acyclic.
	indeg := make([]int, n)
	for to := range c.preds {
		indeg[to] = len(c.preds[to])
	}
	queue := make([]EventID, 0, n)
	for id := range indeg {
		if indeg[id] == 0 {
			queue = append(queue, EventID(id))
		}
	}
	topo := make([]EventID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		topo = append(topo, id)
		for _, s := range c.succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(topo) != n {
		c.unseal()
		return fmt.Errorf("%w: %d of %d events reachable in topological order", ErrCyclic, len(topo), n)
	}
	c.topo = topo

	// Vector clocks by dynamic programming over the topological order:
	// clock[e] is the component-wise max of the clocks of e's direct
	// predecessors, with clock[e][proc(e)] = index(e)+1. This is exactly
	// the Fidge/Mattern timestamp generalized to extra order edges.
	np := len(c.procs)
	flat := make([]int32, n*np)
	c.clock = make([][]int32, n)
	for i := range c.clock {
		c.clock[i] = flat[i*np : (i+1)*np : (i+1)*np]
	}
	for _, id := range topo {
		e := c.events[id]
		row := c.clock[id]
		for _, p := range c.preds[id] {
			prow := c.clock[p]
			for q := range row {
				if prow[q] > row[q] {
					row[q] = prow[q]
				}
			}
		}
		row[int(e.Proc)] = int32(e.Index) + 1
	}
	c.sealed = true
	return nil
}

// MustSeal is Seal but panics on error; convenient in tests and generators
// that construct computations known to be acyclic.
func (c *Computation) MustSeal() *Computation {
	if err := c.Seal(); err != nil {
		panic(err)
	}
	return c
}

// Sealed reports whether the computation has been sealed since the last
// mutation.
func (c *Computation) Sealed() bool { return c.sealed }

func (c *Computation) requireSealed() {
	if !c.sealed {
		panic("computation: order query before Seal")
	}
}

// Clock returns the vector timestamp of event id: component p counts the
// events of process p that precede or equal the event. The returned slice
// must not be modified.
func (c *Computation) Clock(id EventID) []int32 {
	c.requireSealed()
	return c.clock[id]
}

// Precedes reports whether a happened-before b (irreflexive: a != b and a is
// below b in the partial order). O(1) via vector clocks.
func (c *Computation) Precedes(a, b EventID) bool {
	c.requireSealed()
	if a == b {
		return false
	}
	ea := c.events[a]
	// Initial events precede every non-initial event of the computation,
	// and initial events are mutually unordered.
	if ea.IsInitial() {
		return !c.events[b].IsInitial()
	}
	return int32(ea.Index)+1 <= c.clock[b][int(ea.Proc)]
}

// PrecedesEq reports a == b or a happened-before b.
func (c *Computation) PrecedesEq(a, b EventID) bool {
	return a == b || c.Precedes(a, b)
}

// Independent reports whether a and b are incomparable under the partial
// order (neither precedes the other and a != b).
func (c *Computation) Independent(a, b EventID) bool {
	return a != b && !c.Precedes(a, b) && !c.Precedes(b, a)
}

// ConsistentEvents reports whether some consistent cut passes through both
// a and b. Per the paper, a and b are inconsistent iff next(a) -> b or
// next(b) -> a (with a missing successor making the condition false);
// equivalently, each event must not be preceded by the other's successor.
func (c *Computation) ConsistentEvents(a, b EventID) bool {
	c.requireSealed()
	if a == b {
		return true
	}
	if na := c.Next(a); na != NoEvent && c.PrecedesEq(na, b) {
		return false
	}
	if nb := c.Next(b); nb != NoEvent && c.PrecedesEq(nb, a) {
		return false
	}
	return true
}

// PairwiseConsistent reports whether every pair of the given events is
// consistent; per Observation 1 of the paper this is necessary and
// sufficient for a consistent cut passing through all of them to exist
// (the events need not cover all processes, but at most one event per
// process may be supplied).
func (c *Computation) PairwiseConsistent(ids []EventID) bool {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if !c.ConsistentEvents(ids[i], ids[j]) {
				return false
			}
		}
	}
	return true
}

// Topo returns a topological order of all events. The returned slice is a
// copy.
func (c *Computation) Topo() []EventID {
	c.requireSealed()
	out := make([]EventID, len(c.topo))
	copy(out, c.topo)
	return out
}

// DirectPreds returns the direct predecessors of the event (local
// predecessor, message sends into it, extra edges). The slice is a copy.
func (c *Computation) DirectPreds(id EventID) []EventID {
	c.requireSealed()
	out := make([]EventID, len(c.preds[id]))
	copy(out, c.preds[id])
	return out
}

// DirectSuccs returns the direct successors of the event. The slice is a
// copy.
func (c *Computation) DirectSuccs(id EventID) []EventID {
	c.requireSealed()
	out := make([]EventID, len(c.succs[id]))
	copy(out, c.succs[id])
	return out
}

// PrecedesSlow answers happened-before by graph search instead of vector
// clocks. It does not require Seal-computed clocks beyond adjacency and is
// used to cross-check the vector-clock implementation in tests and
// micro-benchmarks.
func (c *Computation) PrecedesSlow(a, b EventID) bool {
	c.requireSealed()
	if a == b {
		return false
	}
	seen := make([]bool, len(c.events))
	stack := []EventID{a}
	seen[a] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.succs[id] {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
