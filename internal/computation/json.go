package computation

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceJSON is the on-disk schema of a computation. The event list stores
// the process of every event in event-id order (the first event of each
// process being its initial event), so ids survive a round trip even when
// processes and events were created interleaved; kinds are recovered from
// the message list, so only labels and variables are stored explicitly.
type traceJSON struct {
	// Events[id] is the process of the event with that id.
	Events []int `json:"events"`
	// Msgs lists messages as [send, receive] event-id pairs.
	Msgs [][2]int `json:"msgs,omitempty"`
	// Edges lists extra order edges as [from, to] event-id pairs.
	Edges [][2]int `json:"edges,omitempty"`
	// Labels maps event ids (as decimal strings, a JSON restriction) to
	// labels.
	Labels map[string]string `json:"labels,omitempty"`
	// Vars maps variable names to dense per-event value arrays.
	Vars map[string][]int64 `json:"vars,omitempty"`
}

// MarshalJSON encodes the computation as a compact trace document.
func (c *Computation) MarshalJSON() ([]byte, error) {
	t := traceJSON{Events: make([]int, len(c.events))}
	for id, e := range c.events {
		t.Events[id] = int(e.Proc)
	}
	for _, m := range c.msgs {
		t.Msgs = append(t.Msgs, [2]int{int(m.Send), int(m.Receive)})
	}
	for _, e := range c.edges {
		t.Edges = append(t.Edges, [2]int{int(e.From), int(e.To)})
	}
	for _, e := range c.events {
		if e.Label != "" {
			if t.Labels == nil {
				t.Labels = make(map[string]string)
			}
			t.Labels[fmt.Sprint(int(e.ID))] = e.Label
		}
	}
	if len(c.vars) > 0 {
		t.Vars = make(map[string][]int64, len(c.vars))
		names := make([]string, 0, len(c.vars))
		for name := range c.vars {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tab := make([]int64, len(c.events))
			copy(tab, c.vars[name])
			t.Vars[name] = tab
		}
	}
	return json.Marshal(t)
}

// UnmarshalJSON decodes a trace document produced by MarshalJSON. The
// resulting computation is unsealed; call Seal before order queries.
func (c *Computation) UnmarshalJSON(data []byte) error {
	var t traceJSON
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("computation: decode trace: %w", err)
	}
	out := New()
	for id, p := range t.Events {
		switch {
		case p == out.NumProcs():
			out.AddProcess()
		case p >= 0 && p < out.NumProcs():
			out.AddInternal(ProcID(p))
		default:
			return fmt.Errorf("computation: decode trace: event %d has process %d before process %d exists",
				id, p, p)
		}
	}
	for _, m := range t.Msgs {
		if err := out.AddMessage(EventID(m[0]), EventID(m[1])); err != nil {
			return fmt.Errorf("computation: decode trace: %w", err)
		}
	}
	for _, e := range t.Edges {
		if err := out.AddEdge(EventID(e[0]), EventID(e[1])); err != nil {
			return fmt.Errorf("computation: decode trace: %w", err)
		}
	}
	for key, label := range t.Labels {
		var id int
		if _, err := fmt.Sscanf(key, "%d", &id); err != nil {
			return fmt.Errorf("computation: decode trace: bad label key %q", key)
		}
		if id < 0 || id >= len(out.events) {
			return fmt.Errorf("computation: decode trace: label key %d out of range", id)
		}
		out.SetLabel(EventID(id), label)
	}
	for name, tab := range t.Vars {
		for id, v := range tab {
			if v != 0 {
				out.SetVar(name, EventID(id), v)
			}
		}
	}
	*c = *out
	return nil
}

// WriteTrace writes the computation to w as JSON.
func WriteTrace(w io.Writer, c *Computation) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// ReadTrace reads a JSON trace from r and seals it.
func ReadTrace(r io.Reader) (*Computation, error) {
	dec := json.NewDecoder(r)
	c := New()
	if err := dec.Decode(c); err != nil {
		return nil, err
	}
	if err := c.Seal(); err != nil {
		return nil, err
	}
	return c, nil
}
