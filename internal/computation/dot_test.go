package computation

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOTBasic(t *testing.T) {
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	if err := c.AddMessage(a, b); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEdge(a, c.AddInternal(p1)); err != nil {
		t.Fatal(err)
	}
	c.SetLabel(a, "send!")
	c.SetVar("x", a, 7)
	c.MustSeal()
	var buf bytes.Buffer
	err := WriteDOT(&buf, c, DOTOptions{
		Highlight:  Cut{1, 1},
		TrueEvents: func(e Event) bool { return e.ID == b },
		ShowVars:   []string{"x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph computation",
		"cluster_p0",
		"cluster_p1",
		"style=dashed",   // message
		"style=dotted",   // extra edge
		"peripheries=2",  // true event
		"fillcolor=gold", // highlighted frontier
		"send!",          // label
		"x=7",            // variable annotation
		"shape=square",   // initial events
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output lacks %q", want)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestWriteDOTNoOptions(t *testing.T) {
	c := New()
	p := c.AddProcess()
	c.AddInternal(p)
	c.MustSeal()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, c, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "e0 -> e1") {
		t.Errorf("missing local order edge:\n%s", buf.String())
	}
}
