package computation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// compSpec is a generatable description of a computation for
// property-based tests: event counts per process plus message attempts.
type compSpec struct {
	Lens  [3]uint8
	Pairs [6][4]uint8
}

// build materializes the spec deterministically.
func (s compSpec) build() *Computation {
	c := New()
	for p := 0; p < len(s.Lens); p++ {
		c.AddProcess()
		n := int(s.Lens[p]%4) + 1
		for i := 0; i < n; i++ {
			c.AddInternal(ProcID(p))
		}
	}
	for _, m := range s.Pairs {
		from := ProcID(int(m[0]) % c.NumProcs())
		to := ProcID(int(m[1]) % c.NumProcs())
		if from == to {
			continue
		}
		i := 1 + int(m[2])%(c.Len(from)-1)
		j := 1 + int(m[3])%(c.Len(to)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(from, i).ID, c.EventAt(to, j).ID)
		}
	}
	c.MustSeal()
	return c
}

// TestOrderIsStrictPartialOrder checks irreflexivity, asymmetry and
// transitivity of Precedes on generated computations.
func TestOrderIsStrictPartialOrder(t *testing.T) {
	f := func(s compSpec) bool {
		c := s.build()
		var ids []EventID
		c.Events(func(e Event) bool {
			ids = append(ids, e.ID)
			return true
		})
		for _, a := range ids {
			if c.Precedes(a, a) {
				return false // irreflexive
			}
			for _, b := range ids {
				if c.Precedes(a, b) && c.Precedes(b, a) {
					return false // asymmetric
				}
				for _, d := range ids {
					if c.Precedes(a, b) && c.Precedes(b, d) && !c.Precedes(a, d) {
						return false // transitive
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConsistencyIsSymmetric checks that event consistency and
// independence are symmetric relations.
func TestConsistencyIsSymmetric(t *testing.T) {
	f := func(s compSpec) bool {
		c := s.build()
		var ids []EventID
		c.Events(func(e Event) bool {
			ids = append(ids, e.ID)
			return true
		})
		for _, a := range ids {
			for _, b := range ids {
				if c.ConsistentEvents(a, b) != c.ConsistentEvents(b, a) {
					return false
				}
				if c.Independent(a, b) != c.Independent(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIndependentImpliesConsistentOnDistinctProcs: two independent events
// on different processes are always consistent (a maximal antichain
// through them extends to a consistent cut).
func TestIndependentImpliesConsistentOnDistinctProcs(t *testing.T) {
	f := func(s compSpec) bool {
		c := s.build()
		var ids []EventID
		c.Events(func(e Event) bool {
			ids = append(ids, e.ID)
			return true
		})
		for _, a := range ids {
			for _, b := range ids {
				if c.Event(a).Proc == c.Event(b).Proc {
					continue
				}
				if c.Independent(a, b) && !c.ConsistentEvents(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCutLatticeClosure: consistent cuts are closed under component-wise
// min (meet) and max (join).
func TestCutLatticeClosure(t *testing.T) {
	f := func(s compSpec, seed int64) bool {
		c := s.build()
		rng := rand.New(rand.NewSource(seed))
		randCut := func() Cut {
			k := c.InitialCut()
			for p := range k {
				k[p] = rng.Intn(c.Len(ProcID(p)))
			}
			return k
		}
		// Sample until we find two consistent cuts (or give up).
		var cuts []Cut
		for i := 0; i < 200 && len(cuts) < 2; i++ {
			if k := randCut(); c.CutConsistent(k) {
				cuts = append(cuts, k)
			}
		}
		if len(cuts) < 2 {
			return true
		}
		a, b := cuts[0], cuts[1]
		meet, join := a.Clone(), a.Clone()
		for p := range a {
			if b[p] < meet[p] {
				meet[p] = b[p]
			}
			if b[p] > join[p] {
				join[p] = b[p]
			}
		}
		return c.CutConsistent(meet) && c.CutConsistent(join)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCutThroughIdempotent: CutThrough of a cut's own frontier events
// reproduces a cut below-or-equal it that still passes through them.
func TestCutThroughIdempotent(t *testing.T) {
	f := func(s compSpec) bool {
		c := s.build()
		k := c.FinalCut()
		fr := c.Frontier(k)
		k2 := c.CutThrough(fr...)
		if !k2.Leq(k) {
			return false
		}
		for _, id := range fr {
			if !k2.PassesThrough(c.Event(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEnabledConsistentWithExecution: the enabled set at the initial cut
// is never empty unless every process has only its initial event, and
// executing any enabled event keeps the cut consistent.
func TestEnabledConsistentWithExecution(t *testing.T) {
	f := func(s compSpec) bool {
		c := s.build()
		k := c.InitialCut()
		for !k.Equal(c.FinalCut()) {
			en := c.Enabled(k)
			if len(en) == 0 {
				return false // progress must always be possible
			}
			k = c.Execute(k, c.Event(en[0]).Proc)
			if !c.CutConsistent(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestClockComponentCountsDownSet: clock(e)[q] equals the number of
// events of q that precede-or-equal e, by definition.
func TestClockComponentCountsDownSet(t *testing.T) {
	f := func(s compSpec) bool {
		c := s.build()
		ok := true
		c.Events(func(e Event) bool {
			row := c.Clock(e.ID)
			for q := 0; q < c.NumProcs(); q++ {
				count := int32(0)
				for _, id := range c.ProcEvents(ProcID(q)) {
					// Count via declared-edge reachability (the DP
					// definition), not the initial-event fiat.
					if id == e.ID || c.PrecedesSlow(id, e.ID) {
						count++
					}
				}
				if row[q] != count {
					ok = false
				}
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
