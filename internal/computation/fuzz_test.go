package computation

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode hardens the trace decoder against malformed input: it
// must either reject the document or produce a computation that seals and
// round-trips stably. Run with `go test -fuzz=FuzzTraceDecode` for a real
// fuzzing session; the seeds below run as regular tests.
func FuzzTraceDecode(f *testing.F) {
	// Valid seed documents.
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p1)
	_ = c.AddMessage(a, b)
	c.SetLabel(a, "x")
	c.SetVar("v", a, 3)
	var buf bytes.Buffer
	_ = WriteTrace(&buf, c)
	f.Add(buf.Bytes())
	f.Add([]byte(`{"events":[0,1,0,1],"msgs":[[2,3]]}`))
	// Malformed seeds.
	f.Add([]byte(`{`))
	f.Add([]byte(`{"events":[5]}`))
	f.Add([]byte(`{"events":[0,0],"msgs":[[9,9]]}`))
	f.Add([]byte(`{"events":[0,1],"edges":[[1,0]]}`))
	f.Add([]byte(`{"events":[0,0,0],"msgs":[[1,2],[2,1]]}`)) // cyclic
	f.Add([]byte(`{"events":[0],"labels":{"x":"y"}}`))
	f.Add([]byte(`{"events":[0,0],"vars":{"v":[1,2,3,4,5]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine
		}
		// Accepted documents must be stable under re-encoding.
		var out bytes.Buffer
		if err := WriteTrace(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if again.NumEvents() != got.NumEvents() || again.NumProcs() != got.NumProcs() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				got.NumProcs(), got.NumEvents(), again.NumProcs(), again.NumEvents())
		}
	})
}
