// Package computation implements the model of a distributed computation used
// throughout the library: a finite set of processes, each executing a totally
// ordered sequence of events, together with an irreflexive partial order on
// the events that extends the per-process orders (Lamport's happened-before
// relation when the only cross-process edges are messages).
//
// Following Mittal & Garg (ICDCS 2001, Section 2), every process begins with
// a fictitious initial event that is contained in every cut, and a cut is a
// downward-closed choice of a prefix of every process. A cut is consistent
// iff it is closed under the partial order. Two events are consistent iff
// some consistent cut passes through both of them; they are independent iff
// they are incomparable under the partial order.
//
// The package provides construction (processes, events, messages, and
// additional order edges for extended causality models), validation
// (acyclicity), vector-clock timestamping for O(1) precedence tests, cut
// arithmetic on frontier vectors, and JSON serialization of traces.
package computation
