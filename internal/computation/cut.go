package computation

import (
	"fmt"
	"strings"
)

// Cut is a global state of a computation, represented by its frontier: for
// each process, the local index of the last event included in the cut. Every
// cut includes at least the initial events, so all components are >= 0.
//
// Cuts are plain slices so callers can index them directly; use the methods
// on Computation to create and manipulate them safely.
type Cut []int

// Clone returns a copy of the cut.
func (k Cut) Clone() Cut {
	out := make(Cut, len(k))
	copy(out, k)
	return out
}

// Equal reports whether two cuts have identical frontiers.
func (k Cut) Equal(other Cut) bool {
	if len(k) != len(other) {
		return false
	}
	for i := range k {
		if k[i] != other[i] {
			return false
		}
	}
	return true
}

// Leq reports whether k is a subset of (or equal to) other, i.e. other is
// reachable from k by executing zero or more events.
func (k Cut) Leq(other Cut) bool {
	if len(k) != len(other) {
		return false
	}
	for i := range k {
		if k[i] > other[i] {
			return false
		}
	}
	return true
}

// Size returns the number of non-initial events contained in the cut.
func (k Cut) Size() int {
	total := 0
	for _, v := range k {
		total += v
	}
	return total
}

// String renders the frontier, e.g. "<0,2,1>".
func (k Cut) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range k {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte('>')
	return b.String()
}

// Key returns a compact string key uniquely identifying the cut, suitable
// for use in maps during lattice traversals.
func (k Cut) Key() string {
	var b strings.Builder
	b.Grow(len(k) * 3)
	for i, v := range k {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(fmt.Sprintf("%x", v))
	}
	return b.String()
}

// InitialCut returns the cut containing exactly the initial events.
func (c *Computation) InitialCut() Cut {
	return make(Cut, len(c.procs))
}

// FinalCut returns the cut containing every event.
func (c *Computation) FinalCut() Cut {
	k := make(Cut, len(c.procs))
	for p := range c.procs {
		k[p] = len(c.procs[p]) - 1
	}
	return k
}

// CutThrough returns the minimal consistent cut passing through all of the
// given events: component p is the maximum over the supplied events e of
// clock(e)[p] - 1, floored at the event's own index for its process and at 0.
// If the events are pairwise consistent (at most one per process), the
// returned cut passes through each of them.
func (c *Computation) CutThrough(ids ...EventID) Cut {
	c.requireSealed()
	k := c.InitialCut()
	for _, id := range ids {
		e := c.events[id]
		if e.Index > k[int(e.Proc)] {
			k[int(e.Proc)] = e.Index
		}
		row := c.clock[id]
		for p := range k {
			if int(row[p])-1 > k[p] {
				k[p] = int(row[p]) - 1
			}
		}
	}
	return k
}

// CutConsistent reports whether the cut is consistent: closed under the
// partial order. Using vector clocks this is: for the frontier event e_p of
// every process p and every process q, clock(e_p)[q] <= frontier(q)+1.
func (c *Computation) CutConsistent(k Cut) bool {
	c.requireSealed()
	for p := range c.procs {
		id := c.procs[p][k[p]]
		row := c.clock[id]
		for q := range c.procs {
			if int(row[q]) > k[q]+1 {
				return false
			}
		}
	}
	return true
}

// PassesThrough reports whether the cut passes through the event, i.e. the
// event is the last event of its process contained in the cut.
func (k Cut) PassesThrough(e Event) bool {
	return k[int(e.Proc)] == e.Index
}

// Contains reports whether the event is included in the cut.
func (k Cut) Contains(e Event) bool {
	return e.Index <= k[int(e.Proc)]
}

// Enabled returns the events executable at cut k: for each process with
// remaining events, the next event, provided all of its direct predecessors
// are already in the cut. For a consistent cut, executing an enabled event
// yields a consistent cut again.
func (c *Computation) Enabled(k Cut) []EventID {
	c.requireSealed()
	var out []EventID
	for p := range c.procs {
		if id, ok := c.enabledOn(k, ProcID(p)); ok {
			out = append(out, id)
		}
	}
	return out
}

func (c *Computation) enabledOn(k Cut, p ProcID) (EventID, bool) {
	row := c.procs[int(p)]
	next := k[int(p)] + 1
	if next >= len(row) {
		return NoEvent, false
	}
	id := row[next]
	// The event is enabled iff all events that precede it are in the cut:
	// clock(id)[q] <= k[q]+1 for all q (its own component equals next+1 =
	// k[p]+2? no: clock(id)[p] = next+1 = k[p]+2 would fail; its own
	// process component counts itself, so compare excluding self membership:
	// every strictly preceding event of q must be within k[q].
	rowc := c.clock[id]
	for q := range c.procs {
		limit := k[q] + 1
		if q == int(p) {
			limit = k[q] + 2 // the event itself
		}
		if int(rowc[q]) > limit {
			return NoEvent, false
		}
	}
	return id, true
}

// Execute returns the cut obtained from k by executing the next event of
// process p. It panics if there is no next event. The result is consistent
// only if that event was enabled.
func (c *Computation) Execute(k Cut, p ProcID) Cut {
	if k[int(p)]+1 >= len(c.procs[int(p)]) {
		panic(fmt.Sprintf("computation: no next event on process %d at cut %v", p, k))
	}
	out := k.Clone()
	out[int(p)]++
	return out
}

// Frontier returns the frontier events of the cut, one per process.
func (c *Computation) Frontier(k Cut) []EventID {
	out := make([]EventID, len(k))
	for p := range k {
		out[p] = c.procs[p][k[p]]
	}
	return out
}

// SumVar returns the sum over all processes of the named variable evaluated
// at the cut's frontier events.
func (c *Computation) SumVar(name string, k Cut) int64 {
	var s int64
	for p := range k {
		s += c.Var(name, c.procs[p][k[p]])
	}
	return s
}

// CountTrue returns the number of processes whose frontier event satisfies
// the local predicate.
func (c *Computation) CountTrue(k Cut, local func(Event) bool) int {
	n := 0
	for p := range k {
		if local(c.events[c.procs[p][k[p]]]) {
			n++
		}
	}
	return n
}
