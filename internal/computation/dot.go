package computation

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions controls Graphviz rendering of a computation.
type DOTOptions struct {
	// Highlight, when non-nil, shades the events contained in the cut
	// and draws its frontier in bold — typically a detection witness.
	Highlight Cut
	// TrueEvents, when non-nil, draws events satisfying it with a
	// doubled border (the "encircled true events" of the paper's
	// figures).
	TrueEvents func(Event) bool
	// ShowVars lists variable names whose values annotate each event.
	ShowVars []string
}

// WriteDOT renders the computation as a Graphviz digraph: one horizontal
// rank per process, solid arrows for local order, dashed arrows for
// messages and dotted arrows for extra order edges.
func WriteDOT(w io.Writer, c *Computation, opts DOTOptions) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph computation {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [shape=circle, fontsize=10];")
	for p := 0; p < c.NumProcs(); p++ {
		fmt.Fprintf(bw, "  subgraph cluster_p%d {\n", p)
		fmt.Fprintf(bw, "    label=\"p%d\"; color=lightgrey;\n", p)
		for _, id := range c.ProcEvents(ProcID(p)) {
			e := c.Event(id)
			label := fmt.Sprintf("%d", e.Index)
			if e.Label != "" {
				label = e.Label
			}
			for _, name := range opts.ShowVars {
				label += fmt.Sprintf("\\n%s=%d", name, c.Var(name, id))
			}
			attrs := fmt.Sprintf("label=\"%s\"", label)
			if e.IsInitial() {
				attrs += ", shape=square"
			}
			if opts.TrueEvents != nil && opts.TrueEvents(e) {
				attrs += ", peripheries=2"
			}
			if opts.Highlight != nil {
				if opts.Highlight.PassesThrough(e) {
					attrs += ", style=\"filled,bold\", fillcolor=gold"
				} else if opts.Highlight.Contains(e) {
					attrs += ", style=filled, fillcolor=lightyellow"
				}
			}
			fmt.Fprintf(bw, "    e%d [%s];\n", id, attrs)
		}
		fmt.Fprintln(bw, "  }")
	}
	for p := 0; p < c.NumProcs(); p++ {
		row := c.ProcEvents(ProcID(p))
		for i := 1; i < len(row); i++ {
			fmt.Fprintf(bw, "  e%d -> e%d;\n", row[i-1], row[i])
		}
	}
	for _, m := range c.Messages() {
		fmt.Fprintf(bw, "  e%d -> e%d [style=dashed, constraint=false];\n", m.Send, m.Receive)
	}
	for _, ed := range c.Edges() {
		fmt.Fprintf(bw, "  e%d -> e%d [style=dotted, constraint=false];\n", ed.From, ed.To)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
