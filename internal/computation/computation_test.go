package computation

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// diamond builds the classic two-process computation:
//
//	p0: i0 - a - b
//	p1: i1 - c - d
//
// with a message a -> d.
func diamond(t *testing.T) (*Computation, EventID, EventID, EventID, EventID) {
	t.Helper()
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p0)
	d0 := c.AddInternal(p1)
	d1 := c.AddInternal(p1)
	if err := c.AddMessage(a, d1); err != nil {
		t.Fatalf("AddMessage: %v", err)
	}
	if err := c.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return c, a, b, d0, d1
}

func TestAddProcessCreatesInitialEvent(t *testing.T) {
	c := New()
	p := c.AddProcess()
	if got := c.Len(p); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	e := c.Initial(p)
	if !e.IsInitial() || e.Kind != KindInitial {
		t.Fatalf("initial event = %+v", e)
	}
}

func TestEventNavigation(t *testing.T) {
	c := New()
	p := c.AddProcess()
	a := c.AddInternal(p)
	b := c.AddInternal(p)
	if got := c.Prev(b); got != a {
		t.Errorf("Prev(b) = %d, want %d", got, a)
	}
	if got := c.Next(a); got != b {
		t.Errorf("Next(a) = %d, want %d", got, b)
	}
	if got := c.Next(b); got != NoEvent {
		t.Errorf("Next(final) = %d, want NoEvent", got)
	}
	if got := c.Prev(c.Initial(p).ID); got != NoEvent {
		t.Errorf("Prev(initial) = %d, want NoEvent", got)
	}
	if got := c.Final(p).ID; got != b {
		t.Errorf("Final = %d, want %d", got, b)
	}
}

func TestMessageUpgradesKinds(t *testing.T) {
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	s := c.AddInternal(p0)
	r := c.AddInternal(p1)
	if err := c.AddMessage(s, r); err != nil {
		t.Fatal(err)
	}
	if got := c.Event(s).Kind; got != KindSend {
		t.Errorf("send kind = %v", got)
	}
	if got := c.Event(r).Kind; got != KindReceive {
		t.Errorf("receive kind = %v", got)
	}
	// A second message received at s makes it a send+receive event.
	s2 := c.AddInternal(p1)
	if err := c.AddMessage(r, s2); err != nil {
		t.Fatal(err)
	}
	if got := c.Event(r).Kind; got != KindSendReceive {
		t.Errorf("send+receive kind = %v", got)
	}
}

func TestEdgeValidation(t *testing.T) {
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	b := c.AddInternal(p0)
	if err := c.AddMessage(b, a); !errors.Is(err, ErrBackwardLocal) {
		t.Errorf("backward local message: err = %v", err)
	}
	if err := c.AddMessage(a, c.Initial(p1).ID); !errors.Is(err, ErrInitialEvent) {
		t.Errorf("message into initial: err = %v", err)
	}
	if err := c.AddMessage(c.Initial(p0).ID, a); !errors.Is(err, ErrInitialEvent) {
		t.Errorf("message out of initial: err = %v", err)
	}
	if err := c.AddMessage(a, 999); !errors.Is(err, ErrUnknownEvent) {
		t.Errorf("unknown event: err = %v", err)
	}
}

func TestSealDetectsCycle(t *testing.T) {
	c := New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a1 := c.AddInternal(p0)
	a2 := c.AddInternal(p0)
	b1 := c.AddInternal(p1)
	b2 := c.AddInternal(p1)
	if err := c.AddMessage(a2, b1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMessage(b2, a1); err != nil {
		t.Fatal(err)
	}
	if err := c.Seal(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("Seal = %v, want ErrCyclic", err)
	}
}

func TestPrecedesDiamond(t *testing.T) {
	c, a, b, d0, d1 := diamond(t)
	cases := []struct {
		x, y EventID
		want bool
	}{
		{a, b, true},
		{b, a, false},
		{a, d1, true},
		{d1, a, false},
		{a, d0, false},
		{d0, d1, true},
		{b, d1, false},
		{d1, b, false},
		{a, a, false},
	}
	for _, tc := range cases {
		if got := c.Precedes(tc.x, tc.y); got != tc.want {
			t.Errorf("Precedes(%v,%v) = %v, want %v", c.Event(tc.x), c.Event(tc.y), got, tc.want)
		}
		if got := c.PrecedesSlow(tc.x, tc.y); got != tc.want {
			t.Errorf("PrecedesSlow(%v,%v) = %v, want %v", c.Event(tc.x), c.Event(tc.y), got, tc.want)
		}
	}
}

func TestInitialEventsPrecedeEverything(t *testing.T) {
	c, a, _, _, _ := diamond(t)
	i0 := c.Initial(0).ID
	i1 := c.Initial(1).ID
	if !c.Precedes(i0, a) {
		t.Error("initial event must precede local events")
	}
	if !c.Precedes(i1, a) {
		t.Error("initial event must precede events of other processes")
	}
	if c.Precedes(i0, i1) || c.Precedes(i1, i0) {
		t.Error("initial events must be mutually unordered")
	}
	if c.Precedes(a, i1) {
		t.Error("nothing precedes an initial event")
	}
}

func TestIndependence(t *testing.T) {
	c, a, b, d0, d1 := diamond(t)
	if !c.Independent(b, d0) {
		t.Error("b and d0 should be independent")
	}
	if c.Independent(a, d1) {
		t.Error("a -> d1 so not independent")
	}
	if c.Independent(a, a) {
		t.Error("an event is not independent of itself")
	}
	_ = b
	_ = d1
}

func TestConsistentEvents(t *testing.T) {
	c, a, b, d0, d1 := diamond(t)
	// a and d0: a's successor b does not precede d0 and d0's successor d1
	// is not preceded... next(d0)=d1, d1 -> a? no. So consistent.
	if !c.ConsistentEvents(a, d0) {
		t.Error("a,d0 should be consistent")
	}
	// a and d1: next(a)=b, b -> d1? no. next(d1) none. consistent: a cut
	// through a and d1 exists? d1 requires a (message), and a is frontier
	// on p0 -- yes, cut <1,2> passes through both.
	if !c.ConsistentEvents(a, d1) {
		t.Error("a,d1 should be consistent (cut <1,2>)")
	}
	// b and d1 are consistent: cut <2,2>.
	if !c.ConsistentEvents(b, d1) {
		t.Error("b,d1 should be consistent")
	}
	// d0 and anything after message receipt: d0 vs b fine.
	if !c.ConsistentEvents(b, d0) {
		t.Error("b,d0 should be consistent")
	}
	// An ordered pair on the same process is never consistent.
	if c.ConsistentEvents(a, b) {
		t.Error("a,b on same process with a<b must be inconsistent")
	}
	_ = d1
}

// TestConsistentEventsMatchesCutDefinition cross-checks the successor-based
// consistency test against the definition: a and b are consistent iff some
// consistent cut passes through both.
func TestConsistentEventsMatchesCutDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		c := randomComputation(rng, 3, 4)
		ids := allEvents(c)
		for i := 0; i < len(ids); i++ {
			for j := i; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				want := existsCutThrough(c, a, b)
				if got := c.ConsistentEvents(a, b); got != want {
					t.Fatalf("trial %d: ConsistentEvents(%v,%v) = %v, want %v",
						trial, c.Event(a), c.Event(b), got, want)
				}
			}
		}
	}
}

// existsCutThrough brute-forces all cuts.
func existsCutThrough(c *Computation, a, b EventID) bool {
	found := false
	enumerateAllCuts(c, func(k Cut) {
		if c.CutConsistent(k) && k.PassesThrough(c.Event(a)) && k.PassesThrough(c.Event(b)) {
			found = true
		}
	})
	return found
}

func enumerateAllCuts(c *Computation, fn func(Cut)) {
	k := c.InitialCut()
	var rec func(p int)
	rec = func(p int) {
		if p == c.NumProcs() {
			fn(k.Clone())
			return
		}
		for i := 0; i < c.Len(ProcID(p)); i++ {
			k[p] = i
			rec(p + 1)
		}
		k[p] = 0
	}
	rec(0)
}

func allEvents(c *Computation) []EventID {
	var ids []EventID
	c.Events(func(e Event) bool {
		ids = append(ids, e.ID)
		return true
	})
	return ids
}

// randomComputation builds a random acyclic computation with np processes
// and up to me events per process, with random forward messages.
func randomComputation(rng *rand.Rand, np, me int) *Computation {
	c := New()
	for p := 0; p < np; p++ {
		c.AddProcess()
		n := 1 + rng.Intn(me)
		for i := 0; i < n; i++ {
			c.AddInternal(ProcID(p))
		}
	}
	// Add messages respecting a global ranking to guarantee acyclicity:
	// send at (p,i) to (q,j) only if i < j.
	for tries := 0; tries < np*me; tries++ {
		p := ProcID(rng.Intn(np))
		q := ProcID(rng.Intn(np))
		if p == q {
			continue
		}
		i := 1 + rng.Intn(c.Len(p)-1)
		j := 1 + rng.Intn(c.Len(q)-1)
		if i < j {
			_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
		}
	}
	if err := c.Seal(); err != nil {
		panic(err)
	}
	return c
}

func TestVectorClockMatchesGraphSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		c := randomComputation(rng, 4, 5)
		ids := allEvents(c)
		for _, a := range ids {
			for _, b := range ids {
				fast := c.Precedes(a, b)
				slow := c.PrecedesSlow(a, b) ||
					// graph search lacks the initial-precedes-all rule
					(c.Event(a).IsInitial() && !c.Event(b).IsInitial() && a != b)
				if fast != slow {
					t.Fatalf("trial %d: Precedes(%v,%v) = %v, slow = %v",
						trial, c.Event(a), c.Event(b), fast, slow)
				}
			}
		}
	}
}

func TestCutConsistencyMatchesClosureDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		c := randomComputation(rng, 3, 4)
		enumerateAllCuts(c, func(k Cut) {
			want := cutClosedUnderOrder(c, k)
			if got := c.CutConsistent(k); got != want {
				t.Fatalf("trial %d: CutConsistent(%v) = %v, want %v", trial, k, got, want)
			}
		})
	}
}

// cutClosedUnderOrder checks the textbook definition: for every event in the
// cut, all events preceding it are in the cut.
func cutClosedUnderOrder(c *Computation, k Cut) bool {
	ok := true
	c.Events(func(e Event) bool {
		if !k.Contains(e) {
			return true
		}
		c.Events(func(f Event) bool {
			if c.Precedes(f.ID, e.ID) && !k.Contains(f) {
				ok = false
			}
			return ok
		})
		return ok
	})
	return ok
}

func TestCutThroughIsMinimalConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		c := randomComputation(rng, 3, 4)
		ids := allEvents(c)
		for _, a := range ids {
			for _, b := range ids {
				if !c.ConsistentEvents(a, b) {
					continue
				}
				k := c.CutThrough(a, b)
				if !c.CutConsistent(k) {
					t.Fatalf("CutThrough(%v,%v) = %v not consistent", a, b, k)
				}
				if !k.PassesThrough(c.Event(a)) || !k.PassesThrough(c.Event(b)) {
					t.Fatalf("CutThrough(%v,%v) = %v does not pass through both",
						c.Event(a), c.Event(b), k)
				}
			}
		}
	}
}

func TestEnabledExecutePreservesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		c := randomComputation(rng, 4, 4)
		k := c.InitialCut()
		final := c.FinalCut()
		steps := 0
		for !k.Equal(final) {
			en := c.Enabled(k)
			if len(en) == 0 {
				t.Fatalf("trial %d: no enabled events at non-final cut %v", trial, k)
			}
			id := en[rng.Intn(len(en))]
			k = c.Execute(k, c.Event(id).Proc)
			if !c.CutConsistent(k) {
				t.Fatalf("trial %d: cut %v inconsistent after executing %v", trial, k, c.Event(id))
			}
			steps++
			if steps > c.NumEvents()+1 {
				t.Fatalf("trial %d: runaway execution", trial)
			}
		}
	}
}

func TestCutHelpers(t *testing.T) {
	c, a, b, _, d1 := diamond(t)
	k := Cut{1, 2}
	if !k.PassesThrough(c.Event(a)) {
		t.Error("cut should pass through a")
	}
	if k.PassesThrough(c.Event(b)) {
		t.Error("cut should not pass through b")
	}
	if !k.Contains(c.Event(d1)) {
		t.Error("cut should contain d1")
	}
	if got := k.Size(); got != 3 {
		t.Errorf("Size = %d, want 3", got)
	}
	if s := k.String(); s != "<1,2>" {
		t.Errorf("String = %q", s)
	}
	if !c.InitialCut().Leq(k) || !k.Leq(c.FinalCut()) {
		t.Error("Leq ordering broken")
	}
	if k.Leq(c.InitialCut()) {
		t.Error("k should not be below the initial cut")
	}
	k2 := k.Clone()
	k2[0] = 0
	if k.Equal(k2) {
		t.Error("Clone must not alias")
	}
}

func TestVariables(t *testing.T) {
	c := New()
	p := c.AddProcess()
	a := c.AddInternal(p)
	c.SetVar("x", a, 7)
	if got := c.Var("x", a); got != 7 {
		t.Errorf("Var = %d", got)
	}
	if got := c.Var("x", c.Initial(p).ID); got != 0 {
		t.Errorf("unset Var = %d, want 0", got)
	}
	if got := c.Var("y", a); got != 0 {
		t.Errorf("unknown table Var = %d, want 0", got)
	}
	if names := c.VarNames(); len(names) != 1 || names[0] != "x" {
		t.Errorf("VarNames = %v", names)
	}
}

func TestSumVarAndCountTrue(t *testing.T) {
	c, a, b, d0, d1 := diamond(t)
	c.SetVar("x", a, 1)
	c.SetVar("x", b, 2)
	c.SetVar("x", d0, 10)
	c.SetVar("x", d1, 20)
	if got := c.SumVar("x", Cut{1, 1}); got != 11 {
		t.Errorf("SumVar = %d, want 11", got)
	}
	n := c.CountTrue(Cut{2, 2}, func(e Event) bool { return c.Var("x", e.ID) >= 2 })
	if n != 2 {
		t.Errorf("CountTrue = %d, want 2", n)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		c := randomComputation(rng, 4, 5)
		c.SetLabel(c.EventAt(0, 1).ID, "hello")
		c.SetVar("x", c.EventAt(1, 1).ID, 42)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, c); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("ReadTrace: %v", err)
		}
		if got.NumProcs() != c.NumProcs() || got.NumEvents() != c.NumEvents() {
			t.Fatalf("shape mismatch: %d/%d vs %d/%d",
				got.NumProcs(), got.NumEvents(), c.NumProcs(), c.NumEvents())
		}
		if len(got.Messages()) != len(c.Messages()) {
			t.Fatalf("message count mismatch")
		}
		if got.Event(c.EventAt(0, 1).ID).Label != "hello" {
			t.Error("label lost in round trip")
		}
		if got.Var("x", c.EventAt(1, 1).ID) != 42 {
			t.Error("variable lost in round trip")
		}
		// Order relation must be identical.
		for _, a := range allEvents(c) {
			for _, b := range allEvents(c) {
				if c.Precedes(a, b) != got.Precedes(a, b) {
					t.Fatalf("order differs after round trip at (%d,%d)", a, b)
				}
			}
		}
	}
}

func TestMutationUnseals(t *testing.T) {
	c, _, _, _, _ := diamond(t)
	if !c.Sealed() {
		t.Fatal("expected sealed")
	}
	c.AddInternal(0)
	if c.Sealed() {
		t.Fatal("mutation must unseal")
	}
	if err := c.Seal(); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInternal:    "internal",
		KindSend:        "send",
		KindReceive:     "receive",
		KindSendReceive: "send+receive",
		KindInitial:     "initial",
		Kind(42):        "kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if !KindSendReceive.IsSend() || !KindSendReceive.IsReceive() {
		t.Error("KindSendReceive must be both")
	}
	if KindInternal.IsSend() || KindInternal.IsReceive() {
		t.Error("KindInternal must be neither")
	}
}

func TestPairwiseConsistent(t *testing.T) {
	c, a, _, d0, d1 := diamond(t)
	if !c.PairwiseConsistent([]EventID{a, d0}) {
		t.Error("a,d0 pairwise consistent")
	}
	if !c.PairwiseConsistent([]EventID{a, d1}) {
		t.Error("a,d1 pairwise consistent")
	}
	// a and its successor are inconsistent.
	if c.PairwiseConsistent([]EventID{a, c.Next(a)}) {
		t.Error("ordered same-process pair must be inconsistent")
	}
	if !c.PairwiseConsistent(nil) {
		t.Error("empty set is trivially consistent")
	}
}
