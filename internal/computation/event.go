package computation

import (
	"fmt"
	"strconv"
)

// ProcID identifies a process. Processes are numbered from 0 in the order
// they are added to a Computation.
type ProcID int

// EventID identifies an event globally within a Computation. Events are
// numbered from 0 in the order they are added; initial events are created
// implicitly when a process is added.
type EventID int

// NoEvent is returned by navigation helpers when the requested event does
// not exist (for example, the successor of a final event).
const NoEvent EventID = -1

// Kind classifies an event. An event may be simultaneously a send and a
// receive event (KindSendReceive); the paper's results hold for both the
// permissive and the restrictive model.
type Kind int

const (
	// KindInternal is an event with no attached messages.
	KindInternal Kind = iota + 1
	// KindSend is an event that sends one or more messages.
	KindSend
	// KindReceive is an event that receives one or more messages.
	KindReceive
	// KindSendReceive both sends and receives messages.
	KindSendReceive
	// KindInitial is the fictitious event that initializes a process.
	// It precedes every other event of the computation.
	KindInitial
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindInternal:
		return "internal"
	case KindSend:
		return "send"
	case KindReceive:
		return "receive"
	case KindSendReceive:
		return "send+receive"
	case KindInitial:
		return "initial"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// IsSend reports whether the kind includes a send.
func (k Kind) IsSend() bool { return k == KindSend || k == KindSendReceive }

// IsReceive reports whether the kind includes a receive.
func (k Kind) IsReceive() bool { return k == KindReceive || k == KindSendReceive }

// Event is one step of one process. The zero value is not a valid event;
// events are created through Computation.AddProcess and Computation.AddEvent.
type Event struct {
	// ID is the global identifier of the event.
	ID EventID
	// Proc is the process the event occurs on.
	Proc ProcID
	// Index is the position of the event on its process; the initial
	// event has index 0.
	Index int
	// Kind classifies the event.
	Kind Kind
	// Label is an optional application-supplied annotation. It plays no
	// role in any algorithm; it is preserved by serialization.
	Label string
}

// IsInitial reports whether e is the fictitious initial event of its process.
func (e Event) IsInitial() bool { return e.Index == 0 }

// String renders the event as "p2[5]" optionally followed by its label.
func (e Event) String() string {
	s := fmt.Sprintf("p%d[%d]", e.Proc, e.Index)
	if e.Label != "" {
		s += ":" + e.Label
	}
	return s
}

// Message is a send/receive pair. The send event happened-before the
// receive event. Channels are reliable but not necessarily FIFO.
type Message struct {
	Send    EventID
	Receive EventID
}

// Edge is an extra order edge from one event to another, used by extended
// causality models (for example the strong-causality model of Tarafdar &
// Garg) where the partial order is not induced by messages alone.
type Edge struct {
	From EventID
	To   EventID
}
