// Package pred defines the repository's single predicate-specification
// language. Every surface that names a predicate — the public gpd.Detect
// front door, the gpddetect command line, and the stream serving wire
// protocol — parses into or converts to the Spec of this package, so
// parsing, validation and rendering live in exactly one place.
//
// The concrete grammar (also the output of Spec.String):
//
//	all(<var>)                  conjunction of the 0/1 variable over all processes
//	sum(<var>) <relop> <k>      relational sum predicate
//	count(<var>) <relop> <k>    symmetric predicate on the true-count of a 0/1 variable
//	xor(<var>)                  exclusive-or of the 0/1 variable (odd parity)
//	levels(<var>): m1, m2, ...  symmetric predicate holding at the listed true-counts
//	inflight <relop> <k>        messages in flight (sent but not received)
//	cnf(<var>): (0 | !1) & (2)  singular CNF over the 0/1 variable; literals are
//	                            process ids, ! negates, | joins within a clause,
//	                            & joins clauses
//	equilevel(<var>): <L>       all(var) restricted to cuts at level L (exactly L
//	                            non-initial events executed), per Garg & Streit
package pred

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/distributed-predicates/gpd/internal/core/relsum"
)

// Family selects the predicate family, which determines the detector.
type Family int

const (
	// Conjunctive is the conjunction of a 0/1 variable over all
	// processes: all(var).
	Conjunctive Family = iota + 1
	// Sum is the relational sum predicate sum(var) relop k.
	Sum
	// Count is the symmetric predicate count(var) relop k on the number
	// of processes whose 0/1 variable is true.
	Count
	// Xor is the exclusive-or (odd parity) of the 0/1 variable: xor(var).
	Xor
	// Levels is the general symmetric predicate given by its true-count
	// level set: levels(var): m1, m2, ...
	Levels
	// CNF is a singular CNF predicate over the 0/1 variable.
	CNF
	// InFlight is the channel-occupancy predicate inflight relop k.
	InFlight
	// Equilevel is the conjunction of the 0/1 variable over all
	// processes, restricted to consistent cuts at one level L (exactly L
	// non-initial events executed): equilevel(var): L. Every run passes
	// through exactly one cut per level, which makes both modalities a
	// single antichain scan (Garg & Streit, "Parallel Algorithms for
	// Equilevel Predicates").
	Equilevel
)

// String names the family (also the JSON encoding).
func (f Family) String() string {
	switch f {
	case Conjunctive:
		return "conjunctive"
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Xor:
		return "xor"
	case Levels:
		return "levels"
	case CNF:
		return "cnf"
	case InFlight:
		return "inflight"
	case Equilevel:
		return "equilevel"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// ParseFamily parses the JSON encoding of a family.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "conjunctive":
		return Conjunctive, nil
	case "sum":
		return Sum, nil
	case "count":
		return Count, nil
	case "xor":
		return Xor, nil
	case "levels":
		return Levels, nil
	case "cnf":
		return CNF, nil
	case "inflight":
		return InFlight, nil
	case "equilevel":
		return Equilevel, nil
	default:
		return 0, fmt.Errorf("pred: unknown predicate family %q", s)
	}
}

// MarshalText encodes the family for JSON.
func (f Family) MarshalText() ([]byte, error) { return []byte(f.String()), nil }

// UnmarshalText decodes the family from JSON.
func (f *Family) UnmarshalText(b []byte) error {
	v, err := ParseFamily(string(b))
	if err != nil {
		return err
	}
	*f = v
	return nil
}

// Literal is one (possibly negated) per-process literal of a CNF clause.
type Literal struct {
	Proc    int  `json:"proc"`
	Negated bool `json:"neg,omitempty"`
}

// Clause is a disjunction of literals on distinct processes.
type Clause []Literal

// Spec is one predicate specification. Exactly the fields of its family
// are meaningful; Validate enforces the shape.
type Spec struct {
	// Family selects the detector family.
	Family Family
	// Var names the per-process variable (all families except InFlight).
	Var string
	// Rel is the relational operator (Sum, Count, InFlight).
	Rel relsum.Relop
	// K is the threshold constant (Sum, Count, InFlight).
	K int64
	// Levels is the true-count level set (Levels family).
	Levels []int
	// Clauses is the CNF body (CNF family).
	Clauses []Clause
}

// specWire is the JSON shape of a Spec: family and relop as strings, K as
// a pointer so a zero threshold survives round-trips.
type specWire struct {
	Family  Family   `json:"family"`
	Var     string   `json:"var,omitempty"`
	Rel     string   `json:"rel,omitempty"`
	K       *int64   `json:"k,omitempty"`
	Levels  []int    `json:"levels,omitempty"`
	Clauses []Clause `json:"clauses,omitempty"`
}

// MarshalJSON encodes the spec with symbolic family and relop names.
func (s Spec) MarshalJSON() ([]byte, error) {
	w := specWire{Family: s.Family, Var: s.Var, Levels: s.Levels, Clauses: s.Clauses}
	if s.usesRel() {
		w.Rel = s.Rel.String()
	}
	if s.usesRel() || s.Family == Equilevel {
		k := s.K
		w.K = &k
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes and structurally validates a spec.
func (s *Spec) UnmarshalJSON(b []byte) error {
	var w specWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	out := Spec{Family: w.Family, Var: w.Var, Levels: w.Levels, Clauses: w.Clauses}
	if w.Rel != "" {
		rel, err := relsum.ParseRelop(w.Rel)
		if err != nil {
			return err
		}
		out.Rel = rel
	}
	if w.K != nil {
		out.K = *w.K
	}
	if err := out.Validate(0); err != nil {
		return err
	}
	*s = out
	return nil
}

// usesRel reports whether the family carries a relational operator.
func (s Spec) usesRel() bool {
	return s.Family == Sum || s.Family == Count || s.Family == InFlight
}

// Validate checks the structural shape of the spec. nprocs > 0 also
// range-checks process references (CNF literals, level values); pass 0
// when the computation size is not known yet.
func (s Spec) Validate(nprocs int) error {
	needVar := s.Family != InFlight
	if needVar && s.Var == "" {
		return fmt.Errorf("pred: %v spec needs a variable name", s.Family)
	}
	if !needVar && s.Var != "" {
		return fmt.Errorf("pred: inflight spec does not take a variable, got %q", s.Var)
	}
	if s.usesRel() && s.Rel == 0 {
		return fmt.Errorf("pred: %v spec needs a relational operator", s.Family)
	}
	switch s.Family {
	case Conjunctive, Sum, Count, Xor, InFlight:
		if len(s.Levels) > 0 || len(s.Clauses) > 0 {
			return fmt.Errorf("pred: %v spec does not take levels or clauses", s.Family)
		}
	case Equilevel:
		if len(s.Levels) > 0 || len(s.Clauses) > 0 {
			return fmt.Errorf("pred: %v spec does not take levels or clauses", s.Family)
		}
		if s.K < 0 {
			return fmt.Errorf("pred: equilevel level %d must be non-negative", s.K)
		}
	case Levels:
		if len(s.Levels) == 0 {
			return errors.New("pred: levels spec needs a non-empty level set")
		}
		if nprocs > 0 {
			for _, m := range s.Levels {
				if m < 0 || m > nprocs {
					return fmt.Errorf("pred: level %d out of range [0,%d]", m, nprocs)
				}
			}
		}
	case CNF:
		if len(s.Clauses) == 0 {
			return errors.New("pred: cnf spec needs at least one clause")
		}
		seen := make(map[int]int)
		for i, cl := range s.Clauses {
			if len(cl) == 0 {
				return fmt.Errorf("pred: cnf clause %d is empty", i)
			}
			for _, l := range cl {
				if l.Proc < 0 || (nprocs > 0 && l.Proc >= nprocs) {
					return fmt.Errorf("pred: cnf literal references process %d out of range", l.Proc)
				}
				if j, dup := seen[l.Proc]; dup {
					return fmt.Errorf("pred: process %d occurs in clauses %d and %d (predicate is not singular)", l.Proc, j, i)
				}
				seen[l.Proc] = i
			}
		}
	default:
		return fmt.Errorf("pred: unknown predicate family %d", int(s.Family))
	}
	return nil
}

// String renders the spec in the concrete grammar; the output re-parses to
// an equal spec.
func (s Spec) String() string {
	switch s.Family {
	case Conjunctive:
		return fmt.Sprintf("all(%s)", s.Var)
	case Sum:
		return fmt.Sprintf("sum(%s) %v %d", s.Var, s.Rel, s.K)
	case Count:
		return fmt.Sprintf("count(%s) %v %d", s.Var, s.Rel, s.K)
	case Xor:
		return fmt.Sprintf("xor(%s)", s.Var)
	case Levels:
		parts := make([]string, len(s.Levels))
		for i, m := range s.Levels {
			parts[i] = strconv.Itoa(m)
		}
		return fmt.Sprintf("levels(%s): %s", s.Var, strings.Join(parts, ", "))
	case InFlight:
		return fmt.Sprintf("inflight %v %d", s.Rel, s.K)
	case Equilevel:
		return fmt.Sprintf("equilevel(%s): %d", s.Var, s.K)
	case CNF:
		var b strings.Builder
		fmt.Fprintf(&b, "cnf(%s): ", s.Var)
		for i, cl := range s.Clauses {
			if i > 0 {
				b.WriteString(" & ")
			}
			b.WriteByte('(')
			for j, l := range cl {
				if j > 0 {
					b.WriteString(" | ")
				}
				if l.Negated {
					b.WriteByte('!')
				}
				b.WriteString(strconv.Itoa(l.Proc))
			}
			b.WriteByte(')')
		}
		return b.String()
	default:
		return fmt.Sprintf("spec(%d)", int(s.Family))
	}
}

// Parse parses the concrete grammar (see the package comment) into a
// structurally validated Spec.
func Parse(text string) (Spec, error) {
	s := strings.TrimSpace(text)
	switch {
	case strings.HasPrefix(s, "all("):
		name, err := parseVarOnly(s, "all")
		if err != nil {
			return Spec{}, err
		}
		sp := Spec{Family: Conjunctive, Var: name}
		return sp, sp.Validate(0)

	case strings.HasPrefix(s, "sum("):
		name, rel, k, err := parseRel(s, "sum")
		if err != nil {
			return Spec{}, err
		}
		sp := Spec{Family: Sum, Var: name, Rel: rel, K: k}
		return sp, sp.Validate(0)

	case strings.HasPrefix(s, "count("):
		name, rel, k, err := parseRel(s, "count")
		if err != nil {
			return Spec{}, err
		}
		sp := Spec{Family: Count, Var: name, Rel: rel, K: k}
		return sp, sp.Validate(0)

	case strings.HasPrefix(s, "xor("):
		name, err := parseVarOnly(s, "xor")
		if err != nil {
			return Spec{}, err
		}
		sp := Spec{Family: Xor, Var: name}
		return sp, sp.Validate(0)

	case strings.HasPrefix(s, "levels("):
		name, body, err := parseHeadBody(s, "levels")
		if err != nil {
			return Spec{}, err
		}
		sp := Spec{Family: Levels, Var: name}
		for _, f := range strings.Split(body, ",") {
			m, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return Spec{}, fmt.Errorf("pred: bad level %q", strings.TrimSpace(f))
			}
			sp.Levels = append(sp.Levels, m)
		}
		return sp, sp.Validate(0)

	case strings.HasPrefix(s, "equilevel("):
		name, body, err := parseHeadBody(s, "equilevel")
		if err != nil {
			return Spec{}, err
		}
		l, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("pred: bad equilevel level %q", body)
		}
		sp := Spec{Family: Equilevel, Var: name, K: l}
		return sp, sp.Validate(0)

	case strings.HasPrefix(s, "inflight"):
		fields := strings.Fields(strings.TrimPrefix(s, "inflight"))
		if len(fields) != 2 {
			return Spec{}, fmt.Errorf("pred: want %q, got %q", "inflight relop k", text)
		}
		rel, err := relsum.ParseRelop(fields[0])
		if err != nil {
			return Spec{}, err
		}
		k, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("pred: bad constant %q", fields[1])
		}
		sp := Spec{Family: InFlight, Rel: rel, K: k}
		return sp, sp.Validate(0)

	case strings.HasPrefix(s, "cnf("):
		name, body, err := parseHeadBody(s, "cnf")
		if err != nil {
			return Spec{}, err
		}
		sp := Spec{Family: CNF, Var: name}
		for _, clause := range strings.Split(body, "&") {
			clause = strings.TrimSpace(clause)
			clause = strings.TrimPrefix(clause, "(")
			clause = strings.TrimSuffix(clause, ")")
			var cl Clause
			for _, lit := range strings.Split(clause, "|") {
				lit = strings.TrimSpace(lit)
				neg := strings.HasPrefix(lit, "!")
				lit = strings.TrimPrefix(lit, "!")
				proc, err := strconv.Atoi(lit)
				if err != nil {
					return Spec{}, fmt.Errorf("pred: bad literal %q", lit)
				}
				cl = append(cl, Literal{Proc: proc, Negated: neg})
			}
			sp.Clauses = append(sp.Clauses, cl)
		}
		return sp, sp.Validate(0)
	}
	return Spec{}, fmt.Errorf("pred: cannot parse predicate %q", text)
}

// parseVarOnly parses "kind(name)" with nothing after the parenthesis.
func parseVarOnly(s, kind string) (string, error) {
	rest := strings.TrimPrefix(s, kind+"(")
	i := strings.Index(rest, ")")
	if i < 0 {
		return "", fmt.Errorf("pred: missing ) in %q", s)
	}
	if tail := strings.TrimSpace(rest[i+1:]); tail != "" {
		return "", fmt.Errorf("pred: unexpected %q after %s(...)", tail, kind)
	}
	return rest[:i], nil
}

// parseRel parses "kind(name) relop k".
func parseRel(s, kind string) (string, relsum.Relop, int64, error) {
	rest := strings.TrimPrefix(s, kind+"(")
	i := strings.Index(rest, ")")
	if i < 0 {
		return "", 0, 0, fmt.Errorf("pred: missing ) in %q", s)
	}
	name := rest[:i]
	fields := strings.Fields(rest[i+1:])
	if len(fields) != 2 {
		return "", 0, 0, fmt.Errorf("pred: want %q, got %q", kind+"(v) relop k", s)
	}
	rel, err := relsum.ParseRelop(fields[0])
	if err != nil {
		return "", 0, 0, err
	}
	k, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, 0, fmt.Errorf("pred: bad constant %q", fields[1])
	}
	return name, rel, k, nil
}

// parseHeadBody parses `kind(name): body`.
func parseHeadBody(s, kind string) (name, body string, err error) {
	rest := strings.TrimPrefix(s, kind+"(")
	i := strings.Index(rest, "):")
	if i < 0 {
		return "", "", fmt.Errorf("pred: want %q, got %q", kind+"(var): ...", s)
	}
	return rest[:i], strings.TrimSpace(rest[i+2:]), nil
}
