package pred

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/distributed-predicates/gpd/internal/core/relsum"
)

// goodSpecs lists one predicate string per family plus variations; these
// also anchor the gpddetect grammar, so keep them in sync with that
// command's package comment.
var goodSpecs = []string{
	"all(flag)",
	"sum(tokens) == 2",
	"sum(tokens) >= 0",
	"sum(x) != -3",
	"count(cs) >= 2",
	"count(cs) < 1",
	"xor(vote)",
	"levels(up): 0, 2, 4",
	"inflight == 1",
	"inflight <= 0",
	"cnf(flag): (0 | !1) & (2 | 3)",
	"cnf(flag): (0)",
	"cnf(flag): (!2 | 4) & (1) & (3 | !5)",
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, text := range goodSpecs {
		sp, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		rendered := sp.String()
		sp2, err := Parse(rendered)
		if err != nil {
			t.Errorf("re-Parse(%q) of %q: %v", rendered, text, err)
			continue
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Errorf("round trip %q -> %q: %+v != %+v", text, rendered, sp, sp2)
		}
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	for _, text := range goodSpecs {
		sp, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		b, err := json.Marshal(sp)
		if err != nil {
			t.Errorf("marshal %q: %v", text, err)
			continue
		}
		var sp2 Spec
		if err := json.Unmarshal(b, &sp2); err != nil {
			t.Errorf("unmarshal %s (from %q): %v", b, text, err)
			continue
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Errorf("JSON round trip %q via %s: %+v != %+v", text, b, sp, sp2)
		}
	}
}

func TestParseJSONSymbolicNames(t *testing.T) {
	sp, err := Parse("sum(tokens) == 0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"family":"sum","var":"tokens","rel":"==","k":0}`
	if string(b) != want {
		t.Errorf("encoding = %s, want %s", b, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"bogus",
		"sum(tokens) <> 1",   // bad relop
		"sum(tokens) == x",   // bad constant
		"sum(tokens",         // missing paren
		"sum(tokens) == 1 2", // trailing junk
		"count(v) >=",        // missing constant
		"xor(v) == 1",        // xor takes no relop
		"all(v) extra",       // trailing junk
		"levels(v): a",       // bad level
		"levels(v):",         // empty level set
		"inflight == x",
		"inflight <>",
		"cnf(v): (a)",       // bad literal
		"cnf(v) (0)",        // missing colon
		"cnf(v): (0) & (0)", // not singular
		"cnf(v): ()",        // empty clause
	} {
		if sp, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", bad, sp)
		}
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		`{"family":"teleport"}`,
		`{"family":"sum","var":"x","rel":"<>","k":1}`,
		`{"family":"sum","var":"x"}`,
		`{"family":"cnf","var":"x"}`,
		`{"family":"cnf","var":"x","clauses":[[{"proc":0}],[{"proc":0}]]}`,
		`{"family":"levels","var":"x"}`,
		`{"family":"inflight","var":"x","rel":"==","k":1}`,
	} {
		var sp Spec
		if err := json.Unmarshal([]byte(bad), &sp); err == nil {
			t.Errorf("unmarshal %s = %+v, want error", bad, sp)
		}
	}
}

func TestValidateProcRange(t *testing.T) {
	sp, err := Parse("cnf(flag): (0 | 5)")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(4); err == nil {
		t.Error("literal 5 should be out of range for 4 processes")
	}
	if err := sp.Validate(6); err != nil {
		t.Errorf("literal 5 valid for 6 processes: %v", err)
	}
	lv := Spec{Family: Levels, Var: "x", Levels: []int{5}}
	if err := lv.Validate(4); err == nil {
		t.Error("level 5 should be out of range for 4 processes")
	}
}

func TestRelopEvalUnchanged(t *testing.T) {
	// pred reuses relsum.Relop verbatim; pin the symbolic encodings the
	// JSON wire format depends on.
	for rel, s := range map[relsum.Relop]string{
		relsum.Lt: "<", relsum.Le: "<=", relsum.Eq: "==",
		relsum.Ge: ">=", relsum.Gt: ">", relsum.Ne: "!=",
	} {
		if rel.String() != s {
			t.Errorf("relop %d renders %q, want %q", rel, rel.String(), s)
		}
		back, err := relsum.ParseRelop(s)
		if err != nil || back != rel {
			t.Errorf("ParseRelop(%q) = %v, %v", s, back, err)
		}
	}
}
