package obs

import (
	"strings"
	"sync"
)

// DefaultMaxSeries bounds the number of distinct label-value series a
// vector will materialize. The cap exists because label values on the
// serving path come from the wire (tenant names, session ids): an
// unbounded vector is a memory-growth and scrape-size vulnerability. A
// With call past the cap lands on the vector's overflow series, whose
// every label value is the literal "other", so totals stay conserved
// and the scrape stays bounded no matter how hostile the input.
const DefaultMaxSeries = 256

// overflowValue is the label value of every key on an overflow series.
const overflowValue = "other"

// seriesKeySep joins label values into a map key. 0x1f (ASCII unit
// separator) cannot appear in sane label values; a value that does
// contain it still round-trips in the exposition because rendering
// escapes independently of this key.
const seriesKeySep = "\x1f"

// vecCore carries the shape shared by the three vector kinds: the base
// name, the ordered label keys, and the series cap. It does not hold
// the series map (each kind keeps a typed map so With returns concrete
// handles with zero interface indirection on the hot path).
type vecCore struct {
	name  string
	keys  []string
	limit int
}

func newVecCore(name string, keys []string) vecCore {
	return vecCore{name: name, keys: append([]string(nil), keys...), limit: DefaultMaxSeries}
}

// seriesKey joins values for map lookup; arity mismatches return false
// and route the caller to the overflow series — a misuse must not mint
// series under a wrong schema.
func (c *vecCore) seriesKey(values []string) (string, bool) {
	if len(values) != len(c.keys) {
		return "", false
	}
	if len(values) == 1 {
		return values[0], true
	}
	return strings.Join(values, seriesKeySep), true
}

// rendered returns the exposition name for a concrete series, e.g.
// name{tenant="a",shard="0"} with values escaped.
func (c *vecCore) rendered(values []string) string {
	var b strings.Builder
	b.WriteString(c.name)
	b.WriteByte('{')
	for i, k := range c.keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (c *vecCore) renderedOverflow() string {
	vals := make([]string, len(c.keys))
	for i := range vals {
		vals[i] = overflowValue
	}
	return c.rendered(vals)
}

// CounterVec is a family of counters sharing one name and label schema.
// With interns a series per label-value tuple up to the cardinality cap;
// past the cap every new tuple shares the "other" overflow series. All
// methods are no-ops on a nil receiver.
type CounterVec struct {
	core     vecCore
	mu       sync.Mutex
	series   map[string]*Counter
	names    map[string]string // series key -> rendered exposition name
	overflow *Counter
}

// With returns the counter for the given label values (one per key, in
// key order). Unknown tuples intern a new series until the cap; the
// cap'th-plus-one tuple — or a wrong number of values — returns the
// shared overflow series. Nil-safe: a nil vector returns a nil counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key, ok := v.core.seriesKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if ok {
		if c, hit := v.series[key]; hit {
			return c
		}
		if len(v.series) < v.core.limit {
			c := &Counter{}
			v.series[key] = c
			v.names[key] = v.core.rendered(values)
			return c
		}
	}
	if v.overflow == nil {
		v.overflow = &Counter{}
	}
	return v.overflow
}

// SetLimit overrides the series cap (default DefaultMaxSeries). Call
// before the vector is populated; shrinking below the live series count
// does not evict.
func (v *CounterVec) SetLimit(n int) {
	if v == nil || n <= 0 {
		return
	}
	v.mu.Lock()
	v.core.limit = n
	v.mu.Unlock()
}

// fold copies every live series (rendered name -> value) into dst.
func (v *CounterVec) fold(dst map[string]int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for key, c := range v.series {
		dst[v.names[key]] = c.Value()
	}
	if v.overflow != nil {
		dst[v.core.renderedOverflow()] = v.overflow.Value()
	}
}

// GaugeVec is a family of gauges sharing one name and label schema; see
// CounterVec for the interning and overflow rules.
type GaugeVec struct {
	core     vecCore
	mu       sync.Mutex
	series   map[string]*Gauge
	names    map[string]string
	overflow *Gauge
}

// With returns the gauge for the given label values; see CounterVec.With.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key, ok := v.core.seriesKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if ok {
		if g, hit := v.series[key]; hit {
			return g
		}
		if len(v.series) < v.core.limit {
			g := &Gauge{}
			v.series[key] = g
			v.names[key] = v.core.rendered(values)
			return g
		}
	}
	if v.overflow == nil {
		v.overflow = &Gauge{}
	}
	return v.overflow
}

// SetLimit overrides the series cap; see CounterVec.SetLimit.
func (v *GaugeVec) SetLimit(n int) {
	if v == nil || n <= 0 {
		return
	}
	v.mu.Lock()
	v.core.limit = n
	v.mu.Unlock()
}

func (v *GaugeVec) fold(dst map[string]int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for key, g := range v.series {
		dst[v.names[key]] = g.Value()
	}
	if v.overflow != nil {
		dst[v.core.renderedOverflow()] = v.overflow.Value()
	}
}

// HistogramVec is a family of histograms sharing one name, one bucket
// layout and one label schema; see CounterVec for interning and
// overflow rules.
type HistogramVec struct {
	core     vecCore
	bounds   []int64
	mu       sync.Mutex
	series   map[string]*Histogram
	names    map[string]string
	overflow *Histogram
}

// With returns the histogram for the given label values; see
// CounterVec.With.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key, ok := v.core.seriesKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if ok {
		if h, hit := v.series[key]; hit {
			return h
		}
		if len(v.series) < v.core.limit {
			h := NewHistogram(v.bounds...)
			v.series[key] = h
			v.names[key] = v.core.rendered(values)
			return h
		}
	}
	if v.overflow == nil {
		v.overflow = NewHistogram(v.bounds...)
	}
	return v.overflow
}

// SetLimit overrides the series cap; see CounterVec.SetLimit.
func (v *HistogramVec) SetLimit(n int) {
	if v == nil || n <= 0 {
		return
	}
	v.mu.Lock()
	v.core.limit = n
	v.mu.Unlock()
}

func (v *HistogramVec) fold(dst map[string]HistogramSnapshot) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for key, h := range v.series {
		dst[v.names[key]] = h.Snapshot()
	}
	if v.overflow != nil {
		dst[v.core.renderedOverflow()] = v.overflow.Snapshot()
	}
}

// CounterVec returns the named counter vector with the given label
// keys, creating it on first use (later key lists are ignored for an
// existing vector, matching Histogram's bounds rule). Nil-safe.
func (r *Registry) CounterVec(name string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.cvecs[name]
	if !ok {
		v = &CounterVec{
			core:   newVecCore(name, labelKeys),
			series: make(map[string]*Counter),
			names:  make(map[string]string),
		}
		r.cvecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge vector; see CounterVec.
func (r *Registry) GaugeVec(name string, labelKeys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gvecs[name]
	if !ok {
		v = &GaugeVec{
			core:   newVecCore(name, labelKeys),
			series: make(map[string]*Gauge),
			names:  make(map[string]string),
		}
		r.gvecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram vector with the given bucket
// bounds; see CounterVec for the interning rules.
func (r *Registry) HistogramVec(name string, bounds []int64, labelKeys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.hvecs[name]
	if !ok {
		v = &HistogramVec{
			core:   newVecCore(name, labelKeys),
			bounds: append([]int64(nil), bounds...),
			series: make(map[string]*Histogram),
			names:  make(map[string]string),
		}
		r.hvecs[name] = v
	}
	return v
}
