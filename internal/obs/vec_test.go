package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestCounterVecOverflow checks the cardinality cap: the N+1st label
// tuple lands on the shared "other" series, the total across every
// exposed series is conserved, and existing tuples keep their own
// series after overflow starts.
func TestCounterVecOverflow(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("tenant_events_total", "tenant")
	vec.SetLimit(2)

	vec.With("a").Add(1)
	vec.With("b").Add(2)
	vec.With("c").Add(4)  // past the cap -> other
	vec.With("d").Add(8)  // shares the same other series
	vec.With("a").Add(16) // interned before the cap: still its own series

	snap := r.Snapshot()
	want := map[string]int64{
		`tenant_events_total{tenant="a"}`:     17,
		`tenant_events_total{tenant="b"}`:     2,
		`tenant_events_total{tenant="other"}`: 12,
	}
	var sum int64
	for name, v := range snap.Counters {
		sum += v
		if want[name] != v {
			t.Errorf("series %s = %d, want %d", name, v, want[name])
		}
	}
	if len(snap.Counters) != len(want) {
		t.Errorf("got %d series, want %d: %v", len(snap.Counters), len(want), snap.Counters)
	}
	if sum != 31 {
		t.Errorf("counters not conserved across overflow: sum %d, want 31", sum)
	}
}

// TestVecWrongArity checks that a With call with the wrong number of
// values cannot mint a malformed series — it lands on overflow.
func TestVecWrongArity(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("pair_total", "tenant", "family")
	vec.With("only-one").Inc()
	vec.With("a", "b", "c").Inc()
	snap := r.Snapshot()
	if got := snap.Counters[`pair_total{tenant="other",family="other"}`]; got != 2 {
		t.Errorf("arity misuse did not land on overflow: %v", snap.Counters)
	}
}

// TestVecEscapingRoundTrip drives hostile label values through a vector
// and checks every exposition line parses and every value round-trips —
// the vector-path twin of TestWritePrometheusEscaping.
func TestVecEscapingRoundTrip(t *testing.T) {
	hostile := []string{`quote"inside`, `back\slash`, "new\nline", `all"three\of` + "\nthem"}
	r := NewRegistry()
	vec := r.GaugeVec("hostile_gauge", "v")
	for i, v := range hostile {
		vec.With(v).Set(int64(i + 1))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b, "gpd"); err != nil {
		t.Fatal(err)
	}
	values := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("line does not parse as exposition 0.0.4: %q", line)
			continue
		}
		if i := strings.Index(line, `v="`); i >= 0 {
			raw := line[i+3 : strings.LastIndex(line, `"`)]
			values[unescapeLabelValue(raw)] = true
		}
	}
	for _, v := range hostile {
		if !values[v] {
			t.Errorf("label value %q did not round-trip\n%s", v, b.String())
		}
	}
}

// TestHistogramVecOverflow checks histogram vectors share bucket
// layout, fold into snapshots under rendered names, and conserve
// observation counts across the cap.
func TestHistogramVecOverflow(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("latency_ms", []int64{1, 10}, "tenant")
	vec.SetLimit(1)
	vec.With("a").Observe(5)
	vec.With("b").Observe(7) // past cap
	vec.With("b").Observe(100)

	snap := r.Snapshot()
	a, ok := snap.Histograms[`latency_ms{tenant="a"}`]
	if !ok || a.Count != 1 {
		t.Fatalf("tenant a histogram missing or wrong: %+v", snap.Histograms)
	}
	other, ok := snap.Histograms[`latency_ms{tenant="other"}`]
	if !ok || other.Count != 2 {
		t.Fatalf("overflow histogram missing or wrong: %+v", snap.Histograms)
	}
	if total := a.Count + other.Count; total != 3 {
		t.Errorf("observations not conserved: %d, want 3", total)
	}
	if len(a.Bounds) != 2 || len(other.Bounds) != 2 {
		t.Errorf("bucket layout not shared: %v vs %v", a.Bounds, other.Bounds)
	}
}

// TestVecNilSafety checks the whole nil chain: nil registry -> nil
// vector -> nil handle, with every method a no-op.
func TestVecNilSafety(t *testing.T) {
	var r *Registry
	r.CounterVec("x", "k").With("v").Inc()
	r.GaugeVec("x", "k").With("v").Set(1)
	r.HistogramVec("x", nil, "k").With("v").Observe(1)
	var cv *CounterVec
	cv.SetLimit(5)
	if c := cv.With("v"); c != nil {
		t.Error("nil CounterVec.With returned non-nil")
	}
	var gv *GaugeVec
	if g := gv.With("v"); g != nil {
		t.Error("nil GaugeVec.With returned non-nil")
	}
	var hv *HistogramVec
	if h := hv.With("v"); h != nil {
		t.Error("nil HistogramVec.With returned non-nil")
	}
}

// TestVecConcurrent hammers one vector from many goroutines across more
// tenants than the cap, under -race in CI, and checks conservation.
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("conc_total", "tenant")
	vec.SetLimit(4)
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				vec.With(fmt.Sprintf("tenant-%d", (w+i)%8)).Inc()
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	for _, v := range r.Snapshot().Counters {
		sum += v
	}
	if sum != workers*perWorker {
		t.Errorf("sum %d, want %d", sum, workers*perWorker)
	}
}
