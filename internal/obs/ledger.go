package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultMaxScopes bounds the number of (tenant, family) scopes a
// ledger interns; extra scopes share the "other"/"other" overflow
// scope, mirroring the vector cardinality cap.
const DefaultMaxScopes = 256

// DefaultMaxHotPredicates bounds the per-predicate step table; extra
// predicates aggregate into a synthetic "other" row.
const DefaultMaxHotPredicates = 512

// ScopeKey identifies a cost-attribution scope: which tenant, which
// predicate family.
type ScopeKey struct {
	Tenant string
	Family string
}

// Scope accumulates attributed cost for one (tenant, family) pair. All
// fields are atomics, so the serving path records without locking; all
// methods are no-ops on a nil receiver, matching the obs handle
// discipline — instrumented code never branches on whether the ledger
// is enabled.
type Scope struct {
	led *Ledger
	key ScopeKey

	cpu      atomic.Int64
	steps    atomic.Int64
	events   atomic.Int64
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// AddCPU charges ns nanoseconds of CPU-adjacent wall time measured on
// the goroutine doing this scope's work (the stream engine times each
// batch's detector work per session). Also feeds the ledger-wide total
// that CPU shares are computed against.
func (s *Scope) AddCPU(ns int64) {
	if s == nil || ns <= 0 {
		return
	}
	s.cpu.Add(ns)
	s.led.total.Add(ns)
}

// AddSteps charges detector steps.
func (s *Scope) AddSteps(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.steps.Add(n)
}

// AddEvents charges delivered events.
func (s *Scope) AddEvents(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.events.Add(n)
}

// AddBytes charges wire bytes read from and written to this scope's
// clients.
func (s *Scope) AddBytes(in, out int64) {
	if s == nil {
		return
	}
	if in > 0 {
		s.bytesIn.Add(in)
	}
	if out > 0 {
		s.bytesOut.Add(out)
	}
}

// predKey identifies one registered predicate in the hot table. A plain
// struct key keeps the hit-path lookup allocation-free.
type predKey struct {
	id     string
	tenant string
	family string
}

type predCost struct {
	steps int64
}

// Ledger attributes serving cost — CPU time, detector steps, events and
// wire bytes — to (tenant, family) scopes, plus a bounded per-predicate
// step table for the top-K hot-predicates view. Scope handles are
// interned once (at session open) and then recorded to via atomics; the
// per-event record path takes one mutex and does no allocation on the
// hit path. All methods are nil-safe.
type Ledger struct {
	total atomic.Int64 // CPU nanos across all scopes

	mu     sync.Mutex
	scopes map[ScopeKey]*Scope
	limit  int
	other  *Scope

	pmu    sync.Mutex
	preds  map[predKey]*predCost
	plimit int
	pother int64 // steps aggregated past the predicate cap
}

// NewLedger returns an empty ledger with the default cardinality caps.
func NewLedger() *Ledger {
	return &Ledger{
		scopes: make(map[ScopeKey]*Scope),
		limit:  DefaultMaxScopes,
		preds:  make(map[predKey]*predCost),
		plimit: DefaultMaxHotPredicates,
	}
}

// SetScopeLimit overrides the scope cap (default DefaultMaxScopes).
// Call before the ledger is populated; shrinking does not evict.
func (l *Ledger) SetScopeLimit(n int) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	l.limit = n
	l.mu.Unlock()
}

// SetPredicateLimit overrides the hot-predicate table cap (default
// DefaultMaxHotPredicates).
func (l *Ledger) SetPredicateLimit(n int) {
	if l == nil || n <= 0 {
		return
	}
	l.pmu.Lock()
	l.plimit = n
	l.pmu.Unlock()
}

// Scope interns and returns the scope for (tenant, family). Past the
// cap, unknown pairs share the "other"/"other" overflow scope so totals
// stay conserved. Nil-safe: a nil ledger returns a nil (no-op) scope.
func (l *Ledger) Scope(tenant, family string) *Scope {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := ScopeKey{Tenant: tenant, Family: family}
	if s, ok := l.scopes[k]; ok {
		return s
	}
	if len(l.scopes) >= l.limit {
		if l.other == nil {
			l.other = &Scope{led: l, key: ScopeKey{Tenant: overflowValue, Family: overflowValue}}
		}
		return l.other
	}
	s := &Scope{led: l, key: k}
	l.scopes[k] = s
	return s
}

// RecordPredicate charges steps to one registered predicate's row in
// the hot table, keyed by (id, tenant, family). This is the per-event
// record path of the mux fan-out, so the hit path is one mutex and a
// struct-keyed map lookup with no allocation.
//
//lint:hotpath
func (l *Ledger) RecordPredicate(id, tenant, family string, steps int64) {
	if l == nil || steps <= 0 {
		return
	}
	k := predKey{id: id, tenant: tenant, family: family}
	l.pmu.Lock()
	if p, ok := l.preds[k]; ok {
		p.steps += steps
	} else if len(l.preds) < l.plimit {
		l.internPred(k, steps)
	} else {
		l.pother += steps
	}
	l.pmu.Unlock()
}

// internPred creates a hot-table row; first sight of a predicate only,
// so the allocation is off the per-event path.
//
//lint:coldpath
func (l *Ledger) internPred(k predKey, steps int64) {
	l.preds[k] = &predCost{steps: steps}
}

// TotalCPUNanos returns the CPU nanoseconds attributed across every
// scope (including overflow).
func (l *Ledger) TotalCPUNanos() int64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}

// TenantCPUNanos sums the CPU attributed to one tenant across its
// family scopes. Overflow cost is never attributed to a named tenant.
func (l *Ledger) TenantCPUNanos(tenant string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum int64
	for k, s := range l.scopes {
		if k.Tenant == tenant {
			sum += s.cpu.Load()
		}
	}
	return sum
}

// ScopeCost is one scope's row in a ledger snapshot.
type ScopeCost struct {
	Tenant   string  `json:"tenant"`
	Family   string  `json:"family"`
	CPUNanos int64   `json:"cpu_nanos"`
	CPUShare float64 `json:"cpu_share"` // fraction of the ledger-wide CPU total
	Steps    int64   `json:"steps"`
	Events   int64   `json:"events"`
	BytesIn  int64   `json:"bytes_in"`
	BytesOut int64   `json:"bytes_out"`
}

// LedgerSnapshot is a point-in-time cost report, scopes ranked by
// attributed CPU, then steps, then (tenant, family) for determinism.
type LedgerSnapshot struct {
	TotalCPUNanos int64       `json:"total_cpu_nanos"`
	Scopes        []ScopeCost `json:"scopes"`
}

// Snapshot copies every scope. Concurrent recording may land between
// field reads; each field is individually exact.
func (l *Ledger) Snapshot() LedgerSnapshot {
	if l == nil {
		return LedgerSnapshot{}
	}
	l.mu.Lock()
	scopes := make([]*Scope, 0, len(l.scopes)+1)
	for _, s := range l.scopes {
		//lint:ignore maporder the rendered ScopeCost slice built from this staging copy is sorted below before it escapes
		scopes = append(scopes, s)
	}
	if l.other != nil {
		scopes = append(scopes, l.other)
	}
	l.mu.Unlock()

	snap := LedgerSnapshot{TotalCPUNanos: l.total.Load(), Scopes: make([]ScopeCost, 0, len(scopes))}
	for _, s := range scopes {
		c := ScopeCost{
			Tenant:   s.key.Tenant,
			Family:   s.key.Family,
			CPUNanos: s.cpu.Load(),
			Steps:    s.steps.Load(),
			Events:   s.events.Load(),
			BytesIn:  s.bytesIn.Load(),
			BytesOut: s.bytesOut.Load(),
		}
		if snap.TotalCPUNanos > 0 {
			c.CPUShare = float64(c.CPUNanos) / float64(snap.TotalCPUNanos)
		}
		snap.Scopes = append(snap.Scopes, c)
	}
	sort.Slice(snap.Scopes, func(i, j int) bool {
		a, b := snap.Scopes[i], snap.Scopes[j]
		if a.CPUNanos != b.CPUNanos {
			return a.CPUNanos > b.CPUNanos
		}
		if a.Steps != b.Steps {
			return a.Steps > b.Steps
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Family < b.Family
	})
	return snap
}

// PredCost is one predicate's row in the hot-predicates view.
type PredCost struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Family string `json:"family"`
	Steps  int64  `json:"steps"`
}

// HotPredicates returns the top-k predicates by attributed detector
// steps (ties broken by tenant then id, descending steps first). The
// aggregated past-cap remainder appears as a synthetic "other" row when
// nonzero.
func (l *Ledger) HotPredicates(k int) []PredCost {
	if l == nil || k <= 0 {
		return nil
	}
	l.pmu.Lock()
	out := make([]PredCost, 0, len(l.preds)+1)
	for pk, p := range l.preds {
		out = append(out, PredCost{ID: pk.id, Tenant: pk.tenant, Family: pk.family, Steps: p.steps})
	}
	if l.pother > 0 {
		out = append(out, PredCost{ID: overflowValue, Tenant: overflowValue, Family: overflowValue, Steps: l.pother})
	}
	l.pmu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Steps != out[j].Steps {
			return out[i].Steps > out[j].Steps
		}
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
