// Package obs is the dependency-free observability substrate of the
// repository: atomic counters and gauges, bounded histograms, a named
// metric registry with a Prometheus-text exposition, and per-run Traces
// with wall-time spans and work counters.
//
// The package exists because lattice exploration is worst-case exponential
// (Cooper–Marzullo) and the serving path is a concurrent sharded engine:
// without counters for cuts explored, CPDHB passes, flow augmentations and
// mailbox occupancy, a slow detection run is indistinguishable from a hung
// one. Every hot path of the detectors and the stream engine reports here.
//
// All types are safe for concurrent use and nil-tolerant: methods on a nil
// *Counter, *Gauge, *Histogram or *Registry are no-ops, so instrumented
// code never branches on whether metrics are enabled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored — counters only
// go up; use a Gauge for bidirectional quantities).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (either sign).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram with caller-supplied upper bounds. An
// implicit +Inf bucket catches the overflow, so observation cost is O(log
// buckets) with no allocation; counts, sum and bucket occupancy are all
// atomics, so concurrent Observe calls never lock.
type Histogram struct {
	bounds  []int64 // sorted inclusive upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram builds a histogram with the given inclusive upper bounds
// (sorted ascending; an implicit +Inf bucket is appended).
func NewHistogram(bounds ...int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// ExpBuckets returns doubling bounds: start, 2*start, ... (n bounds).
func ExpBuckets(start int64, n int) []int64 {
	out := make([]int64, 0, n)
	for v, i := start, 0; i < n; v, i = v*2, i+1 {
		out = append(out, v)
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; the final implicit bucket is
	// +Inf and has no entry here.
	Bounds []int64 `json:"bounds"`
	// Buckets holds per-bucket observation counts, len(Bounds)+1 entries
	// (the last is the +Inf overflow bucket). Counts are NOT cumulative.
	Buckets []int64 `json:"buckets"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
}

// Snapshot copies the histogram state. Concurrent observations may land
// between bucket reads; each bucket is individually exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:  append([]int64(nil), h.bounds...),
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Registry is a named collection of metrics. Lookups intern the metric on
// first use, so callers hold typed handles and pay a map access only once.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
	cvecs map[string]*CounterVec
	gvecs map[string]*GaugeVec
	hvecs map[string]*HistogramVec

	smu      sync.Mutex
	samplers []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gaugs: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
		cvecs: make(map[string]*CounterVec),
		gvecs: make(map[string]*GaugeVec),
		hvecs: make(map[string]*HistogramVec),
	}
}

// AddSampler registers a scrape-time hook: every Snapshot (and therefore
// every Prometheus exposition) calls the sampler first, so gauges whose
// source is pull-based — runtime memory stats, queue depths owned by
// another subsystem — are fresh at scrape time without a background
// goroutine. Samplers run outside the registry lock and may set metrics;
// they must not call Snapshot themselves. Nil-safe.
func (r *Registry) AddSampler(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.smu.Lock()
	r.samplers = append(r.samplers, fn)
	r.smu.Unlock()
}

// sample runs the registered scrape-time samplers.
func (r *Registry) sample() {
	r.smu.Lock()
	fns := r.samplers
	r.smu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Counter returns the named counter, creating it on first use. Returns a
// nil (no-op) counter on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later bounds are ignored for an existing histogram).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is a point-in-time copy of every metric in a registry.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric. Vector series fold in under their
// rendered exposition names (`name{k="v"}`), so consumers of the
// snapshot — /debug/vars JSON and the Prometheus writer — see labeled
// series without knowing about vectors.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.sample()
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gaugs {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	for _, v := range r.cvecs {
		v.fold(snap.Counters)
	}
	for _, v := range r.gvecs {
		v.fold(snap.Gauges)
	}
	for _, v := range r.hvecs {
		v.fold(snap.Histograms)
	}
	return snap
}
