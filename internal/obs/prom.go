package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format (0.0.4): backslash, double quote and newline only.
// Go's %q escaping diverges — it would also escape tabs, control bytes
// and non-ASCII runes into sequences the exposition parser rejects, so
// every other byte passes through literally.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// baseName strips a baked-in label set from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelSet returns the baked-in label body ("k=\"v\",...") of a name, or "".
func labelSet(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Every metric name is prefixed with prefix plus
// an underscore (pass "" for none). Counters map to counter series, gauges
// to gauge series, and histograms to the conventional _bucket (cumulative,
// with an +Inf bucket), _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	if prefix != "" && !strings.HasSuffix(prefix, "_") {
		prefix += "_"
	}
	snap := r.Snapshot()

	typed := make(map[string]string) // base name -> TYPE already written
	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeSeries(w, typed, prefix, name, "counter", snap.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeSeries(w, typed, prefix, name, "gauge", snap.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeHistogram(w, typed, prefix, name, snap.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writeType(w io.Writer, typed map[string]string, full, kind string) error {
	if typed[full] == kind {
		return nil
	}
	typed[full] = kind
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", full, kind)
	return err
}

func writeSeries(w io.Writer, typed map[string]string, prefix, name, kind string, v int64) error {
	full := prefix + baseName(name)
	if err := writeType(w, typed, full, kind); err != nil {
		return err
	}
	if ls := labelSet(name); ls != "" {
		_, err := fmt.Fprintf(w, "%s{%s} %d\n", full, ls, v)
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", full, v)
	return err
}

func writeHistogram(w io.Writer, typed map[string]string, prefix, name string, h HistogramSnapshot) error {
	full := prefix + baseName(name)
	if err := writeType(w, typed, full, "histogram"); err != nil {
		return err
	}
	ls := labelSet(name)
	join := func(le string) string {
		if ls == "" {
			return fmt.Sprintf(`le="%s"`, le)
		}
		return fmt.Sprintf(`%s,le="%s"`, ls, le)
	}
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", full, join(fmt.Sprint(b)), cum); err != nil {
			return err
		}
	}
	cum += h.Buckets[len(h.Buckets)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", full, join("+Inf"), cum); err != nil {
		return err
	}
	sum, count := fmt.Sprintf("%s_sum", full), fmt.Sprintf("%s_count", full)
	if ls != "" {
		sum = fmt.Sprintf("%s_sum{%s}", full, ls)
		count = fmt.Sprintf("%s_count{%s}", full, ls)
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", sum, h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", count, h.Count)
	return err
}
