package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFlightRingOrderAndWrap(t *testing.T) {
	f := NewFlight(4)
	for i := 1; i <= 6; i++ {
		f.Record(FlightRecord{Seq: uint64(i), Session: "s", Stage: StageRecv})
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d records, want 4", len(snap))
	}
	for i, r := range snap {
		if want := uint64(i + 3); r.Seq != want {
			t.Errorf("record %d seq = %d, want %d (oldest overwritten first)", i, r.Seq, want)
		}
		if r.TS == 0 {
			t.Errorf("record %d has no timestamp", i)
		}
	}
	d := f.Dump()
	if d.Capacity != 4 || d.Total != 6 || d.Dropped != 2 {
		t.Errorf("dump = cap %d total %d dropped %d, want 4/6/2", d.Capacity, d.Total, d.Dropped)
	}
}

func TestFlightSeq(t *testing.T) {
	f := NewFlight(8)
	if a, b := f.NextSeq(), f.NextSeq(); a != 1 || b != 2 {
		t.Errorf("NextSeq = %d, %d, want 1, 2", a, b)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	if f.NextSeq() != 0 {
		t.Error("nil NextSeq != 0")
	}
	f.Record(FlightRecord{Seq: 1, Stage: StageRecv})
	if f.Snapshot() != nil {
		t.Error("nil Snapshot != nil")
	}
	var b bytes.Buffer
	if err := f.WriteJSON(&b); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(b.Bytes(), &snap); err != nil {
		t.Fatalf("nil WriteJSON output: %v", err)
	}
	if len(snap.Records) != 0 {
		t.Errorf("nil recorder dumped %d records", len(snap.Records))
	}
	b.Reset()
	if err := f.WriteChromeTrace(&b); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
}

func TestFlightJSONRoundTrip(t *testing.T) {
	f := NewFlight(16)
	f.Record(FlightRecord{Seq: 1, Session: "app", Shard: 2, Proc: 3, Stage: StageRecv, Detail: "64 events"})
	var b bytes.Buffer
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(b.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 1 {
		t.Fatalf("records = %+v", snap.Records)
	}
	r := snap.Records[0]
	if r.Seq != 1 || r.Session != "app" || r.Shard != 2 || r.Proc != 3 ||
		r.Stage != StageRecv || r.Detail != "64 events" || r.TS == 0 {
		t.Errorf("round-tripped record = %+v", r)
	}
}

// TestFlightChromeTrace checks the exporter's schema: every event has
// ph/ts/pid/tid, instant events are named after their record's stage on
// the thread named after its session, and a held→delivered pair renders
// a holdback duration slice.
func TestFlightChromeTrace(t *testing.T) {
	f := NewFlight(16)
	f.Record(FlightRecord{Seq: 7, Session: "app-1", Shard: 0, Proc: 2, Stage: StageRecv, TS: 1000})
	f.Record(FlightRecord{Seq: 7, Session: "app-1", Shard: 0, Proc: 2, Stage: StageHeld, TS: 2000})
	f.Record(FlightRecord{Seq: 7, Session: "app-1", Shard: 0, Proc: 2, Stage: StageDelivered, TS: 5000})
	f.Record(FlightRecord{Seq: 8, Session: "app-2", Shard: 1, Proc: -1, Stage: StageShed, TS: 6000})

	var b bytes.Buffer
	if err := f.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	evs, threads := decodeChrome(t, b.Bytes())

	var stages []string
	var holdback bool
	for _, ev := range evs {
		ph := ev["ph"].(string)
		if ph == "M" {
			continue
		}
		tid := int(ev["tid"].(float64))
		switch ph {
		case "i":
			stages = append(stages, ev["name"].(string))
			args := ev["args"].(map[string]any)
			if want := args["session"].(string); threads[tid] != want {
				t.Errorf("instant %q on thread %q, want session %q", ev["name"], threads[tid], want)
			}
		case "X":
			if ev["name"] != "holdback" {
				t.Errorf("unexpected slice %q", ev["name"])
				continue
			}
			holdback = true
			if ts, dur := ev["ts"].(float64), ev["dur"].(float64); ts != 2 || dur != 3 {
				t.Errorf("holdback slice ts=%v dur=%v, want 2µs/3µs", ts, dur)
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if want := []string{"recv", "held", "delivered", "shed"}; strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Errorf("instant stages = %v, want %v", stages, want)
	}
	if !holdback {
		t.Error("no holdback duration slice emitted")
	}
}

// decodeChrome parses a trace-event JSON document, requires ph/ts/pid/tid
// on every event, and returns the events plus the tid -> thread-name map.
func decodeChrome(t *testing.T, raw []byte) (evs []map[string]any, threads map[int]string) {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, raw)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	threads = make(map[int]string)
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		if ev["ph"] == "M" {
			if ev["name"] == "thread_name" {
				threads[int(ev["tid"].(float64))] = ev["args"].(map[string]any)["name"].(string)
			}
			continue
		}
		if _, ok := ev["tid"]; !ok {
			t.Fatalf("event %d missing tid: %v", i, ev)
		}
	}
	return doc.TraceEvents, threads
}

// TestReportChromeTrace exports a span tree (one span left open) and
// checks the slices position by start time and flag the open span.
func TestReportChromeTrace(t *testing.T) {
	tr := NewTrace()
	endOuter := tr.Span("detect")
	tr.Span("stuck") // never closed
	time.Sleep(2 * time.Millisecond)
	endOuter()
	var b bytes.Buffer
	if err := tr.Report().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	evs, _ := decodeChrome(t, b.Bytes())
	byName := map[string]map[string]any{}
	for _, ev := range evs {
		if ev["ph"] == "X" {
			byName[ev["name"].(string)] = ev
		}
	}
	outer, ok := byName["detect"]
	if !ok {
		t.Fatalf("no detect slice in %v", evs)
	}
	stuck, ok := byName["stuck"]
	if !ok {
		t.Fatalf("no stuck slice in %v", evs)
	}
	if outer["ts"].(float64) > stuck["ts"].(float64) {
		t.Errorf("outer starts at %v after inner %v", outer["ts"], stuck["ts"])
	}
	if outer["dur"].(float64) <= 0 || stuck["dur"].(float64) <= 0 {
		t.Errorf("durations: outer %v stuck %v", outer["dur"], stuck["dur"])
	}
	if open, _ := stuck["args"].(map[string]any)["open"].(bool); !open {
		t.Errorf("open span not flagged: %v", stuck)
	}
}

func TestShardName(t *testing.T) {
	for shard, want := range map[int]string{-1: "transport", 0: "shard 0", 12: "shard 12"} {
		if got := shardName(shard); got != want {
			t.Errorf("shardName(%d) = %q, want %q", shard, got, want)
		}
	}
}

// TestFlightConcurrent hammers one recorder from many goroutines; run
// under -race this is the lock-discipline regression test.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				f.Record(FlightRecord{Seq: f.NextSeq(), Session: fmt.Sprintf("g%d", g), Stage: StageRecv})
				if i%100 == 0 {
					f.Snapshot()
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if d := f.Dump(); d.Total != 2000 || len(d.Records) != 64 {
		t.Errorf("dump total=%d retained=%d, want 2000/64", d.Total, len(d.Records))
	}
}
