package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is the causal flight recorder: a fixed-capacity ring buffer of
// typed per-frame lifecycle records (receive → holdback → delivery →
// detector update → verdict/shed). Aggregate metrics answer "how many
// frames were late"; the flight recorder answers "which frame, where,
// and why" — the per-event causal accounting an online monitor in the
// style of Chauhan et al. (arXiv:1304.4326) is assumed to produce.
//
// The ring is bounded, so recording is O(1) per record with no
// allocation beyond the record copy, and the newest records always win:
// an overloaded server keeps the recent history that explains the
// overload. Like every obs handle, a nil *Flight is a valid no-op —
// instrumented code records unconditionally and pays (almost) nothing
// when the recorder is off.
type Flight struct {
	epoch time.Time
	cap   int
	seq   atomic.Uint64

	mu    sync.Mutex
	buf   []FlightRecord
	next  int // write index once the ring is full
	total uint64
}

// FlightStage names one station of a frame's lifecycle.
type FlightStage string

// The lifecycle stages, in the order a healthy frame visits them.
const (
	// StageRecv: the frame entered the engine (sequence number assigned).
	StageRecv FlightStage = "recv"
	// StageHeld: events of the frame are buffered, not yet causally
	// deliverable.
	StageHeld FlightStage = "held"
	// StageDelivered: events were causally delivered to the detector.
	StageDelivered FlightStage = "delivered"
	// StageUpdate: the detector flushed over the frame's deliveries.
	StageUpdate FlightStage = "update"
	// StageVerdict: the session's verdict latched (or was finalized).
	StageVerdict FlightStage = "verdict"
	// StageShed: the frame was dropped (mailbox overflow, unknown
	// session).
	StageShed FlightStage = "shed"
	// StageDisconnect: the session closed or its transport connection
	// dropped.
	StageDisconnect FlightStage = "disconnect"
)

// FlightRecord is one lifecycle event of one frame.
type FlightRecord struct {
	// Seq is the frame's engine-assigned sequence number (see NextSeq).
	Seq uint64 `json:"seq"`
	// Session is the owning session id ("" for transport-level records).
	Session string `json:"session,omitempty"`
	// Shard is the owning shard index (-1 for transport-level records).
	Shard int `json:"shard"`
	// Proc is the reporting process (-1 when not process-specific).
	Proc int `json:"proc"`
	// Stage is the lifecycle station.
	Stage FlightStage `json:"stage"`
	// TS is monotonic nanoseconds since the recorder was created; filled
	// by Record when zero.
	TS int64 `json:"ts_ns"`
	// Detail is a short human-readable annotation (counts, latencies,
	// drop reasons).
	Detail string `json:"detail,omitempty"`
}

// NewFlight builds a recorder holding the last capacity records
// (default 4096 when capacity <= 0).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Flight{epoch: time.Now(), cap: capacity, buf: make([]FlightRecord, 0, capacity)}
}

// NextSeq issues the next frame sequence number (1-based; 0 on a nil
// recorder, where no records are kept anyway).
func (f *Flight) NextSeq() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Add(1)
}

// Record appends one record, overwriting the oldest once the ring is
// full. A zero TS is stamped with the recorder's monotonic clock.
func (f *Flight) Record(r FlightRecord) {
	if f == nil {
		return
	}
	if r.TS == 0 {
		r.TS = int64(time.Since(f.epoch))
	}
	f.mu.Lock()
	if len(f.buf) < cap(f.buf) {
		//lint:ignore hotalloc the ring is preallocated to capacity in NewFlight and this branch runs only while len < cap, so the append never reallocates
		f.buf = append(f.buf, r)
	} else {
		f.buf[f.next] = r
		f.next = (f.next + 1) % len(f.buf)
	}
	f.total++
	f.mu.Unlock()
}

// Snapshot copies the retained records out in append order (oldest
// first).
func (f *Flight) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, len(f.buf))
	if len(f.buf) == cap(f.buf) {
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	} else {
		out = append(out, f.buf...)
	}
	return out
}

// FlightSnapshot is the JSON dump shape of a recorder.
type FlightSnapshot struct {
	// Capacity is the ring size in records.
	Capacity int `json:"capacity"`
	// Total counts every record ever appended.
	Total uint64 `json:"total"`
	// Dropped counts records overwritten by ring wrap (Total - retained).
	Dropped uint64 `json:"dropped"`
	// Records are the retained records, oldest first.
	Records []FlightRecord `json:"records"`
}

// Dump copies the whole recorder state.
func (f *Flight) Dump() FlightSnapshot {
	snap := FlightSnapshot{Records: f.Snapshot()}
	if f == nil {
		return snap
	}
	f.mu.Lock()
	snap.Capacity = f.cap
	snap.Total = f.total
	snap.Dropped = f.total - uint64(len(f.buf))
	f.mu.Unlock()
	return snap
}

// WriteJSON writes the recorder dump as indented JSON.
func (f *Flight) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Dump())
}

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). ts and dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func writeChromeJSON(w io.Writer, evs []chromeEvent) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// micros converts a duration to trace-event microseconds.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// clampDur keeps complete ("X") slices visible: Perfetto drops
// zero-width slices, and omitempty would drop the field entirely.
func clampDur(us float64) float64 {
	if us < 0.001 {
		return 0.001
	}
	return us
}

// WriteChromeTrace writes the retained records in the Chrome
// trace-event format: one process track per shard (pid = shard+1, pid 0
// is transport-level), one thread track per session, every record an
// instant event named after its stage, and each frame's holdback
// rendered as a duration slice from its held record to its delivered
// record.
func (f *Flight) WriteChromeTrace(w io.Writer) error {
	return writeFlightChrome(w, f.Snapshot())
}

func writeFlightChrome(w io.Writer, recs []FlightRecord) error {
	pidOf := func(shard int) int { return shard + 1 }
	tids := map[string]int{}
	tidOf := func(session string) int {
		t, ok := tids[session]
		if !ok {
			t = len(tids) + 1
			tids[session] = t
		}
		return t
	}

	type frameKey struct {
		session string
		seq     uint64
	}
	heldAt := map[frameKey]FlightRecord{}

	var body []chromeEvent
	pidNames := map[int]string{}
	tidHomes := map[int]int{} // tid -> the pid its thread_name metadata lives on
	for _, r := range recs {
		pid, tid := pidOf(r.Shard), tidOf(r.Session)
		pidNames[pid] = shardName(r.Shard)
		tidHomes[tid] = pid
		args := map[string]any{"seq": r.Seq, "proc": r.Proc}
		if r.Session != "" {
			args["session"] = r.Session
		}
		if r.Detail != "" {
			args["detail"] = r.Detail
		}
		body = append(body, chromeEvent{
			Name: string(r.Stage), Ph: "i", S: "t",
			TS: micros(time.Duration(r.TS)), PID: pid, TID: tid, Args: args,
		})
		k := frameKey{r.Session, r.Seq}
		switch r.Stage {
		case StageHeld:
			if _, seen := heldAt[k]; !seen {
				heldAt[k] = r
			}
		case StageDelivered:
			if h, seen := heldAt[k]; seen {
				delete(heldAt, k)
				body = append(body, chromeEvent{
					Name: "holdback", Ph: "X",
					TS:  micros(time.Duration(h.TS)),
					Dur: clampDur(micros(time.Duration(r.TS - h.TS))),
					PID: pid, TID: tid,
					Args: map[string]any{"seq": r.Seq, "session": r.Session},
				})
			}
		}
	}

	// Emit the metadata events in sorted order so the exported trace is
	// byte-identical run to run.
	var evs []chromeEvent
	pids := make([]int, 0, len(pidNames))
	for pid := range pidNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": pidNames[pid]},
		})
	}
	sessions := make([]string, 0, len(tids))
	for session := range tids {
		sessions = append(sessions, session)
	}
	sort.Strings(sessions)
	for _, session := range sessions {
		tid := tids[session]
		name := session
		if name == "" {
			name = "transport"
		}
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tidHomes[tid], TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	evs = append(evs, body...)
	return writeChromeJSON(w, evs)
}

// shardName labels a shard's process track.
func shardName(shard int) string {
	if shard < 0 {
		return "transport"
	}
	return "shard " + strconv.Itoa(shard)
}

// WriteChromeTrace renders the report's span tree in the Chrome
// trace-event format: every span a complete ("X") slice positioned by
// its recorded start time, so a gpddetect run and a server flight dump
// open in the same Perfetto UI. Still-open spans keep the duration
// measured at Report time and carry open=true in their args.
func (r Report) WriteChromeTrace(w io.Writer) error {
	var t0 time.Time
	for _, s := range r.Spans {
		if !s.Start.IsZero() && (t0.IsZero() || s.Start.Before(t0)) {
			t0 = s.Start
		}
	}
	evs := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "gpd detection run"},
	}}
	for _, s := range r.Spans {
		args := map[string]any{"depth": s.Depth}
		if s.Open {
			args["open"] = true
		}
		evs = append(evs, chromeEvent{
			Name: s.Name, Ph: "X",
			TS:  micros(s.Start.Sub(t0)),
			Dur: clampDur(micros(s.Duration)),
			PID: 1, TID: 1, Args: args,
		})
	}
	return writeChromeJSON(w, evs)
}
