package obs

import (
	"regexp"
	"strings"
	"testing"
)

// expositionLine matches one sample line of the Prometheus text format
// 0.0.4: metric name, optional label set with correctly escaped values
// (only \\, \" and \n are legal escapes), and an integer value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\[\\"n]|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\[\\"n]|[^"\\\n])*")*\})? -?[0-9]+$`)

// unescapeLabelValue reverses escapeLabelValue.
func unescapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\n`, "\n")
	v = strings.ReplaceAll(v, `\"`, `"`)
	return strings.ReplaceAll(v, `\\`, `\`)
}

// TestWritePrometheusEscaping registers counters whose label values hold
// every character the exposition format escapes (quote, backslash,
// newline) plus a tab, and checks the output is a parseable exposition
// whose values round-trip. Go's %q escaping would emit \t and \u
// sequences the format rejects; this is the regression test for that
// divergence.
func TestWritePrometheusEscaping(t *testing.T) {
	hostile := []string{
		`quote"inside`,
		`back\slash`,
		"new\nline",
		"tab\tliteral",
		`all"three\of
them`,
	}
	r := NewRegistry()
	vec := r.CounterVec("hostile_total", "v")
	for i, v := range hostile {
		vec.With(v).Add(int64(i + 1))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b, "gpd"); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	values := map[string]bool{}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// A raw newline in a label value would split its sample over two
	// lines; re-joining on the escape boundary is exactly what must NOT
	// be needed, so every line must parse on its own.
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("line does not parse as exposition 0.0.4: %q", line)
			continue
		}
		if m := regexp.MustCompile(`v="((\\[\\"n]|[^"\\\n])*)"`).FindStringSubmatch(line); m != nil {
			values[unescapeLabelValue(m[1])] = true
		}
	}
	for _, v := range hostile {
		if !values[v] {
			t.Errorf("label value %q did not round-trip (got %v)\n%s", v, values, out)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		`a"b`:        `a\"b`,
		`a\b`:        `a\\b`,
		"a\nb":       `a\nb`,
		"tab\tstays": "tab\tstays",
		"µ-stays":    "µ-stays",
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}
