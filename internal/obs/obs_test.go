package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("hits") != c {
		t.Error("counter not interned")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	snap := r.Snapshot()
	if snap.Counters["hits"] != 5 || snap.Gauges["depth"] != 7 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []int64{0, 1, 2, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// <=1: {0,1}; <=10: {2,10}; <=100: {11,100}; +Inf: {1000}.
	want := []int64{2, 2, 2, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Buckets[i], w, s)
		}
	}
	if s.Count != 7 || s.Sum != 1124 {
		t.Errorf("count/sum = %d/%d, want 7/1124", s.Count, s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z", 1, 2).Observe(3)
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Errorf("nil registry snapshot has %d counters", n)
	}
	var tr *Trace
	end := tr.Span("phase")
	end()
	tr.Add("work", 1)
	tr.Max("peak", 2)
	tr.Note("k", "v")
	if rep := tr.Report(); len(rep.Spans) != 0 || len(rep.Counters) != 0 {
		t.Errorf("nil trace report = %+v", rep)
	}
}

func TestTraceSpansAndCounters(t *testing.T) {
	tr := NewTrace()
	endOuter := tr.Span("detect")
	endInner := tr.Span("sumrange")
	tr.Add("paths", 3)
	tr.Add("paths", 2)
	tr.Max("width", 4)
	tr.Max("width", 2) // lower: no effect
	tr.Note("strategy", "chain-cover")
	time.Sleep(time.Millisecond)
	endInner()
	endOuter()
	rep := tr.Report()
	if len(rep.Spans) != 2 {
		t.Fatalf("spans = %+v", rep.Spans)
	}
	if rep.Spans[0].Name != "detect" || rep.Spans[0].Depth != 0 {
		t.Errorf("outer span = %+v", rep.Spans[0])
	}
	if rep.Spans[1].Name != "sumrange" || rep.Spans[1].Depth != 1 {
		t.Errorf("inner span = %+v", rep.Spans[1])
	}
	if rep.Spans[0].Duration < rep.Spans[1].Duration || rep.Spans[1].Duration == 0 {
		t.Errorf("durations outer=%v inner=%v", rep.Spans[0].Duration, rep.Spans[1].Duration)
	}
	if rep.Counters["paths"] != 5 || rep.Counters["width"] != 4 {
		t.Errorf("counters = %v", rep.Counters)
	}
	if rep.Notes["strategy"] != "chain-cover" {
		t.Errorf("notes = %v", rep.Notes)
	}
	out := rep.String()
	for _, want := range []string{"detect", "  sumrange", "paths", "5", "strategy", "chain-cover"} {
		if !strings.Contains(out, want) {
			t.Errorf("report %q missing %q", out, want)
		}
	}
}

// TestTraceOpenSpans is the regression test for spans whose closer never
// runs: before Start/Open were recorded, such a span reported a silent
// zero duration indistinguishable from "instantaneous".
func TestTraceOpenSpans(t *testing.T) {
	tr := NewTrace()
	endDone := tr.Span("finished")
	endDone()
	tr.Span("stuck") // closer discarded: the phase hung
	time.Sleep(time.Millisecond)
	rep := tr.Report()
	if len(rep.Spans) != 2 {
		t.Fatalf("spans = %+v", rep.Spans)
	}
	done, stuck := rep.Spans[0], rep.Spans[1]
	if done.Open {
		t.Errorf("closed span marked open: %+v", done)
	}
	if !stuck.Open {
		t.Errorf("un-ended span not marked open: %+v", stuck)
	}
	if stuck.Start.IsZero() || stuck.Duration < time.Millisecond {
		t.Errorf("open span start=%v duration=%v, want start set and duration >= 1ms",
			stuck.Start, stuck.Duration)
	}
	if !strings.Contains(rep.String(), "stuck") || !strings.Contains(rep.String(), "(open)") {
		t.Errorf("report does not flag the open span:\n%s", rep.String())
	}
	// The report is a copy: a second report later must measure a longer
	// duration, not mutate the first.
	time.Sleep(time.Millisecond)
	if rep2 := tr.Report(); rep2.Spans[1].Duration <= stuck.Duration {
		t.Errorf("open-span duration did not advance: %v then %v",
			stuck.Duration, rep2.Spans[1].Duration)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(42)
	shardEvents := r.CounterVec("shard_events_total", "shard")
	shardEvents.With("0").Add(7)
	shardEvents.With("1").Add(9)
	r.Gauge("sessions_open").Set(3)
	h := r.Histogram("holdback_depth", 1, 8)
	h.Observe(0)
	h.Observe(5)
	h.Observe(100)
	var b strings.Builder
	if err := r.WritePrometheus(&b, "gpd"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE gpd_events_total counter",
		"gpd_events_total 42",
		`gpd_shard_events_total{shard="0"} 7`,
		`gpd_shard_events_total{shard="1"} 9`,
		"# TYPE gpd_sessions_open gauge",
		"gpd_sessions_open 3",
		"# TYPE gpd_holdback_depth histogram",
		`gpd_holdback_depth_bucket{le="1"} 1`,
		`gpd_holdback_depth_bucket{le="8"} 2`,
		`gpd_holdback_depth_bucket{le="+Inf"} 3`,
		"gpd_holdback_depth_sum 105",
		"gpd_holdback_depth_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per base name, even with two labeled series.
	if n := strings.Count(out, "# TYPE gpd_shard_events_total counter"); n != 1 {
		t.Errorf("TYPE line written %d times", n)
	}
}
