package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestLedgerScopes(t *testing.T) {
	l := NewLedger()
	a := l.Scope("acme", "conjunctive")
	b := l.Scope("bravo", "sumeq")
	if l.Scope("acme", "conjunctive") != a {
		t.Fatal("Scope did not intern")
	}
	a.AddCPU(300)
	a.AddSteps(30)
	a.AddEvents(10)
	a.AddBytes(100, 50)
	b.AddCPU(100)
	b.AddSteps(5)

	if got := l.TotalCPUNanos(); got != 400 {
		t.Errorf("TotalCPUNanos = %d, want 400", got)
	}
	if got := l.TenantCPUNanos("acme"); got != 300 {
		t.Errorf("TenantCPUNanos(acme) = %d, want 300", got)
	}
	snap := l.Snapshot()
	if snap.TotalCPUNanos != 400 || len(snap.Scopes) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Ranked by CPU descending.
	if snap.Scopes[0].Tenant != "acme" || snap.Scopes[1].Tenant != "bravo" {
		t.Errorf("ranking wrong: %+v", snap.Scopes)
	}
	top := snap.Scopes[0]
	if top.CPUNanos != 300 || top.Steps != 30 || top.Events != 10 ||
		top.BytesIn != 100 || top.BytesOut != 50 {
		t.Errorf("acme scope = %+v", top)
	}
	if top.CPUShare < 0.74 || top.CPUShare > 0.76 {
		t.Errorf("acme CPU share = %v, want 0.75", top.CPUShare)
	}
}

// TestLedgerScopeOverflow checks the scope cap: past it, new pairs
// share the other/other scope and totals are conserved.
func TestLedgerScopeOverflow(t *testing.T) {
	l := NewLedger()
	l.SetScopeLimit(2)
	l.Scope("a", "f").AddCPU(1)
	l.Scope("b", "f").AddCPU(2)
	l.Scope("c", "f").AddCPU(4)
	l.Scope("d", "f").AddCPU(8)
	snap := l.Snapshot()
	var sum int64
	var sawOther bool
	for _, s := range snap.Scopes {
		sum += s.CPUNanos
		if s.Tenant == "other" && s.Family == "other" {
			sawOther = true
			if s.CPUNanos != 12 {
				t.Errorf("overflow scope CPU = %d, want 12", s.CPUNanos)
			}
		}
	}
	if !sawOther {
		t.Error("no overflow scope in snapshot")
	}
	if sum != 15 || snap.TotalCPUNanos != 15 {
		t.Errorf("CPU not conserved: scopes %d, total %d, want 15", sum, snap.TotalCPUNanos)
	}
	if got := l.TenantCPUNanos("c"); got != 0 {
		t.Errorf("overflowed tenant attributed %d CPU to its own name", got)
	}
}

func TestLedgerHotPredicates(t *testing.T) {
	l := NewLedger()
	l.RecordPredicate("p-cold", "a", "conjunctive", 1)
	l.RecordPredicate("p-hot", "a", "conjunctive", 50)
	l.RecordPredicate("p-warm", "b", "sumeq", 10)
	l.RecordPredicate("p-hot", "a", "conjunctive", 50)

	top := l.HotPredicates(2)
	if len(top) != 2 || top[0].ID != "p-hot" || top[0].Steps != 100 || top[1].ID != "p-warm" {
		t.Errorf("HotPredicates(2) = %+v", top)
	}
	if all := l.HotPredicates(10); len(all) != 3 {
		t.Errorf("HotPredicates(10) = %+v", all)
	}
}

// TestLedgerPredicateOverflow checks the hot-table cap aggregates the
// remainder into an "other" row with steps conserved.
func TestLedgerPredicateOverflow(t *testing.T) {
	l := NewLedger()
	l.SetPredicateLimit(2)
	l.RecordPredicate("p1", "a", "f", 1)
	l.RecordPredicate("p2", "a", "f", 2)
	l.RecordPredicate("p3", "a", "f", 4)
	l.RecordPredicate("p4", "a", "f", 8)
	l.RecordPredicate("p1", "a", "f", 16) // interned row still accumulates
	all := l.HotPredicates(10)
	var sum int64
	var other int64
	for _, p := range all {
		sum += p.Steps
		if p.ID == "other" {
			other = p.Steps
		}
	}
	if sum != 31 {
		t.Errorf("steps not conserved: %d, want 31", sum)
	}
	if other != 12 {
		t.Errorf("other row = %d steps, want 12", other)
	}
}

func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	s := l.Scope("a", "f")
	if s != nil {
		t.Fatal("nil ledger returned non-nil scope")
	}
	s.AddCPU(1)
	s.AddSteps(1)
	s.AddEvents(1)
	s.AddBytes(1, 1)
	l.RecordPredicate("p", "a", "f", 1)
	l.SetScopeLimit(1)
	l.SetPredicateLimit(1)
	if l.TotalCPUNanos() != 0 || l.TenantCPUNanos("a") != 0 {
		t.Error("nil ledger reported cost")
	}
	if snap := l.Snapshot(); len(snap.Scopes) != 0 {
		t.Error("nil ledger snapshot has scopes")
	}
	if l.HotPredicates(5) != nil {
		t.Error("nil ledger returned hot predicates")
	}
}

// TestLedgerConcurrent hammers scopes and the predicate table from many
// goroutines (run under -race in CI) and checks conservation.
func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	l.SetScopeLimit(4)
	l.SetPredicateLimit(4)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tenant := fmt.Sprintf("t%d", (w+i)%6)
				l.Scope(tenant, "f").AddCPU(1)
				l.RecordPredicate(fmt.Sprintf("p%d", i%8), tenant, "f", 1)
			}
		}(w)
	}
	wg.Wait()
	var cpu int64
	for _, s := range l.Snapshot().Scopes {
		cpu += s.CPUNanos
	}
	if cpu != workers*per || l.TotalCPUNanos() != workers*per {
		t.Errorf("CPU not conserved: scopes %d, total %d, want %d", cpu, l.TotalCPUNanos(), workers*per)
	}
	var steps int64
	for _, p := range l.HotPredicates(100) {
		steps += p.Steps
	}
	if steps != workers*per {
		t.Errorf("steps not conserved: %d, want %d", steps, workers*per)
	}
}
