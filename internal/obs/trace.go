package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace accumulates the work report of one detection run: nested wall-time
// spans (one per phase) and named work counters (cuts explored, candidate
// eliminations, augmenting paths, ...). A nil *Trace is a valid no-op, so
// detectors thread it unconditionally and pay nothing when tracing is off.
//
// Traces are mutex-guarded: a run is normally single-goroutine, but the
// stream engine reads a session's trace from other goroutines.
type Trace struct {
	mu       sync.Mutex
	spans    []SpanReport
	open     []int // indices into spans of not-yet-ended spans (a stack)
	counters map[string]int64
	notes    map[string]string
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Span opens a named wall-time span and returns its closer. Spans nest:
// depth is the number of enclosing spans still open at start time. A
// span whose closer is never called is not lost: Report marks it Open
// and measures its duration up to the report.
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	t.mu.Lock()
	idx := len(t.spans)
	start := time.Now()
	t.spans = append(t.spans, SpanReport{Name: name, Depth: len(t.open), Start: start})
	t.open = append(t.open, idx)
	t.mu.Unlock()
	return func() {
		d := time.Since(start)
		t.mu.Lock()
		t.spans[idx].Duration = d
		for i := len(t.open) - 1; i >= 0; i-- {
			if t.open[i] == idx {
				t.open = append(t.open[:i], t.open[i+1:]...)
				break
			}
		}
		t.mu.Unlock()
	}
}

// Add accumulates n into the named work counter.
func (t *Trace) Add(name string, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64)
	}
	t.counters[name] += n
	t.mu.Unlock()
}

// Max raises the named work counter to n if it is below it (for high-water
// quantities such as frontier width).
func (t *Trace) Max(name string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64)
	}
	if n > t.counters[name] {
		t.counters[name] = n
	}
	t.mu.Unlock()
}

// Note records a named string fact about the run (e.g. the strategy that
// produced the answer). Later notes overwrite earlier ones.
func (t *Trace) Note(name, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.notes == nil {
		t.notes = make(map[string]string)
	}
	t.notes[name] = value
	t.mu.Unlock()
}

// Counter returns the current value of a work counter.
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// SpanReport is one span of a run. A span whose closer had not run when
// the report was taken is marked Open, with Duration measured from Start
// to the report (it used to read as a silent zero). Start also positions
// the span on a timeline, which is what the Chrome-trace export needs.
type SpanReport struct {
	Name     string        `json:"name"`
	Depth    int           `json:"depth"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Open     bool          `json:"open,omitempty"`
}

// Report is the copied-out work report of a run.
type Report struct {
	// Spans lists the run's phases in start order.
	Spans []SpanReport `json:"spans,omitempty"`
	// Counters holds the run's accumulated work counters.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Notes holds string facts (strategy chosen, ...).
	Notes map[string]string `json:"notes,omitempty"`
}

// Report copies the trace out.
func (t *Trace) Report() Report {
	if t == nil {
		return Report{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := Report{Spans: append([]SpanReport(nil), t.spans...)}
	for _, idx := range t.open {
		r.Spans[idx].Open = true
		r.Spans[idx].Duration = time.Since(r.Spans[idx].Start)
	}
	if len(t.counters) > 0 {
		r.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			r.Counters[k] = v
		}
	}
	if len(t.notes) > 0 {
		r.Notes = make(map[string]string, len(t.notes))
		for k, v := range t.notes {
			r.Notes[k] = v
		}
	}
	return r
}

// String renders the report for terminal output: spans indented by nesting
// depth, then notes, then counters in name order.
func (r Report) String() string {
	var b strings.Builder
	for _, s := range r.Spans {
		mark := ""
		if s.Open {
			mark = " (open)"
		}
		fmt.Fprintf(&b, "%s%-*s %12v%s\n",
			strings.Repeat("  ", s.Depth), 36-2*s.Depth, s.Name, s.Duration.Round(time.Microsecond), mark)
	}
	notes := make([]string, 0, len(r.Notes))
	for k := range r.Notes {
		notes = append(notes, k)
	}
	sort.Strings(notes)
	for _, k := range notes {
		fmt.Fprintf(&b, "%-36s %12s\n", k, r.Notes[k])
	}
	names := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-36s %12d\n", k, r.Counters[k])
	}
	return b.String()
}
