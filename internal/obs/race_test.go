package obs

import (
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one registry and one trace from many
// goroutines — the pattern of parallel stream sessions publishing into the
// shared engine registry. Run under -race in CI.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace()
	const workers = 16
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("events_total")
			g := r.Gauge("depth")
			h := r.Histogram("lat", ExpBuckets(1, 10)...)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 100))
				end := tr.Span("work")
				tr.Add("ops", 1)
				tr.Max("peak", int64(i))
				end()
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = tr.Report()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("events_total").Value(); got != workers*iters {
		t.Errorf("events_total = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat").Snapshot().Count; got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := tr.Counter("ops"); got != workers*iters {
		t.Errorf("trace ops = %d, want %d", got, workers*iters)
	}
}
