package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

// TestBindRuntimeMetrics checks the self-telemetry bridge samples at
// scrape time: after a forced GC, heap and goroutine gauges are live
// and the Prometheus exposition carries the runtime_* family.
func TestBindRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	BindRuntimeMetrics(r)
	runtime.GC()

	snap := r.Snapshot()
	if v := snap.Gauges["runtime_goroutines"]; v < 1 {
		t.Errorf("runtime_goroutines = %d, want >= 1", v)
	}
	if v := snap.Gauges["runtime_heap_live_bytes"]; v <= 0 {
		t.Errorf("runtime_heap_live_bytes = %d, want > 0", v)
	}
	if v := snap.Gauges["runtime_gc_cycles"]; v < 1 {
		t.Errorf("runtime_gc_cycles = %d, want >= 1 after runtime.GC", v)
	}
	for _, name := range []string{
		"runtime_gc_pause_p50_nanos", "runtime_gc_pause_p99_nanos", "runtime_gc_pause_max_nanos",
		"runtime_sched_latency_p50_nanos", "runtime_sched_latency_p99_nanos",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing from snapshot", name)
		}
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b, "gpd"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE gpd_runtime_goroutines gauge", "gpd_runtime_heap_live_bytes"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// A second snapshot re-samples: spawning goroutines must be visible.
	done := make(chan struct{})
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() { <-stop; done <- struct{}{} }()
	}
	after := r.Snapshot().Gauges["runtime_goroutines"]
	close(stop)
	for i := 0; i < 8; i++ {
		<-done
	}
	if after < snap.Gauges["runtime_goroutines"]+8 {
		t.Errorf("goroutine gauge did not re-sample: %d then %d", snap.Gauges["runtime_goroutines"], after)
	}
}

// TestBindRuntimeMetricsNil checks nil-safety of the bridge.
func TestBindRuntimeMetricsNil(t *testing.T) {
	var r *Registry
	BindRuntimeMetrics(r) // must not panic
	r.AddSampler(func() {})
}

// TestHistQuantiles exercises the quantile extraction on a hand-built
// histogram shaped like runtime/metrics output (+Inf tail).
func TestHistQuantiles(t *testing.T) {
	// Buckets: (-Inf..1), [1..2), [2..4), [4..+Inf)
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 50, 49, 1},
		Buckets: []float64{math.Inf(-1), 1, 2, 4, math.Inf(1)},
	}
	p50, p99, max := histQuantiles(h)
	if p50 != 2 {
		t.Errorf("p50 = %v, want 2 (upper bound of the median bucket)", p50)
	}
	if p99 != 4 {
		t.Errorf("p99 = %v, want 4", p99)
	}
	if max != 4 { // +Inf tail falls back to finite lower bound
		t.Errorf("max = %v, want 4", max)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, math.Inf(1)}}
	if a, b, c := histQuantiles(empty); a != 0 || b != 0 || c != 0 {
		t.Errorf("empty histogram quantiles = %v %v %v, want zeros", a, b, c)
	}
}
