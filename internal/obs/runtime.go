package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// runtimeScalars maps runtime/metrics scalar samples to registry gauge
// names. Cumulative runtime values (GC cycles, total allocations) stay
// gauges: the registry's counter type is for values this process owns
// and increments, not for mirroring an external monotone source.
var runtimeScalars = []struct {
	sample string
	gauge  string
}{
	{"/memory/classes/heap/objects:bytes", "runtime_heap_live_bytes"},
	{"/gc/heap/objects:objects", "runtime_heap_objects"},
	{"/gc/heap/allocs:bytes", "runtime_alloc_bytes_total"},
	{"/sched/goroutines:goroutines", "runtime_goroutines"},
	{"/gc/cycles/total:gc-cycles", "runtime_gc_cycles"},
}

// runtimeHists maps runtime/metrics duration histograms (seconds) to
// p50/p99/max gauge names in nanoseconds.
var runtimeHists = []struct {
	sample         string
	p50, p99, maxG string
}{
	{"/gc/pauses:seconds", "runtime_gc_pause_p50_nanos", "runtime_gc_pause_p99_nanos", "runtime_gc_pause_max_nanos"},
	{"/sched/latencies:seconds", "runtime_sched_latency_p50_nanos", "runtime_sched_latency_p99_nanos", "runtime_sched_latency_max_nanos"},
}

// BindRuntimeMetrics registers a scrape-time sampler that mirrors
// process self-telemetry — heap size and object count, goroutine count,
// GC cycles and pause percentiles, scheduler latency percentiles — into
// the registry as runtime_* gauges. Sampling happens at snapshot time
// (one metrics.Read per scrape), so an idle process pays nothing and a
// scraped one pays microseconds. Nil-safe.
func BindRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	s := &runtimeSampler{r: r}
	for _, m := range runtimeScalars {
		s.samples = append(s.samples, metrics.Sample{Name: m.sample})
	}
	for _, m := range runtimeHists {
		s.samples = append(s.samples, metrics.Sample{Name: m.sample})
	}
	r.AddSampler(s.sample)
}

type runtimeSampler struct {
	r       *Registry
	mu      sync.Mutex // metrics.Read reuses the sample slice
	samples []metrics.Sample
}

func (s *runtimeSampler) sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	for i, m := range runtimeScalars {
		v := s.samples[i].Value
		if v.Kind() == metrics.KindUint64 {
			s.r.Gauge(m.gauge).Set(int64(v.Uint64()))
		}
	}
	for i, m := range runtimeHists {
		v := s.samples[len(runtimeScalars)+i].Value
		if v.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		p50, p99, max := histQuantiles(v.Float64Histogram())
		s.r.Gauge(m.p50).Set(int64(p50 * 1e9))
		s.r.Gauge(m.p99).Set(int64(p99 * 1e9))
		s.r.Gauge(m.maxG).Set(int64(max * 1e9))
	}
}

// histQuantiles extracts the 50th and 99th percentile and the maximum
// populated bucket bound from a runtime Float64Histogram. Buckets span
// [Buckets[i], Buckets[i+1]); a quantile reports its bucket's upper
// bound (the lower bound for the +Inf tail), a conservative estimate
// that is monotone in the true quantile.
func histQuantiles(h *metrics.Float64Histogram) (p50, p99, max float64) {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0, 0
	}
	bound := func(i int) float64 {
		hi := h.Buckets[i+1]
		if math.IsInf(hi, 1) { // +Inf tail: fall back to the finite lower bound
			return h.Buckets[i]
		}
		return hi
	}
	q := func(frac float64) float64 {
		target := uint64(frac * float64(total))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			if cum >= target {
				return bound(i)
			}
		}
		return bound(len(h.Counts) - 1)
	}
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			max = bound(i)
			break
		}
	}
	return q(0.50), q(0.99), max
}
