package subsetsum

import (
	"math/rand"
	"testing"
)

func TestBasics(t *testing.T) {
	cases := []struct {
		sizes  []int64
		target int64
		want   bool
	}{
		{[]int64{3, 5, 7}, 12, true},
		{[]int64{3, 5, 7}, 15, true},
		{[]int64{3, 5, 7}, 4, false},
		{[]int64{3, 5, 7}, 0, true}, // empty subset
		{[]int64{3, 5, 7}, -1, false},
		{[]int64{}, 0, true},
		{[]int64{}, 1, false},
		{[]int64{5}, 5, true},
		{[]int64{2, 2, 2}, 6, true},
	}
	for i, tc := range cases {
		ok, subset := Solve(Instance{Sizes: tc.sizes, Target: tc.target})
		if ok != tc.want {
			t.Errorf("case %d: Solve = %v, want %v", i, ok, tc.want)
			continue
		}
		if ok && Sum(tc.sizes, subset) != tc.target {
			t.Errorf("case %d: subset %v sums to %d, want %d",
				i, subset, Sum(tc.sizes, subset), tc.target)
		}
	}
}

func bruteSolve(sizes []int64, target int64) bool {
	n := len(sizes)
	for mask := 0; mask < 1<<n; mask++ {
		var s int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s += sizes[i]
			}
		}
		if s == target {
			return true
		}
	}
	return false
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(10)
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(1 + rng.Intn(15))
		}
		target := int64(rng.Intn(60))
		want := bruteSolve(sizes, target)
		ok, subset := Solve(Instance{Sizes: sizes, Target: target})
		if ok != want {
			t.Fatalf("trial %d: Solve = %v, brute = %v (sizes=%v target=%d)",
				trial, ok, want, sizes, target)
		}
		if ok {
			seen := make(map[int]bool)
			for _, i := range subset {
				if i < 0 || i >= n {
					t.Fatalf("trial %d: index %d out of range", trial, i)
				}
				if seen[i] {
					t.Fatalf("trial %d: index %d used twice", trial, i)
				}
				seen[i] = true
			}
			if Sum(sizes, subset) != target {
				t.Fatalf("trial %d: subset sums to %d, want %d",
					trial, Sum(sizes, subset), target)
			}
		}
	}
}
