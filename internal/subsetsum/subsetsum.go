// Package subsetsum represents subset-sum instances ([Garey & Johnson,
// problem SP13]) and solves them exactly by dynamic programming. The paper
// reduces subset sum to detecting Possibly(x1+...+xn = k) with arbitrary
// per-event increments (Theorem 3); this package is the independent oracle
// used to validate that reduction.
package subsetsum

// Instance is a subset-sum instance: does some subset of Sizes sum to
// Target? Sizes must be positive, as in the classical formulation.
type Instance struct {
	Sizes  []int64
	Target int64
}

// Solve reports whether a subset of the sizes sums exactly to the target,
// and returns the indices of one such subset when it exists. Running time
// is O(n * target) via dense DP; callers keep targets laptop-sized.
func Solve(in Instance) (bool, []int) {
	if in.Target < 0 {
		return false, nil
	}
	if in.Target == 0 {
		return true, []int{}
	}
	// reach[s] = index+1 of the last element used to first reach sum s,
	// or 0 if unreached.
	reach := make([]int, in.Target+1)
	reach[0] = -1 // sentinel: reached with no elements
	for i, sz := range in.Sizes {
		if sz <= 0 || sz > in.Target {
			continue
		}
		// Iterate sums downward so every read of reach[s-sz] sees only
		// results of earlier elements; each element is used at most
		// once and reconstruction chains have strictly decreasing
		// indices.
		for s := in.Target; s >= sz; s-- {
			if reach[s] == 0 && reach[s-sz] != 0 {
				reach[s] = i + 1
			}
		}
	}
	if reach[in.Target] == 0 {
		return false, nil
	}
	// Reconstruct by walking back through first-reachers.
	var subset []int
	s := in.Target
	for s > 0 {
		i := reach[s] - 1
		subset = append(subset, i)
		s -= in.Sizes[i]
	}
	// Reverse for ascending order.
	for l, r := 0, len(subset)-1; l < r; l, r = l+1, r-1 {
		subset[l], subset[r] = subset[r], subset[l]
	}
	return true, subset
}

// Sum returns the total of the sizes at the given indices.
func Sum(sizes []int64, indices []int) int64 {
	var s int64
	for _, i := range indices {
		s += sizes[i]
	}
	return s
}
