// Package slicing implements computation slicing for regular predicates —
// the natural continuation of the paper's program, developed by the same
// authors (Mittal & Garg, "Computation slicing: techniques and theory").
//
// A global predicate is REGULAR iff its satisfying consistent cuts are
// closed under both lattice meet and join; conjunctive predicates are the
// canonical example. For a regular predicate B, the satisfying cuts form a
// sublattice, and by Birkhoff's representation theorem that sublattice is
// exactly the family of ideals of a derived graph on the events — the
// SLICE. The slice is computed from the join-irreducible elements
// J_B(e) — the least satisfying cut containing event e — which exist for
// regular predicates because the satisfying cuts containing e are
// meet-closed.
//
// Slices compress the search space: instead of enumerating the full cut
// lattice, any further analysis (counting, nested detection, reachability)
// can enumerate only the ideals of the slice, which contains precisely the
// cuts satisfying B.
package slicing

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

// ErrNotRegular is returned when the predicate is detectably not regular
// (the construction reached a contradiction). The construction cannot
// always detect irregularity; Verify provides a sound (exponential) check.
// Errors carrying detail wrap this sentinel as a *NotRegularError, so
// errors.Is(err, ErrNotRegular) keeps working.
var ErrNotRegular = errors.New("slicing: predicate is not regular")

// NotRegularError is the detailed form of ErrNotRegular: it names the
// witnessing cut (and what went wrong with it) so a rejected spec can be
// debugged instead of guessed at. It unwraps to ErrNotRegular.
type NotRegularError struct {
	// Detail says how regularity failed, e.g. "slice contains
	// non-satisfying cut" or "not a sliceable family".
	Detail string
	// Cut is the witnessing cut, when the failure names one.
	Cut computation.Cut
}

// Error renders the sentinel's message followed by the witness.
func (e *NotRegularError) Error() string {
	msg := ErrNotRegular.Error()
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Cut != nil {
		msg += fmt.Sprintf(" (witness cut %v)", e.Cut)
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrNotRegular) hold.
func (e *NotRegularError) Unwrap() error { return ErrNotRegular }

// ErrEmpty indicates that no consistent cut satisfies the predicate, so
// the slice is empty.
var ErrEmpty = errors.New("slicing: no consistent cut satisfies the predicate")

// Oracle evaluates the (regular) predicate at consistent cuts and, when
// the predicate does not hold, names a forbidden process — one that must
// advance in any satisfying cut above the current one. Regular predicates
// are in particular linear, so such a process always exists.
type Oracle interface {
	Holds(c *computation.Computation, k computation.Cut) bool
	Forbidden(c *computation.Computation, k computation.Cut) computation.ProcID
}

// Slice is the computed slice: for every event, the least satisfying cut
// containing it (its join-irreducible), or excluded if no satisfying cut
// contains the event.
type Slice struct {
	c *computation.Computation
	// least is J_B(e) per event id; nil when the event is excluded.
	least []computation.Cut
	// bottom is the least satisfying cut overall.
	bottom computation.Cut
	// top is the greatest satisfying cut (the final cut joined down is
	// not needed; we track it for Ideals' bound).
	top computation.Cut
}

// Compute builds the slice of the computation with respect to the
// oracle's predicate. It returns ErrEmpty if no satisfying cut exists.
func Compute(c *computation.Computation, o Oracle) (*Slice, error) {
	s := &Slice{c: c, least: make([]computation.Cut, c.NumEvents())}
	// The least satisfying cut overall: advance from the initial cut.
	bottom, ok := advance(c, o, c.InitialCut())
	if !ok {
		return nil, ErrEmpty
	}
	s.bottom = bottom
	// Greatest satisfying cut: for a regular predicate the final cut's
	// "down-closure" under B is found by scanning from the top of the
	// lattice; we approximate it as the join of all J_B(e), which for
	// join-closed families is itself satisfying and maximal among
	// joins. Events beyond it are excluded.
	top := bottom.Clone()
	c.Events(func(e computation.Event) bool {
		k := s.leastContaining(o, e)
		if k != nil {
			for p := range top {
				if k[p] > top[p] {
					top[p] = k[p]
				}
			}
		}
		return true
	})
	s.top = top
	return s, nil
}

// leastContaining memoizes J_B(e).
func (s *Slice) leastContaining(o Oracle, e computation.Event) computation.Cut {
	if s.least[e.ID] != nil {
		return s.least[e.ID]
	}
	start := s.c.CutThrough(e.ID)
	// Join with the global bottom: every satisfying cut contains it.
	for p := range start {
		if s.bottom[p] > start[p] {
			start[p] = s.bottom[p]
		}
	}
	// The cut must keep containing e; advancement never removes events,
	// so plain forward advancement suffices.
	k, ok := advance(s.c, o, start)
	if !ok {
		return nil
	}
	s.least[e.ID] = k
	return k
}

// advance walks upward from start to the least satisfying cut above it,
// using the forbidden-process oracle (the linear-predicate algorithm with
// an arbitrary starting cut).
func advance(c *computation.Computation, o Oracle, start computation.Cut) (computation.Cut, bool) {
	k := start.Clone()
	for !o.Holds(c, k) {
		p := o.Forbidden(c, k)
		if p < 0 || int(p) >= c.NumProcs() {
			return nil, false
		}
		next := k[int(p)] + 1
		if next >= c.Len(p) {
			return nil, false
		}
		e := c.EventAt(p, next)
		row := c.Clock(e.ID)
		for q := range k {
			if idx := int(row[q]) - 1; idx > k[q] {
				k[q] = idx
			}
		}
		if e.Index > k[int(p)] {
			k[int(p)] = e.Index
		}
	}
	return k, true
}

// Bottom returns the least satisfying cut.
func (s *Slice) Bottom() computation.Cut { return s.bottom.Clone() }

// Top returns the greatest cut representable by the slice (the join of
// all join-irreducibles).
func (s *Slice) Top() computation.Cut { return s.top.Clone() }

// Excluded reports whether no satisfying cut contains the event.
func (s *Slice) Excluded(o Oracle, e computation.Event) bool {
	return s.leastContaining(o, e) == nil
}

// Contains reports whether a cut belongs to the slice: it must be the
// join of the join-irreducibles of its events (and lie above Bottom).
// For a regular predicate this is equivalent to satisfying the predicate.
func (s *Slice) Contains(o Oracle, k computation.Cut) bool {
	if !s.bottom.Leq(k) {
		return false
	}
	join := s.bottom.Clone()
	for p := 0; p < s.c.NumProcs(); p++ {
		for i := 1; i <= k[p]; i++ {
			j := s.leastContaining(o, s.c.EventAt(computation.ProcID(p), i))
			if j == nil {
				return false // an excluded event inside the cut
			}
			for q := range join {
				if j[q] > join[q] {
					join[q] = j[q]
				}
			}
		}
	}
	return join.Equal(k)
}

// Ideals enumerates every cut of the slice (every satisfying cut of a
// regular predicate) exactly once, via BFS over the restricted lattice:
// from the slice's bottom, an event may execute only if the resulting cut
// absorbs the event's join-irreducible. Stops early if visit returns
// false.
func (s *Slice) Ideals(o Oracle, visit func(computation.Cut) bool) {
	seen := map[string]bool{s.bottom.Key(): true}
	level := []computation.Cut{s.bottom.Clone()}
	for len(level) > 0 {
		var next []computation.Cut
		for _, k := range level {
			if !visit(k) {
				return
			}
			for p := 0; p < s.c.NumProcs(); p++ {
				if k[p]+1 >= s.c.Len(computation.ProcID(p)) {
					continue
				}
				e := s.c.EventAt(computation.ProcID(p), k[p]+1)
				j := s.leastContaining(o, e)
				if j == nil {
					continue
				}
				// The successor cut in the sublattice is k joined
				// with J_B(e).
				nk := k.Clone()
				for q := range nk {
					if j[q] > nk[q] {
						nk[q] = j[q]
					}
				}
				key := nk.Key()
				if !seen[key] {
					seen[key] = true
					next = append(next, nk)
				}
			}
		}
		level = next
	}
}

// Count returns the number of cuts in the slice.
func (s *Slice) Count(o Oracle) *big.Int {
	n := big.NewInt(0)
	one := big.NewInt(1)
	s.Ideals(o, func(computation.Cut) bool {
		n.Add(n, one)
		return true
	})
	return n
}

// Verify exhaustively checks (exponential; for tests and small
// computations) that the slice's cuts are exactly the satisfying cuts.
func (s *Slice) Verify(o Oracle) error {
	want := make(map[string]bool)
	lattice.Explore(s.c, func(k computation.Cut) bool {
		if o.Holds(s.c, k) {
			want[k.Key()] = true
		}
		return true
	})
	got := make(map[string]bool)
	var bad computation.Cut
	s.Ideals(o, func(k computation.Cut) bool {
		got[k.Key()] = true
		if !want[k.Key()] {
			bad = k.Clone()
			return false
		}
		return true
	})
	if bad != nil {
		return &NotRegularError{Detail: "slice contains non-satisfying cut", Cut: bad}
	}
	// Check (and so report) missing cuts in sorted key order: which cut
	// the error names must not depend on map iteration order.
	keys := make([]string, 0, len(want))
	for key := range want {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if !got[key] {
			return &NotRegularError{Detail: fmt.Sprintf("satisfying cut %s missing from slice", key)}
		}
	}
	return nil
}

// ConjunctiveOracle adapts local predicates (the canonical regular
// predicate) for slicing.
func ConjunctiveOracle(locals map[computation.ProcID]func(computation.Event) bool) Oracle {
	procs := make([]computation.ProcID, 0, len(locals))
	for p := range locals {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	return conjOracle{locals: locals, procs: procs}
}

// conjOracle scans processes in sorted order: Forbidden names the first
// failing process, and that choice steers the slice construction, so the
// scan must not follow map iteration order.
type conjOracle struct {
	locals map[computation.ProcID]func(computation.Event) bool
	procs  []computation.ProcID
}

func (o conjOracle) Holds(c *computation.Computation, k computation.Cut) bool {
	for _, p := range o.procs {
		if !o.locals[p](c.EventAt(p, k[int(p)])) {
			return false
		}
	}
	return true
}

func (o conjOracle) Forbidden(c *computation.Computation, k computation.Cut) computation.ProcID {
	for _, p := range o.procs {
		if !o.locals[p](c.EventAt(p, k[int(p)])) {
			return p
		}
	}
	return computation.ProcID(-1)
}

// QuiescentOracle adapts channel quiescence — the inflight == 0
// predicate — for slicing. Quiescence is regular: a message in flight
// at the meet (or join) of two cuts is in flight at one of them,
// because its send lies inside both (one) and its receive outside one
// (both). It is linear via the forbidden process: a message in flight
// at k forces the receive into every satisfying cut above k, so the
// receiver must advance.
func QuiescentOracle(c *computation.Computation) Oracle {
	msgs := c.Messages()
	// Which in-flight message Forbidden names steers the construction,
	// so scan in a canonical order.
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Send < msgs[j].Send })
	return quiescentOracle{msgs: msgs}
}

type quiescentOracle struct{ msgs []computation.Message }

// inFlight returns the first in-flight message at k in send order.
func (o quiescentOracle) inFlight(c *computation.Computation, k computation.Cut) (computation.Message, bool) {
	for _, m := range o.msgs {
		s := c.Event(m.Send)
		if s.Index > k[int(s.Proc)] {
			continue
		}
		if r := c.Event(m.Receive); r.Index > k[int(r.Proc)] {
			return m, true
		}
	}
	return computation.Message{}, false
}

func (o quiescentOracle) Holds(c *computation.Computation, k computation.Cut) bool {
	_, inflight := o.inFlight(c, k)
	return !inflight
}

func (o quiescentOracle) Forbidden(c *computation.Computation, k computation.Cut) computation.ProcID {
	m, inflight := o.inFlight(c, k)
	if !inflight {
		return computation.ProcID(-1)
	}
	return c.Event(m.Receive).Proc
}
