package slicing

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/gen"
)

// streamSlice replays a sealed computation into an IncrementalSlicer
// event by event — the online vector-clock convention drops initial
// events from the sealed clocks — compacting every compactEvery events,
// and returns the slicer plus every emitted irreducible keyed by
// (process, local index).
func streamSlice(t *testing.T, c *computation.Computation, locals map[computation.ProcID]func(computation.Event) bool, compactEvery int) (*IncrementalSlicer, map[[2]int][]int) {
	t.Helper()
	truthOf := func(e computation.Event) bool {
		if fn, ok := locals[e.Proc]; ok {
			return fn(e)
		}
		return true
	}
	initial := make([]bool, c.NumProcs())
	for p := range initial {
		initial[p] = truthOf(c.Initial(computation.ProcID(p)))
	}
	inc := NewIncrementalSlicer(c.NumProcs(), initial)
	irr := make(map[[2]int][]int)
	inc.OnIrreducible = func(p, idx int, least []int) { irr[[2]int{p, idx}] = least }
	n := 0
	for _, id := range c.Topo() {
		e := c.Event(id)
		if e.IsInitial() {
			continue
		}
		clk := c.Clock(id)
		vc := make([]int64, len(clk))
		for q, v := range clk {
			if v >= 1 {
				vc[q] = int64(v) - 1
			}
		}
		if err := inc.Observe(int(e.Proc), vc, truthOf(e)); err != nil {
			t.Fatalf("Observe(%v): %v", e, err)
		}
		n++
		if compactEvery > 0 && n%compactEvery == 0 {
			inc.Compact()
		}
	}
	inc.Seal()
	inc.Compact()
	return inc, irr
}

// TestIncrementalMatchesOffline streams random computations event by
// event — with aggressive mid-stream compaction — and checks the
// incremental slicer reconstructs the identical slice the offline
// constructor computes on the sealed computation: same bottom, same
// join-irreducible per event, same exclusions, same top.
func TestIncrementalMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	nonEmpty := 0
	for trial := 0; trial < 150; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.5})
		truth := gen.BoolTables(rng.Int63(), c, 0.6)
		locals := localsFromTables(truth)
		inc, irr := streamSlice(t, c, locals, 3)

		o := ConjunctiveOracle(locals)
		s, err := Compute(c, o)
		if errors.Is(err, ErrEmpty) {
			if inc.Possibly() {
				t.Fatalf("trial %d: offline slice empty but incremental latched Possibly with bottom %v", trial, inc.Bottom())
			}
			if inc.Irreducibles() != 0 {
				t.Fatalf("trial %d: empty slice but %d irreducibles completed", trial, inc.Irreducibles())
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nonEmpty++
		if !inc.Possibly() {
			t.Fatalf("trial %d: offline bottom %v but incremental never latched", trial, s.Bottom())
		}
		if !cutsEqual(inc.Bottom(), s.Bottom()) {
			t.Fatalf("trial %d: incremental bottom %v, offline %v", trial, inc.Bottom(), s.Bottom())
		}
		var excludedWant int64
		c.Events(func(e computation.Event) bool {
			if e.IsInitial() {
				return true
			}
			j := s.leastContaining(o, e)
			got, ok := irr[[2]int{int(e.Proc), e.Index}]
			if j == nil {
				excludedWant++
				if ok {
					t.Fatalf("trial %d: event %v is excluded offline but incremental found J = %v", trial, e, got)
				}
				if e.Index < inc.ExcludedFrom(int(e.Proc)) {
					t.Fatalf("trial %d: event %v excluded offline but not by the sealed slicer (ExcludedFrom = %d)", trial, e, inc.ExcludedFrom(int(e.Proc)))
				}
				return true
			}
			if !ok {
				t.Fatalf("trial %d: no incremental irreducible for event %v (offline J = %v)", trial, e, j)
			}
			if !cutsEqual(got, j) {
				t.Fatalf("trial %d: J(%v) incremental %v, offline %v", trial, e, got, j)
			}
			return true
		})
		if inc.Excluded() != excludedWant {
			t.Fatalf("trial %d: Excluded() = %d, offline excludes %d", trial, inc.Excluded(), excludedWant)
		}
		if !cutsEqual(inc.Top(), s.Top()) {
			t.Fatalf("trial %d: incremental top %v, offline %v", trial, inc.Top(), s.Top())
		}
	}
	if nonEmpty < 30 {
		t.Fatalf("only %d/150 non-empty slices; generator too sparse to be meaningful", nonEmpty)
	}
}

func cutsEqual(got []int, want computation.Cut) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestIncrementalCompactionBoundsMemory drives a long communicating
// stream with a frequently true predicate through the slicer, compacting
// as it goes, and checks the retained window stays far below the event
// count — the property the stream engine's sliced sessions rely on.
func TestIncrementalCompactionBoundsMemory(t *testing.T) {
	const (
		procs  = 4
		rounds = 5000
	)
	inc := NewIncrementalSlicer(procs, nil)
	vcs := make([][]int64, procs)
	for p := range vcs {
		vcs[p] = make([]int64, procs)
	}
	peak := 0
	events := 0
	for i := 0; i < rounds; i++ {
		p := i % procs
		// Receive from the previous process first (a ring), then tick.
		q := (p + procs - 1) % procs
		for r := 0; r < procs; r++ {
			if vcs[q][r] > vcs[p][r] {
				vcs[p][r] = vcs[q][r]
			}
		}
		vcs[p][p]++
		vc := append([]int64(nil), vcs[p]...)
		// The local predicate flips, true four fifths of the time — the
		// tight ring makes consistent cuts near-prefixes, so satisfying
		// windows need runs of consecutive true events.
		if err := inc.Observe(p, vc, i%5 != 0); err != nil {
			t.Fatal(err)
		}
		events++
		if i%8 == 0 {
			inc.Compact()
			if r := inc.Retained(); r > peak {
				peak = r
			}
		}
	}
	inc.Compact()
	if !inc.Possibly() {
		t.Fatal("ring stream never satisfied the predicate")
	}
	if want := events / 10; peak > want {
		t.Fatalf("peak retained window %d events over a %d-event stream; compaction is not bounding memory", peak, events)
	}
	if inc.Compacted() == 0 {
		t.Fatal("Compact never freed an event")
	}
	spans := inc.Frontier()
	total := 0
	for p, sp := range spans {
		if n := sp.End - sp.Start + 1; n >= 0 {
			total += n
		} else {
			t.Fatalf("process %d frontier %+v malformed", p, sp)
		}
	}
	if total != inc.Retained() {
		t.Fatalf("frontier covers %d events, Retained() = %d", total, inc.Retained())
	}
}

// TestIncrementalObserveErrors pins the delivery-order validation.
func TestIncrementalObserveErrors(t *testing.T) {
	inc := NewIncrementalSlicer(2, nil)
	if err := inc.Observe(0, []int64{2, 0}, true); err == nil {
		t.Fatal("skipping the first event of a process must error")
	}
	if err := inc.Observe(0, []int64{1, 1}, true); err == nil {
		t.Fatal("delivering an event before its causal past must error")
	}
	if err := inc.Observe(0, []int64{1, 0}, true); err != nil {
		t.Fatal(err)
	}
	if err := inc.Observe(2, []int64{0, 0}, true); err == nil {
		t.Fatal("out-of-range process must error")
	}
	if err := inc.Observe(1, []int64{0}, true); err == nil {
		t.Fatal("short clock must error")
	}
	inc.Seal()
	if err := inc.Observe(1, []int64{0, 1}, true); err == nil {
		t.Fatal("Observe after Seal must error")
	}
}

// TestQuiescentSliceExact verifies exhaustively that the slice of the
// inflight == 0 predicate contains exactly the quiescent cuts.
func TestQuiescentSliceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	built := 0
	for trial := 0; trial < 60; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.6})
		o := QuiescentOracle(c)
		s, err := Compute(c, o)
		if errors.Is(err, ErrEmpty) {
			t.Fatalf("trial %d: the initial cut is always quiescent, slice cannot be empty", trial)
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		built++
		if err := s.Verify(o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if built == 0 {
		t.Fatal("no slices built")
	}
}

// disjOracle is a deliberately non-regular predicate (a disjunction is
// not meet-closed) used to pin the NotRegularError detail.
type disjOracle struct{}

func (disjOracle) Holds(c *computation.Computation, k computation.Cut) bool {
	return k[0] >= 1 || k[1] >= 1
}

func (disjOracle) Forbidden(c *computation.Computation, k computation.Cut) computation.ProcID {
	return 0
}

// TestNotRegularErrorNamesWitness checks Verify rejects a non-regular
// predicate with an error that still matches the ErrNotRegular sentinel
// and names the witnessing cut instead of being a bare sentinel.
func TestNotRegularErrorNamesWitness(t *testing.T) {
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	c.AddInternal(p0)
	c.AddInternal(p1)
	c.MustSeal()
	s, err := Compute(c, disjOracle{})
	if err != nil {
		t.Fatal(err)
	}
	verr := s.Verify(disjOracle{})
	if verr == nil {
		t.Fatal("Verify accepted a non-regular predicate")
	}
	if !errors.Is(verr, ErrNotRegular) {
		t.Fatalf("Verify error %v does not match ErrNotRegular", verr)
	}
	var nre *NotRegularError
	if !errors.As(verr, &nre) {
		t.Fatalf("Verify error %T is not a *NotRegularError", verr)
	}
	if nre.Detail == "" {
		t.Fatalf("NotRegularError carries no detail: %v", verr)
	}
}
