package slicing

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/lattice"
)

func localsFromTables(truth [][]bool) map[computation.ProcID]func(computation.Event) bool {
	locals := make(map[computation.ProcID]func(computation.Event) bool)
	for p, row := range truth {
		row := row
		locals[computation.ProcID(p)] = func(e computation.Event) bool {
			return e.Index < len(row) && row[e.Index]
		}
	}
	return locals
}

// TestSliceExactOnConjunctive verifies, exhaustively, that the slice of a
// conjunctive predicate contains exactly its satisfying cuts.
func TestSliceExactOnConjunctive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	built, empty := 0, 0
	for trial := 0; trial < 120; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.5})
		truth := gen.BoolTables(rng.Int63(), c, 0.6)
		o := ConjunctiveOracle(localsFromTables(truth))
		s, err := Compute(c, o)
		if errors.Is(err, ErrEmpty) {
			// Confirm against the oracle.
			if ok, _ := lattice.Possibly(c, o.Holds); ok {
				t.Fatalf("trial %d: slice empty but oracle found a cut", trial)
			}
			empty++
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		built++
		if err := s.Verify(o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if built < 30 {
		t.Fatalf("only %d/120 slices were non-empty; generator too sparse", built)
	}
	if empty == 0 {
		t.Log("note: no empty slices observed (fine, but lower truth density would exercise that path)")
	}
}

func TestSliceBottomIsLeastSatisfying(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.4})
		truth := gen.BoolTables(rng.Int63(), c, 0.7)
		o := ConjunctiveOracle(localsFromTables(truth))
		s, err := Compute(c, o)
		if errors.Is(err, ErrEmpty) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		bottom := s.Bottom()
		if !o.Holds(c, bottom) {
			t.Fatalf("trial %d: bottom %v does not satisfy", trial, bottom)
		}
		lattice.Explore(c, func(k computation.Cut) bool {
			if o.Holds(c, k) && !bottom.Leq(k) {
				t.Fatalf("trial %d: satisfying cut %v below claimed bottom %v", trial, k, bottom)
			}
			return true
		})
	}
}

func TestSliceCountMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.4})
		truth := gen.BoolTables(rng.Int63(), c, 0.7)
		o := ConjunctiveOracle(localsFromTables(truth))
		s, err := Compute(c, o)
		if errors.Is(err, ErrEmpty) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		lattice.Explore(c, func(k computation.Cut) bool {
			if o.Holds(c, k) {
				want++
			}
			return true
		})
		if got := s.Count(o); got.Int64() != want {
			t.Fatalf("trial %d: slice count %v, oracle %d", trial, got, want)
		}
	}
}

func TestSliceContains(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		c := gen.Random(gen.Params{Seed: rng.Int63(), Procs: 3, Events: 4, MsgFrac: 0.4})
		truth := gen.BoolTables(rng.Int63(), c, 0.7)
		o := ConjunctiveOracle(localsFromTables(truth))
		s, err := Compute(c, o)
		if errors.Is(err, ErrEmpty) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		lattice.Explore(c, func(k computation.Cut) bool {
			if got := s.Contains(o, k); got != o.Holds(c, k) {
				t.Fatalf("trial %d: Contains(%v) = %v, Holds = %v", trial, k, got, o.Holds(c, k))
			}
			return true
		})
	}
}

func TestEmptySlice(t *testing.T) {
	c := gen.Random(gen.Params{Seed: 1, Procs: 2, Events: 3, MsgFrac: 0})
	o := ConjunctiveOracle(map[computation.ProcID]func(computation.Event) bool{
		0: func(computation.Event) bool { return false },
	})
	if _, err := Compute(c, o); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestTrivialSliceIsWholeLattice(t *testing.T) {
	c := gen.Random(gen.Params{Seed: 2, Procs: 3, Events: 3, MsgFrac: 0.4})
	o := ConjunctiveOracle(nil) // constant true: every cut satisfies
	s, err := Compute(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Count(o).Int64(), lattice.Count(c); got != want {
		t.Fatalf("trivial slice count %d, lattice %d", got, want)
	}
}

func TestExcludedEvents(t *testing.T) {
	// p0's predicate only holds at its initial state; p0's later events
	// are excluded from every satisfying cut.
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	a := c.AddInternal(p0)
	c.AddInternal(p1)
	c.MustSeal()
	o := ConjunctiveOracle(map[computation.ProcID]func(computation.Event) bool{
		p0: func(e computation.Event) bool { return e.IsInitial() },
	})
	s, err := Compute(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(o, c.Event(a)) {
		t.Error("a must be excluded")
	}
	if s.Excluded(o, c.Initial(p0)) {
		t.Error("the initial event is in every satisfying cut")
	}
	if err := s.Verify(o); err != nil {
		t.Fatal(err)
	}
}

func TestSliceTop(t *testing.T) {
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	c.AddInternal(p0)
	c.AddInternal(p1)
	c.MustSeal()
	// Constant-true predicate: the slice spans the whole lattice, so the
	// top is the final cut.
	o := ConjunctiveOracle(nil)
	s, err := Compute(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Top().Equal(c.FinalCut()) {
		t.Fatalf("Top = %v, want final cut %v", s.Top(), c.FinalCut())
	}
	if !s.Bottom().Equal(c.InitialCut()) {
		t.Fatalf("Bottom = %v, want initial cut", s.Bottom())
	}
}
