package slicing

import (
	"fmt"
	"math"
)

// IncrementalSlicer maintains the slice of a conjunctive predicate —
// the canonical regular predicate — under event arrival in causal
// order, without ever holding the whole computation.
//
// The offline constructor (Compute) walks a sealed computation; the
// incremental slicer receives the same information one event at a time:
// the event's process, its online vector clock (component q = events of
// process q in the causal past, inclusive; initial states are not
// events) and the local predicate's truth after the event. From that it
// maintains exactly the state the slice is made of:
//
//   - the slice bottom (the least satisfying cut), found by running the
//     linear-predicate advancement online from the initial cut — once
//     found it is final, because satisfying cuts of a prefix are
//     satisfying cuts of every extension and the global least lies
//     inside the first prefix that satisfies the predicate;
//   - one join-irreducible J_B(e) per event — the least satisfying cut
//     containing e — computed by the same advancement started at
//     CutThrough(e). J_B is monotone along each process, so at most one
//     advancement per process is ever active: the one for the oldest
//     event whose J_B is still unknown. Later events of the process
//     queue behind it and inherit the completed cut as a floor.
//
// New events therefore either extend an active least cut (their arrival
// un-stalls an advancement), create a new irreducible (their own
// advancement completes), or — once the stream is sealed — turn out to
// be excluded from the slice because their advancement ran off the end
// of some process.
//
// Everything below the cuts still being advanced can never be read
// again: advancement only moves up, and events not yet observed start
// at their own causal past joined with the bottom. Compact exploits
// that to drop the dominated prefix of each process log, which is what
// bounds a streaming session's memory to O(slice frontier) instead of
// O(history).
//
// An IncrementalSlicer is confined to one goroutine.
type IncrementalSlicer struct {
	procs   int
	initial []bool

	logs []procLog

	// bottomK is the bottom advancement's cut. Invariant: every
	// satisfying cut of every extension of the observed prefix is ≥
	// bottomK, so it is a sound floor for new irreducible advancements
	// even before it completes.
	bottomK  []int
	possibly bool

	// top is the running join of the bottom and every completed
	// irreducible — the greatest cut the slice represents so far.
	top []int

	irreducibles int64
	compacted    int64
	excluded     int64
	sealed       bool

	// OnIrreducible, when set before the first Observe, is called once
	// per completed join-irreducible with the event's process, its
	// 1-based index on that process, and J_B(e). The cut is owned by
	// the callee.
	OnIrreducible func(proc, index int, least []int)
}

// procLog is one process's retained event suffix plus its irreducible
// advancement state.
type procLog struct {
	base  int       // events 1..base have been compacted away
	truth []bool    // truth[i] belongs to the event with index base+1+i
	vcs   [][]int64 // vector clocks, same indexing
	last  []int64   // clock of the last observed event; nil if none

	jnext int   // 1-based index of the oldest event with unknown J_B
	jcut  []int // active advancement cut for event jnext; nil if idle
	prevJ []int // last completed J_B on this process
	// exclFrom is set by Seal: the smallest index on this process whose
	// J_B does not exist (total+1 when every event has one).
	exclFrom int
}

func (l *procLog) total() int { return l.base + len(l.truth) }

// Span is one process's retained suffix: the events with 1-based
// indices in [Start, End] are still held; Start > End means the whole
// log has been compacted away.
type Span struct {
	Start, End int
}

// NewIncrementalSlicer builds a slicer for a computation of procs
// processes. initial gives the per-process truth of the local predicate
// in the initial state (nil means all false, the streaming convention);
// processes that carry no local predicate should be marked true so they
// never constrain a cut.
func NewIncrementalSlicer(procs int, initial []bool) *IncrementalSlicer {
	if procs <= 0 {
		panic(fmt.Sprintf("slicing: NewIncrementalSlicer needs at least one process, got %d", procs))
	}
	init := make([]bool, procs)
	copy(init, initial)
	s := &IncrementalSlicer{
		procs:   procs,
		initial: init,
		logs:    make([]procLog, procs),
		bottomK: make([]int, procs),
		top:     make([]int, procs),
	}
	for p := range s.logs {
		s.logs[p].jnext = 1
	}
	return s
}

// Observe ingests one causally delivered event: the next event of
// process proc, with online vector clock vc and local predicate truth
// after the event. The slicer retains vc without copying; the caller
// must not modify it afterwards. Observe errors when the event is out
// of order (its own component must be exactly one past the process's
// log) or causally premature (a remote component exceeds that process's
// observed log).
func (s *IncrementalSlicer) Observe(proc int, vc []int64, truth bool) error {
	if s.sealed {
		return fmt.Errorf("slicing: Observe after Seal")
	}
	if proc < 0 || proc >= s.procs {
		return fmt.Errorf("slicing: event process %d out of range [0,%d)", proc, s.procs)
	}
	if len(vc) != s.procs {
		return fmt.Errorf("slicing: event clock has %d components, want %d", len(vc), s.procs)
	}
	l := &s.logs[proc]
	if got, want := vc[proc], int64(l.total()+1); got != want {
		return fmt.Errorf("slicing: out-of-order event on process %d: own clock component %d, want %d", proc, got, want)
	}
	for r := 0; r < s.procs; r++ {
		if r != proc && vc[r] > int64(s.logs[r].total()) {
			return fmt.Errorf("slicing: event on process %d delivered before its causal past: component %d is %d, process %d has %d events", proc, r, vc[r], r, s.logs[r].total())
		}
	}
	l.truth = append(l.truth, truth)
	l.vcs = append(l.vcs, vc)
	l.last = vc
	if l.jnext == l.total() && l.jcut == nil {
		l.jcut = s.startCut(vc, l.prevJ)
	}
	s.pump()
	return nil
}

// startCut is the floor a new irreducible advancement starts from: the
// event's own causal past, joined with the previous irreducible of the
// process (J_B is monotone along a process) and the bottom floor.
func (s *IncrementalSlicer) startCut(vc []int64, prevJ []int) []int {
	k := make([]int, s.procs)
	for r := range k {
		k[r] = int(vc[r])
		if prevJ != nil && prevJ[r] > k[r] {
			k[r] = prevJ[r]
		}
		if s.bottomK[r] > k[r] {
			k[r] = s.bottomK[r]
		}
	}
	return k
}

// pump drives every active advancement as far as the observed prefix
// allows: the bottom first (its floor feeds new starts), then each
// process's head irreducible, popping the queue while heads complete.
func (s *IncrementalSlicer) pump() {
	if !s.possibly {
		if s.tryAdvance(s.bottomK) {
			s.possibly = true
			s.joinTop(s.bottomK)
		}
	}
	for p := range s.logs {
		l := &s.logs[p]
		for l.jcut != nil && s.tryAdvance(l.jcut) {
			s.completeJ(p)
		}
	}
}

// completeJ records the head irreducible of process p and starts the
// next queued event's advancement, if any.
func (s *IncrementalSlicer) completeJ(p int) {
	l := &s.logs[p]
	j := l.jcut
	l.jcut = nil
	s.irreducibles++
	s.joinTop(j)
	if s.OnIrreducible != nil {
		out := make([]int, len(j))
		copy(out, j)
		s.OnIrreducible(p, l.jnext, out)
	}
	l.prevJ = j
	l.jnext++
	if l.jnext <= l.total() {
		l.jcut = s.startCut(l.vcs[l.jnext-1-l.base], j)
	}
}

// tryAdvance runs the linear-predicate advancement on k over the
// observed prefix: while some process's local predicate fails at k,
// execute the next event of a failing process that has one. It returns
// true when k satisfies the predicate (k is then the least satisfying
// cut above the starting cut) and false when every failing process is
// stalled waiting for an event that has not arrived. For a conjunctive
// predicate every failing process must advance, so executing them in
// arrival-availability order reaches the same least cut the offline
// first-failing walk does.
func (s *IncrementalSlicer) tryAdvance(k []int) bool {
	for {
		holds, moved := true, false
		for p := 0; p < s.procs; p++ {
			if s.truthAt(p, k[p]) {
				continue
			}
			holds = false
			l := &s.logs[p]
			next := k[p] + 1
			if next > l.total() {
				continue
			}
			vc := l.vcs[next-1-l.base]
			for r := range k {
				if v := int(vc[r]); v > k[r] {
					k[r] = v
				}
			}
			moved = true
			break
		}
		if holds {
			return true
		}
		if !moved {
			return false
		}
	}
}

func (s *IncrementalSlicer) truthAt(p, idx int) bool {
	if idx == 0 {
		return s.initial[p]
	}
	return s.logs[p].truth[idx-1-s.logs[p].base]
}

func (s *IncrementalSlicer) joinTop(k []int) {
	for r := range s.top {
		if k[r] > s.top[r] {
			s.top[r] = k[r]
		}
	}
}

// Seal marks the stream complete. Advancements still stalled can never
// complete — every failing process has run out of events — so their
// events are excluded from the slice, exactly the events the offline
// constructor reports via Excluded. After Seal, Possibly reporting
// false means the slice is empty (no consistent cut ever satisfied the
// predicate).
func (s *IncrementalSlicer) Seal() {
	if s.sealed {
		return
	}
	s.pump()
	s.sealed = true
	for p := range s.logs {
		l := &s.logs[p]
		l.exclFrom = l.total() + 1
		if l.jcut != nil || l.jnext <= l.total() {
			// The head is stalled with every event present, so no
			// satisfying cut contains event jnext — nor any later event
			// of the process, whose cuts all contain jnext.
			l.exclFrom = l.jnext
			s.excluded += int64(l.total() - l.jnext + 1)
			l.jcut = nil
			l.jnext = l.total() + 1
		}
	}
}

// Compact drops every retained event that no advancement — active or
// future — can ever read again, and returns how many events it freed.
// The per-component low-water mark is the minimum over the bottom
// advancement's cut (while incomplete), every active irreducible cut,
// and the floor of events not yet observed: their advancements start at
// their own causal past joined with the bottom, and a process's future
// clocks dominate its last observed clock.
func (s *IncrementalSlicer) Compact() int64 {
	keep := make([]int, s.procs)
	for r := range keep {
		m := math.MaxInt
		if !s.sealed {
			f := math.MaxInt
			for p := range s.logs {
				v := 0
				if s.logs[p].last != nil {
					v = int(s.logs[p].last[r])
				}
				if v < f {
					f = v
				}
			}
			if s.bottomK[r] > f {
				f = s.bottomK[r]
			}
			if f < m {
				m = f
			}
			if !s.possibly && s.bottomK[r] < m {
				m = s.bottomK[r]
			}
		}
		for p := range s.logs {
			if s.logs[p].jcut != nil && s.logs[p].jcut[r] < m {
				m = s.logs[p].jcut[r]
			}
		}
		keep[r] = m
	}
	for p := range s.logs {
		// A non-empty irreducible queue still needs its own rows: the
		// head's truth may be read at its own index, and each completion
		// starts the next advancement from the next event's clock — even
		// when the active cut has already climbed past them.
		if l := &s.logs[p]; l.jnext <= l.total() && l.jnext < keep[p] {
			keep[p] = l.jnext
		}
	}
	var dropped int64
	for p := range s.logs {
		l := &s.logs[p]
		hi := keep[p] - 1 // highest index no longer readable
		if hi > l.total() {
			hi = l.total()
		}
		if hi <= l.base {
			continue
		}
		n := hi - l.base
		rest := len(l.vcs) - n
		copy(l.truth, l.truth[n:])
		l.truth = l.truth[:rest]
		copy(l.vcs, l.vcs[n:])
		for i := rest; i < rest+n; i++ {
			l.vcs[i] = nil // release the dropped clocks
		}
		l.vcs = l.vcs[:rest]
		l.base += n
		dropped += int64(n)
	}
	s.compacted += dropped
	return dropped
}

// Frontier reports the retained suffix of every process — the minimal
// window the slicer still needs, which is what a streaming session
// keeps instead of unbounded history.
func (s *IncrementalSlicer) Frontier() []Span {
	out := make([]Span, s.procs)
	for p := range s.logs {
		out[p] = Span{Start: s.logs[p].base + 1, End: s.logs[p].total()}
	}
	return out
}

// Retained returns the number of events currently held across all
// processes.
func (s *IncrementalSlicer) Retained() int {
	n := 0
	for p := range s.logs {
		n += len(s.logs[p].truth)
	}
	return n
}

// Compacted returns the cumulative number of events freed by Compact.
func (s *IncrementalSlicer) Compacted() int64 { return s.compacted }

// Irreducibles returns the number of completed join-irreducibles.
func (s *IncrementalSlicer) Irreducibles() int64 { return s.irreducibles }

// Excluded returns the number of events excluded from the slice. It is
// meaningful after Seal; before that, exclusion cannot be concluded.
func (s *IncrementalSlicer) Excluded() int64 { return s.excluded }

// ExcludedFrom returns, after Seal, the smallest 1-based index on
// process p whose event is excluded from the slice (total+1 when every
// event of the process has a join-irreducible).
func (s *IncrementalSlicer) ExcludedFrom(p int) int { return s.logs[p].exclFrom }

// Pending returns the number of advancements that have not completed:
// queued irreducibles plus the bottom while unfound.
func (s *IncrementalSlicer) Pending() int {
	n := 0
	if !s.possibly {
		n++
	}
	for p := range s.logs {
		l := &s.logs[p]
		if l.jnext <= l.total() {
			n += l.total() - l.jnext + 1
		}
	}
	return n
}

// Possibly reports whether some consistent cut of the observed prefix
// satisfies the predicate — equivalently, whether the slice bottom has
// been found. Once true it stays true, and Bottom is final.
func (s *IncrementalSlicer) Possibly() bool { return s.possibly }

// Bottom returns the slice bottom — the least satisfying cut — valid
// once Possibly reports true. Before that it returns the advancement's
// current floor.
func (s *IncrementalSlicer) Bottom() []int {
	out := make([]int, s.procs)
	copy(out, s.bottomK)
	return out
}

// Top returns the running join of the bottom and every completed
// irreducible — after Seal, the greatest cut of the slice.
func (s *IncrementalSlicer) Top() []int {
	out := make([]int, s.procs)
	copy(out, s.top)
	return out
}

// Procs returns the number of processes the slicer was built for.
func (s *IncrementalSlicer) Procs() int { return s.procs }
