// Package experiments is the reproduction harness: one driver per figure
// or formal claim of Mittal & Garg (ICDCS 2001), each regenerating a table
// recorded in EXPERIMENTS.md. The paper is a theory paper with no
// measurement section, so the harness validates the figures (F1–F3) and
// the complexity/correctness claims (E1–E7) empirically: agreement with
// independent oracles, polynomial-versus-exponential scaling shapes, and
// the exponential reduction of algorithm B over algorithm A.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one reproduced artifact.
type Table struct {
	// ID is the experiment identifier (F1..F3, E1..E7).
	ID string
	// Title describes the artifact.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold the cells, one row per line.
	Rows [][]string
	// Notes are free-form remarks appended below the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = fmtDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// timed measures fn once and returns its duration.
func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Runner names and runs one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func() *Table
}

// All lists every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"F1", "results landscape (Figure 1)", Fig1Matrix},
		{"F2", "example computation (Figure 2)", Fig2Table},
		{"F3", "NP-hardness transformation (Figure 3)", Fig3Table},
		{"E1", "Theorem 1: singular 2-CNF <-> non-monotone 3-SAT", E1Soundness},
		{"E2", "Section 3.2: receive-/send-ordered polynomial scaling", E2Scaling},
		{"E3", "Section 3.3: algorithm A vs algorithm B", E3AvsB},
		{"E4", "Theorems 4-7: Possibly(sum = k) polynomial vs lattice", E4SumEq},
		{"E5", "Theorem 3: subset-sum reduction", E5SubsetSum},
		{"E6", "Section 4.3: symmetric predicates", E6Symmetric},
		{"E7", "Garg-Waldecker conjunctive baseline", E7Conjunctive},
		{"X1", "extension: computation slicing", X1Slicing},
		{"X2", "extension: channel-occupancy predicates", X2Channels},
		{"X3", "extension: Definitely(conjunction) intervals", X3Definitely},
	}
}

// Get returns the runner with the given ID, or nil.
func Get(id string) *Runner {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			r := r
			return &r
		}
	}
	return nil
}
