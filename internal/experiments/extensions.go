package experiments

import (
	"errors"
	"fmt"

	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/conjunctive"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/slicing"
)

// X1Slicing measures the extension module: computation slices for regular
// (conjunctive) predicates compress the search space from the full cut
// lattice to exactly the satisfying cuts, and are built in polynomial
// time. Each row compares the lattice size with the slice size and the
// respective construction/enumeration times.
func X1Slicing() *Table {
	t := &Table{
		ID:      "X1",
		Title:   "Extension: computation slicing for conjunctive predicates",
		Columns: []string{"procs", "events/proc", "lattice cuts", "slice cuts", "compression", "slice build+enum"},
	}
	for _, cfg := range []struct{ procs, events int }{
		{2, 10}, {3, 8}, {4, 6}, {5, 5},
	} {
		c := gen.Random(gen.Params{Seed: int64(1000 + cfg.procs), Procs: cfg.procs, Events: cfg.events, MsgFrac: 0.4})
		tabs := gen.BoolTables(int64(1100+cfg.procs), c, 0.7)
		locals := make(map[computation.ProcID]func(computation.Event) bool)
		for p, row := range tabs {
			row := row
			locals[computation.ProcID(p)] = func(e computation.Event) bool {
				return e.Index < len(row) && row[e.Index]
			}
		}
		o := slicing.ConjunctiveOracle(locals)
		full := lattice.Count(c)
		var sliceCuts int64
		d := timed(func() {
			s, err := slicing.Compute(c, o)
			if errors.Is(err, slicing.ErrEmpty) {
				sliceCuts = 0
				return
			}
			if err != nil {
				sliceCuts = -1
				return
			}
			sliceCuts = s.Count(o).Int64()
		})
		comp := "-"
		if sliceCuts > 0 {
			comp = fmt.Sprintf("%.1fx", float64(full)/float64(sliceCuts))
		}
		t.AddRow(cfg.procs, cfg.events, full, sliceCuts, comp, d)
	}
	t.Notes = append(t.Notes,
		"the slice holds exactly the predicate's satisfying cuts; later analyses enumerate it instead of the lattice")
	return t
}

// X2Channels measures channel predicates — relational predicates over
// message occupancy, decided by the same max-weight-closure engine
// (extension of the Section 4 machinery to ideal sums). Each row reports
// the exact in-flight bounds of a protocol trace and the time to compute
// them.
func X2Channels() *Table {
	t := &Table{
		ID:      "X2",
		Title:   "Extension: channel-occupancy predicates via the closure engine",
		Columns: []string{"workload", "procs", "events", "msgs", "in-flight range", "time"},
	}
	type workload struct {
		name string
		run  func() (*computation.Computation, error)
	}
	for _, w := range []workload{
		{"token ring (2 tokens)", func() (*computation.Computation, error) {
			return simRun(31, simulatorTokenRing(8, 2, 1, 4))
		}},
		{"two-phase commit", func() (*computation.Computation, error) {
			return simRun(32, simulatorTwoPhase(8))
		}},
		{"leader election", func() (*computation.Computation, error) {
			return simRun(33, simulatorElection(8))
		}},
		{"gossip (dense)", func() (*computation.Computation, error) {
			return simRun(34, simulatorGossip(16, 40))
		}},
	} {
		c, err := w.run()
		if err != nil {
			t.AddRow(w.name, "-", "-", "-", "-", "ERROR: "+err.Error())
			continue
		}
		var min, max int64
		d := timed(func() { min, max = relsum.InFlightRange(c) })
		t.AddRow(w.name, c.NumProcs(), c.NumEvents(), len(c.Messages()),
			fmt.Sprintf("[%d,%d]", min, max), d)
	}
	t.Notes = append(t.Notes,
		"max is the buffer capacity the system actually needs; min = 0 is reachable quiescence")
	return t
}

// X3Definitely measures the Definitely-conjunctive interval algorithm
// (Garg & Waldecker's strong-predicate technique) against the generic
// level-sweep of the lattice: the interval algorithm stays polynomial
// while the sweep explodes with the process count, and they agree
// wherever both run.
func X3Definitely() *Table {
	t := &Table{
		ID:      "X3",
		Title:   "Extension: Definitely(conjunction) — interval algorithm vs lattice sweep",
		Columns: []string{"procs", "events/proc", "intervals", "interval alg", "lattice sweep", "agree"},
	}
	for _, cfg := range []struct {
		procs, events int
		baseline      bool
	}{
		{3, 8, true}, {4, 8, true}, {6, 6, true},
		{16, 100, false}, {64, 400, false},
	} {
		c := gen.Random(gen.Params{Seed: int64(1200 + cfg.procs), Procs: cfg.procs, Events: cfg.events, MsgFrac: 0.4})
		gen.BoolVar(int64(1300+cfg.procs), c, "b", 0.4)
		locals := make(map[computation.ProcID]conjunctive.LocalPredicate, cfg.procs)
		for p := 0; p < cfg.procs; p++ {
			locals[computation.ProcID(p)] = func(e computation.Event) bool {
				return c.Var("b", e.ID) != 0
			}
		}
		nIntervals := 0
		for p := 0; p < cfg.procs; p++ {
			prev := false
			for _, id := range c.ProcEvents(computation.ProcID(p)) {
				v := c.Var("b", id) != 0
				if v && !prev {
					nIntervals++
				}
				prev = v
			}
		}
		var fast bool
		dFast := timed(func() { fast = conjunctive.DetectDefinitely(c, locals) })
		if cfg.baseline {
			var slow bool
			dSlow := timed(func() {
				slow = lattice.Definitely(c, func(cc *computation.Computation, k computation.Cut) bool {
					for p := 0; p < cc.NumProcs(); p++ {
						if cc.Var("b", cc.EventAt(computation.ProcID(p), k[p]).ID) == 0 {
							return false
						}
					}
					return true
				})
			})
			t.AddRow(cfg.procs, cfg.events, nIntervals, dFast, dSlow, fmt.Sprint(fast == slow))
		} else {
			t.AddRow(cfg.procs, cfg.events, nIntervals, dFast, "-", "-")
		}
	}
	t.Notes = append(t.Notes,
		"the interval selection needs one lo->end causality check per pair; the sweep enumerates level sets of the lattice")
	return t
}
