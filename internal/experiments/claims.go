package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/distributed-predicates/gpd/internal/cnf"
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/conjunctive"
	"github.com/distributed-predicates/gpd/internal/core/reduction"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/core/symmetric"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/sat"
	"github.com/distributed-predicates/gpd/internal/subsetsum"
)

// RandomFormula generates a random 3-CNF formula with a clause/variable
// ratio of 2.0 — low enough that a healthy fraction of instances are
// satisfiable while the unsatisfiable ones stay small enough for the
// (necessarily exponential) exhaustive detection to finish.
func RandomFormula(rng *rand.Rand, nv int) *cnf.Formula {
	f := &cnf.Formula{NumVars: nv}
	nc := nv * 2
	for i := 0; i < nc; i++ {
		cl := make(cnf.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			l := cnf.Lit(1 + rng.Intn(nv))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl = append(cl, l)
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// E1Soundness validates Theorem 1 empirically: for random 3-CNF formulas,
// DPLL satisfiability agrees with singular 2-CNF detection on the
// constructed computation, and witnesses convert to satisfying
// assignments. Detection times grow with formula size (the instances are
// NP-complete; chain covers keep small ones fast).
func E1Soundness() *Table {
	t := &Table{
		ID:    "E1",
		Title: "Theorem 1: detection on the reduction agrees with DPLL (satisfiability vs detection)",
		Columns: []string{"vars", "clauses", "procs", "agree", "sat found",
			"avg detect", "avg DPLL"},
	}
	rng := rand.New(rand.NewSource(211))
	// Trials shrink with size: detection on unsatisfiable instances must
	// exhaust an exponential selection space (that is Theorem 1 at
	// work), so larger sizes are sampled sparsely to keep the harness
	// interactive.
	for _, cfg := range []struct{ nv, trials int }{
		{3, 10}, {4, 10}, {5, 10}, {6, 10},
	} {
		nv, trials := cfg.nv, cfg.trials
		agree, found := 0, 0
		var detTotal, satTotal time.Duration
		var procs, clauses int
		for i := 0; i < trials; i++ {
			f0 := RandomFormula(rng, nv)
			f, err := cnf.ToNonMonotone(f0)
			if err != nil {
				continue
			}
			in, err := reduction.SingularFromCNF(f)
			if err != nil {
				continue
			}
			procs, clauses = in.C.NumProcs(), len(f.Clauses)
			var want bool
			satTotal += timed(func() { want = sat.Satisfiable(f) })
			var res singular.Result
			detTotal += timed(func() {
				res, _ = singular.Detect(in.C, in.Pred, in.Truth(), singular.ChainCover)
			})
			if res.Found == want {
				agree++
			}
			if res.Found {
				found++
				if a, err := in.Assignment(res.Witness); err != nil || !f.Eval(a) {
					agree-- // witness extraction failed: count as disagreement
				}
			}
		}
		t.AddRow(nv, clauses, procs, fmt.Sprintf("%d/%d", agree, trials), found,
			detTotal/time.Duration(trials), satTotal/time.Duration(trials))
	}
	t.Notes = append(t.Notes, "agreement must be N/N on every row; detection time grows steeply with instance size (NP-complete class)")
	t.Notes = append(t.Notes, "unsatisfiable instances force the detector to exhaust its c^g selections: at 7 variables single instances already take minutes")
	return t
}

// E2Scaling measures the polynomial special-case detectors on
// receive-ordered and send-ordered computations of increasing size. The
// time per row should grow polynomially (roughly with the square of the
// event count, dominated by the extended-order construction).
func E2Scaling() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Receive-/send-ordered singular detection: polynomial scaling",
		Columns: []string{"groups", "procs", "events/proc", "recv-ordered", "send-ordered", "found"},
	}
	const k = 2
	for _, cfg := range []struct{ g, events int }{
		{2, 16}, {4, 16}, {8, 16}, {4, 32}, {4, 64}, {8, 64},
	} {
		procs := cfg.g * k
		pr := groupedPredicate(cfg.g, k)
		cr := gen.GroupFunnel(gen.Params{Seed: int64(100 + cfg.g + cfg.events), Procs: procs, Events: cfg.events, MsgFrac: 0.5}, k, true)
		truthR := singular.TruthFromTables(gen.BoolTables(int64(7+cfg.g), cr, 0.15))
		var resR singular.Result
		var errR error
		dR := timed(func() { resR, errR = singular.Detect(cr, pr, truthR, singular.ReceiveOrdered) })
		cs := gen.GroupFunnel(gen.Params{Seed: int64(200 + cfg.g + cfg.events), Procs: procs, Events: cfg.events, MsgFrac: 0.5}, k, false)
		truthS := singular.TruthFromTables(gen.BoolTables(int64(9+cfg.g), cs, 0.15))
		var errS error
		dS := timed(func() { _, errS = singular.Detect(cs, pr, truthS, singular.SendOrdered) })
		status := fmt.Sprint(resR.Found)
		if errR != nil || errS != nil {
			status = fmt.Sprintf("ERROR: %v %v", errR, errS)
		}
		t.AddRow(cfg.g, procs, cfg.events, dR, dS, status)
	}
	return t
}

// ChainyGroups builds a computation whose groups are internally chained by
// message ladders, so each group's true events form very few chains — the
// regime where algorithm B beats algorithm A exponentially.
func ChainyGroups(seed int64, g, k, events int) *computation.Computation {
	rng := rand.New(rand.NewSource(seed))
	c := computation.New()
	procs := g * k
	for p := 0; p < procs; p++ {
		c.AddProcess()
		for e := 0; e < events; e++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	// Intra-group ladders: a dense zig-zag through the group's
	// processes keeps all their events nearly totally ordered.
	for grp := 0; grp < g; grp++ {
		base := grp * k
		for step := 1; step < events; step++ {
			from := computation.ProcID(base + (step % k))
			to := computation.ProcID(base + ((step + 1) % k))
			if from == to {
				continue
			}
			if step < events {
				_ = c.AddMessage(c.EventAt(from, step).ID, c.EventAt(to, step+0).ID)
			}
		}
	}
	// Sparse cross-group noise.
	for tries := 0; tries < procs; tries++ {
		p := computation.ProcID(rng.Intn(procs))
		q := computation.ProcID(rng.Intn(procs))
		if p == q {
			continue
		}
		i := 1 + rng.Intn(events)
		j := 1 + rng.Intn(events)
		if i < j {
			_ = c.AddMessage(c.EventAt(p, i).ID, c.EventAt(q, j).ID)
		}
	}
	return c.MustSeal()
}

// PhasedGroups builds a computation with g groups of k processes plus a
// synchronizer process, where each group's designated window of events is
// forced to happen strictly before the next group's window: the successor
// of every window event of group i happened-before every window event of
// group i+1. Declaring the window events true makes the grouped predicate
// unsatisfiable, so the general detectors must exhaust their entire
// selection space — the regime where algorithm B's chain covers beat
// algorithm A's process subsets exponentially. Intra-group message
// ladders keep the chain covers small.
func PhasedGroups(g, k, window int) (*computation.Computation, [][]bool) {
	c := computation.New()
	perProc := g*(window+1) + 1
	for p := 0; p < g*k; p++ {
		c.AddProcess()
		for e := 0; e < perProc; e++ {
			c.AddInternal(computation.ProcID(p))
		}
	}
	syncP := c.AddProcess()
	for i := 0; i < g; i++ {
		c.AddInternal(syncP)
	}
	start := func(i int) int { return 1 + i*(window+1) }
	barrier := func(i int) int { return start(i) + window }
	// Barriers: group i's post-window events feed synchronizer event i,
	// which feeds group i+1's window starts.
	for i := 0; i < g-1; i++ {
		u := c.EventAt(syncP, i+1).ID
		for j := 0; j < k; j++ {
			p := computation.ProcID(i*k + j)
			if err := c.AddMessage(c.EventAt(p, barrier(i)).ID, u); err != nil {
				panic(err)
			}
			q := computation.ProcID((i+1)*k + j)
			if err := c.AddMessage(u, c.EventAt(q, start(i+1)).ID); err != nil {
				panic(err)
			}
		}
	}
	// Intra-group chaining: the last window event of proc j happens
	// before the first window event of proc j+1, so each group's true
	// events form a single causal chain (chain cover size 1).
	for i := 0; i < g; i++ {
		for j := 0; j+1 < k; j++ {
			p := computation.ProcID(i*k + j)
			q := computation.ProcID(i*k + j + 1)
			if err := c.AddMessage(c.EventAt(p, start(i)+window-1).ID, c.EventAt(q, start(i)).ID); err != nil {
				panic(err)
			}
		}
	}
	c.MustSeal()
	truth := make([][]bool, c.NumProcs())
	for p := 0; p < g*k; p++ {
		row := make([]bool, perProc+1)
		i := p / k
		for w := 0; w < window; w++ {
			row[start(i)+w] = true
		}
		truth[p] = row
	}
	return c, truth
}

// E3AvsB compares general algorithm A (one process per clause, k^g
// selections) against algorithm B (one chain per clause, c^g selections)
// on phased computations where the predicate is unsatisfiable, so both
// algorithms must exhaust their selection space. B's combination count
// collapses — the paper's exponential reduction.
func E3AvsB() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "General singular detection: algorithm A (process subsets) vs B (chain covers), unsatisfiable phased instances",
		Columns: []string{"groups g", "k", "combos A", "combos B", "time A", "time B", "speedup", "agree"},
	}
	for _, cfg := range []struct{ g, k int }{
		{2, 3}, {4, 3}, {6, 3}, {8, 3}, {6, 4}, {6, 5},
	} {
		c, tabs := PhasedGroups(cfg.g, cfg.k, 3)
		p := groupedPredicate(cfg.g, cfg.k)
		truth := singular.TruthFromTables(tabs)
		var ra, rb singular.Result
		var ea, eb error
		da := timed(func() { ra, ea = singular.Detect(c, p, truth, singular.ProcessSubsets) })
		db := timed(func() { rb, eb = singular.Detect(c, p, truth, singular.ChainCover) })
		agree := ea == nil && eb == nil && ra.Found == rb.Found
		speedup := float64(da) / float64(db)
		t.AddRow(cfg.g, cfg.k, ra.Combinations, rb.Combinations, da, db,
			fmt.Sprintf("%.1fx", speedup), fmt.Sprint(agree))
	}
	t.Notes = append(t.Notes,
		"combos A grows like k^g; combos B like c^g with c = chain-cover size: the exponential reduction of Sec. 3.3")
	return t
}

// E4SumEq compares the polynomial Possibly(sum = k) detector (max-weight
// closure, Theorems 4-7) against the exhaustive lattice baseline
// (Cooper-Marzullo): the lattice blows up with the process count while the
// closure detector stays polynomial, and the verdicts agree wherever the
// baseline is feasible.
func E4SumEq() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Possibly(sum = k): polynomial closure detector vs lattice enumeration",
		Columns: []string{"procs", "events/proc", "lattice cuts", "lattice time", "closure time", "agree"},
	}
	for _, cfg := range []struct {
		procs, events int
		baseline      bool
	}{
		{2, 8, true}, {4, 8, true}, {6, 6, true}, {8, 4, true},
		{16, 50, false}, {32, 100, false}, {64, 200, false},
	} {
		c := gen.Random(gen.Params{Seed: int64(400 + cfg.procs), Procs: cfg.procs, Events: cfg.events, MsgFrac: 0.5})
		gen.UnitStepVar(int64(500+cfg.procs), c, "x")
		k := int64(1)
		var fast bool
		dFast := timed(func() { fast, _ = relsum.Possibly(c, "x", relsum.Eq, k) })
		if cfg.baseline {
			var cuts int64
			var slow bool
			dSlow := timed(func() {
				cuts = lattice.Count(c)
				slow, _ = lattice.Possibly(c, func(cc *computation.Computation, cut computation.Cut) bool {
					return cc.SumVar("x", cut) == k
				})
			})
			t.AddRow(cfg.procs, cfg.events, cuts, dSlow, dFast, fmt.Sprint(fast == slow))
		} else {
			t.AddRow(cfg.procs, cfg.events, "-", "-", dFast, "-")
		}
	}
	t.Notes = append(t.Notes,
		"lattice rows stop at 8 processes (state explosion); the closure detector handles 64 procs x 200 events in milliseconds")
	return t
}

// E5SubsetSum validates Theorem 3: the subset-sum reduction is sound and
// complete (agreement with the DP solver), and solving the detection
// instance exhaustively scales exponentially with the element count while
// the pseudo-polynomial DP stays flat — the gap the NP-completeness
// predicts for arbitrary-increment sums.
func E5SubsetSum() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 3: subset-sum -> Possibly(sum == k) with arbitrary increments (10 instances per size)",
		Columns: []string{"elements", "agree", "avg DP", "avg exhaustive detection"},
	}
	rng := rand.New(rand.NewSource(601))
	for _, n := range []int{6, 8, 10, 12, 14} {
		const trials = 10
		agree := 0
		var dpTotal, detTotal time.Duration
		for i := 0; i < trials; i++ {
			sizes := make([]int64, n)
			var sum int64
			for j := range sizes {
				sizes[j] = int64(1 + rng.Intn(30))
				sum += sizes[j]
			}
			target := int64(rng.Intn(int(sum + 1)))
			inst := subsetsum.Instance{Sizes: sizes, Target: target}
			var want bool
			dpTotal += timed(func() { want, _ = subsetsum.Solve(inst) })
			c := reduction.RelsumFromSubsetSum(inst)
			var got bool
			detTotal += timed(func() {
				got, _ = lattice.Possibly(c, func(cc *computation.Computation, cut computation.Cut) bool {
					return cc.SumVar(reduction.SumVar, cut) == target
				})
			})
			if got == want {
				agree++
			}
		}
		t.AddRow(n, fmt.Sprintf("%d/%d", agree, trials), dpTotal/trials, detTotal/trials)
	}
	t.Notes = append(t.Notes,
		"exhaustive detection doubles per element (2^n cuts); DP grows linearly in n*target — the unit-step structure is what Theorems 4-7 exploit")
	return t
}

// E6Symmetric exercises the Section 4.3 corollary on simulator-generated
// voting traces: XOR, no-simple-majority and exactly-k predicates over
// growing process counts, all in polynomial time.
func E6Symmetric() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Symmetric predicates on gossip-voting traces (polynomial via sum decomposition)",
		Columns: []string{"procs", "events", "xor", "no-majority", "exactly n/2", "time total"},
	}
	for _, n := range []int{8, 16, 32, 64} {
		sim := simNewVoting(int64(700+n), n)
		c, err := sim()
		if err != nil {
			t.AddRow(n, "-", "-", "-", "-", "ERROR: "+err.Error())
			continue
		}
		truth := func(e computation.Event) bool { return c.Var("yes", e.ID) != 0 }
		var xor, nomaj, half bool
		d := timed(func() {
			xor, _, _ = symmetric.Possibly(c, symmetric.Xor(n), truth)
			nomaj, _, _ = symmetric.Possibly(c, symmetric.NoSimpleMajority(n), truth)
			half, _, _ = symmetric.Possibly(c, symmetric.ExactlyK(n, n/2), truth)
		})
		t.AddRow(n, c.NumEvents(), fmt.Sprint(xor), fmt.Sprint(nomaj), fmt.Sprint(half), d)
	}
	return t
}

// E7Conjunctive measures the Garg-Waldecker CPDHB baseline — the tractable
// anchor of Figure 1 — on growing random workloads, reporting detection
// time and elimination counts, with an oracle cross-check at small sizes.
func E7Conjunctive() *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Conjunctive predicate detection (CPDHB): scaling and oracle agreement",
		Columns: []string{"procs", "events/proc", "found", "eliminations", "time", "oracle"},
	}
	for _, cfg := range []struct {
		procs, events int
		oracle        bool
	}{
		{3, 6, true}, {4, 6, true}, {8, 100, false}, {16, 200, false},
		{32, 400, false}, {64, 800, false},
	} {
		c := gen.Random(gen.Params{Seed: int64(800 + cfg.procs), Procs: cfg.procs, Events: cfg.events, MsgFrac: 0.4})
		tabs := gen.BoolTables(int64(900+cfg.procs), c, 0.25)
		var res conjunctive.Result
		d := timed(func() { res = conjunctive.DetectTables(c, tabs) })
		oracle := "-"
		if cfg.oracle {
			want, _ := lattice.Possibly(c, func(cc *computation.Computation, k computation.Cut) bool {
				for p := range tabs {
					if !tabs[p][k[p]] {
						return false
					}
				}
				return true
			})
			oracle = fmt.Sprint(want == res.Found)
		}
		t.AddRow(cfg.procs, cfg.events, fmt.Sprint(res.Found), res.Eliminated, d, oracle)
	}
	return t
}

// simNewVoting indirection keeps the simulator import local to this use.
func simNewVoting(seed int64, n int) func() (*computation.Computation, error) {
	return func() (*computation.Computation, error) {
		return RunVoting(seed, n)
	}
}
