package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab := r.Run()
			if tab == nil || len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			s := tab.String()
			if !strings.Contains(s, tab.ID) {
				t.Fatalf("%s rendering lacks the id", r.ID)
			}
			for _, row := range tab.Rows {
				for _, cell := range row {
					if strings.Contains(cell, "ERROR") {
						t.Fatalf("%s row contains an error cell: %v", r.ID, row)
					}
				}
			}
		})
	}
}

func TestE1AgreementPerfect(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := E1Soundness()
	for _, row := range tab.Rows {
		agree := row[3]
		parts := strings.Split(agree, "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("E1 row has imperfect agreement: %v", row)
		}
	}
}

func TestE3ChainCoverWins(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := E3AvsB()
	for _, row := range tab.Rows {
		if row[7] != "true" {
			t.Fatalf("E3 A/B disagreement: %v", row)
		}
	}
}

func TestE5AgreementPerfect(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := E5SubsetSum()
	for _, row := range tab.Rows {
		parts := strings.Split(row[1], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("E5 row has imperfect agreement: %v", row)
		}
	}
}

func TestFig2RelationsMatchText(t *testing.T) {
	c, ev := Fig2Computation()
	if !c.ConsistentEvents(ev["e"], ev["f"]) {
		t.Error("e,f must be consistent")
	}
	if !c.Independent(ev["e"], ev["f"]) {
		t.Error("e,f must be independent")
	}
	if c.ConsistentEvents(ev["e"], ev["g"]) {
		t.Error("e,g must be inconsistent")
	}
	if !c.Precedes(ev["g"], ev["h"]) {
		t.Error("g must precede h")
	}
	if !c.ConsistentEvents(ev["g"], ev["h"]) {
		t.Error("g,h must be consistent despite being ordered")
	}
}

func TestGet(t *testing.T) {
	if Get("e3") == nil || Get("E3") == nil {
		t.Error("Get must be case-insensitive")
	}
	if Get("nope") != nil {
		t.Error("unknown id must return nil")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.AddRow(250*time.Microsecond, 3.14159)
	tab.Notes = append(tab.Notes, "hello")
	s := tab.String()
	for _, want := range []string{"T", "demo", "a", "bb", "250.0us", "3.14", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		2500 * time.Nanosecond:  "2.5us",
		3 * time.Millisecond:    "3.00ms",
		1500 * time.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}
