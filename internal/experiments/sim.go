package experiments

import (
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/simulator"
)

// RunVoting produces a gossip-voting trace with n processes, roughly half
// of them starting with a yes vote.
func RunVoting(seed int64, n int) (*computation.Computation, error) {
	procs := simulator.NewVoterProcs(n, 4, func(i int) bool { return i%2 == 0 })
	return simulator.New(seed, procs).Run()
}

// simRun runs a prepared process set under a seeded scheduler.
func simRun(seed int64, procs []simulator.Process) (*computation.Computation, error) {
	return simulator.New(seed, procs).Run()
}

func simulatorTokenRing(n, tokens, work, rounds int) []simulator.Process {
	return simulator.NewTokenRingProcs(n, tokens, work, rounds)
}

func simulatorTwoPhase(n int) []simulator.Process {
	return simulator.NewTwoPhaseProcs(n, false, func(int) bool { return true })
}

func simulatorElection(n int) []simulator.Process {
	return simulator.NewElectionProcs(n, nil)
}

func simulatorGossip(n, steps int) []simulator.Process {
	return simulator.NewGossiperProcs(n, steps, 400)
}
