package experiments

import (
	"fmt"

	"github.com/distributed-predicates/gpd/internal/cnf"
	"github.com/distributed-predicates/gpd/internal/computation"
	"github.com/distributed-predicates/gpd/internal/core/reduction"
	"github.com/distributed-predicates/gpd/internal/core/relsum"
	"github.com/distributed-predicates/gpd/internal/core/singular"
	"github.com/distributed-predicates/gpd/internal/core/symmetric"
	"github.com/distributed-predicates/gpd/internal/gen"
	"github.com/distributed-predicates/gpd/internal/lattice"
	"github.com/distributed-predicates/gpd/internal/sat"
)

// Fig1Matrix reproduces Figure 1, the landscape of known results in
// predicate detection, by actually exercising each class: each row runs a
// canonical instance through the corresponding detector (or reduction) and
// reports the implementation status alongside the complexity the figure
// states.
func Fig1Matrix() *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Known results in predicate detection (Figure 1), each row exercised",
		Columns: []string{"predicate class", "complexity (per Fig. 1)", "source", "exercised by"},
	}
	// Conjunctive predicate: polynomial, Garg-Waldecker.
	{
		c := gen.Random(gen.Params{Seed: 1, Procs: 8, Events: 50, MsgFrac: 0.3})
		tabs := gen.BoolTables(2, c, 0.3)
		res, err := singular.Detect(c, conjunctionOf(c.NumProcs()), singular.TruthFromTables(tabs), singular.ChainCover)
		status := fmt.Sprintf("detector ran, found=%v", res.Found)
		if err != nil {
			status = "ERROR: " + err.Error()
		}
		t.AddRow("conjunctive", "polynomial", "[9] Garg-Waldecker", status)
	}
	// Singular k-CNF, receive-ordered: polynomial (this paper).
	{
		c := gen.GroupFunnel(gen.Params{Seed: 3, Procs: 8, Events: 40, MsgFrac: 0.4}, 2, true)
		p := groupedPredicate(4, 2)
		res, err := singular.Detect(c, p, singular.TruthFromTables(gen.BoolTables(4, c, 0.3)), singular.ReceiveOrdered)
		status := fmt.Sprintf("detector ran, found=%v", res.Found)
		if err != nil {
			status = "ERROR: " + err.Error()
		}
		t.AddRow("singular k-CNF (receive-ordered)", "polynomial", "this paper, Sec. 3.2", status)
	}
	// Singular k-CNF, general: NP-complete (this paper, Theorem 1).
	{
		f := &cnf.Formula{NumVars: 2, Clauses: []cnf.Clause{{1, 2}, {-1, 2}, {1, -2}}}
		in, err := reduction.SingularFromCNF(f)
		status := "reduction built"
		if err != nil {
			status = "ERROR: " + err.Error()
		} else {
			res, derr := singular.Detect(in.C, in.Pred, in.Truth(), singular.ChainCover)
			agree := res.Found == sat.Satisfiable(f)
			status = fmt.Sprintf("reduction agrees with SAT: %v", agree)
			if derr != nil {
				status = "ERROR: " + derr.Error()
			}
		}
		t.AddRow("singular k-CNF (general, k>=2)", "NP-complete", "this paper, Thm. 1", status)
	}
	// Relational sum with <, <=: polynomial (Chase-Garg).
	{
		c := gen.Random(gen.Params{Seed: 5, Procs: 8, Events: 50, MsgFrac: 0.3})
		gen.ArbitraryStepVar(6, c, "x", 4)
		min, max := relsum.SumRange(c, "x")
		t.AddRow("relational sum, relop in {<,<=,>,>=}", "polynomial", "[4] Chase-Garg / [18]",
			fmt.Sprintf("exact range [%d,%d] via max-flow closure", min, max))
	}
	// Sum equality, unit steps: polynomial (this paper).
	{
		c := gen.Random(gen.Params{Seed: 7, Procs: 8, Events: 50, MsgFrac: 0.3})
		gen.UnitStepVar(8, c, "x")
		ok, err := relsum.Possibly(c, "x", relsum.Eq, 0)
		status := fmt.Sprintf("detector ran, found=%v", ok)
		if err != nil {
			status = "ERROR: " + err.Error()
		}
		t.AddRow("sum == k, unit-step variables", "polynomial", "this paper, Sec. 4.2", status)
	}
	// Sum equality, arbitrary increments: NP-complete (this paper).
	{
		c := gen.Random(gen.Params{Seed: 9, Procs: 2, Events: 3, MsgFrac: 0})
		gen.ArbitraryStepVar(10, c, "x", 5)
		_, err := relsum.Possibly(c, "x", relsum.Eq, 0)
		status := "unit-step guard fired (exhaustive/reduction path required)"
		if err == nil {
			status = "variable happened to be unit-step"
		}
		t.AddRow("sum == k, arbitrary increments", "NP-complete", "this paper, Thm. 3", status)
	}
	// Symmetric predicates: polynomial (this paper, corollary).
	{
		c := gen.Random(gen.Params{Seed: 11, Procs: 8, Events: 40, MsgFrac: 0.3})
		gen.BoolVar(12, c, "b", 0.3)
		ok, _, err := symmetric.Possibly(c, symmetric.Xor(8), func(e computation.Event) bool {
			return c.Var("b", e.ID) != 0
		})
		status := fmt.Sprintf("detector ran, found=%v", ok)
		if err != nil {
			status = "ERROR: " + err.Error()
		}
		t.AddRow("symmetric boolean predicates", "polynomial", "this paper, Sec. 4.3", status)
	}
	// Arbitrary predicates: NP-complete (Chase-Garg); lattice oracle.
	{
		c := gen.Random(gen.Params{Seed: 13, Procs: 4, Events: 6, MsgFrac: 0.4})
		n := lattice.Count(c)
		t.AddRow("arbitrary boolean predicate", "NP-complete", "[4] Chase-Garg",
			fmt.Sprintf("lattice oracle explored %d cuts", n))
	}
	// 2-local conjunctive: NP-complete (Stoller-Schneider); subsumed.
	t.AddRow("k-local conjunctive (k>=2)", "NP-complete", "[15] Stoller-Schneider",
		"subsumed by Theorem 1 (see E1)")
	return t
}

func conjunctionOf(n int) *singular.Predicate {
	p := &singular.Predicate{}
	for i := 0; i < n; i++ {
		p.Clauses = append(p.Clauses, singular.Clause{{Proc: computation.ProcID(i)}})
	}
	return p
}

func groupedPredicate(groups, size int) *singular.Predicate {
	p := &singular.Predicate{}
	proc := 0
	for g := 0; g < groups; g++ {
		var cl singular.Clause
		for j := 0; j < size; j++ {
			cl = append(cl, singular.Literal{Proc: computation.ProcID(proc)})
			proc++
		}
		p.Clauses = append(p.Clauses, cl)
	}
	return p
}

// Fig2Computation builds the running example of Figure 2: four processes
// with named events e, f, g, h such that e and f are consistent, e and g
// are inconsistent, g and h are ordered yet consistent, and e and f are
// independent while g and h are not. (The archived figure is degraded;
// the computation is reconstructed to exhibit exactly the relations the
// surrounding text asserts.)
func Fig2Computation() (*computation.Computation, map[string]computation.EventID) {
	c := computation.New()
	p0 := c.AddProcess()
	p1 := c.AddProcess()
	p2 := c.AddProcess()
	p3 := c.AddProcess()
	e := c.AddInternal(p0)
	e2 := c.AddInternal(p0)
	f := c.AddInternal(p1)
	g := c.AddInternal(p2)
	g2 := c.AddInternal(p2)
	h := c.AddInternal(p3)
	_ = g2
	if err := c.AddMessage(e2, g); err != nil {
		panic(err)
	}
	if err := c.AddMessage(g, h); err != nil {
		panic(err)
	}
	c.SetLabel(e, "e")
	c.SetLabel(f, "f")
	c.SetLabel(g, "g")
	c.SetLabel(h, "h")
	c.MustSeal()
	return c, map[string]computation.EventID{"e": e, "f": f, "g": g, "h": h}
}

// Fig2Table reproduces Figure 2's event relations, computed by the
// library rather than asserted.
func Fig2Table() *Table {
	t := &Table{
		ID:      "F2",
		Title:   "Example computation (Figure 2): pairwise event relations",
		Columns: []string{"pair", "consistent", "independent", "ordered"},
	}
	c, ev := Fig2Computation()
	pairs := [][2]string{{"e", "f"}, {"e", "g"}, {"e", "h"}, {"f", "g"}, {"f", "h"}, {"g", "h"}}
	for _, pr := range pairs {
		a, b := ev[pr[0]], ev[pr[1]]
		ordered := "no"
		if c.Precedes(a, b) {
			ordered = pr[0] + " -> " + pr[1]
		} else if c.Precedes(b, a) {
			ordered = pr[1] + " -> " + pr[0]
		}
		t.AddRow(pr[0]+","+pr[1],
			fmt.Sprint(c.ConsistentEvents(a, b)),
			fmt.Sprint(c.Independent(a, b)),
			ordered)
	}
	t.Notes = append(t.Notes,
		"e,f consistent and independent; e,g inconsistent (next(e) -> g); g,h ordered yet consistent — the text's examples")
	return t
}

// Fig3Table reproduces the Figure 3 transformation on a representative
// non-monotone formula: it reports the constructed computation's shape and
// cross-checks detection against the DPLL solver, extracting a satisfying
// assignment from the witness.
func Fig3Table() *Table {
	t := &Table{
		ID:      "F3",
		Title:   "The Theorem 1 transformation (Figure 3) on (x1|x2) & (!x1|x3) & (x2|!x3|x1)",
		Columns: []string{"quantity", "value"},
	}
	f := &cnf.Formula{NumVars: 3, Clauses: []cnf.Clause{
		{1, 2}, {-1, 3}, {2, -3, 1},
	}}
	in, err := reduction.SingularFromCNF(f)
	if err != nil {
		t.AddRow("error", err.Error())
		return t
	}
	t.AddRow("clauses", len(f.Clauses))
	t.AddRow("processes", in.C.NumProcs())
	t.AddRow("events (incl. initial)", in.C.NumEvents())
	t.AddRow("conflict arrows (messages)", len(in.C.Messages()))
	t.AddRow("predicate", in.Pred.String())
	want := sat.Satisfiable(f)
	res, err := singular.Detect(in.C, in.Pred, in.Truth(), singular.ChainCover)
	if err != nil {
		t.AddRow("error", err.Error())
		return t
	}
	t.AddRow("DPLL satisfiable", want)
	t.AddRow("detection Possibly(pred)", res.Found)
	if res.Found {
		a, aerr := in.Assignment(res.Witness)
		if aerr != nil {
			t.AddRow("assignment", "ERROR: "+aerr.Error())
		} else {
			t.AddRow("extracted assignment satisfies formula", f.Eval(a))
			t.AddRow("assignment", fmt.Sprintf("x1=%v x2=%v x3=%v", a[1], a[2], a[3]))
		}
	}
	return t
}
