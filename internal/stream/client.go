package stream

import (
	"bufio"
	"fmt"
	"net"

	"github.com/distributed-predicates/gpd/internal/mux"
)

// Client is a blocking wire-protocol client. One Client owns one TCP
// connection; confine it to a goroutine (or guard it) — requests and
// replies are strictly alternating on the wire. Multiple clients can
// serve disjoint or even overlapping session sets concurrently.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a stream server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial: %w", err)
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip frames a request and decodes the reply.
func (c *Client) roundTrip(req Request) (Response, error) {
	req.V = ProtocolVersion
	if err := EncodeRequest(c.bw, req); err != nil {
		return Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	resp, err := c.DecodeReply()
	if err != nil {
		return Response{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("stream: server: %s", resp.Error)
	}
	return resp, nil
}

// DecodeReply reads one response frame (exported for pipelined callers).
func (c *Client) DecodeReply() (Response, error) {
	return DecodeResponse(c.br)
}

// Open creates a session on the server.
func (c *Client) Open(id string, spec Spec) error {
	_, err := c.roundTrip(Request{Type: "open", Session: id, Spec: &spec})
	return err
}

// Append streams a batch of events; the returned flag is the server's
// latched Possibly verdict as of the reply (it may trail these events —
// a true answer is final, a false one is refined by later replies).
func (c *Client) Append(id string, events []Event) (bool, error) {
	resp, err := c.roundTrip(Request{Type: "append", Session: id, Events: events})
	return resp.Possibly, err
}

// Query returns the session's counters after a synchronous flush.
func (c *Client) Query(id string) (SessionStats, error) {
	resp, err := c.roundTrip(Request{Type: "query", Session: id})
	if err != nil {
		return SessionStats{}, err
	}
	if resp.Stats == nil {
		return SessionStats{}, fmt.Errorf("stream: query reply without stats")
	}
	return *resp.Stats, nil
}

// CloseSession finalizes the session and returns its verdict.
func (c *Client) CloseSession(id string) (Verdict, error) {
	v, _, err := c.ClosePredicates(id)
	return v, err
}

// ClosePredicates is CloseSession plus the multiplexed fan-out: the
// final state of every predicate still registered at close.
func (c *Client) ClosePredicates(id string) (Verdict, []mux.Update, error) {
	resp, err := c.roundTrip(Request{Type: "close", Session: id})
	if err != nil {
		return Verdict{}, nil, err
	}
	if resp.Verdict == nil {
		return Verdict{}, nil, fmt.Errorf("stream: close reply without verdict")
	}
	return *resp.Verdict, resp.Predicates, nil
}

// RegisterPredicate attaches a predicate to an open multiplexed session.
// The returned updates are any verdicts that latched at the registration
// cut itself (e.g. a predicate already satisfied by the seeded state).
func (c *Client) RegisterPredicate(id string, r RegisterSpec) ([]mux.Update, error) {
	resp, err := c.roundTrip(Request{Type: "register", Session: id, Register: &r})
	if err != nil {
		return nil, err
	}
	return resp.Updates, nil
}

// UnregisterPredicate detaches a predicate from a multiplexed session.
func (c *Client) UnregisterPredicate(id, predID string) error {
	_, err := c.roundTrip(Request{Type: "unregister", Session: id, Predicate: predID})
	return err
}

// QueryUpdates is Query plus the per-predicate verdict updates queued
// since the previous drain (multiplexed sessions).
func (c *Client) QueryUpdates(id string) (SessionStats, []mux.Update, error) {
	resp, err := c.roundTrip(Request{Type: "query", Session: id})
	if err != nil {
		return SessionStats{}, nil, err
	}
	if resp.Stats == nil {
		return SessionStats{}, nil, fmt.Errorf("stream: query reply without stats")
	}
	return *resp.Stats, resp.Updates, nil
}
