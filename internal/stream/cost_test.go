package stream

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"runtime/pprof"
	"testing"
	"time"

	"github.com/distributed-predicates/gpd/internal/obs"
)

// TestLedgerAttributesCostPerTenant drives two tenants with known event
// counts through one engine and checks the cost ledger against that
// oracle: events land on the right (tenant, family) scope, CPU is
// attributed, and a registered predicate shows up in the hot-predicates
// view under its own tenant.
func TestLedgerAttributesCostPerTenant(t *testing.T) {
	led := obs.NewLedger()
	e := NewEngine(Config{Shards: 2, Ledger: led})
	defer e.Shutdown()

	if err := e.Open("a", Spec{Kind: Conjunctive, Procs: 2, Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Open("b", Spec{Kind: Conjunctive, Procs: 2, Tenant: "rival"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("a", []Event{
		{Proc: 0, VC: []int64{1, 0}, Truth: true},
		{Proc: 0, VC: []int64{2, 0}},
		{Proc: 0, VC: []int64{3, 0}, Truth: true},
		{Proc: 1, VC: []int64{0, 1}, Truth: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("b", []Event{
		{Proc: 0, VC: []int64{1, 0}, Truth: true},
		{Proc: 1, VC: []int64{0, 1}, Truth: true},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseSession("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseSession("b"); err != nil {
		t.Fatal(err)
	}

	// A mux session owned by one tenant, running a predicate registered
	// by another: session costs go to the owner, predicate steps to the
	// registrant.
	if err := e.Open("m", Spec{Mux: true, Procs: 2, Tenant: "muxowner"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("m", RegisterSpec{ID: "hot-1", Tenant: "acme", Pred: "all(v0)"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("m", []Event{
		{Proc: 0, VC: []int64{1, 0}, Var: "v0", Val: 1, Truth: true},
		{Proc: 1, VC: []int64{0, 1}, Var: "v0", Val: 1, Truth: true},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ClosePredicates("m"); err != nil {
		t.Fatal(err)
	}

	snap := led.Snapshot()
	events := map[string]int64{}
	steps := map[string]int64{}
	for _, s := range snap.Scopes {
		events[s.Tenant] += s.Events
		steps[s.Tenant] += s.Steps
	}
	if events["acme"] != 4 || events["rival"] != 2 || events["muxowner"] != 2 {
		t.Fatalf("per-tenant events: got %v, want acme=4 rival=2 muxowner=2", events)
	}
	if steps["acme"] == 0 || steps["rival"] == 0 {
		t.Fatalf("per-tenant steps not attributed: %v", steps)
	}
	if snap.TotalCPUNanos <= 0 {
		t.Fatalf("total CPU not attributed: %d", snap.TotalCPUNanos)
	}
	if got := e.Ledger().TenantCPUNanos("acme") + e.Ledger().TenantCPUNanos("rival") +
		e.Ledger().TenantCPUNanos("muxowner"); got != snap.TotalCPUNanos {
		t.Fatalf("tenant CPU does not sum to the total: %d vs %d", got, snap.TotalCPUNanos)
	}

	hot := led.HotPredicates(10)
	found := false
	for _, p := range hot {
		if p.ID == "hot-1" {
			found = true
			if p.Tenant != "acme" || p.Steps == 0 {
				t.Fatalf("hot predicate misattributed: %+v", p)
			}
		}
	}
	if !found {
		t.Fatalf("hot-predicates view missing hot-1: %+v", hot)
	}
}

// TestTenantCPUShareSLO arms the noisy-neighbour rule with a floor of one
// nanosecond and a 50%% share budget, then lets a single tenant hold all
// the attributed CPU: the rule must fire, once, naming the tenant.
func TestTenantCPUShareSLO(t *testing.T) {
	breaches := make(chan string, 8)
	e := NewEngine(Config{
		Shards: 1, Ledger: obs.NewLedger(),
		SLO: SLOConfig{
			TenantCPUShare: 0.5,
			TenantCPUFloor: time.Nanosecond,
			OnBreach: func(rule, detail, path string) {
				if rule == SLOTenantCPUShare {
					breaches <- detail
				}
			},
		},
	})
	defer e.Shutdown()

	if err := e.Open("s", Spec{Kind: Conjunctive, Procs: 2, Tenant: "greedy"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("s", []Event{
		{Proc: 0, VC: []int64{1, 0}, Truth: true},
		{Proc: 1, VC: []int64{0, 1}, Truth: true},
	}); err != nil {
		t.Fatal(err)
	}
	// Queries publish with sampling on, which is where the share check
	// runs; by now the append has charged CPU to the tenant's scope.
	if _, err := e.Query("s"); err != nil {
		t.Fatal(err)
	}

	select {
	case detail := <-breaches:
		if !bytes.Contains([]byte(detail), []byte("greedy")) {
			t.Fatalf("breach detail does not name the tenant: %q", detail)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tenant_cpu_share did not fire within 5s")
	}
}

// TestProfileLabelsOnShardGoroutines checks the deterministic half of
// profile attribution: with Config.ProfileLabels the shard workers label
// themselves, so a goroutine profile (debug=1 aggregates by label set)
// names the subsystem and shard without any sampling luck involved.
func TestProfileLabelsOnShardGoroutines(t *testing.T) {
	e := NewEngine(Config{Shards: 2, ProfileLabels: true})
	defer e.Shutdown()

	// Route one synchronous request through every shard so each worker
	// has provably executed its prologue (a freshly spawned goroutine
	// that has never been scheduled carries no labels yet).
	for i := 0; ; i++ {
		id := fmt.Sprintf("warm-%d", i)
		if err := e.Open(id, Spec{Kind: Conjunctive, Procs: 1, Tenant: "warm"}); err != nil {
			t.Fatal(err)
		}
		snap := e.Snapshot()
		busy := 0
		for _, sh := range snap.Shards {
			if sh.Sessions > 0 {
				busy++
			}
		}
		if busy == len(snap.Shards) {
			break
		}
		if i > 256 {
			t.Fatal("could not route a session onto every shard")
		}
	}

	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"subsystem":"gpd-stream"`, `"shard":"0"`, `"shard":"1"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("goroutine profile missing label %s:\n%s", want, out)
		}
	}
}

// TestCPUProfileCarriesTenantLabels takes a real CPU profile while the
// engine crunches one tenant's events under ProfileLabels and asserts the
// profile's string table contains the tenant/family label vocabulary —
// the property the whole attribution feature exists for. CPU sampling is
// statistical (100Hz), so when the run is too fast to catch a single
// labeled sample the test skips rather than flakes.
func TestCPUProfileCarriesTenantLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU profiling run")
	}
	e := NewEngine(Config{Shards: 2, Ledger: obs.NewLedger(), ProfileLabels: true})
	defer e.Shutdown()

	var prof bytes.Buffer
	if err := pprof.StartCPUProfile(&prof); err != nil {
		t.Skipf("CPU profiler unavailable: %v", err)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for sess := 0; time.Now().Before(deadline); sess++ {
		id := fmt.Sprintf("p%d", sess)
		if err := e.Open(id, Spec{Kind: Conjunctive, Procs: 2, Tenant: "profiled"}); err != nil {
			t.Fatal(err)
		}
		batch := make([]Event, 0, 256)
		for i := 0; i < 256; i++ {
			batch = append(batch, Event{Proc: 0, VC: []int64{int64(i + 1), 0}, Truth: i%2 == 0})
		}
		if err := e.Append(id, batch); err != nil {
			t.Fatal(err)
		}
		if _, err := e.CloseSession(id); err != nil {
			t.Fatal(err)
		}
	}
	pprof.StopCPUProfile()

	// The pprof wire format is gzipped protobuf; every label key and
	// value lands in the string table as plain UTF-8, so a byte scan
	// decides label presence without a protobuf decoder.
	gz, err := gzip.NewReader(bytes.NewReader(prof.Bytes()))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("samples")) {
		t.Skip("profiler produced no samples on this machine")
	}
	if !bytes.Contains(raw, []byte("tenant")) || !bytes.Contains(raw, []byte("profiled")) {
		t.Skip("no labeled samples caught in 500ms; nothing to assert")
	}
	for _, want := range []string{"tenant", "profiled", "family", "shard"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("CPU profile string table missing %q", want)
		}
	}
}
