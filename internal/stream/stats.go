package stream

// Stats surface: every counter the engine maintains is exported through
// Snapshot, which is lock-free for the shard workers (they publish via
// atomics) and therefore safe to poll from a stats endpoint at any rate.

// SessionStats is the per-session counter block.
type SessionStats struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Tenant    string `json:"tenant,omitempty"` // owning tenant (cost attribution scope)
	Shard     int    `json:"shard"`
	Ingested  uint64 `json:"ingested"`  // events handed to the session
	Delivered int64  `json:"delivered"` // events causally delivered
	Holdback  int    `json:"holdback"`  // buffered out-of-order events
	Window    int    `json:"window"`    // detector window (unpruned state)
	Flushes   int    `json:"flushes"`   // detector flushes
	Possibly  bool   `json:"possibly"`  // latched verdict
	Error     string `json:"error,omitempty"`

	// Multiplexed sessions only: predicate counts and routing economy.
	Registered int   `json:"registered,omitempty"` // predicates registered
	Active     int   `json:"active,omitempty"`     // predicates still stepping
	Steps      int64 `json:"steps,omitempty"`      // detector steps taken
	Skipped    int64 `json:"skipped,omitempty"`    // steps avoided by relevance routing

	// Sliced sessions only: incremental-slice memory economy.
	SliceRetained  int   `json:"slice_retained,omitempty"`  // frontier events held now
	SliceCompacted int64 `json:"slice_compacted,omitempty"` // history events freed so far
}

// ShardStats is the per-shard counter block.
type ShardStats struct {
	Shard          int    `json:"shard"`
	Sessions       int    `json:"sessions"`         // currently open
	Frames         uint64 `json:"frames"`           // mailbox messages processed
	Events         uint64 `json:"events"`           // events ingested
	Batches        uint64 `json:"batches"`          // mailbox drains
	DroppedFrames  uint64 `json:"dropped_frames"`   // frames shed under overload
	DroppedEvents  uint64 `json:"dropped_events"`   // events inside shed frames
	QueueDepth     int    `json:"queue_depth"`      // mailbox depth now
	QueueHighWater int    `json:"queue_high_water"` // deepest the mailbox has been
	Detections     uint64 `json:"detections"`       // sessions whose verdict latched true
}

// Snapshot is a point-in-time view of the whole engine.
type Snapshot struct {
	Shards     []ShardStats   `json:"shards"`
	Sessions   []SessionStats `json:"sessions"`
	Events     uint64         `json:"events"`     // total ingested
	Dropped    uint64         `json:"dropped"`    // total dropped frames
	Detections uint64         `json:"detections"` // total latched verdicts

	// Multiplexing control plane: predicates currently registered across
	// every multiplexed session, total and per tenant.
	Predicates int            `json:"predicates,omitempty"`
	Tenants    map[string]int `json:"tenants,omitempty"`
}
